"""Legacy setup shim.

Kept so ``pip install -e .`` works on interpreters whose setuptools lacks
PEP 660 editable-wheel support (offline environments without the ``wheel``
package).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
