#!/usr/bin/env python
"""Quickstart: encode a burst with every DBI scheme and compare costs.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Burst,
    CostModel,
    DbiOptimal,
    available_schemes,
    get_scheme,
)


def main() -> None:
    # The worked example of the paper's Fig. 2.
    burst = Burst.from_bit_strings([
        "10001110", "10000110", "10010110", "11101001",
        "01111101", "10110111", "01010111", "11000100",
    ])
    print(f"burst: {burst}\n")

    # Abstract cost model: one transition costs the same as one zero.
    model = CostModel.fixed()

    print(f"{'scheme':14s} {'zeros':>5s} {'trans':>5s} {'cost':>6s}  invert pattern")
    for name in available_schemes():
        scheme = get_scheme(name)
        encoded = scheme.encode(burst)
        encoded.verify()  # every scheme must round-trip
        transitions, zeros = encoded.activity()
        pattern = "".join("I" if flag else "." for flag in encoded.invert_flags)
        print(f"{name:14s} {zeros:5d} {transitions:5d} "
              f"{encoded.cost(model):6.1f}  {pattern}")

    # A custom operating point: transitions 3x as expensive as zeros.
    heavy_ac = DbiOptimal(CostModel(alpha=3.0, beta=1.0))
    encoded = heavy_ac.encode(burst)
    transitions, zeros = encoded.activity()
    print(f"\nOPT with alpha/beta = 3: {zeros} zeros, {transitions} transitions")


if __name__ == "__main__":
    main()
