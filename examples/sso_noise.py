#!/usr/bin/env python
"""Simultaneous-switching-output (SSO) side effects of DBI coding.

Kim et al. (paper ref. [14]) highlight DBI DC's SSO-noise benefit in
graphics memory systems.  This example compares per-beat switching
statistics across schemes on random and worst-case traffic.

Run with::

    python examples/sso_noise.py
"""

from repro.analysis.sso import sso_comparison, sso_of_scheme
from repro.baselines import DbiAc, DbiDc, Raw
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.sim.report import markdown_table
from repro.workloads.patterns import checkerboard
from repro.workloads.random_data import random_bursts


def main() -> None:
    population = random_bursts(count=2000)
    schemes = {
        "raw": Raw(),
        "dbi-dc": DbiDc(),
        "dbi-ac": DbiAc(),
        "dbi-opt": DbiOptimal(CostModel.fixed()),
    }

    print("random traffic (2000 bursts):")
    rows = sso_comparison(schemes, population)
    print(markdown_table(
        ["scheme", "max lanes/beat", "mean lanes/beat", "beats > 4 lanes"],
        rows))

    print("\nworst case — checkerboard burst (0x55/0xAA):")
    burst = checkerboard(8)
    rows = []
    for name, scheme in schemes.items():
        stats = sso_of_scheme(scheme, [burst])
        rows.append([name, stats.max_switching,
                     f"{stats.mean_switching:.2f}"])
    print(markdown_table(["scheme", "max lanes/beat", "mean lanes/beat"],
                         rows))

    print("\nAC-style coding converts eight simultaneous data-lane toggles")
    print("into a single DBI-lane toggle — the SSO benefit rides along with")
    print("the energy benefit.")


if __name__ == "__main__":
    main()
