#!/usr/bin/env python
"""GDDR5X link-energy study (the paper's Fig. 7 scenario).

Sweeps the per-pin data rate of a POD135 interface with 3 pF load,
computes the interface energy per burst of every DBI scheme on random
traffic and renders the normalised curves as an ASCII plot.

Run with::

    python examples/gddr5x_link_energy.py
"""

from repro.analysis.ascii_plot import quick_plot
from repro.analysis.crossover import interpolated_crossing
from repro.phy import GBPS, PICOFARAD, crossover_data_rate, gddr5x, pod135
from repro.sim.report import format_data_rate_sweep
from repro.sim.sweep import data_rate_sweep
from repro.workloads import random_bursts


def main() -> None:
    profile = gddr5x()
    print(f"device: {profile.name}, {profile.interface.name}, "
          f"{profile.dq_width} DQ + {profile.byte_lanes} DBI pins, "
          f"burst length {profile.burst_length}")

    bursts = random_bursts(count=1500)
    rates = [0.5 * GBPS * step for step in range(1, 41)]  # 0.5 .. 20 Gbps
    sweep = data_rate_sweep(bursts, interface=pod135(),
                            c_load_farads=3 * PICOFARAD, data_rates_hz=rates)

    print(format_data_rate_sweep(sweep))

    gbps = [rate / 1e9 for rate in rates]
    print()
    print(quick_plot(
        gbps,
        {name: sweep.normalized[name]
         for name in ("dbi-dc", "dbi-ac", "dbi-opt", "dbi-opt-fixed")},
        title="interface energy per burst, normalised to RAW (Fig. 7)",
        x_label="data rate [Gbps]",
    ))

    cross = interpolated_crossing(gbps, sweep.normalized["dbi-opt-fixed"],
                                  sweep.normalized["dbi-dc"])
    print(f"\nOPT (Fixed) overtakes DBI DC at {cross:.1f} Gbps "
          f"(paper: ~3.8 Gbps)")
    balanced = crossover_data_rate(pod135(), 3 * PICOFARAD) / 1e9
    print(f"one transition costs one zero at {balanced:.1f} Gbps "
          f"(paper's peak-gain region: ~14 Gbps)")
    best_rate, best_energy = sweep.best_gain("dbi-opt")
    print(f"OPT best point: {best_rate / 1e9:.1f} Gbps at "
          f"{100 * (1 - best_energy):.1f}% below RAW")


if __name__ == "__main__":
    main()
