#!/usr/bin/env python
"""DDR4 write-path controller study.

Streams cache-line write transactions through the
:class:`~repro.ctrl.controller.WriteController` on a DDR4 (POD12) channel
and compares encoder policies at the controller level: window-1 greedy,
the paper's per-burst optimum, and deep cross-burst lookahead.

Run with::

    python examples/ddr4_write_controller.py
"""

import numpy as np

from repro.core.costs import CostModel
from repro.ctrl import CACHE_LINE_BYTES, WriteController, WriteTransaction
from repro.phy import GBPS, PICOFARAD, ddr4
from repro.sim.report import markdown_table
from repro.workloads.traces import zero_run_trace

N_LINES = 256
WINDOWS = (1, 8, 64)


def transaction_stream() -> list:
    """A mix of random and sparse cache lines, like a real writeback mix."""
    rng = np.random.default_rng(20)
    sparse = zero_run_trace(N_LINES * CACHE_LINE_BYTES // 2, seed=4)
    lines = []
    for index in range(N_LINES):
        if index % 2:
            data = bytes(rng.integers(0, 256, size=CACHE_LINE_BYTES,
                                      dtype=np.uint8))
        else:
            start = (index // 2) * CACHE_LINE_BYTES
            data = sparse[start:start + CACHE_LINE_BYTES]
        lines.append(WriteTransaction(index * CACHE_LINE_BYTES, data))
    return lines


def main() -> None:
    profile = ddr4()
    energy_model = profile.energy_model(data_rate_hz=3.2 * GBPS,
                                        c_load_farads=3 * PICOFARAD)
    cost_model = energy_model.cost_model()
    print(f"channel: {profile.name} ({profile.interface.name}), "
          f"{profile.dq_width} DQ, {energy_model.data_rate_hz / 1e9:.1f} Gbps")
    print(f"E_zero = {energy_model.energy_per_zero * 1e12:.2f} pJ, "
          f"E_transition = {energy_model.energy_per_transition * 1e12:.2f} pJ\n")

    transactions = transaction_stream()
    rows = []
    baseline_energy = None
    for window in WINDOWS:
        controller = WriteController(channels=1,
                                     byte_lanes=profile.byte_lanes,
                                     model=cost_model, window=window,
                                     energy_model=energy_model)
        for transaction in transactions:
            controller.write(transaction)
        stats = controller.flush()
        if baseline_energy is None:
            baseline_energy = stats.energy_joules
        rows.append([
            window,
            stats.zeros,
            stats.transitions,
            f"{stats.energy_joules * 1e9:.2f} nJ",
            f"{100 * (1 - stats.energy_joules / baseline_energy):+.2f}%",
        ])
    print(markdown_table(
        ["lookahead window (bytes)", "zeros", "transitions",
         "interface energy", "vs window-1"],
        rows))
    print(f"\n({N_LINES} cache-line writes, "
          f"{N_LINES * CACHE_LINE_BYTES} bytes total; window 1 = greedy "
          f"per-byte, window 8 = the paper's per-burst granularity)")


if __name__ == "__main__":
    main()
