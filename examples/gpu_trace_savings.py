#!/usr/bin/env python
"""Trace-driven savings study on a simulated x32 GDDR5X channel.

Streams synthetic application traffic (text, floats, images, pointers,
sparse buffers, a GPU-frame mixture) through the multi-lane
:class:`~repro.phy.bus.MemoryBus` with different per-lane encoders and
reports interface energy per workload — the deployment view of the
paper's averaged random-burst results.

Run with::

    python examples/gpu_trace_savings.py
"""

from repro import CostModel, DbiAc, DbiDc, DbiOptimal, Raw
from repro.phy import GBPS, MemoryBus, PICOFARAD, gddr5x
from repro.sim.report import markdown_table
from repro.workloads import (
    float_trace,
    gpu_frame_trace,
    image_trace,
    pointer_trace,
    random_payload,
    text_trace,
    zero_run_trace,
)

PAYLOAD_BYTES = 32 * 1024


def build_bus(scheme_factory, energy_model) -> MemoryBus:
    return MemoryBus(scheme_factory, byte_lanes=4, burst_length=8,
                     energy_model=energy_model)


def main() -> None:
    profile = gddr5x()
    # The paper's sweet spot: 14 Gbps would be a future part; use 12 Gbps.
    energy_model = profile.energy_model(data_rate_hz=12 * GBPS,
                                        c_load_farads=3 * PICOFARAD)
    print(f"channel: {profile.name} x{profile.dq_width} @ "
          f"{energy_model.data_rate_hz / 1e9:.0f} Gbps, "
          f"c_load = {energy_model.c_load_farads * 1e12:.0f} pF")
    print(f"E_zero = {energy_model.energy_per_zero * 1e12:.2f} pJ, "
          f"E_transition = {energy_model.energy_per_transition * 1e12:.2f} pJ\n")

    workloads = {
        "random": random_payload(PAYLOAD_BYTES),
        "text": text_trace(PAYLOAD_BYTES),
        "float": float_trace(PAYLOAD_BYTES // 4),
        "image": image_trace(width=256, height=PAYLOAD_BYTES // 256),
        "pointer": pointer_trace(PAYLOAD_BYTES // 8),
        "zero-run": zero_run_trace(PAYLOAD_BYTES),
        "gpu-frame": gpu_frame_trace(PAYLOAD_BYTES),
    }
    opt_model = energy_model.cost_model()
    schemes = {
        "raw": Raw,
        "dbi-dc": DbiDc,
        "dbi-ac": DbiAc,
        "dbi-opt": lambda: DbiOptimal(opt_model),
        "dbi-opt-fixed": lambda: DbiOptimal(CostModel.fixed()),
    }

    headers = ["workload"] + list(schemes) + ["OPT saving vs best conv."]
    rows = []
    for workload_name, payload in workloads.items():
        energies = {}
        for scheme_name, factory in schemes.items():
            bus = build_bus(factory, energy_model)
            stats = bus.write(payload)
            energies[scheme_name] = stats.energy_joules
        conventional = min(energies["dbi-dc"], energies["dbi-ac"])
        saving = 100.0 * (1.0 - energies["dbi-opt"] / conventional)
        row = [workload_name]
        row.extend(f"{energies[name] * 1e9:.1f} nJ" for name in schemes)
        row.append(f"{saving:+.1f}%")
        rows.append(row)

    print(markdown_table(headers, rows))
    print("\n(positive saving: optimal DBI beats the better of DC/AC on "
          "that traffic)")


if __name__ == "__main__":
    main()
