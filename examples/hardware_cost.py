#!/usr/bin/env python
"""Hardware cost of the DBI encoders (the paper's Table I scenario).

Builds the four gate-level encoder designs, verifies one of them
bit-for-bit against the algorithmic encoder, and prints the
synthesis-style area/power/timing estimates.

Run with::

    python examples/hardware_cost.py
"""

from repro import CostModel, solve
from repro.core.schemes import EncodedBurst
from repro.hw import (
    build_ac_encoder,
    build_dc_encoder,
    build_opt_encoder,
    netlist_invert_flags,
    table_one,
    table_one_markdown,
)
from repro.workloads import random_bursts


def main() -> None:
    # --- structural statistics ------------------------------------------
    print("netlist statistics:")
    for netlist in (build_dc_encoder(), build_ac_encoder(),
                    build_opt_encoder(), build_opt_encoder(coefficient_bits=3)):
        print(f"  {netlist.name:14s} {netlist.n_gates:5d} gates, "
              f"{netlist.area_um2():7.0f} um2 combinational, "
              f"critical path {netlist.critical_path_ps():5.0f} ps, "
              f"depth {netlist.logic_depth()} levels")

    # --- functional spot-check -------------------------------------------
    optimal = build_opt_encoder()
    model = CostModel.fixed()
    checked = 0
    for burst in random_bursts(count=25, seed=42):
        hw_flags = netlist_invert_flags(optimal, burst)
        reference = solve(burst, model)
        hw_cost = EncodedBurst(burst=burst, invert_flags=hw_flags).cost(model)
        assert hw_cost == reference.total_cost, "hardware is suboptimal!"
        checked += 1
    print(f"\nhardware encoder optimal on {checked}/{checked} random bursts")

    # --- Table I -----------------------------------------------------------
    print("\nsynthesis estimates (paper Table I):")
    print(table_one_markdown())
    results = table_one()
    q3 = results["dbi-opt-q3"]
    fixed = results["dbi-opt-fixed"]
    print(f"\n3-bit vs fixed coefficients: "
          f"{q3.area_um2 / fixed.area_um2:.1f}x area, "
          f"{q3.energy_per_burst_j / fixed.energy_per_burst_j:.1f}x energy "
          f"per burst, {q3.burst_rate_hz / 1e9:.2f} vs "
          f"{fixed.burst_rate_hz / 1e9:.2f} GHz burst rate")
    print("(paper: 4.4x area, 10.6x energy, 0.5 vs 1.5 GHz)")


if __name__ == "__main__":
    main()
