#!/usr/bin/env python
"""Beyond the paper: jointly optimal DBI across burst boundaries.

The paper encodes each burst against an idle-high boundary.  A memory
controller writing back-to-back bursts can do better: the trellis extends
across the whole write queue.  This example measures what window size a
streaming encoder needs to capture (almost) all of that benefit.

Run with::

    python examples/streaming_writes.py
"""

from repro.core.costs import CostModel
from repro.core.streaming import solve_stream, windowed_stream_cost
from repro.sim.report import markdown_table
from repro.workloads.traces import gpu_frame_trace

STREAM_BYTES = 4096
WINDOWS = (1, 2, 4, 8, 16, 32)


def main() -> None:
    model = CostModel.fixed()
    data = list(gpu_frame_trace(STREAM_BYTES, seed=6))

    __, optimum = solve_stream(data, model)
    print(f"stream: {STREAM_BYTES} bytes of GPU-frame-like traffic")
    print(f"joint optimum over the whole stream: cost {optimum:.0f}\n")

    rows = []
    for window in WINDOWS:
        cost = windowed_stream_cost(data, model, window=window)
        overhead = 100.0 * (cost / optimum - 1.0)
        rows.append([window, f"{cost:.0f}", f"{overhead:.3f}%"])
    print(markdown_table(
        ["lookahead window (bytes)", "total cost", "overhead vs joint optimum"],
        rows))

    print("\nwindow=1 is the greedy per-byte heuristic; a one-burst (8-byte)")
    print("window already sits within a fraction of a percent of the joint")
    print("optimum — the paper's per-burst granularity loses almost nothing.")


if __name__ == "__main__":
    main()
