#!/usr/bin/env python
"""Reproduce the paper's Fig. 2: optimal DBI encoding as a shortest path.

Prints the trellis with its edge weights for the paper's example burst,
solves it, and lists the Pareto-optimal encodings that varying the
alpha/beta ratio can reach.

Run with::

    python examples/fig2_shortest_path.py
"""

from repro import Burst, CostModel, PAPER_FIG2_BURST, solve
from repro.baselines import DbiAc, DbiDc
from repro.core.pareto import enumerate_encodings, pareto_front, supported_points
from repro.core.schemes import EncodedBurst
from repro.core.trellis import TrellisGraph, flags_from_path, solve_on_graph


def main() -> None:
    burst = PAPER_FIG2_BURST
    model = CostModel.fixed()  # the figure's alpha = beta = 1 example

    # --- the explicit trellis (paper Fig. 2) ----------------------------
    graph = TrellisGraph(burst=burst, model=model)
    print(graph.render())

    # --- shortest path, two independent ways ----------------------------
    solution = solve(burst, model)
    path, cost = solve_on_graph(graph)
    assert flags_from_path(path) == solution.invert_flags
    assert cost == solution.total_cost
    encoded = EncodedBurst(burst=burst, invert_flags=solution.invert_flags)
    transitions, zeros = encoded.activity()
    print(f"\noptimal encoding: cost={solution.total_cost:.0f} "
          f"(zeros={zeros}, transitions={transitions})")
    print("   " + " ".join(f"{w:09b}" for w in encoded.words))

    # --- the conventional schemes for comparison ------------------------
    for name, scheme in (("DBI DC", DbiDc()), ("DBI AC", DbiAc())):
        enc = scheme.encode(burst)
        t, z = enc.activity()
        print(f"{name}: zeros={z}, transitions={t}, cost={enc.cost(model):.0f}")

    # --- the Pareto frontier (the figure's five labelled points) --------
    frontier = pareto_front(enumerate_encodings(burst))
    print("\nPareto-optimal (zeros, transitions) trade-offs:")
    supported = set(supported_points(burst))
    for point in frontier:
        reachable = "reachable by OPT" if point.point in supported else "unsupported"
        print(f"  zeros={point.zeros:2d} transitions={point.transitions:2d}  ({reachable})")


if __name__ == "__main__":
    main()
