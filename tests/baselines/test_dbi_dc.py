"""Unit tests for DBI DC."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import DbiDc, should_invert_dc
from repro.core.bitops import zeros_in_byte, zeros_in_word
from repro.core.burst import Burst

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=16).map(Burst)
bytes_ = st.integers(min_value=0, max_value=255)


class TestDecision:
    def test_threshold_boundary(self):
        # Exactly 4 zeros: keep raw (JEDEC: "4 or fewer" stays raw).
        assert not should_invert_dc(0b00001111)
        # 5 zeros: invert.
        assert should_invert_dc(0b00000111)

    def test_extremes(self):
        assert should_invert_dc(0x00)
        assert not should_invert_dc(0xFF)

    @given(bytes_)
    def test_decision_matches_zero_count(self, byte):
        assert should_invert_dc(byte) == (zeros_in_byte(byte) >= 5)


class TestScheme:
    @given(bursts)
    def test_stateless_per_byte(self, burst):
        """Decisions are independent of position and neighbours."""
        encoded = DbiDc().encode(burst)
        for byte, flag in zip(burst, encoded.invert_flags):
            assert flag == should_invert_dc(byte)

    @given(bursts)
    def test_prev_word_irrelevant(self, burst):
        a = DbiDc().encode(burst, prev_word=0x000)
        b = DbiDc().encode(burst, prev_word=0x1FF)
        assert a.invert_flags == b.invert_flags

    @given(bursts)
    def test_word_zero_guarantee(self, burst):
        """No transmitted word carries more than 4 zeros."""
        for word in DbiDc().encode(burst).words:
            assert zeros_in_word(word) <= 4

    @given(bursts)
    def test_minimises_zeros_globally(self, burst):
        """DBI DC achieves the minimum possible zero count (per-byte
        minimisation is global because zeros are position-independent)."""
        encoded = DbiDc().encode(burst)
        best = sum(min(zeros_in_byte(byte), 8 - zeros_in_byte(byte) + 1)
                   for byte in burst)
        assert encoded.zeros() == best

    def test_worst_case_burst(self):
        encoded = DbiDc().encode(Burst([0x00] * 8))
        # Each all-zero byte becomes all-ones data + a DBI zero.
        assert encoded.zeros() == 8

    @given(bursts)
    def test_round_trip(self, burst):
        DbiDc().encode(burst).verify()
