"""Unit tests for the RAW (unencoded) baseline."""

from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import Raw
from repro.core.burst import Burst

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=16).map(Burst)


@given(bursts)
def test_never_inverts(burst):
    assert Raw().encode(burst).invert_flags == (False,) * len(burst)


@given(bursts)
def test_dbi_lane_held_high(burst):
    for word in Raw().encode(burst).words:
        assert word & 0x100


@given(bursts)
def test_zeros_match_payload(burst):
    """RAW adds no zeros beyond the payload's own zero bits."""
    assert Raw().encode(burst).zeros() == burst.zeros()


@given(bursts)
def test_dbi_lane_never_toggles(burst):
    """With the DBI lane pinned high, transitions come only from data."""
    encoded = Raw().encode(burst)
    data_transitions = 0
    prev = 0xFF
    for byte in burst:
        data_transitions += bin(prev ^ byte).count("1")
        prev = byte
    assert encoded.transitions() == data_transitions


def test_round_trip():
    burst = Burst(range(8))
    Raw().encode(burst).verify()
