"""Unit tests for the greedy weighted heuristic (Chang-style)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DbiAc, DbiDc, DbiGreedyWeighted
from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=16).map(Burst)


def test_requires_cost_model():
    with pytest.raises(TypeError):
        DbiGreedyWeighted(0.5)


@given(bursts)
def test_dc_only_reduces_to_dbi_dc(burst):
    """With alpha = 0 the greedy rule degenerates to the DC threshold."""
    model = CostModel.dc_only()
    greedy = DbiGreedyWeighted(model).encode(burst)
    dc = DbiDc().encode(burst)
    assert greedy.cost(model) == dc.cost(model)


@given(bursts)
def test_ac_only_reduces_to_dbi_ac(burst):
    """With beta = 0 the greedy rule IS the DBI AC rule."""
    model = CostModel.ac_only()
    assert (DbiGreedyWeighted(model).encode(burst).invert_flags
            == DbiAc().encode(burst).invert_flags)


@settings(max_examples=100, deadline=None)
@given(bursts)
def test_never_beats_optimal(burst):
    model = CostModel.fixed()
    greedy = DbiGreedyWeighted(model).encode(burst).cost(model)
    optimal = DbiOptimal(model).encode(burst).cost(model)
    assert greedy >= optimal


def test_strictly_suboptimal_somewhere():
    """Greedy is genuinely weaker: on the paper's example burst the
    shortest path beats the greedy decision sequence."""
    from repro.core.burst import PAPER_FIG2_BURST
    model = CostModel.fixed()
    greedy = DbiGreedyWeighted(model).encode(PAPER_FIG2_BURST).cost(model)
    optimal = DbiOptimal(model).encode(PAPER_FIG2_BURST).cost(model)
    assert optimal == 52
    assert greedy >= optimal


def test_average_gap_on_random_traffic(medium_random_bursts):
    """On random bursts the greedy heuristic pays a measurable average
    penalty versus the optimum (the value of global search)."""
    model = CostModel.fixed()
    greedy_scheme = DbiGreedyWeighted(model)
    optimal_scheme = DbiOptimal(model)
    greedy_total = sum(greedy_scheme.encode(b).cost(model)
                       for b in medium_random_bursts)
    optimal_total = sum(optimal_scheme.encode(b).cost(model)
                        for b in medium_random_bursts)
    assert greedy_total > optimal_total


@given(bursts)
def test_round_trip(burst):
    DbiGreedyWeighted(CostModel.fixed()).encode(burst).verify()
