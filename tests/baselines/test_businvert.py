"""Unit tests for classic Stan-Burleson bus-invert."""

from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import BusInvert, DbiAc, should_invert_businvert
from repro.core.bitops import ALL_ONES_WORD
from repro.core.burst import Burst

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=16).map(Burst)
bytes_ = st.integers(min_value=0, max_value=255)
words = st.integers(min_value=0, max_value=0x1FF)


class TestDecision:
    def test_majority_toggle_inverts(self):
        assert should_invert_businvert(0x00, 0x1FF)   # 8 of 8 toggle

    def test_half_toggle_keeps_raw(self):
        assert not should_invert_businvert(0xF0, 0x1FF)  # 4 of 8 toggle

    @given(bytes_, words)
    def test_threshold_is_data_lanes_only(self, byte, prev):
        toggles = bin((prev ^ byte) & 0xFF).count("1")
        assert should_invert_businvert(byte, prev) == (toggles > 4)


class TestScheme:
    @given(bursts)
    def test_data_lane_toggles_bounded(self, burst):
        """The classic guarantee: at most 4 data-lane toggles per beat
        (the indicator lane is extra)."""
        encoded = BusInvert().encode(burst)
        prev = 0xFF
        for word in encoded.words:
            data = word & 0xFF
            assert bin(prev ^ data).count("1") <= 4
            prev = data

    @given(bursts)
    def test_never_beats_ac_on_nine_lanes(self, burst):
        """Ignoring the DBI-lane toggle can only hurt on the real bus."""
        bi = BusInvert().encode(burst).transitions()
        ac = DbiAc().encode(burst).transitions()
        assert ac <= bi

    def test_diverges_from_ac(self):
        """A 5-toggle byte with a pending DBI-lane toggle splits the two
        rules: bus-invert inverts on data majority, DBI AC accounts for
        the DBI lane and may not."""
        # prev word: data 0xFF, DBI low (inverted state).
        prev = 0x0FF ^ 0x0FF  # 0x000: data 0x00, DBI 0
        burst = Burst([0b00011111])  # 3 toggles from 0x00 raw, 5 inverted
        bi = BusInvert().encode(burst, prev_word=prev).invert_flags
        ac = DbiAc().encode(burst, prev_word=prev).invert_flags
        # bus-invert: 5 of 8 data toggles raw? popcount(0x00^0x1F)=5 -> invert
        assert bi == (True,)
        # DBI AC: raw costs 5 toggles + DBI 0->1 = 6; inverted: 3 + 0 = 3.
        assert ac == (True,)
        # They agree here; find a genuine divergence nearby.
        burst2 = Burst([0b00001111])
        bi2 = BusInvert().encode(burst2, prev_word=prev).invert_flags
        ac2 = DbiAc().encode(burst2, prev_word=prev).invert_flags
        # data toggles raw = 4 -> bus-invert keeps raw.
        assert bi2 == (False,)
        # AC: raw = 4 + 1 (DBI 0->1) = 5; inverted = 4 + 0 = 4 -> invert.
        assert ac2 == (True,)

    @given(bursts)
    def test_round_trip(self, burst):
        BusInvert().encode(burst).verify()
