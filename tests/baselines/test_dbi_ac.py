"""Unit tests for DBI AC."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import DbiAc, should_invert_ac
from repro.core.bitops import ALL_ONES_WORD, make_word, transitions
from repro.core.burst import Burst

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=16).map(Burst)
words = st.integers(min_value=0, max_value=0x1FF)
bytes_ = st.integers(min_value=0, max_value=255)


class TestDecision:
    def test_idle_bus_inverts_zero_byte(self):
        # 0x00 raw from idle-high: 8 toggles; inverted: 1 (DBI lane only).
        assert should_invert_ac(0x00, ALL_ONES_WORD)

    def test_idle_bus_keeps_ones_byte(self):
        assert not should_invert_ac(0xFF, ALL_ONES_WORD)

    @given(bytes_, words)
    def test_decision_minimises_step_transitions(self, byte, prev):
        inverted = should_invert_ac(byte, prev)
        chosen = transitions(prev, make_word(byte, inverted))
        other = transitions(prev, make_word(byte, not inverted))
        assert chosen <= other

    @given(bytes_, words)
    def test_tie_keeps_raw(self, byte, prev):
        raw_cost = transitions(prev, make_word(byte, False))
        inv_cost = transitions(prev, make_word(byte, True))
        if raw_cost == inv_cost:
            assert not should_invert_ac(byte, prev)

    @given(bytes_)
    def test_idle_boundary_matches_dc_decision(self, byte):
        """Paper §II consequence: from the all-ones bus, the AC decision
        coincides with the DC decision for the first byte."""
        from repro.baselines import should_invert_dc
        assert should_invert_ac(byte, ALL_ONES_WORD) == should_invert_dc(byte)


class TestScheme:
    @given(bursts, words)
    def test_greedy_chain_consistency(self, burst, prev):
        """Re-deriving each decision from the transmitted prefix matches."""
        encoded = DbiAc().encode(burst, prev_word=prev)
        state = prev
        for byte, flag in zip(burst, encoded.invert_flags):
            assert flag == should_invert_ac(byte, state)
            state = make_word(byte, flag)

    @given(bursts)
    def test_transitions_never_exceed_raw(self, burst):
        from repro.baselines import Raw
        ac = DbiAc().encode(burst).transitions()
        raw = Raw().encode(burst).transitions()
        assert ac <= raw

    def test_checkerboard_collapses_to_dbi_toggles(self):
        """0x55/0xAA alternation: AC replaces 8 data toggles per beat by a
        single DBI-lane toggle."""
        burst = Burst([0x55, 0xAA] * 4)
        encoded = DbiAc().encode(burst)
        # First beat pays for entering the pattern; after that 1 toggle/beat.
        assert encoded.transitions() <= 3 + 1 * (len(burst) - 1) + 8

    @given(bursts)
    def test_round_trip(self, burst):
        DbiAc().encode(burst).verify()
