"""Unit tests for DBI ACDC (Hollis's mode-switching scheme)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import DbiAc, DbiAcDc, should_invert_dc
from repro.core.bitops import ALL_ONES_WORD, make_word
from repro.core.burst import Burst

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=16).map(Burst)
words = st.integers(min_value=0, max_value=0x1FF)


@given(bursts)
def test_first_byte_uses_dc_rule(burst):
    encoded = DbiAcDc().encode(burst)
    assert encoded.invert_flags[0] == should_invert_dc(burst[0])


@given(bursts, words)
def test_first_byte_ignores_bus_state(burst, prev):
    """Unlike AC, the ACDC first-byte decision is boundary-independent."""
    encoded = DbiAcDc().encode(burst, prev_word=prev)
    assert encoded.invert_flags[0] == should_invert_dc(burst[0])


@given(bursts)
def test_equals_ac_from_idle_boundary(burst):
    """Paper §II: identical to DBI AC under the all-ones boundary."""
    assert (DbiAcDc().encode(burst).invert_flags
            == DbiAc().encode(burst).invert_flags)


def test_differs_from_ac_for_other_boundaries():
    """The equivalence is a boundary-condition artefact: from a low bus
    state the two schemes genuinely diverge."""
    burst = Burst([0x0F] * 2)
    prev = 0x000  # all lanes low, DBI low
    ac = DbiAc().encode(burst, prev_word=prev).invert_flags
    acdc = DbiAcDc().encode(burst, prev_word=prev).invert_flags
    assert ac != acdc


@given(bursts, words)
def test_tail_follows_ac_chain(burst, prev):
    """Bytes after the first follow the greedy AC rule given the actual
    transmitted prefix."""
    from repro.baselines import should_invert_ac
    encoded = DbiAcDc().encode(burst, prev_word=prev)
    state = make_word(burst[0], encoded.invert_flags[0])
    for byte, flag in zip(burst.data[1:], encoded.invert_flags[1:]):
        assert flag == should_invert_ac(byte, state)
        state = make_word(byte, flag)


@given(bursts)
def test_round_trip(burst):
    DbiAcDc().encode(burst).verify()
