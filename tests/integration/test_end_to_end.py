"""End-to-end integration tests across subpackages."""

import pytest

from repro import (
    Burst,
    CostModel,
    DbiAc,
    DbiDc,
    DbiOptimal,
    Raw,
    available_schemes,
    chunk_bytes,
    get_scheme,
)
from repro.hw.activity import netlist_invert_flags
from repro.hw.encoders import build_opt_encoder
from repro.phy.bus import MemoryBus
from repro.phy.devices import gddr5x
from repro.phy.lane import LaneGroup
from repro.phy.power import GBPS, PICOFARAD
from repro.workloads.traces import gpu_frame_trace


class TestBusVsDirectEncoding:
    def test_lane_counters_agree_with_scheme_activity(self):
        """Wire-level lane counters == word-level scheme tallies."""
        payload = gpu_frame_trace(1024, seed=3)
        bus = MemoryBus(DbiDc, byte_lanes=1, burst_length=8)
        stats = bus.write(payload)
        group_zeros = bus.lanes[0].group.total_zero_beats
        group_transitions = bus.lanes[0].group.total_transitions
        assert stats.zeros == group_zeros
        assert stats.transitions == group_transitions

    def test_bus_stream_equals_chained_scheme(self):
        payload = list(range(64))
        bus = MemoryBus(DbiAc, byte_lanes=1, burst_length=8)
        bus_stats = bus.write(bytes(payload))
        scheme = DbiAc()
        encoded = scheme.encode_stream(chunk_bytes(payload, 8))
        zeros = sum(e.zeros() for e in encoded)
        transitions_total = 0
        prev = 0x1FF
        for e in encoded:
            transitions_total += e.transitions()
            prev = e.last_word()
        assert bus_stats.zeros == zeros
        assert bus_stats.transitions == transitions_total


class TestHardwareSoftwareAgreement:
    def test_netlist_vs_scheme_on_trace_data(self):
        """The gate-level OPT encoder agrees with the library encoder on
        realistic (non-uniform) traffic, not just random vectors."""
        model = CostModel.fixed()
        scheme = DbiOptimal(model)
        netlist = build_opt_encoder(8)
        payload = gpu_frame_trace(512, seed=9)
        for burst in chunk_bytes(list(payload), 8)[:32]:
            hw_flags = netlist_invert_flags(netlist, burst)
            sw_cost = scheme.encode(burst).cost(model)
            from repro.core.schemes import EncodedBurst
            hw_cost = EncodedBurst(burst=burst, invert_flags=hw_flags).cost(model)
            assert hw_cost == sw_cost


class TestPhysicalConsistency:
    def test_cost_model_ranking_matches_energy_ranking(self):
        """Minimising the abstract cost with physical coefficients is the
        same as minimising joules: rankings must agree on every burst."""
        profile = gddr5x()
        energy_model = profile.energy_model(data_rate_hz=12 * GBPS)
        cost_model = energy_model.cost_model()
        schemes = [Raw(), DbiDc(), DbiAc(), DbiOptimal(cost_model)]
        burst = Burst([0x12, 0x00, 0xFE, 0x77, 0x3C, 0x81, 0x55, 0xAA])
        costs = []
        energies = []
        for scheme in schemes:
            encoded = scheme.encode(burst)
            costs.append(encoded.cost(cost_model))
            energies.append(energy_model.encoded_burst_energy(encoded))
        assert sorted(range(4), key=costs.__getitem__) == \
            sorted(range(4), key=energies.__getitem__)
        # And the abstract cost *is* the energy for this coefficient choice.
        for cost, energy in zip(costs, energies):
            assert cost == pytest.approx(energy)

    def test_dbi_dc_bounds_sso_on_full_channel(self):
        """Across a full x32 channel, DBI DC caps per-lane-group SSO at 5."""
        payload = bytes([0x00, 0xFF] * 256)
        bus = MemoryBus(DbiDc, byte_lanes=4, burst_length=8)
        bus.write(payload)
        for lane in bus.lanes:
            transitions = [l.transitions for l in lane.group.lanes]
            assert max(transitions) <= lane.stats.beats


class TestRegistryCompleteness:
    def test_every_registered_scheme_is_evaluable(self, small_random_bursts):
        from repro.sim.runner import evaluate
        result = evaluate(available_schemes(), small_random_bursts[:10])
        assert set(result.schemes()) == set(available_schemes())

    def test_every_scheme_round_trips_on_patterns(self):
        from repro.workloads.patterns import pattern_suite
        for name in available_schemes():
            scheme = get_scheme(name)
            for burst in pattern_suite(8):
                scheme.encode(burst).verify()
