"""Regenerate the golden figure snapshots.

Run from the repository root after an *intentional* change to the figure
pipelines::

    PYTHONPATH=src python tests/integration/golden/regenerate.py

The snapshots pin the exact numbers of a small, seeded Fig. 3 alpha
sweep and Fig. 8 load sweep; ``tests/integration/test_golden_figures.py``
asserts that both backends keep reproducing them.  Keep populations and
sweep grids in sync with that module (it imports the constants below).
"""

from __future__ import annotations

import json
import pathlib

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

#: Population / grid parameters shared with the regression test.
POPULATION_COUNT = 400
POPULATION_SEED = 2018
ALPHA_POINTS = 11
LOAD_RATES_GBPS = (2, 6, 10, 14, 18)
LOADS_FARADS = (1e-12, 3e-12, 8e-12)


def _population():
    from repro.workloads.random_data import random_bursts

    return random_bursts(count=POPULATION_COUNT, seed=POPULATION_SEED)


def fig3_snapshot(backend=None):
    from repro.sim.sweep import alpha_sweep

    sweep = alpha_sweep(_population(), points=ALPHA_POINTS,
                        include_fixed=True, backend=backend)
    return {"ac_costs": sweep.ac_costs, "series": sweep.series}


def fig8_snapshot(backend=None):
    from repro.phy.power import GBPS
    from repro.sim.sweep import load_sweep

    sweep = load_sweep(_population(),
                       c_loads_farads=list(LOADS_FARADS),
                       data_rates_hz=[g * GBPS for g in LOAD_RATES_GBPS],
                       backend=backend)
    return {
        "data_rates_gbps": list(LOAD_RATES_GBPS),
        # JSON keys must be strings; use the repr of the load in farads.
        "normalized": {repr(load): series
                       for load, series in sweep.normalized.items()},
    }


def main() -> None:
    for name, build in (("fig3_alpha_sweep", fig3_snapshot),
                        ("fig8_load_sweep", fig8_snapshot)):
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(build(), indent=1) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
