"""Integration shape checks for every figure (small populations).

The full-resolution regenerations live in ``benchmarks/``; these tests
assert the same qualitative landmarks quickly enough for the unit suite.
"""

import pytest

from repro.analysis.crossover import (
    advantage_region,
    elementwise_min,
    interpolated_crossing,
    peak_advantage,
)
from repro.phy.pod import pod135
from repro.phy.power import GBPS, PICOFARAD
from repro.sim.sweep import alpha_sweep, data_rate_sweep, load_sweep
from repro.workloads.random_data import random_bursts


@pytest.fixture(scope="module")
def population():
    return random_bursts(count=600, seed=2018)


@pytest.fixture(scope="module")
def fig34(population):
    return alpha_sweep(population, points=21, include_fixed=True)


class TestFig3Shape:
    def test_raw_flat_near_32(self, fig34):
        """Uniform random bursts cost ~32 regardless of the split."""
        for value in fig34.series["raw"]:
            assert value == pytest.approx(32.0, abs=0.8)

    def test_dc_increasing_ac_decreasing(self, fig34):
        dc = fig34.series["dbi-dc"]
        ac = fig34.series["dbi-ac"]
        assert dc[0] < dc[-1]
        assert ac[0] > ac[-1]

    def test_ac_dc_crossover_near_056(self, fig34):
        crossover = interpolated_crossing(fig34.ac_costs,
                                          fig34.series["dbi-ac"],
                                          fig34.series["dbi-dc"])
        assert crossover == pytest.approx(0.56, abs=0.05)

    def test_opt_peak_gain_5_to_8_percent(self, fig34):
        best = elementwise_min(fig34.series["dbi-dc"], fig34.series["dbi-ac"])
        __, gain = peak_advantage(fig34.ac_costs, fig34.series["dbi-opt"], best)
        assert 0.05 < gain < 0.08

    def test_dc_near_opt_below_015(self, fig34):
        """'DBI DC works almost as well as the optimum encoding until the
        AC cost reaches 0.15.'"""
        for ac_cost, dc, opt in zip(fig34.ac_costs, fig34.series["dbi-dc"],
                                    fig34.series["dbi-opt"]):
            if ac_cost <= 0.15:
                assert dc / opt < 1.01

    def test_ac_near_opt_above_085(self, fig34):
        for ac_cost, ac, opt in zip(fig34.ac_costs, fig34.series["dbi-ac"],
                                    fig34.series["dbi-opt"]):
            if ac_cost >= 0.85:
                assert ac / opt < 1.02

    def test_dc_and_ac_worse_than_raw_at_wrong_extremes(self, fig34):
        """'Both DBI AC and DBI DC perform worse than unencoded (RAW)
        data, when used together with high DC cost or AC cost.'"""
        assert fig34.series["dbi-dc"][-1] > fig34.series["raw"][-1]
        assert fig34.series["dbi-ac"][0] > fig34.series["raw"][0]


class TestFig4Shape:
    def test_fixed_close_to_opt_in_core_region(self, fig34):
        for ac_cost, fixed, opt in zip(fig34.ac_costs,
                                       fig34.series["dbi-opt-fixed"],
                                       fig34.series["dbi-opt"]):
            if 0.3 <= ac_cost <= 0.7:
                assert fixed / opt < 1.02

    def test_fixed_beats_conventional_in_paper_region(self, fig34):
        """'The encoding with fixed coefficients performs better than
        previous scheme from an AC cost of 0.23 to 0.79.'"""
        best = elementwise_min(fig34.series["dbi-dc"], fig34.series["dbi-ac"])
        region = advantage_region(fig34.ac_costs,
                                  fig34.series["dbi-opt-fixed"], best)
        assert region is not None
        start, end = region
        assert start <= 0.30
        assert end >= 0.70

    def test_fixed_peak_gain_close_to_opt(self, fig34):
        """Paper: 6.75% (OPT) vs 6.58% (Fixed) — nearly identical."""
        best = elementwise_min(fig34.series["dbi-dc"], fig34.series["dbi-ac"])
        __, opt_gain = peak_advantage(fig34.ac_costs,
                                      fig34.series["dbi-opt"], best)
        __, fixed_gain = peak_advantage(fig34.ac_costs,
                                        fig34.series["dbi-opt-fixed"], best)
        assert fixed_gain > 0.9 * opt_gain


class TestFig7Shape:
    @pytest.fixture(scope="class")
    def sweep(self, population):
        rates = [GBPS * g for g in (1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 18, 20)]
        return data_rate_sweep(population[:300], interface=pod135(),
                               c_load_farads=3 * PICOFARAD,
                               data_rates_hz=rates)

    def test_dc_best_at_low_rates(self, sweep):
        """'DBI DC performs better than DBI OPT (Fixed) until 3.8 Gbps.'"""
        assert sweep.normalized["dbi-dc"][0] < sweep.normalized["dbi-opt-fixed"][0]

    def test_fixed_wins_at_high_rates(self, sweep):
        index = sweep.data_rates_hz.index(14 * GBPS)
        assert (sweep.normalized["dbi-opt-fixed"][index]
                < sweep.normalized["dbi-dc"][index])

    def test_ac_never_beats_fixed_below_20gbps(self, sweep):
        """'DBI AC would require a significantly higher frequency than
        20 Gbps to perform better than this scheme.'"""
        for ac, fixed in zip(sweep.normalized["dbi-ac"],
                             sweep.normalized["dbi-opt-fixed"]):
            assert fixed <= ac

    def test_opt_is_lower_envelope(self, sweep):
        for index in range(len(sweep.data_rates_hz)):
            others = [sweep.normalized[name][index]
                      for name in ("raw", "dbi-dc", "dbi-ac",
                                   "dbi-opt-fixed")]
            assert sweep.normalized["dbi-opt"][index] <= min(others) + 1e-9

    def test_crossover_dc_fixed_near_3_8gbps(self, population):
        rates = [0.5 * GBPS * step for step in range(2, 21)]  # 1..10 Gbps
        sweep = data_rate_sweep(population[:300], data_rates_hz=rates)
        gbps = [rate / 1e9 for rate in rates]
        crossover = interpolated_crossing(gbps,
                                          sweep.normalized["dbi-opt-fixed"],
                                          sweep.normalized["dbi-dc"])
        assert crossover == pytest.approx(3.8, abs=1.0)


class TestFig8Shape:
    @pytest.fixture(scope="class")
    def sweep(self, population):
        rates = [GBPS * g for g in (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)]
        return load_sweep(population[:300],
                          c_loads_farads=[1e-12, 3e-12, 8e-12],
                          data_rates_hz=rates)

    def test_meaningful_savings_at_3pf(self, sweep):
        __, best = sweep.best_gain(3e-12)
        assert best < 0.97  # >= 3% saving including encoder energy

    def test_higher_load_lowers_best_rate(self, sweep):
        """'Higher capacitive load reduces the frequency where the highest
        reduction of energy is achieved.'"""
        rate_3pf, __ = sweep.best_gain(3e-12)
        rate_8pf, __ = sweep.best_gain(8e-12)
        assert rate_8pf < rate_3pf

    def test_light_load_weakest_case(self, sweep):
        __, best_1pf = sweep.best_gain(1e-12)
        __, best_3pf = sweep.best_gain(3e-12)
        assert best_3pf < best_1pf
