"""Golden-file regression tests for the figure pipelines.

The snapshots under ``golden/`` pin the exact summary numbers of a
small, seeded Fig. 3 alpha sweep and Fig. 8 load sweep.  Both execution
backends must keep reproducing them — this catches silent numerical
drift in the encoders, the sweep harness, or the physical energy model,
and doubles as an end-to-end backend-equivalence check.

After an *intentional* pipeline change, regenerate with::

    PYTHONPATH=src python tests/integration/golden/regenerate.py
"""

import importlib.util
import json
import pathlib

import pytest

# The snapshots are generated from NumPy-backed workload populations, so
# there is nothing to regress against in a NumPy-free environment.
pytest.importorskip("numpy", exc_type=ImportError)

from repro.core.vectorized import available_backends

_REGENERATE = pathlib.Path(__file__).resolve().parent / "golden" / "regenerate.py"
_spec = importlib.util.spec_from_file_location("golden_regenerate", _REGENERATE)
golden_regenerate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_regenerate)

GOLDEN_DIR = golden_regenerate.GOLDEN_DIR
fig3_snapshot = golden_regenerate.fig3_snapshot
fig8_snapshot = golden_regenerate.fig8_snapshot


def _load(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    if not path.exists():  # pragma: no cover - repo integrity
        pytest.fail(f"golden file missing: {path}; run golden/regenerate.py")
    return json.loads(path.read_text())


@pytest.mark.parametrize("backend", available_backends())
class TestGoldenFigures:
    def test_fig3_alpha_sweep(self, backend):
        golden = _load("fig3_alpha_sweep")
        snapshot = fig3_snapshot(backend=backend)
        assert snapshot["ac_costs"] == golden["ac_costs"]
        assert set(snapshot["series"]) == set(golden["series"])
        for name, series in golden["series"].items():
            assert snapshot["series"][name] == pytest.approx(series,
                                                             rel=1e-12), name

    def test_fig8_load_sweep(self, backend):
        golden = _load("fig8_load_sweep")
        snapshot = fig8_snapshot(backend=backend)
        assert snapshot["data_rates_gbps"] == golden["data_rates_gbps"]
        assert set(snapshot["normalized"]) == set(golden["normalized"])
        for load, series in golden["normalized"].items():
            assert snapshot["normalized"][load] == pytest.approx(series,
                                                                 rel=1e-12), load
