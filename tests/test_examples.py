"""Smoke tests: every example script runs to completion.

The heavyweight sweep examples are exercised with the library-level tests
and benchmarks; here each example script is executed as a real subprocess
(the way users run them) and its output spot-checked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 6  # quickstart + >= 5 scenario examples


def test_quickstart():
    out = run_example("quickstart.py")
    assert "dbi-opt" in out
    assert "52.0" in out  # the paper's optimal cost


def test_fig2_shortest_path():
    out = run_example("fig2_shortest_path.py")
    assert "cost=52" in out
    assert "Pareto-optimal" in out


def test_streaming_writes():
    out = run_example("streaming_writes.py")
    assert "joint optimum" in out
    assert "overhead" in out


def test_ddr4_write_controller():
    out = run_example("ddr4_write_controller.py")
    assert "DDR4" in out
    assert "lookahead window" in out


def test_sso_noise():
    out = run_example("sso_noise.py")
    assert "max lanes/beat" in out


def test_hardware_cost():
    out = run_example("hardware_cost.py")
    assert "optimal on" in out
    assert "DBI OPT (Fixed Coeff.)" in out
