"""Unit and property tests for the DBI granularity extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.vectorized import HAVE_NUMPY
from repro.extensions.granularity import (
    GroupedDbiOptimal,
    VALID_GROUP_SIZES,
    granularity_table,
    split_groups,
)

BACKENDS_HERE = ["reference"] + (["vector"] if HAVE_NUMPY else [])
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="vector backend needs NumPy")

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=12).map(Burst)
models = st.floats(min_value=0.05, max_value=0.95).map(
    CostModel.from_ac_fraction)


class TestSplitGroups:
    def test_nibbles(self):
        assert split_groups(0xF0, 4) == [0x0, 0xF]

    def test_pairs(self):
        assert split_groups(0b11_01_00_10, 2) == [0b10, 0b00, 0b01, 0b11]

    def test_bits(self):
        assert split_groups(0b10000001, 1) == [1, 0, 0, 0, 0, 0, 0, 1]

    def test_whole_byte(self):
        assert split_groups(0xA7, 8) == [0xA7]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            split_groups(0, 3)

    @given(st.integers(min_value=0, max_value=255),
           st.sampled_from(VALID_GROUP_SIZES))
    def test_groups_reassemble(self, byte, group_size):
        groups = split_groups(byte, group_size)
        value = 0
        for index, group in enumerate(groups):
            value |= group << (index * group_size)
        assert value == byte


class TestGroupedEncoder:
    def test_validation(self):
        with pytest.raises(ValueError):
            GroupedDbiOptimal(CostModel.fixed(), group_size=5)
        with pytest.raises(TypeError):
            GroupedDbiOptimal("not a model")

    @settings(max_examples=60, deadline=None)
    @given(bursts, models)
    def test_group8_matches_paper_encoder(self, burst, model):
        """group_size = 8 must reproduce the paper's optimum exactly."""
        grouped = GroupedDbiOptimal(model, group_size=8).encode(burst)
        reference = DbiOptimal(model).encode(burst)
        transitions, zeros = reference.activity()
        assert grouped.zeros == zeros
        assert grouped.transitions == transitions
        assert grouped.cost(model) == pytest.approx(reference.cost(model))

    @settings(max_examples=40, deadline=None)
    @given(bursts)
    def test_structure(self, burst):
        encoding = GroupedDbiOptimal(CostModel.fixed(), group_size=4).encode(burst)
        assert len(encoding.invert_flags) == len(burst)
        assert all(len(flags) == 2 for flags in encoding.invert_flags)
        assert encoding.extra_lines == 2

    @settings(max_examples=30, deadline=None)
    @given(bursts, models)
    def test_finer_groups_never_increase_data_lane_optimality(self, burst, model):
        """Counting only honest activity (which includes the extra DBI
        lanes), each group's trellis is optimal for its own lane set;
        verify against brute force on tiny groups."""
        scheme = GroupedDbiOptimal(model, group_size=4)
        encoding = scheme.encode(burst)
        # Exhaustive check per group lane for short bursts.
        if len(burst) <= 4:
            from itertools import product
            for lane in range(2):
                stream = [split_groups(byte, 4)[lane] for byte in burst]
                best = min(
                    sum_cost
                    for flags in product((False, True), repeat=len(stream))
                    for sum_cost in [_stream_cost(scheme, stream, flags)]
                )
                achieved = _stream_cost(
                    scheme, stream,
                    [flags[lane] for flags in encoding.invert_flags])
                assert achieved == pytest.approx(best)

    def test_all_zero_burst(self):
        """Every group inverts: zeros collapse to one per group per beat."""
        encoding = GroupedDbiOptimal(CostModel.dc_only(), group_size=4).encode(
            Burst([0x00] * 4))
        assert all(all(flags) for flags in encoding.invert_flags)
        assert encoding.zeros == 2 * 4  # one DBI zero per group per beat


def _stream_cost(scheme, stream, flags):
    idle = (1 << (scheme.group_size + 1)) - 1
    cost = 0.0
    last = idle
    for value, flag in zip(stream, flags):
        word = scheme._group_word(value, flag)
        cost += scheme._word_cost(last, word)
        last = word
    return cost


class TestBatchBackendParity:
    """The batch Viterbi kernels must be bit-identical to the scalar
    reference: same invert flags (tie-breaks included), same totals."""

    @needs_numpy
    @pytest.mark.parametrize("group_size", VALID_GROUP_SIZES)
    def test_encode_batch_matches_encode(self, small_random_bursts,
                                         group_size):
        for model in (CostModel.fixed(), CostModel.from_ac_fraction(0.3),
                      CostModel.from_ac_fraction(0.8)):
            scheme = GroupedDbiOptimal(model, group_size=group_size)
            batch = scheme.encode_batch(small_random_bursts,
                                        backend="vector")
            for burst, vectorized in zip(small_random_bursts, batch):
                scalar = scheme.encode(burst)
                assert vectorized == scalar

    @needs_numpy
    @pytest.mark.parametrize("group_size", VALID_GROUP_SIZES)
    def test_activity_totals_backend_parity(self, small_random_bursts,
                                            group_size):
        scheme = GroupedDbiOptimal(CostModel.fixed(), group_size=group_size)
        assert (scheme.activity_totals(small_random_bursts,
                                       backend="vector")
                == scheme.activity_totals(small_random_bursts,
                                          backend="reference"))

    def test_reference_backend_without_packing(self):
        """Ragged populations fall back to per-burst encode on any
        backend; results match the scalar path exactly."""
        ragged = [Burst([0x00, 0xFF]), Burst([0x12, 0x34, 0x56])]
        scheme = GroupedDbiOptimal(CostModel.fixed(), group_size=4)
        assert scheme.encode_batch(ragged) == [scheme.encode(b)
                                               for b in ragged]

    def test_encode_batch_coerces_iterables(self):
        scheme = GroupedDbiOptimal(CostModel.fixed(), group_size=2)
        (encoding,) = scheme.encode_batch([[0x0F, 0xF0]])
        assert encoding == scheme.encode(Burst([0x0F, 0xF0]))

    def test_empty_batch(self):
        scheme = GroupedDbiOptimal(CostModel.fixed(), group_size=8)
        assert scheme.encode_batch([]) == []
        assert scheme.activity_totals([]) == (0, 0)

    def test_fingerprint_is_ratio_keyed(self):
        a = GroupedDbiOptimal(CostModel(1.0, 1.0), group_size=4)
        b = GroupedDbiOptimal(CostModel(2.0, 2.0), group_size=4)
        c = GroupedDbiOptimal(CostModel(2.0, 1.0), group_size=4)
        d = GroupedDbiOptimal(CostModel(1.0, 1.0), group_size=2)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        assert a.fingerprint() != d.fingerprint()


class TestGroup8MatchesPaperExactly:
    """group_size=8 must reproduce the paper encoder's *decisions*, not
    just its totals: identical invert flags under identical tie-breaks,
    on both backends."""

    @pytest.mark.parametrize("backend", BACKENDS_HERE)
    def test_flags_and_activity_match_dbi_opt(self, small_random_bursts,
                                              backend):
        for model in (CostModel.fixed(), CostModel.from_ac_fraction(0.25),
                      CostModel.from_ac_fraction(0.75)):
            grouped_scheme = GroupedDbiOptimal(model, group_size=8)
            reference_scheme = DbiOptimal(model)
            for burst in small_random_bursts:
                grouped = grouped_scheme.encode_batch([burst],
                                                      backend=backend)[0]
                reference = reference_scheme.encode(burst)
                assert (tuple(flags[0] for flags in grouped.invert_flags)
                        == reference.invert_flags)
                transitions, zeros = reference.activity()
                assert (grouped.zeros, grouped.transitions) == (zeros,
                                                                transitions)

    @pytest.mark.parametrize("backend", BACKENDS_HERE)
    def test_tie_break_prefers_raw(self, backend):
        """An all-0x96 burst costs the same raw or inverted under
        alpha=beta=1; the paper encoder's strict-< comparisons keep the
        raw path, and grouped g=8 must make the same call."""
        burst = Burst([0x96] * 4)
        scheme = GroupedDbiOptimal(CostModel.fixed(), group_size=8)
        reference = DbiOptimal(CostModel.fixed()).encode(burst)
        grouped = scheme.encode_batch([burst], backend=backend)[0]
        assert (tuple(flags[0] for flags in grouped.invert_flags)
                == reference.invert_flags)


class TestGranularityTable:
    def test_rows_and_lines(self, small_random_bursts):
        rows = granularity_table(small_random_bursts[:20], CostModel.fixed())
        assert [row[0] for row in rows] == list(VALID_GROUP_SIZES)
        # Total lines per byte lane: 8 data + 8/g DBI.
        assert [row[4] for row in rows] == [16, 12, 10, 9]

    def test_empty_population(self):
        with pytest.raises(ValueError):
            granularity_table([], CostModel.fixed())

    @needs_numpy
    def test_backend_parity(self, small_random_bursts):
        assert (granularity_table(small_random_bursts[:30],
                                  CostModel.fixed(), backend="vector")
                == granularity_table(small_random_bursts[:30],
                                     CostModel.fixed(),
                                     backend="reference"))

    def test_granularity_sweet_spot(self, medium_random_bursts):
        """Granularity trades encoding freedom against DBI-lane overhead:
        1-bit groups have no freedom at all (inverting a single lane just
        moves the activity to its DBI lane), nibble groups slightly beat
        the JEDEC byte granularity on random traffic, and the byte
        granularity remains close to the optimum at the lowest pin cost —
        a quantified justification for the standard's choice."""
        rows = granularity_table(medium_random_bursts[:100], CostModel.fixed())
        costs = {g: cost for g, _z, _t, cost, _lines in rows}
        assert costs[1] > costs[8]          # bit-level DBI is useless
        assert costs[4] < costs[8]          # nibble DBI wins slightly...
        assert costs[8] / costs[4] < 1.03   # ...but by only a few percent
        assert min(costs, key=costs.get) in (2, 4)
