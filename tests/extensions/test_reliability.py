"""Unit and property tests for reliability analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DbiAc, DbiDc, Raw
from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.schemes import get_scheme
from repro.core.vectorized import HAVE_NUMPY
from repro.extensions.reliability import (
    DEFAULT_FAULT_RATES,
    decode_with_faults,
    draw_fault_masks,
    draw_fault_positions,
    error_amplification,
    fault_coverage_curve,
    fault_sweep,
    fault_sweep_batch,
    wrong_decision_is_harmless,
)

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=12).map(Burst)

#: Packed word representations available in this environment.
WORD_IMPLS = ["int"] + (["uint64"] if HAVE_NUMPY else [])


class TestDecodeWithFaults:
    def test_no_faults_round_trip(self):
        encoded = DbiDc().encode(Burst([0x12, 0x34]))
        decoded = decode_with_faults(encoded.words, [0, 0])
        assert decoded.data == (0x12, 0x34)

    def test_mask_length_checked(self):
        encoded = DbiDc().encode(Burst([0x12]))
        with pytest.raises(ValueError):
            decode_with_faults(encoded.words, [0, 0])

    def test_mask_range_checked(self):
        encoded = DbiDc().encode(Burst([0x12]))
        with pytest.raises(ValueError):
            decode_with_faults(encoded.words, [0x200])

    def test_dbi_lane_fault_complements_byte(self):
        encoded = Raw().encode(Burst([0x0F]))
        decoded = decode_with_faults(encoded.words, [0x100])
        assert decoded.data == (0xF0,)


class TestErrorAmplification:
    @settings(max_examples=60, deadline=None)
    @given(bursts, st.integers(min_value=0, max_value=7))
    def test_data_lane_fault_is_single_bit(self, burst, lane):
        """A data-lane fault corrupts exactly one decoded bit."""
        encoded = DbiDc().encode(burst)
        for beat in range(len(burst)):
            assert error_amplification(encoded, beat, lane) == 1

    @settings(max_examples=60, deadline=None)
    @given(bursts)
    def test_dbi_lane_fault_is_eight_bits(self, burst):
        """A DBI-lane fault complements the whole decoded byte."""
        encoded = DbiAc().encode(burst)
        for beat in range(len(burst)):
            assert error_amplification(encoded, beat, 8) == 8

    def test_bounds_checked(self):
        encoded = Raw().encode(Burst([1]))
        with pytest.raises(ValueError):
            error_amplification(encoded, 0, 9)
        with pytest.raises(IndexError):
            error_amplification(encoded, 1, 0)


class TestWrongDecisionHarmless:
    @settings(max_examples=40, deadline=None)
    @given(bursts)
    def test_every_scheme(self, burst):
        """The paper's analog-implementation premise: mis-decided invert
        flags never corrupt data, for any scheme."""
        for name in ("raw", "dbi-dc", "dbi-ac", "dbi-opt"):
            assert wrong_decision_is_harmless(burst, get_scheme(name))


class TestFaultSweep:
    @pytest.fixture(scope="class")
    def population(self):
        # NumPy-optional on purpose: this suite runs on the CI
        # NumPy-free leg (the pure-Python stream differs byte-wise, but
        # every assertion here is distribution-level or differential).
        from repro.workloads.population import RandomPopulation
        return RandomPopulation(count=300, seed=55).bursts()

    def test_validation(self, population):
        with pytest.raises(ValueError):
            fault_sweep(DbiDc(), population, faults_per_burst=0)

    def test_amplification_statistics(self, population):
        """Uniform single-lane faults amplify by (8*1 + 1*8)/9 ~ 1.78 on
        a DBI bus (vs exactly 1.0 without DBI)."""
        stats = fault_sweep(DbiOptimal(CostModel.fixed()), population,
                            faults_per_burst=2, seed=3)
        assert stats.injected_faults == 600
        assert stats.mean_amplification == pytest.approx(16 / 9, rel=0.15)

    def test_dbi_amplification_exact(self, population):
        stats = fault_sweep(DbiDc(), population, seed=11)
        if stats.dbi_lane_faults:
            assert stats.dbi_amplification == 8.0

    def test_deterministic(self, population):
        a = fault_sweep(DbiDc(), population[:50], seed=9)
        b = fault_sweep(DbiDc(), population[:50], seed=9)
        assert a == b


class TestDrawFaultPositions:
    def test_validation(self):
        with pytest.raises(ValueError):
            draw_fault_positions([8], faults_per_burst=0, seed=1)

    def test_shape_and_ranges(self):
        positions = draw_fault_positions([4, 8], faults_per_burst=3, seed=2)
        assert [len(faults) for faults in positions] == [3, 3]
        for length, faults in zip([4, 8], positions):
            for beat, lane in faults:
                assert 0 <= beat < length
                assert 0 <= lane < 9

    def test_pure_python_stream(self):
        """The draw path is random.Random, so the stream is identical on
        every platform and on both CI NumPy legs."""
        positions = draw_fault_positions([8, 8], faults_per_burst=2, seed=7)
        import random
        uniform = random.Random(7).random
        expected = [[(int(uniform() * 8), int(uniform() * 9))
                     for _ in range(2)] for _ in range(2)]
        assert positions == expected


class TestFaultSweepBatch:
    """The tentpole differential: mask-parallel == per-burst reference."""

    @pytest.fixture(scope="class")
    def population(self):
        from repro.workloads.population import RandomPopulation
        return RandomPopulation(count=200, seed=55).bursts()

    @pytest.mark.parametrize("word_impl", WORD_IMPLS)
    @pytest.mark.parametrize("scheme_name",
                             ["raw", "dbi-dc", "dbi-ac", "dbi-opt"])
    def test_bit_identical_to_reference(self, population, scheme_name,
                                        word_impl):
        scheme = get_scheme(scheme_name)
        for faults_per_burst, seed in ((1, 7), (3, 42)):
            reference = fault_sweep(scheme, population,
                                    faults_per_burst=faults_per_burst,
                                    seed=seed)
            batch = fault_sweep_batch(scheme, population,
                                      faults_per_burst=faults_per_burst,
                                      seed=seed, word_impl=word_impl)
            assert batch == reference

    def test_reference_backend_delegates(self, population):
        assert (fault_sweep_batch(DbiDc(), population, seed=5,
                                  backend="reference")
                == fault_sweep(DbiDc(), population, seed=5))

    def test_validation(self, population):
        with pytest.raises(ValueError):
            fault_sweep_batch(DbiDc(), population, faults_per_burst=0)

    def test_word_impls_agree(self, population):
        if not HAVE_NUMPY:
            pytest.skip("uint64 word implementation needs NumPy")
        assert (fault_sweep_batch(Raw(), population, word_impl="int")
                == fault_sweep_batch(Raw(), population, word_impl="uint64"))

    def test_empty_population(self):
        stats = fault_sweep_batch(DbiDc(), [])
        assert stats.injected_faults == 0
        assert stats.mean_amplification == 0.0


class TestDrawFaultMasks:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            draw_fault_masks(10, rate=-0.1, seed=1)
        with pytest.raises(ValueError):
            draw_fault_masks(10, rate=1.5, seed=1)

    def test_extreme_rates(self):
        assert draw_fault_masks(5, rate=0.0, seed=1) == [0] * 5
        assert draw_fault_masks(5, rate=1.0, seed=1) == [0x1FF] * 5

    def test_rate_streams_independent(self):
        """A rate's masks never depend on which other rates a sweep ran
        — the property the experiment cache relies on."""
        alone = draw_fault_masks(64, rate=0.01, seed=3)
        draw_fault_masks(64, rate=0.1, seed=3)  # interleaved other rate
        assert draw_fault_masks(64, rate=0.01, seed=3) == alone


class TestFaultCoverageCurve:
    @pytest.fixture(scope="class")
    def population(self):
        from repro.workloads.population import RandomPopulation
        return RandomPopulation(count=150, seed=21).bursts()

    @pytest.mark.parametrize("word_impl", WORD_IMPLS)
    def test_backends_bit_identical(self, population, word_impl):
        scheme = get_scheme("dbi-opt")
        vector = fault_coverage_curve(scheme, population, seed=13,
                                      backend="vector", word_impl=word_impl)
        reference = fault_coverage_curve(scheme, population, seed=13,
                                         backend="reference")
        assert vector == reference

    def test_row_shape(self, population):
        rows = fault_coverage_curve(DbiDc(), population, rates=(0.05,),
                                    seed=3)
        (row,) = rows
        assert row.rate == 0.05
        assert row.total_beats == sum(len(b) for b in population)
        # Multi-lane faults can cancel through the DBI complement, so
        # bit errors need not equal injections — but both scale with
        # the rate and every corrupted beat has >= 1 bit error.
        assert row.corrupted_beats <= row.bit_errors
        assert 0 < row.injected_faults
        assert row.amplification == pytest.approx(16 / 9, rel=0.25)

    def test_rates_monotone_in_injections(self, population):
        rows = fault_coverage_curve(Raw(), population,
                                    rates=DEFAULT_FAULT_RATES, seed=7)
        injected = [row.injected_faults for row in rows]
        assert injected == sorted(injected)
        assert [row.rate for row in rows] == list(DEFAULT_FAULT_RATES)

    def test_empty_population(self):
        (row,) = fault_coverage_curve(Raw(), [], rates=(0.1,))
        assert row.total_beats == 0
        assert row.bit_error_rate == 0.0
        assert row.beat_error_rate == 0.0


class TestDoctests:
    def test_module_doctests(self):
        """The docstring examples (including the 16/9 exhaustive sweep
        fixed in this PR) must execute."""
        import doctest
        import repro.extensions.reliability as module
        results = doctest.testmod(module)
        assert results.attempted > 0
        assert results.failed == 0
