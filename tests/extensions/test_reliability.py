"""Unit and property tests for reliability analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DbiAc, DbiDc, Raw
from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.schemes import get_scheme
from repro.extensions.reliability import (
    decode_with_faults,
    error_amplification,
    fault_sweep,
    wrong_decision_is_harmless,
)

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=12).map(Burst)


class TestDecodeWithFaults:
    def test_no_faults_round_trip(self):
        encoded = DbiDc().encode(Burst([0x12, 0x34]))
        decoded = decode_with_faults(encoded.words, [0, 0])
        assert decoded.data == (0x12, 0x34)

    def test_mask_length_checked(self):
        encoded = DbiDc().encode(Burst([0x12]))
        with pytest.raises(ValueError):
            decode_with_faults(encoded.words, [0, 0])

    def test_mask_range_checked(self):
        encoded = DbiDc().encode(Burst([0x12]))
        with pytest.raises(ValueError):
            decode_with_faults(encoded.words, [0x200])

    def test_dbi_lane_fault_complements_byte(self):
        encoded = Raw().encode(Burst([0x0F]))
        decoded = decode_with_faults(encoded.words, [0x100])
        assert decoded.data == (0xF0,)


class TestErrorAmplification:
    @settings(max_examples=60, deadline=None)
    @given(bursts, st.integers(min_value=0, max_value=7))
    def test_data_lane_fault_is_single_bit(self, burst, lane):
        """A data-lane fault corrupts exactly one decoded bit."""
        encoded = DbiDc().encode(burst)
        for beat in range(len(burst)):
            assert error_amplification(encoded, beat, lane) == 1

    @settings(max_examples=60, deadline=None)
    @given(bursts)
    def test_dbi_lane_fault_is_eight_bits(self, burst):
        """A DBI-lane fault complements the whole decoded byte."""
        encoded = DbiAc().encode(burst)
        for beat in range(len(burst)):
            assert error_amplification(encoded, beat, 8) == 8

    def test_bounds_checked(self):
        encoded = Raw().encode(Burst([1]))
        with pytest.raises(ValueError):
            error_amplification(encoded, 0, 9)
        with pytest.raises(IndexError):
            error_amplification(encoded, 1, 0)


class TestWrongDecisionHarmless:
    @settings(max_examples=40, deadline=None)
    @given(bursts)
    def test_every_scheme(self, burst):
        """The paper's analog-implementation premise: mis-decided invert
        flags never corrupt data, for any scheme."""
        for name in ("raw", "dbi-dc", "dbi-ac", "dbi-opt"):
            assert wrong_decision_is_harmless(burst, get_scheme(name))


class TestFaultSweep:
    @pytest.fixture(scope="class")
    def population(self):
        from repro.workloads.random_data import random_bursts
        return random_bursts(count=300, seed=55)

    def test_validation(self, population):
        with pytest.raises(ValueError):
            fault_sweep(DbiDc(), population, faults_per_burst=0)

    def test_amplification_statistics(self, population):
        """Uniform single-lane faults amplify by (8*1 + 1*8)/9 ~ 1.78 on
        a DBI bus (vs exactly 1.0 without DBI)."""
        stats = fault_sweep(DbiOptimal(CostModel.fixed()), population,
                            faults_per_burst=2, seed=3)
        assert stats.injected_faults == 600
        assert stats.mean_amplification == pytest.approx(16 / 9, rel=0.15)

    def test_dbi_amplification_exact(self, population):
        stats = fault_sweep(DbiDc(), population, seed=11)
        if stats.dbi_lane_faults:
            assert stats.dbi_amplification == 8.0

    def test_deterministic(self, population):
        a = fault_sweep(DbiDc(), population[:50], seed=9)
        b = fault_sweep(DbiDc(), population[:50], seed=9)
        assert a == b
