"""Chaos: seeded cache-fault schedules never corrupt results.

The differential invariant under test: for any planned fault schedule,
the final merged artifact is either bit-identical (canonical JSON) to
the fault-free run or a loud typed error — never silently wrong.  Runs
on both CI legs (NumPy and no-NumPy); everything here is stdlib-only.
"""

from __future__ import annotations

import pytest

from repro.analysis.artifacts import canonical_artifact_json
from repro.service.diskcache import DiskActivityCache
from repro.service.faults import FaultPlan, FaultyCache
from repro.service.retry import RetryPolicy
from repro.service.shard import SHARD_RETRYABLE, run_shards
from repro.sim.experiments import (
    alpha_experiment,
    result_to_json,
    run_experiment,
)
from repro.workloads.population import RandomPopulation

#: Generous per-shard budget: every plan's horizon is finite, so the
#: schedule always runs dry before the attempts do.
CHAOS_RETRY = RetryPolicy(max_attempts=8, base_delay_s=0.0,
                          retryable=SHARD_RETRYABLE)


def _spec(samples=120, points=5):
    return alpha_experiment(RandomPopulation(count=samples, seed=0x0DB1),
                            points=points, include_fixed=True)


def _canonical(result):
    return canonical_artifact_json(result_to_json(result))


@pytest.fixture(scope="module")
def clean():
    """The fault-free reference artifact every chaos run must match."""
    return _canonical(run_experiment(_spec()))


class TestSeededSchedules:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sweep_survives_seeded_cache_chaos(self, seed, clean, tmp_path):
        plan = FaultPlan.seeded(seed, horizon=24, rate=0.4)
        cache = FaultyCache(DiskActivityCache(tmp_path / "cache"), plan)
        merged = run_shards(_spec(), 3, cache=cache, retry=CHAOS_RETRY)
        assert sum(cache.injected.values()) > 0, plan.describe()
        assert _canonical(merged) == clean

    def test_same_seed_injects_identically(self, tmp_path):
        counts = []
        for attempt in ("a", "b"):
            plan = FaultPlan.seeded(5, horizon=24, rate=0.4)
            cache = FaultyCache(
                DiskActivityCache(tmp_path / f"cache-{attempt}"), plan)
            run_shards(_spec(), 3, cache=cache, retry=CHAOS_RETRY)
            counts.append(dict(cache.injected))
        assert counts[0] == counts[1]


class TestDegradedCache:
    def test_memory_only_tier_is_bit_identical(self, clean, tmp_path,
                                               monkeypatch):
        cache = DiskActivityCache(tmp_path / "cache")
        monkeypatch.setattr(
            cache, "_publish",
            lambda temp, path: (_ for _ in ()).throw(OSError(28, "full")))
        result = run_experiment(_spec(), cache=cache)
        assert cache.health()["degraded"] is True
        assert _canonical(result) == clean

    def test_corrupted_entries_quarantined_then_bit_identical(
            self, clean, tmp_path):
        # A chaos writer garbles every published entry...
        plan = FaultPlan({index: "corrupt" for index in range(64)})
        dirty = FaultyCache(DiskActivityCache(tmp_path / "cache"), plan)
        run_experiment(_spec(), cache=dirty)
        assert dirty.injected["corrupt"] > 0
        # ...so a fresh reader of the same directory must quarantine
        # every entry, re-encode, and still produce the clean bytes.
        fresh = DiskActivityCache(tmp_path / "cache")
        result = run_experiment(_spec(), cache=fresh)
        assert fresh.quarantined > 0
        assert _canonical(result) == clean
