"""Chaos: killed sweep workers are absorbed by the shard driver.

Crash points (armed via ``REPRO_FAULT_POINTS``) kill worker processes
mid-sweep with ``os._exit``; the driver's per-shard retry must rebuild
the pool, re-run only the dead shards, and still merge bit-identically.
Stdlib-only; runs on both CI legs.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.artifacts import canonical_artifact_json
from repro.service.faults import CRASH_POINTS_ENV
from repro.service.retry import RetryPolicy
from repro.service.shard import (
    SHARD_RETRYABLE,
    ShardExecutionError,
    run_shards,
)
from repro.sim.experiments import (
    alpha_experiment,
    result_to_json,
    run_experiment,
)
from repro.workloads.population import RandomPopulation

RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0,
                    retryable=SHARD_RETRYABLE)


def _spec(points=4):
    return alpha_experiment(RandomPopulation(count=100, seed=0x0DB1),
                            points=points, include_fixed=True)


def _canonical(result):
    return canonical_artifact_json(result_to_json(result))


class TestKilledWorkers:
    def test_one_kill_absorbed(self, tmp_path, monkeypatch):
        sentinel = tmp_path / "kill-0"
        monkeypatch.setenv(CRASH_POINTS_ENV, f"shard:0@{sentinel}")
        merged = run_shards(_spec(), 2, processes=True,
                            cache_dir=str(tmp_path / "cache"),
                            retry=RETRY, max_workers=2)
        assert sentinel.exists()
        assert _canonical(merged) == _canonical(run_experiment(_spec()))

    def test_multiple_kills_absorbed_in_one_call(self, tmp_path,
                                                 monkeypatch):
        sentinels = [tmp_path / "kill-0", tmp_path / "kill-2"]
        monkeypatch.setenv(
            CRASH_POINTS_ENV,
            ";".join(f"shard:{index}@{sentinel}"
                     for index, sentinel in zip((0, 2), sentinels)))
        merged = run_shards(_spec(), 3, processes=True,
                            cache_dir=str(tmp_path / "cache"),
                            retry=RETRY, max_workers=3)
        assert all(sentinel.exists() for sentinel in sentinels)
        assert _canonical(merged) == _canonical(run_experiment(_spec()))

    def test_unretried_kill_is_a_typed_error(self, tmp_path, monkeypatch):
        sentinel = tmp_path / "kill-once"
        monkeypatch.setenv(CRASH_POINTS_ENV, f"shard:1@{sentinel}")
        no_retry = RetryPolicy(max_attempts=1, base_delay_s=0.0,
                               retryable=SHARD_RETRYABLE)
        # One worker at a time so only the killed shard's future breaks
        # and the typed error names it precisely.
        with pytest.raises(ShardExecutionError) as info:
            run_shards(_spec(), 2, processes=True,
                       cache_dir=str(tmp_path / "cache"),
                       retry=no_retry, max_workers=1)
        assert "#shard1/2" in info.value.shard_name
        assert info.value.attempts == 1

    def test_kill_plus_checkpoints_resume_cleanly(self, tmp_path,
                                                  monkeypatch):
        checkpoint_dir = str(tmp_path / "ckpt")
        sentinel = tmp_path / "kill-3"
        monkeypatch.setenv(CRASH_POINTS_ENV, f"shard:3@{sentinel}")
        merged = run_shards(_spec(), 4, processes=True,
                            cache_dir=str(tmp_path / "cache"),
                            retry=RETRY, checkpoint_dir=checkpoint_dir,
                            max_workers=4)
        assert sentinel.exists()
        assert len(os.listdir(checkpoint_dir)) == 4
        assert _canonical(merged) == _canonical(run_experiment(_spec()))
        # And a follow-up resume does zero work.
        resumed = run_shards(_spec(), 4, processes=True,
                             cache_dir=str(tmp_path / "cache"),
                             retry=RETRY, checkpoint_dir=checkpoint_dir,
                             max_workers=4)
        assert resumed.provenance["resumed_shards"] == 4
        assert resumed.provenance["encodes"] == 0
        assert _canonical(resumed) == _canonical(merged)
