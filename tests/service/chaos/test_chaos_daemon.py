"""Chaos: a flaky transport between client and daemon changes nothing.

A :class:`~repro.service.faults.FlakyProxy` injects resets, torn
response lines and stalls according to an explicit plan; the retrying
client must still deliver artifacts byte-identical to a direct engine
run.  Stdlib-only; runs on both CI legs.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.artifacts import canonical_artifact_json
from repro.service.client import ServiceClient
from repro.service.daemon import ExperimentDaemon, sweep_spec_from_params
from repro.service.faults import FaultPlan, FlakyProxy
from repro.service.retry import RetryPolicy
from repro.sim.experiments import result_to_json, run_experiment

SWEEP_PARAMS = {"figure": "alpha", "samples": 120, "points": 5, "seed": 7}

#: Fault on every other exchange: each op fails once, then succeeds on
#: its retry — three attempts cover it with margin.
PLAN = FaultPlan({0: "reset", 2: "partial", 4: "stall", 6: "reset"},
                 label="alternating")


@pytest.fixture()
def daemon(tmp_path):
    instance = ExperimentDaemon(port=0, cache_dir=str(tmp_path / "cache"))
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    thread.join(timeout=10)


class TestFlakyTransport:
    def test_artifacts_identical_through_chaos(self, daemon):
        with FlakyProxy(daemon.address, PLAN, stall_s=0.6) as proxy:
            host, port = proxy.address
            retry = RetryPolicy(max_attempts=3, base_delay_s=0.0)
            with ServiceClient(host, port, timeout=0.3,
                               retry=retry) as client:
                assert client.ping()["pong"] is True          # exchange 0-1
                cold = client.sweep(**SWEEP_PARAMS)           # exchange 2-3
                warm = client.sweep(**SWEEP_PARAMS)           # exchange 4-5
                stats = client.stats()                        # exchange 6-7
            assert proxy.injected == {"reset": 2, "partial": 1, "stall": 1}
        direct = result_to_json(
            run_experiment(sweep_spec_from_params(SWEEP_PARAMS)))
        assert (canonical_artifact_json(cold)
                == canonical_artifact_json(direct))
        assert (canonical_artifact_json(warm)
                == canonical_artifact_json(direct))
        # partial/stall tear the *response*, so the daemon executed
        # those sweeps before the retry re-issued them — harmless
        # because every op is idempotent (2 queries, 2 torn replies).
        assert stats["served"]["sweep"] == 4

    def test_chaos_run_is_reproducible(self, daemon):
        outcomes = []
        for __ in range(2):
            plan = FaultPlan({0: "reset", 1: "partial"}, label="repeat")
            with FlakyProxy(daemon.address, plan, stall_s=0.2) as proxy:
                host, port = proxy.address
                retry = RetryPolicy(max_attempts=4, base_delay_s=0.0)
                with ServiceClient(host, port, timeout=0.5,
                                   retry=retry) as client:
                    artifact = client.sweep(**SWEEP_PARAMS)
                outcomes.append((canonical_artifact_json(artifact),
                                 dict(proxy.injected)))
        assert outcomes[0] == outcomes[1]
