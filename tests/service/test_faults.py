"""Chaos harness primitives: plans, the faulty cache, crash points."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.service.diskcache import DiskActivityCache
from repro.service.faults import (
    CACHE_FAULTS,
    CRASH_EXIT_CODE,
    CRASH_POINTS_ENV,
    FaultPlan,
    FaultyCache,
    crash_point,
)
from repro.sim.experiments import ActivityCache, ActivityTotals

TOTALS = ActivityTotals(transitions=10, zeros=20, bursts=4)


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        one = FaultPlan.seeded(42)
        two = FaultPlan.seeded(42)
        assert one.schedule == two.schedule
        assert one.describe() == two.describe()

    def test_seeds_differ(self):
        assert FaultPlan.seeded(1).schedule != FaultPlan.seeded(2).schedule

    def test_bounded_horizon(self):
        plan = FaultPlan.seeded(7, horizon=16, rate=1.0)
        assert len(plan) == 16
        assert plan.fault_at(16) is None  # clean beyond the horizon
        assert all(kind in CACHE_FAULTS for kind in plan.schedule.values())

    def test_explicit_schedule(self):
        plan = FaultPlan({0: "stale", 3: "oserror"})
        assert plan.fault_at(0) == "stale"
        assert plan.fault_at(1) is None
        assert plan.fault_at(3) == "oserror"

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, kinds=())
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, rate=1.5)

    def test_describe_is_canonical_json(self):
        plan = FaultPlan({2: "torn", 0: "stale"}, label="unit")
        payload = json.loads(plan.describe())
        assert payload["label"] == "unit"
        assert payload["schedule"] == {"0": "stale", "2": "torn"}


class TestFaultyCacheMemory:
    def test_clean_plan_is_transparent(self):
        cache = FaultyCache(ActivityCache(), FaultPlan({}))
        assert "k" not in cache
        cache.store("k", TOTALS)
        assert "k" in cache
        assert cache.get("k") == TOTALS
        assert cache.injected == {}

    def test_stale_forces_a_miss_once(self):
        # index 0 = first store, index 1 = the next lookup.
        cache = FaultyCache(ActivityCache(), FaultPlan({1: "stale"}))
        cache.store("k", TOTALS)
        assert "k" not in cache      # injected stale miss
        assert "k" in cache          # plan exhausted: truth again
        assert cache.injected == {"stale": 1}

    def test_oserror_raises_and_drops_the_store(self):
        cache = FaultyCache(ActivityCache(), FaultPlan({0: "oserror"}))
        with pytest.raises(OSError):
            cache.store("k", TOTALS)
        assert "k" not in cache
        cache.store("k", TOTALS)     # next attempt succeeds
        assert cache.get("k") == TOTALS

    def test_get_never_consumes_plan_indices(self):
        cache = FaultyCache(ActivityCache(), FaultPlan({1: "stale"}))
        cache.store("k", TOTALS)     # index 0
        for __ in range(5):          # gets are free
            assert cache.get("k") == TOTALS
        assert "k" not in cache      # index 1 fires only now


class TestFaultyCacheDisk:
    def test_torn_store_leaves_orphan_temp_and_no_entry(self, tmp_path):
        inner = DiskActivityCache(tmp_path / "cache")
        cache = FaultyCache(inner, FaultPlan({0: "torn"}))
        cache.store("k", TOTALS)
        assert len(inner) == 0       # publish never happened
        orphans = [name for name in os.listdir(inner.directory)
                   if name.endswith(".chaos.tmp")]
        assert len(orphans) == 1
        fresh = DiskActivityCache(tmp_path / "cache")
        assert "k" not in fresh      # orphan is ignored, not an entry

    def test_corrupt_store_poisons_fresh_readers_only(self, tmp_path):
        inner = DiskActivityCache(tmp_path / "cache")
        cache = FaultyCache(inner, FaultPlan({0: "corrupt"}))
        cache.store("k", TOTALS)
        # The running process keeps serving from its memory tier...
        assert cache.get("k") == TOTALS
        # ...but a fresh reader quarantines the garbled entry.
        fresh = DiskActivityCache(tmp_path / "cache")
        assert "k" not in fresh
        assert fresh.quarantined == 1

    def test_health_merges_inner_and_injection_counters(self, tmp_path):
        inner = DiskActivityCache(tmp_path / "cache")
        plan = FaultPlan({1: "stale"}, label="unit")
        cache = FaultyCache(inner, plan)
        cache.store("k", TOTALS)
        assert "k" not in cache
        health = cache.health()
        assert health["tier"] == "disk"
        assert health["injected_faults"] == {"stale": 1}
        assert health["fault_plan"] == "unit"


class TestCrashPoint:
    def test_noop_when_unarmed(self, monkeypatch):
        monkeypatch.delenv(CRASH_POINTS_ENV, raising=False)
        crash_point("shard:0")  # must simply return

    def test_noop_for_other_names(self, monkeypatch, tmp_path):
        sentinel = tmp_path / "sentinel"
        monkeypatch.setenv(CRASH_POINTS_ENV, f"shard:9@{sentinel}")
        crash_point("shard:0")
        assert not sentinel.exists()

    def test_armed_point_kills_the_process_once(self, tmp_path):
        sentinel = tmp_path / "sentinel"
        code = ("from repro.service.faults import crash_point; "
                "crash_point('shard:2'); print('survived')")
        env = dict(os.environ,
                   PYTHONPATH="src",
                   **{CRASH_POINTS_ENV: f"shard:2@{sentinel}"})
        first = subprocess.run([sys.executable, "-c", code], env=env,
                               cwd="/root/repo", capture_output=True,
                               text=True)
        assert first.returncode == CRASH_EXIT_CODE
        assert sentinel.exists()
        # The sentinel is claimed: the retried process survives.
        second = subprocess.run([sys.executable, "-c", code], env=env,
                                cwd="/root/repo", capture_output=True,
                                text=True)
        assert second.returncode == 0
        assert "survived" in second.stdout
