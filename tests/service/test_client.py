"""Client-side fault tolerance: safe close, resync, retries over chaos."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.service.client import (
    DEFAULT_CLIENT_RETRY,
    ServiceBusyError,
    ServiceClient,
    ServiceError,
)
from repro.service.daemon import ExperimentDaemon
from repro.service.faults import FaultPlan, FlakyProxy
from repro.service.retry import RetryExhaustedError, RetryPolicy


@pytest.fixture()
def daemon(tmp_path):
    instance = ExperimentDaemon(port=0, cache_dir=str(tmp_path / "cache"))
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    thread.join(timeout=10)


class TestClose:
    def test_close_is_idempotent(self, daemon):
        host, port = daemon.address
        client = ServiceClient(host, port)
        client.connect()
        client.close()
        client.close()  # second close is a no-op
        assert client._sock is None and client._file is None

    def test_close_without_connect(self):
        ServiceClient("127.0.0.1", 1).close()  # never connected: fine

    def test_close_survives_file_close_failure(self, daemon):
        host, port = daemon.address
        client = ServiceClient(host, port)
        client.connect()
        sock = client._sock

        class ExplodingFile:
            def close(self):
                raise OSError("flush failed")

        client._file = ExplodingFile()
        client.close()  # must not raise, must still close the socket
        assert client._sock is None
        with pytest.raises(OSError):
            sock.getpeername()  # really closed

    def test_context_manager_closes_on_error(self, daemon):
        host, port = daemon.address
        with pytest.raises(RuntimeError, match="boom"):
            with ServiceClient(host, port) as client:
                client.ping()
                raise RuntimeError("boom")
        assert client._sock is None


class TestResync:
    def test_broken_connection_reconnects_on_next_call(self, daemon):
        host, port = daemon.address
        with ServiceClient(host, port) as client:
            assert client.ping()["pong"] is True
            # Sever the transport under the client.
            client._sock.shutdown(socket.SHUT_RDWR)
            # The retry layer reconnects and the call succeeds.
            assert client.ping()["pong"] is True

    def test_raw_request_is_single_shot(self, daemon):
        host, port = daemon.address
        with ServiceClient(host, port) as client:
            client.request({"op": "ping"})
            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises((ConnectionError, OSError)):
                client.request({"op": "ping"})
            assert client._sock is None  # marked broken for resync
            assert client.request({"op": "ping"})["ok"] is True

    def test_service_error_does_not_drop_connection(self, daemon):
        host, port = daemon.address
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError):
                client.sweep(figure="pie")
            assert client._sock is not None  # protocol error, not transport
            assert client.ping()["pong"] is True


class TestRetryOverChaos:
    def _proxy_client(self, daemon, plan, **kwargs):
        proxy = FlakyProxy(daemon.address, plan, stall_s=0.5)
        proxy.start()
        host, port = proxy.address
        return proxy, ServiceClient(host, port, **kwargs)

    def test_reset_is_retried(self, daemon):
        proxy, client = self._proxy_client(
            daemon, FaultPlan({0: "reset"}),
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0))
        with proxy, client:
            assert client.ping()["pong"] is True
        assert proxy.injected == {"reset": 1}

    def test_partial_line_is_never_parsed(self, daemon):
        proxy, client = self._proxy_client(
            daemon, FaultPlan({0: "partial"}),
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0))
        with proxy, client:
            assert client.ping()["pong"] is True
        assert proxy.injected == {"partial": 1}

    def test_stall_times_out_and_retries(self, daemon):
        proxy, client = self._proxy_client(
            daemon, FaultPlan({0: "stall"}), timeout=0.2,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0))
        with proxy, client:
            assert client.ping()["pong"] is True
        assert proxy.injected == {"stall": 1}

    def test_exhaustion_is_typed(self, daemon):
        proxy, client = self._proxy_client(
            daemon, FaultPlan({0: "reset", 1: "reset", 2: "reset"}),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0))
        with proxy, client:
            with pytest.raises(RetryExhaustedError) as info:
                client.ping()
        assert info.value.attempts == 2

    def test_default_policy_exists(self):
        assert DEFAULT_CLIENT_RETRY.max_attempts == 3
        assert ServiceClient().retry is DEFAULT_CLIENT_RETRY


class TestBusy:
    def test_busy_daemon_answer_is_transient(self, tmp_path):
        instance = ExperimentDaemon(port=0, max_connections=1)
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = instance.address
            # Hog the single slot with a raw connection...
            with socket.create_connection((host, port), timeout=30):
                # ...so a second client gets the retryable busy answer.
                single = RetryPolicy(max_attempts=1, base_delay_s=0.0)
                with ServiceClient(host, port, retry=single) as client:
                    with pytest.raises(RetryExhaustedError) as info:
                        client.ping()
                    assert isinstance(info.value.last_error,
                                      ServiceBusyError)
            # Slot released: the same client succeeds now.
            with ServiceClient(host, port) as client:
                assert client.ping()["pong"] is True
        finally:
            instance.shutdown()
            thread.join(timeout=10)
