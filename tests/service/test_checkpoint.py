"""Checkpoint/resume of sharded sweeps and per-shard retry."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.artifacts import canonical_artifact_json
from repro.service.faults import CRASH_POINTS_ENV
from repro.service.retry import RetryPolicy
from repro.service.shard import (
    SHARD_RETRYABLE,
    ShardExecutionError,
    run_shards,
    shard_spec,
)
from repro.sim.experiments import (
    alpha_experiment,
    result_to_json,
    run_experiment,
)
from repro.workloads.population import RandomPopulation


def _alpha_spec(samples=150, points=6):
    return alpha_experiment(RandomPopulation(count=samples, seed=0x0DB1),
                            points=points, include_fixed=True)


def _canonical(result):
    return canonical_artifact_json(result_to_json(result))


class TestCheckpointing:
    def test_checkpoints_are_ordinary_artifacts(self, tmp_path):
        spec = _alpha_spec()
        checkpoint_dir = tmp_path / "ckpt"
        run_shards(spec, 3, checkpoint_dir=str(checkpoint_dir))
        names = sorted(os.listdir(checkpoint_dir))
        assert names == ["shard0000-of-3.json", "shard0001-of-3.json",
                         "shard0002-of-3.json"]
        with open(checkpoint_dir / names[0], encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["format"] == "repro.experiment/1"
        assert payload["spec"]["figure_params"]["shard"]["index"] == 0

    def test_resume_skips_completed_shards(self, tmp_path):
        spec = _alpha_spec()
        checkpoint_dir = str(tmp_path / "ckpt")
        baseline = run_shards(spec, 3, checkpoint_dir=checkpoint_dir)
        assert baseline.provenance["encodes"] > 0
        assert baseline.provenance["resumed_shards"] == 0
        resumed = run_shards(spec, 3, checkpoint_dir=checkpoint_dir)
        # Everything came from checkpoints: this run encoded nothing.
        assert resumed.provenance["encodes"] == 0
        assert resumed.provenance["resumed_shards"] == 3
        assert _canonical(resumed) == _canonical(baseline)
        assert _canonical(resumed) == _canonical(run_experiment(spec))

    def test_partial_checkpoints_merge_bit_identically(self, tmp_path):
        spec = _alpha_spec()
        checkpoint_dir = str(tmp_path / "ckpt")
        run_shards(spec, 3, checkpoint_dir=checkpoint_dir)
        os.unlink(os.path.join(checkpoint_dir, "shard0001-of-3.json"))
        mixed = run_shards(spec, 3, checkpoint_dir=checkpoint_dir)
        assert mixed.provenance["resumed_shards"] == 2
        assert mixed.provenance["encodes"] > 0  # only shard 1 re-ran
        assert _canonical(mixed) == _canonical(run_experiment(spec))

    def test_corrupt_checkpoint_quarantined_and_rerun(self, tmp_path):
        spec = _alpha_spec()
        checkpoint_dir = str(tmp_path / "ckpt")
        run_shards(spec, 3, checkpoint_dir=checkpoint_dir)
        victim = os.path.join(checkpoint_dir, "shard0002-of-3.json")
        with open(victim, "w", encoding="utf-8") as handle:
            handle.write('{"format": "repro.experiment/1", "trunc')
        resumed = run_shards(spec, 3, checkpoint_dir=checkpoint_dir)
        assert resumed.provenance["resumed_shards"] == 2
        assert os.path.exists(f"{victim}.bad")
        assert os.path.exists(victim)  # re-ran and re-checkpointed
        assert _canonical(resumed) == _canonical(run_experiment(spec))

    def test_foreign_checkpoint_rejected_by_identity(self, tmp_path):
        spec = _alpha_spec()
        other = _alpha_spec(samples=151)  # different population digest
        checkpoint_dir = str(tmp_path / "ckpt")
        run_shards(other, 3, checkpoint_dir=checkpoint_dir)
        resumed = run_shards(spec, 3, checkpoint_dir=checkpoint_dir)
        assert resumed.provenance["resumed_shards"] == 0
        assert _canonical(resumed) == _canonical(run_experiment(spec))


class TestShardRetry:
    def test_nonretryable_failure_is_typed(self, tmp_path):
        spec = _alpha_spec()
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                             retryable=SHARD_RETRYABLE)

        calls = {"n": 0}

        import repro.service.shard as shard_module

        real = shard_module.run_experiment

        def sabotaged(shard, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise ValueError("permanent bug")
            return real(shard, **kwargs)

        shard_module.run_experiment = sabotaged
        try:
            with pytest.raises(ValueError, match="permanent bug"):
                run_shards(spec, 3, retry=policy)
        finally:
            shard_module.run_experiment = real

    def test_transient_failures_absorbed_in_process(self, tmp_path):
        spec = _alpha_spec()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0,
                             retryable=SHARD_RETRYABLE)

        calls = {"n": 0}
        import repro.service.shard as shard_module

        real = shard_module.run_experiment

        def flaky(shard, **kwargs):
            calls["n"] += 1
            if calls["n"] in (1, 3):
                raise OSError(28, "injected disk full")
            return real(shard, **kwargs)

        shard_module.run_experiment = flaky
        try:
            merged = run_shards(spec, 3, retry=policy)
        finally:
            shard_module.run_experiment = real
        assert _canonical(merged) == _canonical(run_experiment(spec))

    def test_exhaustion_names_the_shard(self):
        spec = _alpha_spec()
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                             retryable=SHARD_RETRYABLE)
        import repro.service.shard as shard_module

        real = shard_module.run_experiment
        shard_module.run_experiment = lambda *a, **k: (_ for _ in ()).throw(
            OSError(28, "always full"))
        try:
            with pytest.raises(ShardExecutionError) as info:
                run_shards(spec, 2, retry=policy)
        finally:
            shard_module.run_experiment = real
        assert info.value.attempts == 2
        assert "#shard0/2" in info.value.shard_name
        assert isinstance(info.value.cause, OSError)


class TestKilledWorkerAcceptance:
    """The acceptance scenario: kill a worker, resume the checkpoint dir."""

    def test_kill_then_resume_completes_without_rerunning(
            self, tmp_path, monkeypatch):
        spec = _alpha_spec(points=6)
        checkpoint_dir = str(tmp_path / "ckpt")
        sentinel = str(tmp_path / "killed-shard2")
        monkeypatch.setenv(CRASH_POINTS_ENV, f"shard:2@{sentinel}")

        # One worker at a time so shards 0 and 1 are checkpointed before
        # the armed crash point kills the worker running shard 2; with a
        # single attempt the driver must surface a typed error.
        no_retry = RetryPolicy(max_attempts=1, base_delay_s=0.0,
                               retryable=SHARD_RETRYABLE)
        with pytest.raises(ShardExecutionError) as info:
            run_shards(spec, 3, processes=True,
                       cache_dir=str(tmp_path / "cache"),
                       retry=no_retry, checkpoint_dir=checkpoint_dir,
                       max_workers=1)
        assert "#shard2/3" in info.value.shard_name
        assert os.path.exists(sentinel)
        done = sorted(os.listdir(checkpoint_dir))
        assert done == ["shard0000-of-3.json", "shard0001-of-3.json"]

        # Resume with the same directory: only shard 2 runs (the
        # sentinel is claimed, so the crash point is inert), proven by
        # the merged encode count — resumed shards contribute zero, so
        # the run encodes at most what shard 2 alone would.
        resumed = run_shards(spec, 3, processes=True,
                             cache_dir=str(tmp_path / "cache"),
                             retry=no_retry,
                             checkpoint_dir=checkpoint_dir, max_workers=1)
        assert resumed.provenance["resumed_shards"] == 2
        shard2_alone = run_experiment(shard_spec(spec, 3)[2])
        assert (resumed.provenance["encodes"]
                <= shard2_alone.provenance["encodes"])
        full = run_experiment(spec)
        assert resumed.provenance["encodes"] < full.provenance["encodes"]
        assert _canonical(resumed) == _canonical(full)

    def test_retry_absorbs_the_kill_in_one_call(self, tmp_path, monkeypatch):
        spec = _alpha_spec(points=4)
        sentinel = str(tmp_path / "killed-once")
        monkeypatch.setenv(CRASH_POINTS_ENV, f"shard:1@{sentinel}")
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0,
                             retryable=SHARD_RETRYABLE)
        merged = run_shards(spec, 2, processes=True,
                            cache_dir=str(tmp_path / "cache"),
                            retry=policy, max_workers=2)
        assert os.path.exists(sentinel)  # the kill really happened
        assert _canonical(merged) == _canonical(run_experiment(spec))
