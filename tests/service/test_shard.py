"""Shard planner: deterministic splits, bit-identical merges."""

from __future__ import annotations

import pytest

from repro.core.vectorized import available_backends
from repro.phy.power import GBPS, PICOFARAD
from repro.service.diskcache import DiskActivityCache
from repro.service.shard import merge_shards, run_shards, shard_spec
from repro.sim.experiments import (
    ActivityCache,
    alpha_experiment,
    load_artifact,
    load_experiment,
    run_experiment,
    save_artifact,
)
from repro.workloads.population import RandomPopulation

ENCODER_ENERGY = {"dbi-dc": 0.2e-12, "dbi-ac": 0.3e-12,
                  "dbi-opt-fixed": 1.7e-12}


def _alpha_spec(samples=200, points=9):
    return alpha_experiment(RandomPopulation(count=samples, seed=0x0DB1),
                            points=points, include_fixed=True)


def _load_spec():
    return load_experiment(
        RandomPopulation(count=150, seed=3),
        c_loads_farads=(1 * PICOFARAD, 3 * PICOFARAD),
        data_rates_hz=[GBPS * step for step in range(2, 7)],
        encoder_energy_j=ENCODER_ENERGY)


class TestShardSpec:
    def test_deterministic_and_balanced(self):
        spec = _alpha_spec(points=10)
        shards = shard_spec(spec, 4)
        again = shard_spec(spec, 4)
        assert [shard.grid for shard in shards] == [s.grid for s in again]
        assert [len(shard.grid) for shard in shards] == [2, 3, 2, 3]
        # Contiguous, order-preserving cover of the parent grid.
        flattened = tuple(point for shard in shards for point in shard.grid)
        assert flattened == spec.grid

    def test_single_shard_differs_only_by_tag(self):
        spec = _alpha_spec(points=5)
        (shard,) = shard_spec(spec, 1)
        assert shard.grid == spec.grid
        assert shard.slots == spec.slots
        assert shard.figure is None
        assert shard.figure_params["shard"]["parent"] == spec.name

    def test_more_shards_than_cells(self):
        spec = _alpha_spec(points=3)
        shards = shard_spec(spec, 10)
        assert len(shards) == 3
        assert all(len(shard.grid) == 1 for shard in shards)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            shard_spec(_alpha_spec(), 0)


class TestMerge:
    @pytest.mark.parametrize("build_spec", [_alpha_spec, _load_spec],
                             ids=["alpha", "load"])
    @pytest.mark.parametrize("backend", available_backends())
    def test_bit_identical_to_unsharded(self, build_spec, backend):
        spec = build_spec()
        base = run_experiment(spec, backend=backend)
        results = [run_experiment(shard, backend=backend)
                   for shard in shard_spec(spec, 4)]
        merged = merge_shards(results)
        assert merged.series == base.series
        assert merged.totals == base.totals
        assert merged.spec == spec  # name, grid, figure identity restored

    def test_merge_accepts_any_order(self):
        spec = _alpha_spec(points=8)
        results = [run_experiment(shard) for shard in shard_spec(spec, 3)]
        merged = merge_shards(list(reversed(results)))
        assert merged.series == run_experiment(spec).series

    def test_merge_roundtrips_through_artifacts(self, tmp_path):
        """Shards persisted as repro.experiment/1 files merge identically."""
        spec = _alpha_spec(points=6)
        base = run_experiment(spec)
        loaded = []
        for index, shard in enumerate(shard_spec(spec, 3)):
            path = tmp_path / f"shard{index}.json"
            save_artifact(run_experiment(shard), path)
            loaded.append(load_artifact(path))
        merged = merge_shards(loaded)
        assert merged.series == base.series
        assert merged.spec.name == spec.name
        assert merged.spec.figure == spec.figure

    def test_incomplete_set_rejected(self):
        results = [run_experiment(shard)
                   for shard in shard_spec(_alpha_spec(points=6), 3)]
        with pytest.raises(ValueError, match="incomplete shard set"):
            merge_shards(results[:-1])

    def test_mixed_parents_rejected(self):
        first = [run_experiment(shard)
                 for shard in shard_spec(_alpha_spec(points=4), 2)]
        other_spec = alpha_experiment(
            RandomPopulation(count=200, seed=0x0DB1), points=4,
            include_fixed=True, name="other-parent")
        other = [run_experiment(shard) for shard in shard_spec(other_spec, 2)]
        with pytest.raises(ValueError, match="belongs to"):
            merge_shards([first[0], other[1]])

    def test_non_shard_rejected(self):
        with pytest.raises(ValueError, match="not a shard result"):
            merge_shards([run_experiment(_alpha_spec(points=3))])


class TestRunShards:
    def test_in_process_shared_cache_encodes_once(self):
        spec = _alpha_spec(points=9)
        cache = ActivityCache()
        merged = run_shards(spec, 4, cache=cache)
        base = run_experiment(spec)
        assert merged.series == base.series
        # Static slots encode once per *run*, not once per shard: the
        # shared cache collapses the shard plans to the unsharded plan.
        assert merged.provenance["encodes"] == base.provenance["encodes"]

    def test_processes_against_shared_disk_cache(self, tmp_path):
        spec = _alpha_spec(points=8)
        base = run_experiment(spec)
        merged = run_shards(spec, 4, processes=True,
                            cache_dir=str(tmp_path))
        assert merged.series == base.series
        assert merged.totals == base.totals
        # A second sharded run is fully warm.
        warm = run_shards(spec, 4, processes=True, cache_dir=str(tmp_path))
        assert warm.provenance["encodes"] == 0
        assert warm.series == base.series

    def test_processes_reject_cache_instance(self, tmp_path):
        with pytest.raises(ValueError, match="cache_dir"):
            run_shards(_alpha_spec(points=4), 2, processes=True,
                       cache=DiskActivityCache(tmp_path))
