"""Disk-cache tier: round-trips, layering, and concurrent writers.

Everything here is NumPy-free by design — the service layer is pure
stdlib and this module runs on the no-NumPy CI leg.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.analysis.sso import SsoStatistics
from repro.extensions.reliability import FaultCoverageRow
from repro.service.diskcache import (
    CACHE_FORMAT,
    DiskActivityCache,
    decode_record,
    encode_record,
    open_cache,
    resolve_cache_dir,
)
from repro.sim import experiments
from repro.sim.experiments import (
    ActivityCache,
    ActivityTotals,
    ReplayTotals,
    alpha_experiment,
    run_experiment,
    shared_cache,
)
from repro.workloads.population import RandomPopulation

SAMPLE_RECORDS = [
    ActivityTotals(transitions=12345, zeros=678, bursts=1000),
    ReplayTotals(transactions=32, bytes_written=2048, beats=256,
                 channels=((10, 20, 128), (30, 40, 128))),
    FaultCoverageRow(rate=1e-3, injected_faults=17, total_beats=8000,
                     bit_errors=23, corrupted_beats=19, dbi_lane_faults=2),
    SsoStatistics(beats=4000, max_switching=8, total_switching=16123,
                  histogram={0: 120, 3: 1800, 8: 11}),
]


class TestRecordCodec:
    @pytest.mark.parametrize("record", SAMPLE_RECORDS,
                             ids=["activity", "replay", "fault", "sso"])
    def test_roundtrip(self, record):
        kind, payload = encode_record(record)
        # The payload must survive JSON (what the disk tier does).
        restored = decode_record(kind, json.loads(json.dumps(payload)))
        assert restored == record

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_record(object())
        with pytest.raises(ValueError):
            decode_record("martian", {})


class TestDiskActivityCache:
    def test_store_get_roundtrip_all_kinds(self, tmp_path):
        cache = DiskActivityCache(tmp_path)
        for index, record in enumerate(SAMPLE_RECORDS):
            key = f"key-{index}"
            cache.store(key, record)
            assert key in cache
            assert cache.get(key) == record
        assert len(cache) == len(SAMPLE_RECORDS)
        assert sorted(cache.iter_keys()) == sorted(
            f"key-{index}" for index in range(len(SAMPLE_RECORDS)))

    def test_read_through_populates_memory(self, tmp_path):
        writer = DiskActivityCache(tmp_path)
        writer.store("shared", SAMPLE_RECORDS[0])
        reader = DiskActivityCache(tmp_path)
        assert "shared" in reader  # read from disk
        # Remove the file: the memory tier must still serve it.
        for name in os.listdir(tmp_path):
            os.unlink(tmp_path / name)
        assert reader.get("shared") == SAMPLE_RECORDS[0]
        # A fresh instance sees the (now empty) truth on disk.
        assert "shared" not in DiskActivityCache(tmp_path)

    def test_missing_key(self, tmp_path):
        cache = DiskActivityCache(tmp_path)
        assert "nope" not in cache
        with pytest.raises(KeyError):
            cache.get("nope")

    def test_corrupt_entry_is_a_miss_and_recoverable(self, tmp_path):
        cache = DiskActivityCache(tmp_path)
        cache.store("k", SAMPLE_RECORDS[0])
        path = cache._path("k")
        path_content = open(path).read()
        open(path, "w").write(path_content[: len(path_content) // 2])
        fresh = DiskActivityCache(tmp_path)
        assert "k" not in fresh
        fresh.store("k", SAMPLE_RECORDS[0])
        assert fresh.get("k") == SAMPLE_RECORDS[0]

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = DiskActivityCache(tmp_path)
        cache.store("original", SAMPLE_RECORDS[0])
        payload = json.load(open(cache._path("original")))
        assert payload["format"] == CACHE_FORMAT
        payload["key"] = "someone-else"
        json.dump(payload, open(cache._path("original"), "w"))
        assert "original" not in DiskActivityCache(tmp_path)

    def test_foreign_json_files_ignored(self, tmp_path):
        (tmp_path / "notes.json").write_text("[1, 2, 3]\n")
        cache = DiskActivityCache(tmp_path)
        assert list(cache.iter_keys()) == []

    def test_clear_removes_files(self, tmp_path):
        cache = DiskActivityCache(tmp_path)
        cache.store("k", SAMPLE_RECORDS[0])
        cache.clear()
        assert len(cache) == 0
        assert "k" not in DiskActivityCache(tmp_path)

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = DiskActivityCache(tmp_path)
        for index in range(20):
            cache.store(f"k{index}", SAMPLE_RECORDS[0])
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".tmp")]


class TestDegradation:
    def test_write_failure_downgrades_to_memory_only(self, tmp_path,
                                                     monkeypatch):
        cache = DiskActivityCache(tmp_path)

        def full_disk(temp, path):
            raise OSError(28, "no space left on device")

        monkeypatch.setattr(cache, "_publish", full_disk)
        cache.store("k", SAMPLE_RECORDS[0])  # must not raise
        assert cache.get("k") == SAMPLE_RECORDS[0]  # memory keeps serving
        health = cache.health()
        assert health["tier"] == "memory-only"
        assert health["degraded"] is True
        assert "no space left" in health["degraded_reason"]
        assert health["write_failures"] == 1
        # Degradation is sticky: later stores skip disk entirely.
        cache.store("k2", SAMPLE_RECORDS[0])
        assert cache.get("k2") == SAMPLE_RECORDS[0]
        assert DiskActivityCache(tmp_path)._load("k2") is None

    def test_no_temp_files_after_failed_publish(self, tmp_path,
                                                monkeypatch):
        cache = DiskActivityCache(tmp_path)
        monkeypatch.setattr(
            cache, "_publish",
            lambda temp, path: (_ for _ in ()).throw(OSError(28, "full")))
        cache.store("k", SAMPLE_RECORDS[0])
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".tmp")]

    def test_unwritable_directory_degrades_at_construction(self):
        cache = DiskActivityCache("/proc/definitely/not/writable")
        assert cache.health()["tier"] == "memory-only"
        cache.store("k", SAMPLE_RECORDS[0])  # memory tier still works
        assert cache.get("k") == SAMPLE_RECORDS[0]

    def test_corrupt_entry_quarantined_once(self, tmp_path):
        cache = DiskActivityCache(tmp_path)
        cache.store("k", SAMPLE_RECORDS[0])
        path = cache._path("k")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        fresh = DiskActivityCache(tmp_path)
        assert "k" not in fresh
        assert os.path.exists(f"{path}.bad")
        assert not os.path.exists(path)
        assert fresh.health()["quarantined"] == 1
        # The quarantined copy is never re-parsed; a clean store heals.
        fresh.store("k", SAMPLE_RECORDS[0])
        assert DiskActivityCache(tmp_path).get("k") == SAMPLE_RECORDS[0]

    def test_healthy_cache_health_snapshot(self, tmp_path):
        cache = DiskActivityCache(tmp_path)
        cache.store("k", SAMPLE_RECORDS[0])
        health = cache.health()
        assert health["tier"] == "disk"
        assert health["degraded"] is False
        assert health["degraded_reason"] is None
        assert health["memory_entries"] == 1
        assert health["write_failures"] == 0
        assert health["quarantined"] == 0

    def test_memory_cache_health_baseline(self):
        health = ActivityCache().health()
        assert health["tier"] == "memory"
        assert health["degraded"] is False


class TestEngineIntegration:
    def test_warm_run_skips_all_encodes(self, tmp_path):
        population = RandomPopulation(count=120, seed=11)
        spec = alpha_experiment(population, points=7, include_fixed=True)
        cold = run_experiment(spec, cache=DiskActivityCache(tmp_path))
        assert cold.provenance["encodes"] > 0
        warm = run_experiment(spec, cache=DiskActivityCache(tmp_path))
        assert warm.provenance["encodes"] == 0
        assert warm.series == cold.series
        assert warm.totals == cold.totals

    def test_baseline_matches_memory_cache(self, tmp_path):
        population = RandomPopulation(count=100, seed=5)
        spec = alpha_experiment(population, points=5)
        plain = run_experiment(spec)
        disk = run_experiment(spec, cache=DiskActivityCache(tmp_path))
        assert disk.series == plain.series


class TestResolution:
    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/env/dir")
        assert resolve_cache_dir("/flag/dir") == "/flag/dir"
        assert resolve_cache_dir(None) == "/env/dir"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert resolve_cache_dir(None) is None
        assert open_cache(None) is None

    def test_open_cache_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        cache = open_cache(str(target))
        assert isinstance(cache, DiskActivityCache)
        assert os.path.isdir(target)

    def test_shared_cache_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setattr(experiments, "_SHARED_CACHE", None)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = shared_cache()
        assert isinstance(cache, DiskActivityCache)
        assert cache.directory == str(tmp_path)
        assert shared_cache() is cache  # memoised per directory
        monkeypatch.delenv("REPRO_CACHE_DIR")
        plain = shared_cache()
        assert type(plain) is ActivityCache

    def test_shared_cache_survives_process_restart(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setattr(experiments, "_SHARED_CACHE", None)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = alpha_experiment(RandomPopulation(count=80, seed=2), points=5)
        cold = run_experiment(spec, cache=shared_cache())
        assert cold.provenance["encodes"] > 0
        # Simulate a new process: fresh module state, same environment.
        monkeypatch.setattr(experiments, "_SHARED_CACHE", None)
        warm = run_experiment(spec, cache=shared_cache())
        assert warm.provenance["encodes"] == 0
        assert warm.series == cold.series


# -- concurrent writers ------------------------------------------------------

#: Workers hammer disjoint *and* overlapping keys; overlapping keys are
#: content-addressed (same record from every writer), like the engine's.
N_WORKERS = 6
ROUNDS = 3
PRIVATE_KEYS = 15
SHARED_KEYS = 15


def _expected_record(key: str):
    """Deterministic content per key — wide enough to widen race windows."""
    seed = sum(key.encode())
    return ReplayTotals(
        transactions=seed * 3 + 1,
        bytes_written=seed * 64,
        beats=seed * 8,
        channels=tuple((seed + channel, seed * 2 + channel, channel)
                       for channel in range(32)))


def _worker_keys(worker: int):
    private = [f"private-{worker}-{index}" for index in range(PRIVATE_KEYS)]
    shared = [f"shared-{index}" for index in range(SHARED_KEYS)]
    return private + shared


def _hammer(directory: str, worker: int, barrier, queue) -> None:
    cache = DiskActivityCache(directory)
    barrier.wait()  # maximise write overlap
    stored = 0
    for __ in range(ROUNDS):
        for key in _worker_keys(worker):
            cache.store(key, _expected_record(key))
            stored += 1
            # Interleave reads of keys other workers are writing.
            probe = f"shared-{stored % SHARED_KEYS}"
            if probe in cache:
                assert cache.get(probe) == _expected_record(probe)
    queue.put((worker, stored))


def _run_workers(target, args_per_worker, count):
    """Spawn *count* processes, collect one queue item each, join."""
    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    workers = [context.Process(target=target, args=args + (queue,))
               for args in args_per_worker]
    for process in workers:
        process.start()
    results = [queue.get(timeout=180) for __ in range(count)]
    for process in workers:
        process.join(timeout=60)
        assert process.exitcode == 0
    return results


def test_concurrent_writers_no_torn_entries(tmp_path):
    """N processes × overlapping keys: every entry intact, totals serial.

    The serial expectation is computed first; the parallel hammering
    must leave the cache in exactly that state — same keys, same
    records, no leftover temp files, every file parseable.
    """
    expected = {}
    for worker in range(N_WORKERS):
        for key in _worker_keys(worker):
            expected[key] = _expected_record(key)

    context = multiprocessing.get_context("spawn")
    barrier = context.Barrier(N_WORKERS)
    counts = _run_workers(
        _hammer, [(str(tmp_path), worker, barrier)
                  for worker in range(N_WORKERS)], N_WORKERS)
    assert sorted(worker for worker, __ in counts) == list(range(N_WORKERS))
    assert all(count == ROUNDS * (PRIVATE_KEYS + SHARED_KEYS)
               for __, count in counts)

    # No torn/partial entries: every file parses and carries its key.
    survivor = DiskActivityCache(tmp_path)
    assert not [name for name in os.listdir(tmp_path)
                if name.endswith(".tmp")]
    assert sorted(survivor.iter_keys()) == sorted(expected)
    assert len(survivor) == len(expected)
    for key, record in expected.items():
        assert survivor.get(key) == record


def _engine_run(directory, queue) -> None:
    cache = DiskActivityCache(directory) if directory else None
    spec = alpha_experiment(RandomPopulation(count=150, seed=9), points=7,
                            include_fixed=True)
    queue.put(run_experiment(spec, cache=cache).series)


def test_concurrent_engine_runs_share_one_cache(tmp_path):
    """Two processes running the same experiment against one directory
    finish with the serial run's series, whoever wins each encode."""
    series = _run_workers(_engine_run, [(str(tmp_path),), (str(tmp_path),)],
                          2)
    context = multiprocessing.get_context("spawn")
    reference_queue = context.Queue()
    _engine_run(None, reference_queue)
    expected = reference_queue.get(timeout=60)
    assert series[0] == expected
    assert series[1] == expected
