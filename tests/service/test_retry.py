"""Retry policy: taxonomy, deterministic backoff, call semantics."""

from __future__ import annotations

import pytest

from repro.service.retry import (
    TRANSIENT_ERRORS,
    RetryExhaustedError,
    RetryPolicy,
    TransientServiceError,
)


class TestTaxonomy:
    def test_default_transients(self):
        policy = RetryPolicy()
        for error in (ConnectionError("reset"), ConnectionResetError(),
                      TimeoutError("late"), EOFError(),
                      TransientServiceError("busy")):
            assert policy.is_retryable(error)

    def test_permanent_errors_not_retryable(self):
        policy = RetryPolicy()
        for error in (ValueError("bad input"), KeyError("k"),
                      OSError(28, "disk full"), RuntimeError("bug")):
            assert not policy.is_retryable(error)

    def test_custom_taxonomy(self):
        policy = RetryPolicy(retryable=TRANSIENT_ERRORS + (OSError,))
        assert policy.is_retryable(OSError(28, "disk full"))
        assert policy.is_retryable(ConnectionError())
        assert not policy.is_retryable(ValueError())


class TestBackoff:
    def test_deterministic_across_policies(self):
        one = RetryPolicy(seed=7)
        two = RetryPolicy(seed=7)
        assert [one.delay_for(n) for n in range(1, 6)] \
            == [two.delay_for(n) for n in range(1, 6)]

    def test_seed_changes_schedule(self):
        assert RetryPolicy(seed=1).delay_for(1) \
            != RetryPolicy(seed=2).delay_for(1)

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=0.35, jitter=0.0)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.35)  # capped
        assert policy.delay_for(9) == pytest.approx(0.35)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0,
                             max_delay_s=1.0, jitter=0.25)
        for attempt in range(1, 20):
            assert 0.75 <= policy.delay_for(attempt) <= 1.25

    def test_zero_base_delay_is_zero(self):
        assert RetryPolicy(base_delay_s=0.0).delay_for(1) == 0.0

    def test_attempt_numbers_start_at_one(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCall:
    def test_success_first_try(self):
        assert RetryPolicy().call(lambda: 42) == 42

    def test_retries_transient_then_succeeds(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("reset")
            return "done"

        policy = RetryPolicy(max_attempts=3)
        assert policy.call(flaky, sleep=slept.append) == "done"
        assert len(attempts) == 3
        assert slept == [policy.delay_for(1), policy.delay_for(2)]

    def test_non_retryable_propagates_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("permanent")

        with pytest.raises(ValueError, match="permanent"):
            RetryPolicy(max_attempts=5).call(broken, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_exhaustion_is_typed_and_chains(self):
        def always_fails():
            raise TimeoutError("stall")

        with pytest.raises(RetryExhaustedError) as info:
            RetryPolicy(max_attempts=2).call(always_fails,
                                             sleep=lambda _: None)
        assert info.value.attempts == 2
        assert isinstance(info.value.last_error, TimeoutError)
        assert isinstance(info.value.__cause__, TimeoutError)

    def test_before_retry_observes_failures(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise EOFError("torn")
            return "ok"

        RetryPolicy(max_attempts=3).call(
            flaky, sleep=lambda _: None,
            before_retry=lambda attempt, error: seen.append(
                (attempt, type(error).__name__)))
        assert seen == [(1, "EOFError"), (2, "EOFError")]

    def test_single_attempt_policy_never_retries(self):
        with pytest.raises(RetryExhaustedError):
            RetryPolicy(max_attempts=1).call(
                lambda: (_ for _ in ()).throw(ConnectionError()),
                sleep=lambda _: None)
