"""Query daemon: protocol, canonical equivalence to direct runs, errors.

The daemon under test runs in-process on an ephemeral port (``port=0``),
one per test class via fixtures; the smoke driver
(:mod:`repro.service.smoke`, exercised by CI) covers the
subprocess-spawned path.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.analysis.artifacts import canonical_artifact_json
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    ExperimentDaemon,
    replay_spec_from_params,
    sweep_spec_from_params,
)
from repro.sim.experiments import (
    replay_result_to_json,
    result_to_json,
    run_experiment,
    run_replay,
    save_artifact,
)

SWEEP_PARAMS = {"figure": "alpha", "samples": 120, "points": 5, "seed": 42}
REPLAY_PARAMS = {"bursts": 60, "seed": 9, "channels": 2, "lanes": 2,
                 "interfaces": ["pod135", "lvstl11"]}


@pytest.fixture()
def daemon(tmp_path):
    instance = ExperimentDaemon(port=0, cache_dir=str(tmp_path / "cache"),
                                artifact_dir=str(tmp_path / "artifacts"))
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    thread.join(timeout=10)


@pytest.fixture()
def client(daemon):
    host, port = daemon.address
    with ServiceClient(host, port, timeout=60) as connected:
        yield connected


class TestProtocol:
    def test_ping(self, client):
        response = client.ping()
        assert response["pong"] is True
        assert "version" in response

    def test_unknown_op(self, client):
        response = client.request({"op": "fridge"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_non_object_request(self, client):
        response = client.request({"op": "ping"})  # warm the connection
        assert response["ok"]
        raw = client._file
        raw.write(b"[1, 2, 3]\n")
        raw.flush()
        response = json.loads(raw.readline())
        assert response["ok"] is False

    def test_bad_json_line_keeps_connection_alive(self, daemon):
        host, port = daemon.address
        with socket.create_connection((host, port), timeout=30) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.flush()
            error = json.loads(handle.readline())
            assert error["ok"] is False
            assert "bad request line" in error["error"]
            handle.write(b'{"op": "ping"}\n')
            handle.flush()
            assert json.loads(handle.readline())["ok"] is True

    def test_blank_lines_ignored(self, daemon):
        host, port = daemon.address
        with socket.create_connection((host, port), timeout=30) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"\n\n{\"op\": \"ping\"}\n")
            handle.flush()
            assert json.loads(handle.readline())["ok"] is True


class TestSweep:
    def test_matches_direct_run_canonically(self, client):
        artifact = client.sweep(**SWEEP_PARAMS)
        direct = result_to_json(
            run_experiment(sweep_spec_from_params(SWEEP_PARAMS)))
        assert (canonical_artifact_json(artifact)
                == canonical_artifact_json(direct))

    def test_warm_query_hits_disk_cache(self, client):
        cold = client.sweep(**SWEEP_PARAMS)
        assert cold["provenance"]["encodes"] > 0
        warm = client.sweep(**SWEEP_PARAMS)
        assert warm["provenance"]["encodes"] == 0
        assert (canonical_artifact_json(cold)
                == canonical_artifact_json(warm))
        stats = client.stats()
        assert stats["cache_entries"] > 0
        assert stats["served"]["sweep"] == 2

    def test_bad_figure_is_an_error_response(self, client):
        with pytest.raises(ServiceError, match="unknown figure"):
            client.sweep(figure="pie")

    def test_oversized_request_rejected(self, client):
        with pytest.raises(ServiceError, match="samples"):
            client.sweep(figure="alpha", samples=10_000_000)


class TestReplay:
    def test_matches_direct_run_canonically(self, client):
        artifact = client.replay(**REPLAY_PARAMS)
        direct = replay_result_to_json(
            run_replay(replay_spec_from_params(REPLAY_PARAMS)))
        assert (canonical_artifact_json(artifact)
                == canonical_artifact_json(direct))

    def test_payload_hex(self, client):
        payload = bytes(range(64)) * 8
        artifact = client.replay(payload_hex=payload.hex(), channels=2,
                                 lanes=2)
        assert artifact["kind"] == "replay"
        assert artifact["spec"]["payload"]["bytes"] == len(payload)


class TestArtifacts:
    def test_list_fetch_and_reject(self, daemon, client, tmp_path):
        assert client.artifacts() == []
        result = run_experiment(sweep_spec_from_params(SWEEP_PARAMS))
        (tmp_path / "artifacts").mkdir(exist_ok=True)
        save_artifact(result, tmp_path / "artifacts" / "fig.json")
        assert client.artifacts() == ["fig.json"]
        fetched = client.artifact("fig.json")
        assert (canonical_artifact_json(fetched)
                == canonical_artifact_json(result_to_json(result)))
        with pytest.raises(ServiceError, match="unknown artifact"):
            client.artifact("missing.json")
        with pytest.raises(ServiceError, match="unknown artifact"):
            client.artifact("../secrets.json")

    def test_without_artifact_dir(self):
        daemon = ExperimentDaemon(port=0)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = daemon.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError, match="artifact-dir"):
                    client.artifacts()
        finally:
            daemon.shutdown()
            thread.join(timeout=10)


class TestErrorPaths:
    def test_replay_burst_budget_enforced(self, client):
        with pytest.raises(ServiceError, match="bursts"):
            client.replay(bursts=10_000_000)

    def test_malformed_then_valid_requests_interleave(self, daemon):
        host, port = daemon.address
        with socket.create_connection((host, port), timeout=30) as sock:
            handle = sock.makefile("rwb")
            for garbage in (b"{truncated\n", b'"just a string"\n',
                            b"[]\n"):
                handle.write(garbage)
                handle.flush()
                assert json.loads(handle.readline())["ok"] is False
            handle.write(b'{"op": "ping"}\n')
            handle.flush()
            assert json.loads(handle.readline())["ok"] is True

    def test_client_disconnect_mid_response_daemon_survives(self, daemon):
        host, port = daemon.address
        # Send a sweep request and slam the connection shut without
        # reading the (large) response; the daemon must shrug it off.
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(json.dumps({"op": "sweep", **SWEEP_PARAMS})
                         .encode("utf-8") + b"\n")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")  # RST
        # A fresh client still gets full service.
        with ServiceClient(host, port, timeout=60) as client:
            assert client.ping()["pong"] is True
            artifact = client.sweep(**SWEEP_PARAMS)
            assert artifact["provenance"]["grid_cells"] > 0

    def test_health_op(self, client):
        health = client.health()
        assert health["cache"]["tier"] == "disk"
        assert health["cache"]["degraded"] is False
        assert health["busy_rejections"] == 0
        assert health["uptime_s"] >= 0
        assert "served" in health


class TestServingLimits:
    def test_request_timeout_drops_idle_connections(self, tmp_path):
        daemon = ExperimentDaemon(port=0, request_timeout=0.3)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = daemon.address
            with socket.create_connection((host, port), timeout=30) as sock:
                handle = sock.makefile("rwb")
                # Say nothing: the daemon's deadline closes the stream.
                assert handle.readline() == b""
            # Prompt clients are unaffected.
            with ServiceClient(host, port) as client:
                assert client.ping()["pong"] is True
        finally:
            daemon.shutdown()
            thread.join(timeout=10)

    def test_connection_limit_sends_retryable_busy(self):
        daemon = ExperimentDaemon(port=0, max_connections=1)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = daemon.address
            with socket.create_connection((host, port), timeout=30):
                with socket.create_connection((host, port),
                                              timeout=30) as second:
                    line = second.makefile("rb").readline()
                    busy = json.loads(line)
                    assert busy["ok"] is False
                    assert busy["retryable"] is True
            with ServiceClient(host, port) as client:
                health = client.health()
                assert health["busy_rejections"] == 1
        finally:
            daemon.shutdown()
            thread.join(timeout=10)


class TestConcurrentClients:
    def test_interleaved_sweep_and_stats(self, daemon):
        host, port = daemon.address
        failures = []

        def sweeper():
            try:
                with ServiceClient(host, port, timeout=120) as client:
                    artifact = client.sweep(**SWEEP_PARAMS)
                    assert artifact["provenance"]["grid_cells"] > 0
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append(error)

        def poller():
            try:
                with ServiceClient(host, port, timeout=120) as client:
                    for __ in range(10):
                        stats = client.stats()
                        assert "served" in stats
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append(error)

        threads = [threading.Thread(target=sweeper),
                   threading.Thread(target=poller)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert failures == []

    def test_parallel_queries_consistent(self, daemon):
        host, port = daemon.address
        outputs = []
        lock = threading.Lock()

        def query():
            with ServiceClient(host, port, timeout=120) as client:
                artifact = client.sweep(**SWEEP_PARAMS)
                with lock:
                    outputs.append(canonical_artifact_json(artifact))

        threads = [threading.Thread(target=query) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(outputs) == 4
        assert len(set(outputs)) == 1
