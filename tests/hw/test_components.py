"""Bit-true property tests for the datapath components."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.components import (
    add_many,
    full_adder,
    half_adder,
    less_than,
    min_select,
    multiply,
    mux_bus,
    popcount,
    ripple_adder,
    subtract_from_const,
    xor_bus,
    xor_with_bit,
)
from repro.hw.netlist import Netlist


def _run(nl, outputs_name, bits, assignment):
    nl.mark_output(outputs_name, bits)
    return nl.evaluate(assignment)[outputs_name]


class TestAdders:
    def test_half_adder_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                nl = Netlist("ha")
                an, = nl.add_input("a", 1)
                bn, = nl.add_input("b", 1)
                s, c = half_adder(nl, an, bn)
                nl.mark_output("s", [s, c])
                out = nl.evaluate({"a": a, "b": b})["s"]
                assert out == a + b

    def test_full_adder_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    nl = Netlist("fa")
                    an, = nl.add_input("a", 1)
                    bn, = nl.add_input("b", 1)
                    cn, = nl.add_input("c", 1)
                    s, c = full_adder(nl, an, bn, cn)
                    nl.mark_output("s", [s, c])
                    assert nl.evaluate({"a": a, "b": b, "c": cin})["s"] == a + b + cin

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_ripple_adder(self, a, b):
        nl = Netlist("add")
        a_bits = nl.add_input("a", 8)
        b_bits = nl.add_input("b", 8)
        total = ripple_adder(nl, a_bits, b_bits)
        assert _run(nl, "sum", total, {"a": a, "b": b}) == a + b

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=255))
    def test_mixed_width_adder(self, a, b):
        nl = Netlist("add")
        a_bits = nl.add_input("a", 4)
        b_bits = nl.add_input("b", 8)
        total = ripple_adder(nl, a_bits, b_bits)
        assert _run(nl, "sum", total, {"a": a, "b": b}) == a + b

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=4))
    def test_add_many(self, values):
        nl = Netlist("addmany")
        operands = []
        assignment = {}
        for index, value in enumerate(values):
            bits = nl.add_input(f"v{index}", 6)
            operands.append(bits)
            assignment[f"v{index}"] = value
        total = add_many(nl, operands, width=10)
        assert _run(nl, "sum", total, assignment) == sum(values)


class TestPopcount:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=255))
    def test_popcount8(self, value):
        nl = Netlist("pc")
        bits = nl.add_input("x", 8)
        count = popcount(nl, bits)
        assert len(count) == 4
        assert _run(nl, "count", count, {"x": value}) == bin(value).count("1")

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=4095))
    def test_popcount_any_width(self, width, value):
        value &= (1 << width) - 1
        nl = Netlist("pc")
        bits = nl.add_input("x", width)
        count = popcount(nl, bits)
        assert _run(nl, "count", count, {"x": value}) == bin(value).count("1")


class TestBitwiseBanks:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_xor_bus(self, a, b):
        nl = Netlist("xor")
        a_bits = nl.add_input("a", 8)
        b_bits = nl.add_input("b", 8)
        assert _run(nl, "y", xor_bus(nl, a_bits, b_bits),
                    {"a": a, "b": b}) == a ^ b

    def test_xor_bus_width_mismatch(self):
        nl = Netlist("xor")
        a_bits = nl.add_input("a", 4)
        b_bits = nl.add_input("b", 8)
        with pytest.raises(ValueError):
            xor_bus(nl, a_bits, b_bits)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=255), st.booleans())
    def test_xor_with_bit(self, value, control):
        nl = Netlist("inv")
        bits = nl.add_input("x", 8)
        ctrl, = nl.add_input("c", 1)
        expected = value ^ 0xFF if control else value
        assert _run(nl, "y", xor_with_bit(nl, bits, ctrl),
                    {"x": value, "c": int(control)}) == expected

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255), st.booleans())
    def test_mux_bus(self, a, b, select):
        nl = Netlist("mux")
        a_bits = nl.add_input("a", 8)
        b_bits = nl.add_input("b", 8)
        s, = nl.add_input("s", 1)
        expected = b if select else a
        assert _run(nl, "y", mux_bus(nl, a_bits, b_bits, s),
                    {"a": a, "b": b, "s": int(select)}) == expected


class TestComparison:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_less_than(self, a, b):
        nl = Netlist("lt")
        a_bits = nl.add_input("a", 8)
        b_bits = nl.add_input("b", 8)
        lt = less_than(nl, a_bits, b_bits)
        assert _run(nl, "lt", [lt], {"a": a, "b": b}) == int(a < b)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=255))
    def test_less_than_mixed_width(self, a, b):
        nl = Netlist("lt")
        a_bits = nl.add_input("a", 4)
        b_bits = nl.add_input("b", 8)
        lt = less_than(nl, a_bits, b_bits)
        assert _run(nl, "lt", [lt], {"a": a, "b": b}) == int(a < b)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_min_select(self, a, b):
        nl = Netlist("min")
        a_bits = nl.add_input("a", 8)
        b_bits = nl.add_input("b", 8)
        minimum, selector = min_select(nl, a_bits, b_bits)
        nl.mark_output("min", minimum)
        nl.mark_output("sel", [selector])
        out = nl.evaluate({"a": a, "b": b})
        assert out["min"] == min(a, b)
        assert out["sel"] == int(b < a)


class TestSubtractAndMultiply:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=8))
    def test_subtract_from_const(self, x):
        nl = Netlist("sub")
        bits = nl.add_input("x", 4)
        result = subtract_from_const(nl, 9, bits, 4)
        assert _run(nl, "y", result, {"x": x}) == 9 - x

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=7))
    def test_multiply(self, a, b):
        nl = Netlist("mul")
        a_bits = nl.add_input("a", 4)
        b_bits = nl.add_input("b", 3)
        product = multiply(nl, a_bits, b_bits)
        assert len(product) == 7
        assert _run(nl, "p", product, {"a": a, "b": b}) == a * b

    def test_multiply_empty_rejected(self):
        nl = Netlist("mul")
        bits = nl.add_input("a", 2)
        with pytest.raises(ValueError):
            multiply(nl, bits, [])
