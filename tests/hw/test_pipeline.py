"""Unit tests for the pipeline cut analysis."""

import pytest

from repro.hw.cells import REGISTER_OVERHEAD_PS
from repro.hw.encoders import build_ac_encoder, build_dc_encoder, build_opt_encoder
from repro.hw.netlist import Netlist
from repro.hw.pipeline import PipelinePlan, plan_pipeline, stages_for_frequency


@pytest.fixture(scope="module")
def opt_netlist():
    return build_opt_encoder(8)


class TestPlanPipeline:
    def test_validation(self, opt_netlist):
        with pytest.raises(ValueError):
            plan_pipeline(opt_netlist, 0)

    def test_single_stage_is_combinational(self, opt_netlist):
        plan = plan_pipeline(opt_netlist, 1)
        assert plan.stages == 1
        assert plan.cut_widths == ()
        assert plan.cycle_time_ps == pytest.approx(
            opt_netlist.critical_path_ps() + REGISTER_OVERHEAD_PS)

    def test_more_stages_reduce_cycle_time(self, opt_netlist):
        times = [plan_pipeline(opt_netlist, stages).cycle_time_ps
                 for stages in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_stage_delays_cover_critical_path(self, opt_netlist):
        plan = plan_pipeline(opt_netlist, 4)
        assert len(plan.stage_delays_ps) == 4
        # No stage can be faster than path/stages (balancing bound).
        assert max(plan.stage_delays_ps) >= \
            opt_netlist.critical_path_ps() / 4 - 1e-9

    def test_cut_widths_positive(self, opt_netlist):
        plan = plan_pipeline(opt_netlist, 4)
        assert len(plan.cut_widths) == 3
        assert all(width > 0 for width in plan.cut_widths)
        assert plan.total_register_bits == sum(plan.cut_widths)

    def test_empty_netlist(self):
        nl = Netlist("empty")
        nl.add_input("a", 1)
        plan = plan_pipeline(nl, 4)
        assert plan.stages == 1

    def test_eight_stage_opt_reaches_gddr5x_class_rates(self, opt_netlist):
        """With the paper's 8 output pipeline stages the fixed-coefficient
        design reaches the 1.5 GHz burst-rate class."""
        plan = plan_pipeline(opt_netlist, 8)
        assert plan.max_frequency_hz > 1.4e9


class TestStagesForFrequency:
    def test_dc_needs_no_pipelining(self):
        assert stages_for_frequency(build_dc_encoder(8), 1.5e9) == 1

    def test_chained_designs_need_stages(self):
        ac_stages = stages_for_frequency(build_ac_encoder(8), 1.5e9)
        assert ac_stages > 1

    def test_deeper_design_needs_more_stages(self, opt_netlist):
        q3 = build_opt_encoder(8, coefficient_bits=3)
        assert (stages_for_frequency(q3, 1.5e9)
                >= stages_for_frequency(opt_netlist, 1.5e9))

    def test_unreachable_frequency_sentinel(self, opt_netlist):
        # Register overhead bounds any pipeline below ~10 GHz.
        assert stages_for_frequency(opt_netlist, 100e9, max_stages=8) == 9

    def test_validation(self, opt_netlist):
        with pytest.raises(ValueError):
            stages_for_frequency(opt_netlist, 0.0)
