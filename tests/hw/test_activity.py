"""Unit tests for activity stimulus helpers."""

import pytest

from repro.core.burst import Burst
from repro.hw.activity import (
    DEFAULT_ACTIVITY_BURSTS,
    burst_to_vector,
    iter_vectors,
    measure_activity,
    vectors_from_bursts,
)
from repro.hw.encoders import build_dc_encoder
from repro.workloads.patterns import pattern_suite
from repro.workloads.population import ExplicitPopulation, RandomPopulation


def test_burst_to_vector_contract():
    vector = burst_to_vector(Burst([1, 2, 3]))
    assert vector == {"byte0": 1, "byte1": 2, "byte2": 3, "prev_word": 0x1FF}


def test_burst_to_vector_with_coefficients():
    vector = burst_to_vector(Burst([1]), alpha=3, beta=5)
    assert vector["alpha"] == 3
    assert vector["beta"] == 5


def test_vectors_from_bursts_length():
    bursts = [Burst([1] * 8)] * 4
    assert len(vectors_from_bursts(bursts)) == 4


def test_measure_activity_runs():
    netlist = build_dc_encoder(8)
    report = measure_activity(netlist, n_bursts=20)
    assert report.n_cycles == 19
    assert report.switching_energy_per_cycle_j() > 0
    assert 0 < report.mean_toggle_rate() < 1


def test_measure_activity_deterministic():
    netlist = build_dc_encoder(8)
    a = measure_activity(netlist, n_bursts=15, seed=7)
    b = measure_activity(netlist, n_bursts=15, seed=7)
    assert a.gate_toggles == b.gate_toggles


def test_measure_activity_validation():
    with pytest.raises(ValueError):
        measure_activity(build_dc_encoder(8), n_bursts=1)


def test_iter_vectors_is_lazy():
    iterator = iter_vectors(iter([Burst([1, 2]), Burst([3, 4])]))
    first = next(iterator)
    assert first["byte0"] == 1 and first["byte1"] == 2
    assert next(iterator)["byte0"] == 3


def test_measure_activity_population_matches_n_bursts():
    """population= with the same content gives the same report as the
    legacy (n_bursts, seed) form."""
    netlist = build_dc_encoder(8)
    by_count = measure_activity(netlist, n_bursts=40, seed=11)
    by_population = measure_activity(
        netlist, population=RandomPopulation(count=40, seed=11))
    assert by_count.gate_toggles == by_population.gate_toggles


def test_measure_activity_explicit_bursts():
    netlist = build_dc_encoder(8)
    bursts = pattern_suite(8) * 3
    via_bursts = measure_activity(netlist, bursts=bursts)
    via_population = measure_activity(netlist,
                                      population=ExplicitPopulation(bursts))
    reference = netlist.simulate_activity(iter_vectors(bursts),
                                          backend="reference")
    assert via_bursts.gate_toggles == via_population.gate_toggles
    assert via_bursts.gate_toggles == reference.gate_toggles


def test_measure_activity_patterned_workload_differs_from_random():
    """Directed patterns exercise different activity than random traffic
    (the reason measure_activity accepts populations at all)."""
    netlist = build_dc_encoder(8)
    patterned = measure_activity(netlist, bursts=pattern_suite(8) * 4)
    rand = measure_activity(netlist, n_bursts=len(pattern_suite(8)) * 4)
    assert patterned.gate_toggles != rand.gate_toggles


def test_measure_activity_population_and_bursts_conflict():
    netlist = build_dc_encoder(8)
    population = RandomPopulation(count=4)
    with pytest.raises(ValueError, match="not both"):
        measure_activity(netlist, population=population,
                         bursts=population.bursts())


def test_measure_activity_n_bursts_population_mismatch():
    netlist = build_dc_encoder(8)
    with pytest.raises(ValueError, match="conflicts"):
        measure_activity(netlist, n_bursts=5,
                         population=RandomPopulation(count=4))


def test_measure_activity_n_bursts_bursts_mismatch():
    """bursts= must be held to the same n_bursts consistency check as
    population= instead of silently ignoring the requested count."""
    netlist = build_dc_encoder(8)
    with pytest.raises(ValueError, match="conflicts"):
        measure_activity(netlist, n_bursts=500,
                         bursts=RandomPopulation(count=10).bursts())


def test_packed_path_rejects_overflowing_narrow_bus():
    """A byte lane narrower than 8 bits must reject out-of-range values
    on every backend, not silently truncate on the packed fast path."""
    from repro.hw.netlist import Netlist

    nl = Netlist("narrow")
    bits = nl.add_input("byte0", 4)
    nl.add_input("prev_word", 9)
    nl.mark_output("y", [nl.gate("INV", bit) for bit in bits])
    bursts = [Burst([200]), Burst([3]), Burst([7])]
    for backend in ("reference", "vector"):
        with pytest.raises(ValueError, match="does not fit in 4 bits"):
            measure_activity(nl, bursts=bursts, backend=backend)


def test_default_workload_is_100k():
    assert DEFAULT_ACTIVITY_BURSTS == 100_000
