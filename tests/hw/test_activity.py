"""Unit tests for activity stimulus helpers."""

import pytest

from repro.core.burst import Burst
from repro.hw.activity import (
    burst_to_vector,
    measure_activity,
    vectors_from_bursts,
)
from repro.hw.encoders import build_dc_encoder


def test_burst_to_vector_contract():
    vector = burst_to_vector(Burst([1, 2, 3]))
    assert vector == {"byte0": 1, "byte1": 2, "byte2": 3, "prev_word": 0x1FF}


def test_burst_to_vector_with_coefficients():
    vector = burst_to_vector(Burst([1]), alpha=3, beta=5)
    assert vector["alpha"] == 3
    assert vector["beta"] == 5


def test_vectors_from_bursts_length():
    bursts = [Burst([1] * 8)] * 4
    assert len(vectors_from_bursts(bursts)) == 4


def test_measure_activity_runs():
    netlist = build_dc_encoder(8)
    report = measure_activity(netlist, n_bursts=20)
    assert report.n_cycles == 19
    assert report.switching_energy_per_cycle_j() > 0
    assert 0 < report.mean_toggle_rate() < 1


def test_measure_activity_deterministic():
    netlist = build_dc_encoder(8)
    a = measure_activity(netlist, n_bursts=15, seed=7)
    b = measure_activity(netlist, n_bursts=15, seed=7)
    assert a.gate_toggles == b.gate_toggles


def test_measure_activity_validation():
    with pytest.raises(ValueError):
        measure_activity(build_dc_encoder(8), n_bursts=1)
