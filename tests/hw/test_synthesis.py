"""Unit tests for the synthesis estimator and the Table I reproduction.

Absolute numbers are calibration-dependent; these tests pin down the
*orderings and ratios* the paper's Table I establishes.
"""

import pytest

from repro.hw.synthesis import (
    SynthesisResult,
    TARGET_BURST_RATE_HZ,
    _design_specs,
    _leakage_derate,
    encoder_energy_per_burst,
    synthesize,
    table_one,
    table_one_markdown,
)


@pytest.fixture(scope="module")
def results():
    return table_one()


class TestLeakageDerate:
    def test_relaxed_designs_unpenalised(self):
        assert _leakage_derate(0.3) == 1.0
        assert _leakage_derate(0.6) == 1.0

    def test_monotone_increasing(self):
        values = [_leakage_derate(p) for p in (0.6, 0.8, 1.0, 2.0, 3.0)]
        assert values == sorted(values)

    def test_capped(self):
        assert _leakage_derate(100.0) == 30.0


class TestSynthesisResult:
    def test_derived_quantities(self):
        result = SynthesisResult(
            design="x", area_um2=100.0, static_power_w=1e-6,
            dynamic_power_w=2e-6, burst_rate_hz=1e9,
            max_burst_rate_hz=2e9, meets_target=True, n_gates=10,
            n_register_bits=8, critical_path_ps=500.0)
        assert result.total_power_w == pytest.approx(3e-6)
        assert result.energy_per_burst_j == pytest.approx(3e-15)
        assert result.data_rate_gbps == pytest.approx(8.0)


class TestTableOne:
    def test_all_four_designs(self, results):
        assert set(results) == {"dbi-dc", "dbi-ac", "dbi-opt-fixed",
                                "dbi-opt-q3"}

    def test_area_ordering(self, results):
        """Paper: 275 < 578 < 3807 < 16584 um2."""
        assert (results["dbi-dc"].area_um2
                < results["dbi-ac"].area_um2
                < results["dbi-opt-fixed"].area_um2
                < results["dbi-opt-q3"].area_um2)

    def test_timing_story(self, results):
        """Paper: DC/AC/OPT(Fixed) meet 1.5 GHz; the 3-bit design fails
        and runs around 0.5 GHz."""
        assert results["dbi-dc"].meets_target
        assert results["dbi-ac"].meets_target
        assert results["dbi-opt-fixed"].meets_target
        assert not results["dbi-opt-q3"].meets_target
        assert results["dbi-opt-q3"].burst_rate_hz < 0.8e9
        assert results["dbi-opt-q3"].burst_rate_hz > 0.2e9

    def test_target_rate_when_met(self, results):
        assert results["dbi-dc"].burst_rate_hz == TARGET_BURST_RATE_HZ

    def test_energy_ordering(self, results):
        """Paper: 0.14 < 0.28 < 1.66 < 17.6 pJ per burst."""
        energies = [results[name].energy_per_burst_j
                    for name in ("dbi-dc", "dbi-ac", "dbi-opt-fixed",
                                 "dbi-opt-q3")]
        assert energies == sorted(energies)

    def test_configurable_energy_blowup(self, results):
        """Paper: the 3-bit design burns ~10.6x the fixed design's energy
        per burst; require at least a substantial multiple."""
        ratio = (results["dbi-opt-q3"].energy_per_burst_j
                 / results["dbi-opt-fixed"].energy_per_burst_j)
        assert ratio > 4

    def test_fixed_area_overhead_is_insignificant(self, results):
        """The paper's headline: OPT (Fixed) costs only a few thousand um2
        — negligible against a GPU die (hundreds of mm2)."""
        die_mm2 = 300.0
        encoder_mm2 = results["dbi-opt-fixed"].area_um2 / 1e6
        # Even one encoder per byte lane x 12 channels is < 0.1% of die.
        assert 48 * encoder_mm2 / die_mm2 < 0.001

    def test_energy_magnitudes_same_order_as_paper(self, results):
        """Order-of-magnitude guardrails against calibration drift."""
        assert 0.05e-12 < results["dbi-dc"].energy_per_burst_j < 1e-12
        assert 0.5e-12 < results["dbi-opt-fixed"].energy_per_burst_j < 8e-12
        assert 4e-12 < results["dbi-opt-q3"].energy_per_burst_j < 50e-12

    def test_static_power_pressure_effect(self, results):
        """The timing-failing design shows the low-Vt leakage blow-up."""
        fixed_density = (results["dbi-opt-fixed"].static_power_w
                         / results["dbi-opt-fixed"].area_um2)
        q3_density = (results["dbi-opt-q3"].static_power_w
                      / results["dbi-opt-q3"].area_um2)
        assert q3_density > 2 * fixed_density


class TestHelpers:
    def test_markdown_contains_rows(self, results):
        text = table_one_markdown(results)
        assert "DBI OPT (Fixed Coeff.)" in text
        assert text.count("|") > 20

    def test_encoder_energy_map(self):
        energies = encoder_energy_per_burst()
        assert energies["raw"] == 0.0
        assert energies["dbi-dc"] > 0
        assert set(energies) >= {"raw", "dbi-dc", "dbi-ac",
                                 "dbi-opt-fixed", "dbi-opt-q3"}

    def test_synthesize_relaxed_target(self):
        """At a relaxed 0.2 GHz target every design closes timing."""
        for spec in _design_specs().values():
            result = synthesize(spec, target_burst_rate_hz=0.2e9,
                                activity_bursts=20)
            assert result.meets_target
