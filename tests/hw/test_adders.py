"""Tests for the adder-architecture option (ripple vs carry-select)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.schemes import EncodedBurst
from repro.core.trellis import solve
from repro.hw.activity import netlist_invert_flags
from repro.hw.components import add_many, carry_select_adder, ripple_adder
from repro.hw.encoders import build_opt_encoder
from repro.hw.netlist import Netlist


class TestCarrySelectAdder:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255),
           st.sampled_from((1, 2, 3, 4, 8)))
    def test_matches_ripple(self, a, b, block):
        nl = Netlist("cs")
        a_bits = nl.add_input("a", 8)
        b_bits = nl.add_input("b", 8)
        out = carry_select_adder(nl, a_bits, b_bits, width=8, block=block)
        nl.mark_output("s", out)
        assert nl.evaluate({"a": a, "b": b})["s"] == (a + b) & 0xFF

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=255))
    def test_mixed_width_operands(self, a, b):
        nl = Netlist("cs")
        a_bits = nl.add_input("a", 4)
        b_bits = nl.add_input("b", 8)
        out = carry_select_adder(nl, a_bits, b_bits, width=9)
        nl.mark_output("s", out)
        assert nl.evaluate({"a": a, "b": b})["s"] == a + b

    def test_validation(self):
        nl = Netlist("cs")
        bits = nl.add_input("a", 4)
        with pytest.raises(ValueError):
            carry_select_adder(nl, bits, bits, width=0)
        with pytest.raises(ValueError):
            carry_select_adder(nl, bits, bits, width=4, block=0)

    def test_standalone_speedup(self):
        """With simultaneously arriving inputs, carry-select is faster
        (shorter carry chain) at a gate-count premium."""
        def build(fn):
            nl = Netlist("t")
            a = nl.add_input("a", 8)
            b = nl.add_input("b", 8)
            nl.mark_output("s", fn(nl, a, b))
            return nl
        ripple = build(lambda nl, a, b: ripple_adder(nl, a, b, width=8))
        select = build(lambda nl, a, b: carry_select_adder(nl, a, b, 8))
        assert select.critical_path_ps() < ripple.critical_path_ps()
        assert select.n_gates > ripple.n_gates


class TestAddManyArchitectures:
    def test_unknown_architecture(self):
        nl = Netlist("t")
        bits = nl.add_input("a", 4)
        with pytest.raises(ValueError):
            add_many(nl, [bits], width=4, adder="kogge-stone")

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=2,
                    max_size=4))
    def test_architectures_agree(self, values):
        results = {}
        for adder in ("ripple", "carry-select"):
            nl = Netlist(adder)
            operands = []
            assignment = {}
            for index, value in enumerate(values):
                operands.append(nl.add_input(f"v{index}", 6))
                assignment[f"v{index}"] = value
            nl.mark_output("s", add_many(nl, operands, width=10, adder=adder))
            results[adder] = nl.evaluate(assignment)["s"]
        assert results["ripple"] == results["carry-select"] == sum(values)


class TestEncoderAdderOption:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255),
                    min_size=8, max_size=8).map(Burst))
    def test_carry_select_encoder_still_optimal(self, burst):
        netlist = build_opt_encoder(8, adder="carry-select")
        model = CostModel.fixed()
        flags = netlist_invert_flags(netlist, burst)
        assert (EncodedBurst(burst=burst, invert_flags=flags).cost(model)
                == solve(burst, model).total_cost)

    def test_name_reflects_architecture(self):
        assert build_opt_encoder(8, adder="carry-select").name \
            == "dbi-opt-fixed-carry-select"

    def test_chain_skew_negates_carry_select(self):
        """The interesting negative result: the cost accumulator arrives
        with a carry-shaped skew (low bits early, high bits late), which a
        ripple adder absorbs for free; carry-select re-serialises after
        the late bits and ends up no faster on the chain."""
        ripple = build_opt_encoder(8, adder="ripple")
        select = build_opt_encoder(8, adder="carry-select")
        assert ripple.critical_path_ps() <= select.critical_path_ps()
        assert select.n_gates > ripple.n_gates
