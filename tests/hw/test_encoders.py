"""Functional-equivalence tests: gate-level encoders vs algorithmic ones.

The central hardware claim of the paper is that Fig. 5 computes exactly
the trellis optimum.  These tests hold the structural netlists to that
standard on random and directed stimuli.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DbiAc, DbiDc
from repro.core.burst import Burst, PAPER_FIG2_BURST
from repro.core.costs import CostModel
from repro.core.schemes import EncodedBurst
from repro.core.trellis import solve
from repro.hw.activity import encode_with_netlist, netlist_invert_flags
from repro.hw.encoders import (
    build_ac_encoder,
    build_dc_encoder,
    build_decoder,
    build_opt_encoder,
)

bursts8 = st.lists(st.integers(min_value=0, max_value=255),
                   min_size=8, max_size=8).map(Burst)
words = st.integers(min_value=0, max_value=0x1FF)


@pytest.fixture(scope="module")
def dc_netlist():
    return build_dc_encoder(8)


@pytest.fixture(scope="module")
def ac_netlist():
    return build_ac_encoder(8)


@pytest.fixture(scope="module")
def opt_netlist():
    return build_opt_encoder(8)


@pytest.fixture(scope="module")
def opt_q3_netlist():
    return build_opt_encoder(8, coefficient_bits=3)


class TestDcEncoder:
    @settings(max_examples=60, deadline=None)
    @given(bursts8)
    def test_matches_algorithm(self, dc_netlist, burst):
        assert (netlist_invert_flags(dc_netlist, burst)
                == DbiDc().encode(burst).invert_flags)

    def test_words_match(self, dc_netlist):
        burst = PAPER_FIG2_BURST
        outputs = encode_with_netlist(dc_netlist, burst)
        expected = DbiDc().encode(burst).words
        for index in range(8):
            assert outputs[f"word{index}"] == expected[index]


class TestAcEncoder:
    @settings(max_examples=60, deadline=None)
    @given(bursts8, words)
    def test_matches_algorithm_any_boundary(self, ac_netlist, burst, prev):
        assert (netlist_invert_flags(ac_netlist, burst, prev_word=prev)
                == DbiAc().encode(burst, prev_word=prev).invert_flags)


class TestOptEncoder:
    @settings(max_examples=60, deadline=None)
    @given(bursts8)
    def test_cost_optimal(self, opt_netlist, burst):
        """The hardware must achieve the trellis-optimal cost (ties may
        resolve differently in backtracking order)."""
        model = CostModel.fixed()
        flags = netlist_invert_flags(opt_netlist, burst)
        hw_cost = EncodedBurst(burst=burst, invert_flags=flags).cost(model)
        assert hw_cost == solve(burst, model).total_cost

    @settings(max_examples=40, deadline=None)
    @given(bursts8, words)
    def test_cost_optimal_any_boundary(self, opt_netlist, burst, prev):
        model = CostModel.fixed()
        flags = netlist_invert_flags(opt_netlist, burst, prev_word=prev)
        hw_cost = EncodedBurst(burst=burst, invert_flags=flags,
                               prev_word=prev).cost(model)
        assert hw_cost == solve(burst, model, prev_word=prev).total_cost

    def test_cost_outputs_match_dp(self, opt_netlist):
        """The exported cost/cost_inv buses equal the DP accumulators."""
        burst = PAPER_FIG2_BURST
        outputs = encode_with_netlist(opt_netlist, burst)
        solution = solve(burst, CostModel.fixed())
        final_raw, final_inv = solution.step_costs[-1]
        assert outputs["cost"] == final_raw
        assert outputs["cost_inv"] == final_inv

    def test_paper_example_cost(self, opt_netlist):
        flags = netlist_invert_flags(opt_netlist, PAPER_FIG2_BURST)
        cost = EncodedBurst(burst=PAPER_FIG2_BURST,
                            invert_flags=flags).cost(CostModel.fixed())
        assert cost == 52


class TestConfigurableEncoder:
    @settings(max_examples=30, deadline=None)
    @given(bursts8)
    def test_unit_coefficients_match_fixed(self, opt_netlist, opt_q3_netlist,
                                           burst):
        fixed = netlist_invert_flags(opt_netlist, burst)
        configurable = netlist_invert_flags(opt_q3_netlist, burst,
                                            alpha=1, beta=1)
        assert fixed == configurable

    @settings(max_examples=25, deadline=None)
    @given(bursts8,
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=7))
    def test_arbitrary_coefficients_optimal(self, opt_q3_netlist, burst,
                                            alpha, beta):
        if alpha == 0 and beta == 0:
            alpha = 1
        model = CostModel(float(alpha), float(beta))
        flags = netlist_invert_flags(opt_q3_netlist, burst,
                                     alpha=alpha, beta=beta)
        hw_cost = EncodedBurst(burst=burst, invert_flags=flags).cost(model)
        assert hw_cost == solve(burst, model).total_cost

    def test_dc_extreme(self, opt_q3_netlist):
        """alpha=0, beta=7: the configurable encoder acts like DBI DC."""
        model = CostModel(0.0, 7.0)
        burst = Burst([0x03] * 8)  # 6 zeros each: must invert
        flags = netlist_invert_flags(opt_q3_netlist, burst, alpha=0, beta=7)
        assert EncodedBurst(burst=burst, invert_flags=flags).cost(model) == \
            solve(burst, model).total_cost
        assert all(flags)


class TestDecoder:
    @settings(max_examples=40, deadline=None)
    @given(bursts8)
    def test_decodes_every_scheme(self, burst):
        decoder = build_decoder(8)
        for scheme in (DbiDc(), DbiAc()):
            encoded = scheme.encode(burst)
            assignment = {f"word{i}": word
                          for i, word in enumerate(encoded.words)}
            outputs = decoder.evaluate(assignment)
            decoded = tuple(outputs[f"byte{i}"] for i in range(8))
            assert decoded == burst.data


class TestStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            build_dc_encoder(0)
        with pytest.raises(ValueError):
            build_opt_encoder(8, coefficient_bits=0)

    def test_burst_length_parameterisation(self):
        for length in (1, 4, 16):
            netlist = build_opt_encoder(length)
            burst = Burst(list(range(length)))
            flags = netlist_invert_flags(netlist, burst)
            model = CostModel.fixed()
            assert (EncodedBurst(burst=burst, invert_flags=flags).cost(model)
                    == solve(burst, model).total_cost)

    def test_relative_sizes_match_paper_ordering(self, dc_netlist, ac_netlist,
                                                 opt_netlist, opt_q3_netlist):
        """Table I's area ordering emerges from the gate counts."""
        assert (dc_netlist.area_um2() < ac_netlist.area_um2()
                < opt_netlist.area_um2() < opt_q3_netlist.area_um2())

    def test_dc_is_shallow_opt_is_deep(self, dc_netlist, opt_netlist):
        """DBI DC is byte-parallel; OPT carries a serial chain across the
        burst — visible as an order-of-magnitude depth gap."""
        assert opt_netlist.logic_depth() > 5 * dc_netlist.logic_depth()
