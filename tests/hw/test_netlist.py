"""Unit tests for the netlist container and simulator."""

import pytest

from repro.hw.netlist import CONST0, CONST1, Netlist


@pytest.fixture
def xor_netlist():
    nl = Netlist("xor")
    a, = nl.add_input("a", 1)
    b, = nl.add_input("b", 1)
    nl.mark_output("y", [nl.gate("XOR2", a, b)])
    return nl


class TestConstruction:
    def test_duplicate_input_rejected(self):
        nl = Netlist("t")
        nl.add_input("a", 1)
        with pytest.raises(ValueError):
            nl.add_input("a", 2)

    def test_duplicate_output_rejected(self, xor_netlist):
        with pytest.raises(ValueError):
            xor_netlist.mark_output("y", [CONST0])

    def test_zero_width_input_rejected(self):
        with pytest.raises(ValueError):
            Netlist("t").add_input("a", 0)

    def test_gate_arity_checked(self):
        nl = Netlist("t")
        a, = nl.add_input("a", 1)
        with pytest.raises(ValueError):
            nl.gate("NAND2", a)

    def test_undefined_net_rejected(self):
        nl = Netlist("t")
        with pytest.raises(ValueError):
            nl.gate("INV", 99)

    def test_constants(self):
        nl = Netlist("t")
        nets = nl.constant(0b101, 3)
        assert nets == [CONST1, CONST0, CONST1]

    def test_constant_overflow(self):
        with pytest.raises(ValueError):
            Netlist("t").constant(8, 3)


class TestEvaluation:
    def test_xor_truth_table(self, xor_netlist):
        for a in (0, 1):
            for b in (0, 1):
                assert xor_netlist.evaluate({"a": a, "b": b})["y"] == a ^ b

    def test_missing_input_rejected(self, xor_netlist):
        with pytest.raises(KeyError):
            xor_netlist.evaluate({"a": 1})

    def test_input_overflow_rejected(self, xor_netlist):
        with pytest.raises(ValueError):
            xor_netlist.evaluate({"a": 2, "b": 0})

    def test_bus_packing(self):
        nl = Netlist("bus")
        bits = nl.add_input("data", 4)
        nl.mark_output("inverted", [nl.gate("INV", bit) for bit in bits])
        assert nl.evaluate({"data": 0b0101})["inverted"] == 0b1010

    def test_constant_nets_in_logic(self):
        nl = Netlist("c")
        a, = nl.add_input("a", 1)
        nl.mark_output("y", [nl.gate("AND2", a, CONST1)])
        assert nl.evaluate({"a": 1})["y"] == 1
        assert nl.evaluate({"a": 0})["y"] == 0


class TestStaticQueries:
    def test_counts_and_area(self, xor_netlist):
        assert xor_netlist.n_gates == 1
        assert xor_netlist.cell_counts() == {"XOR2": 1}
        from repro.hw.cells import get_cell
        assert xor_netlist.area_um2() == pytest.approx(get_cell("XOR2").area_um2)
        assert xor_netlist.leakage_w() == pytest.approx(get_cell("XOR2").leakage_w)

    def test_critical_path_single_gate(self, xor_netlist):
        from repro.hw.cells import get_cell
        assert xor_netlist.critical_path_ps() == pytest.approx(
            get_cell("XOR2").delay_ps)

    def test_critical_path_chain(self):
        nl = Netlist("chain")
        a, = nl.add_input("a", 1)
        net = a
        for _ in range(5):
            net = nl.gate("INV", net)
        nl.mark_output("y", [net])
        from repro.hw.cells import get_cell
        assert nl.critical_path_ps() == pytest.approx(5 * get_cell("INV").delay_ps)
        assert nl.logic_depth() == 5

    def test_critical_path_takes_longest_branch(self):
        nl = Netlist("branch")
        a, = nl.add_input("a", 1)
        short = nl.gate("INV", a)
        long = nl.gate("XOR2", nl.gate("INV", nl.gate("INV", a)), a)
        nl.mark_output("y", [nl.gate("AND2", short, long)])
        from repro.hw.cells import get_cell
        inv, xor2, and2 = (get_cell("INV").delay_ps,
                           get_cell("XOR2").delay_ps,
                           get_cell("AND2").delay_ps)
        assert nl.critical_path_ps() == pytest.approx(2 * inv + xor2 + and2)


class TestActivity:
    def test_needs_two_vectors(self, xor_netlist):
        with pytest.raises(ValueError):
            xor_netlist.simulate_activity([{"a": 0, "b": 0}])

    def test_toggle_counting(self, xor_netlist):
        report = xor_netlist.simulate_activity([
            {"a": 0, "b": 0},  # y = 0
            {"a": 1, "b": 0},  # y = 1 (toggle)
            {"a": 1, "b": 1},  # y = 0 (toggle)
            {"a": 0, "b": 1},  # y = 1 (toggle)
        ])
        assert report.gate_toggles == [3]
        assert report.n_cycles == 3

    def test_energy_per_cycle(self, xor_netlist):
        from repro.hw.cells import get_cell
        report = xor_netlist.simulate_activity([
            {"a": 0, "b": 0}, {"a": 1, "b": 0}])
        assert report.switching_energy_per_cycle_j() == pytest.approx(
            get_cell("XOR2").toggle_energy_j)

    def test_static_input_no_energy(self, xor_netlist):
        report = xor_netlist.simulate_activity([{"a": 1, "b": 0}] * 5)
        assert report.switching_energy_per_cycle_j() == 0.0
        assert report.mean_toggle_rate() == 0.0
