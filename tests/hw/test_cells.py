"""Unit tests for the standard-cell library."""

import itertools

import pytest

from repro.hw.cells import DFF, LIBRARY, get_cell


class TestLibrary:
    def test_core_cells_present(self):
        for name in ("INV", "NAND2", "NOR2", "AND2", "OR2", "XOR2",
                     "XNOR2", "MUX2"):
            assert name in LIBRARY

    def test_get_cell_unknown(self):
        with pytest.raises(KeyError, match="unknown cell"):
            get_cell("NAND9")

    def test_all_parameters_positive(self):
        for cell in LIBRARY.values():
            assert cell.area_um2 > 0
            assert cell.leakage_nw > 0
            assert cell.toggle_energy_fj > 0
            assert cell.delay_ps > 0

    def test_unit_conversions(self):
        inv = get_cell("INV")
        assert inv.leakage_w == pytest.approx(inv.leakage_nw * 1e-9)
        assert inv.toggle_energy_j == pytest.approx(inv.toggle_energy_fj * 1e-15)
        assert inv.delay_s == pytest.approx(inv.delay_ps * 1e-12)


class TestTruthTables:
    def test_inv(self):
        inv = get_cell("INV")
        assert inv.evaluate(0) == 1
        assert inv.evaluate(1) == 0

    @pytest.mark.parametrize("name,function", [
        ("NAND2", lambda a, b: 1 - (a & b)),
        ("NOR2", lambda a, b: 1 - (a | b)),
        ("AND2", lambda a, b: a & b),
        ("OR2", lambda a, b: a | b),
        ("XOR2", lambda a, b: a ^ b),
        ("XNOR2", lambda a, b: 1 - (a ^ b)),
    ])
    def test_two_input_cells(self, name, function):
        cell = get_cell(name)
        for a, b in itertools.product((0, 1), repeat=2):
            assert cell.evaluate(a, b) == function(a, b)

    def test_mux2(self):
        mux = get_cell("MUX2")
        for d0, d1, s in itertools.product((0, 1), repeat=3):
            assert mux.evaluate(d0, d1, s) == (d1 if s else d0)

    def test_aoi_oai(self):
        aoi = get_cell("AOI21")
        oai = get_cell("OAI21")
        for a, b, c in itertools.product((0, 1), repeat=3):
            assert aoi.evaluate(a, b, c) == 1 - ((a & b) | c)
            assert oai.evaluate(a, b, c) == 1 - ((a | b) & c)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            get_cell("NAND2").evaluate(1)


class TestRelativeCosts:
    def test_xor_larger_than_nand(self):
        assert get_cell("XOR2").area_um2 > get_cell("NAND2").area_um2

    def test_dff_is_largest(self):
        assert DFF.area_um2 > max(cell.area_um2 for cell in LIBRARY.values())
