"""Differential parity suite for the bit-parallel compiled simulator.

The scalar interpreter of :meth:`Netlist.simulate_activity` /
:meth:`Netlist.evaluate` is the executable specification; the compiled
engine of :mod:`repro.hw.bitsim` must be *bit-identical* to it — same
per-gate toggle tallies, same outputs — for every word implementation
(pure-Python ints, NumPy uint64) and any chunking.  This suite enforces
that over hypothesis-generated random netlists, hand-built corner cases
and every encoder design of :mod:`repro.hw.encoders`.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.burst import Burst
from repro.hw.activity import iter_vectors, measure_activity, vectors_from_bursts
from repro.hw.bitsim import (
    CompiledNetlist,
    WORD_IMPLS,
    compile_netlist,
    get_kernel,
    resolve_sim_backend,
    resolve_word_impl,
    word_function_from_truth_table,
)
from repro.hw.cells import LIBRARY, Cell
from repro.hw.encoders import (
    build_ac_encoder,
    build_dc_encoder,
    build_decoder,
    build_opt_encoder,
)
from repro.hw.netlist import CONST0, CONST1, Netlist

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

#: Word implementations testable in this environment.
IMPLS = ("int", "uint64") if HAVE_NUMPY else ("int",)

CELL_NAMES = sorted(LIBRARY)


def random_vectors(netlist, count, seed):
    rng = random.Random(seed)
    return [
        {name: rng.getrandbits(len(nets))
         for name, nets in netlist.inputs.items()}
        for _ in range(count)
    ]


def assert_parity(netlist, vectors, chunk_vectors=None):
    """Scalar vs bit-parallel: identical reports and identical outputs."""
    reference = netlist.simulate_activity(iter(vectors), backend="reference")
    reference_outputs = [netlist.evaluate(vector) for vector in vectors]
    compiled = compile_netlist(netlist)
    for impl in IMPLS:
        report = compiled.simulate_activity(iter(vectors), word_impl=impl,
                                            chunk_vectors=chunk_vectors)
        assert report.gate_toggles == reference.gate_toggles
        assert report.n_cycles == reference.n_cycles
        outputs = compiled.evaluate_batch(vectors, word_impl=impl,
                                          chunk_vectors=chunk_vectors)
        assert outputs == reference_outputs


# -- hypothesis-generated netlists -------------------------------------------

@st.composite
def netlists(draw):
    """A random combinational netlist over the full cell library."""
    nl = Netlist("random")
    nets = [CONST0, CONST1]
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        nets.extend(nl.add_input(f"in{index}",
                                 draw(st.integers(min_value=1, max_value=5))))
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        cell = LIBRARY[draw(st.sampled_from(CELL_NAMES))]
        inputs = [draw(st.sampled_from(nets))
                  for _ in range(cell.n_inputs)]
        nets.append(nl.gate(cell.name, *inputs))
    nl.mark_output("y", draw(st.lists(st.sampled_from(nets), min_size=1,
                                      max_size=6)))
    return nl


@settings(max_examples=60, deadline=None)
@given(netlist=netlists(), seed=st.integers(min_value=0, max_value=2**32),
       count=st.integers(min_value=2, max_value=70),
       chunk=st.sampled_from([None, 1, 2, 7, 16, 64]))
def test_random_netlist_parity(netlist, seed, count, chunk):
    vectors = random_vectors(netlist, count, seed)
    assert_parity(netlist, vectors, chunk_vectors=chunk)


# -- every encoder design ----------------------------------------------------

def _random_bursts(count, seed, length=8):
    rng = random.Random(seed)
    return [Burst([rng.getrandbits(8) for _ in range(length)])
            for _ in range(count)]


@pytest.mark.parametrize("build,coefficients", [
    (lambda: build_dc_encoder(8), {}),
    (lambda: build_ac_encoder(8), {}),
    (lambda: build_opt_encoder(8), {}),
    (lambda: build_opt_encoder(8, adder="carry-select"), {}),
    (lambda: build_opt_encoder(8, coefficient_bits=3),
     {"alpha": 3, "beta": 5}),
    (lambda: build_opt_encoder(4), {}),
], ids=["dc", "ac", "opt-fixed", "opt-carry-select", "opt-q3", "opt-len4"])
def test_encoder_parity(build, coefficients):
    netlist = build()
    length = sum(1 for name in netlist.inputs if name.startswith("byte"))
    vectors = vectors_from_bursts(_random_bursts(200, seed=0xBEEF,
                                                 length=length),
                                  **coefficients)
    assert_parity(netlist, vectors, chunk_vectors=77)


def test_decoder_parity():
    netlist = build_decoder(8)
    rng = random.Random(5)
    vectors = [{f"word{i}": rng.getrandbits(9) for i in range(8)}
               for _ in range(150)]
    assert_parity(netlist, vectors, chunk_vectors=64)


def test_measure_activity_backend_parity():
    """measure_activity's vector path (packed fast path when NumPy is
    present, dict packing otherwise) agrees with the scalar reference."""
    for build, coefficients in [
        (lambda: build_dc_encoder(8), {}),
        (lambda: build_opt_encoder(8), {}),
        (lambda: build_opt_encoder(8, coefficient_bits=3),
         {"alpha": 1, "beta": 1}),
    ]:
        netlist = build()
        reference = measure_activity(netlist, n_bursts=300,
                                     backend="reference", **coefficients)
        fast = measure_activity(netlist, n_bursts=300, backend="vector",
                                **coefficients)
        assert fast.gate_toggles == reference.gate_toggles
        assert fast.n_cycles == reference.n_cycles


# -- chunk boundaries --------------------------------------------------------

@pytest.mark.parametrize("impl", IMPLS)
@pytest.mark.parametrize("count", [2, 3, 63, 64, 65, 128, 129])
def test_chunk_boundaries(impl, count):
    """Vector counts straddling word and chunk boundaries; toggles that
    cross a chunk seam must still be counted exactly once."""
    netlist = build_dc_encoder(2)
    vectors = vectors_from_bursts(_random_bursts(count, seed=count, length=2))
    reference = netlist.simulate_activity(iter(vectors), backend="reference")
    compiled = compile_netlist(netlist)
    for chunk in (1, 2, 63, 64, 65, None):
        report = compiled.simulate_activity(iter(vectors), word_impl=impl,
                                            chunk_vectors=chunk)
        assert report.gate_toggles == reference.gate_toggles, (chunk, count)
        assert report.n_cycles == count - 1


def test_alternating_input_every_cycle_toggles():
    nl = Netlist("alt")
    a, = nl.add_input("a", 1)
    nl.mark_output("y", [nl.gate("INV", a)])
    vectors = [{"a": i & 1} for i in range(130)]
    for impl in IMPLS:
        report = compile_netlist(nl).simulate_activity(vectors,
                                                       word_impl=impl,
                                                       chunk_vectors=32)
        assert report.gate_toggles == [129]


# -- validation and semantics parity -----------------------------------------

class TestValidation:
    def test_needs_two_vectors(self):
        nl = build_dc_encoder(2)
        compiled = compile_netlist(nl)
        for impl in IMPLS:
            with pytest.raises(ValueError, match="at least 2"):
                compiled.simulate_activity([], word_impl=impl)
            with pytest.raises(ValueError, match="at least 2"):
                compiled.simulate_activity(
                    vectors_from_bursts([Burst([1, 2])]), word_impl=impl)

    def test_short_generator_fails_without_simulation(self):
        """The scalar path must fail fast on a 1-vector generator without
        propagating it through the netlist (satellite fix)."""
        from repro.hw.netlist import Gate

        nl = Netlist("probe")
        calls = []
        buf = LIBRARY["BUF"]
        probe = Cell("BUF", 1, buf.area_um2, buf.leakage_nw,
                     buf.toggle_energy_fj, buf.delay_ps,
                     lambda a: calls.append(1) or a)
        a, = nl.add_input("a", 1)
        output = nl.new_net()
        nl.gates.append(Gate(cell=probe, inputs=(a,), output=output))
        nl.mark_output("y", [output])
        with pytest.raises(ValueError, match="at least 2"):
            nl.simulate_activity(iter([{"a": 1}]), backend="reference")
        assert calls == []  # nothing was simulated

    def test_missing_input_raises_keyerror(self):
        nl = build_dc_encoder(2)
        compiled = compile_netlist(nl)
        for impl in IMPLS:
            with pytest.raises(KeyError, match="missing input"):
                compiled.simulate_activity([{"byte0": 1}] * 3,
                                           word_impl=impl)

    def test_input_overflow_rejected(self):
        nl = Netlist("w")
        nl.add_input("a", 2)
        nl.mark_output("y", [nl.inputs["a"][0]])
        for impl in IMPLS:
            with pytest.raises(ValueError, match="does not fit"):
                compile_netlist(nl).evaluate_batch([{"a": 4}],
                                                   word_impl=impl)


class TestBackendDispatch:
    def test_netlist_level_dispatch(self):
        nl = build_dc_encoder(4)
        vectors = vectors_from_bursts(_random_bursts(40, seed=9, length=4))
        reference = nl.simulate_activity(iter(vectors), backend="reference")
        for backend in (None, "auto", "vector"):
            report = nl.simulate_activity(iter(vectors), backend=backend)
            assert report.gate_toggles == reference.gate_toggles
        assert nl.evaluate_batch(vectors, backend="vector") == \
            nl.evaluate_batch(vectors, backend="reference")

    def test_resolve_sim_backend(self):
        assert resolve_sim_backend("auto") == "vector"
        assert resolve_sim_backend("vector") == "vector"
        assert resolve_sim_backend("reference") == "reference"
        with pytest.raises(ValueError):
            resolve_sim_backend("fpga")

    def test_process_default_respected(self):
        import repro

        previous = repro.get_default_backend()
        try:
            repro.set_default_backend("reference")
            assert resolve_sim_backend() == "reference"
            repro.set_default_backend("auto")
            assert resolve_sim_backend() == "vector"
        finally:
            repro.set_default_backend(previous)

    def test_resolve_word_impl(self):
        assert resolve_word_impl("int") == "int"
        expected = "uint64" if HAVE_NUMPY else "int"
        assert resolve_word_impl("auto") == expected
        with pytest.raises(ValueError):
            resolve_word_impl("uint128")


class TestCompilation:
    def test_compile_cache_reused(self):
        nl = build_dc_encoder(2)
        assert compile_netlist(nl) is compile_netlist(nl)

    def test_compile_cache_invalidated_by_new_gate(self):
        nl = Netlist("grow")
        a, = nl.add_input("a", 1)
        first = compile_netlist(nl)
        nl.mark_output("y", [nl.gate("INV", a)])
        second = compile_netlist(nl)
        assert second is not first
        assert second.evaluate_batch([{"a": 0}])[0]["y"] == 1

    def test_word_function_from_truth_table_matches_scalar(self):
        """The SOP fallback agrees with every library cell's scalar
        function on all input combinations, lane-wise."""
        from itertools import product

        for cell in list(LIBRARY.values()):
            synthesised = word_function_from_truth_table(cell)
            combos = list(product((0, 1), repeat=cell.n_inputs))
            mask = (1 << len(combos)) - 1
            # lane i of each input word carries combo i
            words = [
                sum(combo[pin] << i for i, combo in enumerate(combos))
                for pin in range(cell.n_inputs)
            ]
            expected = sum(cell.function(*combo) << i
                           for i, combo in enumerate(combos))
            assert synthesised(mask, *words) == expected, cell.name

    def test_cell_evaluate_words_fallback(self):
        bare = Cell("CUSTOM_AND", 2, 1.0, 1.0, 1.0, 1.0,
                    lambda a, b: a & b)
        assert bare.word_function is None
        assert bare.evaluate_words(0b1111, 0b0011, 0b0101) == 0b0001

    def test_undriven_net_reads_zero(self):
        nl = Netlist("undriven")
        a, = nl.add_input("a", 1)
        floating = nl.new_net()
        nl.mark_output("y", [nl.gate("OR2", a, floating)])
        vectors = [{"a": 1}, {"a": 0}, {"a": 1}]
        assert_parity(nl, vectors)

    def test_constants_in_outputs(self):
        nl = Netlist("consts")
        a, = nl.add_input("a", 1)
        nl.gate("INV", a)  # a gate whose output is not observed
        nl.mark_output("y", [CONST0, CONST1, a])
        vectors = [{"a": 1}, {"a": 0}]
        assert_parity(nl, vectors)


@pytest.mark.skipif(not HAVE_NUMPY, reason="uint64 kernel requires NumPy")
def test_uint64_requires_numpy_error(monkeypatch):
    import repro.hw.bitsim as bitsim

    monkeypatch.setattr(bitsim, "_np", None)
    with pytest.raises(RuntimeError, match="NumPy"):
        bitsim.resolve_word_impl("uint64")
    assert bitsim.resolve_word_impl("auto") == "int"


def test_kernels_exposed():
    assert get_kernel("int").name == "int"
    if HAVE_NUMPY:
        assert get_kernel("auto").name == "uint64"
    assert set(WORD_IMPLS) == {"auto", "int", "uint64"}
