"""Unit tests for directed corner-case patterns."""

import pytest

from repro.baselines import DbiAc, DbiDc, Raw
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.workloads.patterns import (
    PATTERN_NAMES,
    PATTERNS,
    all_ones,
    all_zeros,
    checkerboard,
    get_pattern,
    pattern_population,
    pattern_suite,
    ramp,
    static_checkerboard,
    walking_ones,
    walking_zeros,
)


def test_all_zeros_is_dc_worst_case():
    burst = all_zeros(8)
    assert Raw().encode(burst).zeros() == 64
    assert DbiDc().encode(burst).zeros() == 8  # one DBI zero per byte


def test_all_ones_is_free():
    burst = all_ones(8)
    encoded = DbiOptimal(CostModel.fixed()).encode(burst)
    assert encoded.cost(CostModel.fixed()) == 0


def test_checkerboard_is_ac_worst_case():
    burst = checkerboard(8)
    raw_transitions = Raw().encode(burst).transitions()
    ac_transitions = DbiAc().encode(burst).transitions()
    # RAW toggles every data lane every beat (after entering the pattern).
    assert raw_transitions >= 8 * (len(burst) - 1)
    assert ac_transitions < raw_transitions / 2


def test_static_checkerboard_only_transitions_once():
    burst = static_checkerboard(8)
    assert Raw().encode(burst).transitions() == 4  # entry from idle-high


def test_walking_patterns_structure():
    ones = walking_ones(8)
    zeros = walking_zeros(8)
    assert [bin(byte).count("1") for byte in ones] == [1] * 8
    assert [bin(byte).count("1") for byte in zeros] == [7] * 8
    assert ones.inverted() == zeros


def test_ramp_wraps():
    burst = ramp(4, start=254)
    assert burst.data == (254, 255, 0, 1)


def test_pattern_suite_complete():
    suite = pattern_suite(8)
    assert len(suite) == len(PATTERN_NAMES)
    assert all(len(b) == 8 for b in suite)


def test_custom_burst_length():
    assert len(all_zeros(16)) == 16
    assert len(checkerboard(3)) == 3


def test_optimal_dominates_on_every_pattern():
    model = CostModel.fixed()
    optimal = DbiOptimal(model)
    for burst in pattern_suite(8):
        opt_cost = optimal.encode(burst).cost(model)
        for scheme in (Raw(), DbiDc(), DbiAc()):
            assert opt_cost <= scheme.encode(burst).cost(model)


def test_registry_matches_suite_order():
    assert list(PATTERNS) == PATTERN_NAMES
    assert [generator(4).data for generator in PATTERNS.values()] == [
        burst.data for burst in pattern_suite(4)]


def test_get_pattern():
    assert get_pattern("walking_ones", 3).data == (1, 2, 4)
    with pytest.raises(KeyError, match="known patterns"):
        get_pattern("prbs31")


def test_pattern_population_rectangular_batchable():
    population = pattern_population(burst_length=8)
    assert len(population) == len(PATTERN_NAMES)
    assert population.burst_length == 8
    assert [burst.data for burst in population.bursts()] == [
        burst.data for burst in pattern_suite(8)]


def test_pattern_population_selection_and_repeats():
    population = pattern_population(["checkerboard", "ramp"],
                                    burst_length=4, repeats=3)
    assert len(population) == 6
    expected = [checkerboard(4).data, ramp(4).data]
    assert [b.data for b in population.bursts()] == expected * 3
    with pytest.raises(ValueError):
        pattern_population(repeats=0)
    with pytest.raises(KeyError):
        pattern_population(["nope"])


def test_module_doctests():
    import doctest

    import repro.workloads.patterns as module
    results = doctest.testmod(module)
    assert results.attempted > 0
    assert results.failed == 0
