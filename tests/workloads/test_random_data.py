"""Unit tests for random burst generators."""

import pytest

from repro.workloads.random_data import (
    biased_bursts,
    burst_stream,
    correlated_bursts,
    random_bursts,
    random_payload,
)


class TestRandomBursts:
    def test_count_and_length(self):
        bursts = random_bursts(count=7, burst_length=5)
        assert len(bursts) == 7
        assert all(len(b) == 5 for b in bursts)

    def test_deterministic_with_seed(self):
        assert random_bursts(count=5, seed=1) == random_bursts(count=5, seed=1)

    def test_different_seeds_differ(self):
        assert random_bursts(count=5, seed=1) != random_bursts(count=5, seed=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_bursts(count=0)
        with pytest.raises(ValueError):
            random_bursts(count=1, burst_length=0)

    def test_statistics_are_uniform(self):
        bursts = random_bursts(count=2000, seed=7)
        total_zeros = sum(b.zeros() for b in bursts)
        total_bits = 2000 * 8 * 8
        # A uniform source has a zero fraction of 0.5 +- small noise.
        assert abs(total_zeros / total_bits - 0.5) < 0.01


class TestBiasedBursts:
    def test_extreme_densities(self):
        ones = biased_bursts(4, one_density=1.0, burst_length=2)
        zeros = biased_bursts(4, one_density=0.0, burst_length=2)
        assert all(byte == 0xFF for b in ones for byte in b)
        assert all(byte == 0x00 for b in zeros for byte in b)

    def test_density_tracks_target(self):
        bursts = biased_bursts(1000, one_density=0.25, seed=3)
        ones = sum(8 * len(b) - b.zeros() for b in bursts)
        bits = sum(8 * len(b) for b in bursts)
        assert abs(ones / bits - 0.25) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            biased_bursts(1, one_density=1.5)
        with pytest.raises(ValueError):
            biased_bursts(0, one_density=0.5)


class TestCorrelatedBursts:
    def test_zero_flip_probability_freezes_stream(self):
        bursts = correlated_bursts(3, flip_probability=0.0, burst_length=4,
                                   seed=5)
        first = bursts[0][0]
        assert all(byte == first for b in bursts for byte in b)

    def test_low_flip_probability_reduces_transitions(self):
        from repro.baselines import Raw
        calm = correlated_bursts(200, flip_probability=0.05, seed=11)
        wild = correlated_bursts(200, flip_probability=0.5, seed=11)
        raw = Raw()
        calm_trans = sum(raw.encode(b).transitions() for b in calm)
        wild_trans = sum(raw.encode(b).transitions() for b in wild)
        assert calm_trans < wild_trans

    def test_validation(self):
        with pytest.raises(ValueError):
            correlated_bursts(1, flip_probability=-0.1)
        with pytest.raises(ValueError):
            correlated_bursts(0)


class TestPayloadAndStream:
    def test_payload_length_and_determinism(self):
        assert len(random_payload(100)) == 100
        assert random_payload(50, seed=2) == random_payload(50, seed=2)

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            random_payload(-1)

    def test_stream_limit(self):
        bursts = list(burst_stream(limit=5))
        assert len(bursts) == 5

    def test_stream_matches_seed(self):
        a = list(burst_stream(seed=9, limit=3))
        b = list(burst_stream(seed=9, limit=3))
        assert a == b
