"""Unit tests for the unified workload registry."""

import pytest

from repro.workloads.generator import Workload, make_workload, workload_names


def test_all_names_instantiable():
    for name in workload_names():
        load = make_workload(name, count=20)
        assert isinstance(load, Workload)
        assert len(load) > 0
        assert load.description

def test_burst_lengths_respected():
    load = make_workload("random", count=10, burst_length=4)
    assert all(len(b) == 4 for b in load.bursts)


def test_count_honoured_for_random_family():
    for name in ("random", "sparse", "dense", "correlated"):
        assert len(make_workload(name, count=17)) == 17


def test_deterministic():
    a = make_workload("gpu", count=30, seed=5)
    b = make_workload("gpu", count=30, seed=5)
    assert a.bursts == b.bursts


def test_unknown_name():
    with pytest.raises(KeyError, match="unknown workload"):
        make_workload("netflix")


def test_sparse_vs_dense_zero_statistics():
    sparse = make_workload("sparse", count=200)
    dense = make_workload("dense", count=200)
    sparse_zeros = sum(b.zeros() for b in sparse.bursts)
    dense_zeros = sum(b.zeros() for b in dense.bursts)
    assert sparse_zeros > dense_zeros


def test_patterns_workload_is_directed_suite():
    load = make_workload("patterns")
    from repro.workloads.patterns import PATTERN_NAMES
    assert len(load) == len(PATTERN_NAMES)
