"""Unit tests for synthetic application traces."""

import pytest

from repro.workloads.traces import (
    float_trace,
    gpu_frame_trace,
    image_trace,
    pointer_trace,
    text_trace,
    zero_run_trace,
)


class TestTextTrace:
    def test_ascii_only(self):
        payload = text_trace(2000)
        assert all(byte < 0x80 for byte in payload)

    def test_deterministic(self):
        assert text_trace(100, seed=4) == text_trace(100, seed=4)

    def test_length(self):
        assert len(text_trace(123)) == 123

    def test_validation(self):
        with pytest.raises(ValueError):
            text_trace(-1)


class TestFloatTrace:
    def test_length_is_four_bytes_per_value(self):
        assert len(float_trace(100)) == 400

    def test_decodable_as_floats(self):
        import numpy as np
        values = np.frombuffer(float_trace(64), dtype="<f4")
        assert len(values) == 64
        assert np.all(np.abs(values) < 2.0)

    def test_exponent_bytes_are_stable(self):
        """The high byte of consecutive float32 samples rarely changes —
        the lane profile the trace is designed to exhibit."""
        payload = float_trace(512)
        high_bytes = payload[3::4]
        changes = sum(1 for a, b in zip(high_bytes, high_bytes[1:]) if a != b)
        assert changes < len(high_bytes) / 2


class TestImageTrace:
    def test_dimensions(self):
        assert len(image_trace(width=64, height=4)) == 256

    def test_smoothness(self):
        payload = image_trace(width=256, height=2)
        diffs = [abs(a - b) for a, b in zip(payload, payload[1:])]
        assert sum(diffs) / len(diffs) < 32

    def test_validation(self):
        with pytest.raises(ValueError):
            image_trace(width=0)


class TestPointerTrace:
    def test_length(self):
        assert len(pointer_trace(10)) == 80

    def test_high_bytes_constant(self):
        payload = pointer_trace(64)
        top_bytes = payload[7::8]
        assert len(set(top_bytes)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            pointer_trace(1, stride=0)


class TestZeroRunTrace:
    def test_zero_fraction(self):
        payload = zero_run_trace(8192, zero_fraction=0.6, seed=2)
        zero_bytes = sum(1 for byte in payload if byte == 0)
        assert zero_bytes / len(payload) > 0.4

    def test_pure_random_limit(self):
        payload = zero_run_trace(4096, zero_fraction=0.0, seed=2)
        zero_bytes = sum(1 for byte in payload if byte == 0)
        assert zero_bytes / len(payload) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            zero_run_trace(10, zero_fraction=2.0)


class TestGpuFrameTrace:
    def test_length(self):
        assert len(gpu_frame_trace(10000)) == 10000

    def test_deterministic(self):
        assert gpu_frame_trace(1024, seed=8) == gpu_frame_trace(1024, seed=8)

    def test_mixture_contains_zero_runs(self):
        payload = gpu_frame_trace(16384)
        zero_bytes = sum(1 for byte in payload if byte == 0)
        assert zero_bytes > len(payload) * 0.05


class TestTraceRegistry:
    def test_every_class_registered_and_sized(self):
        from repro.workloads.traces import TRACES, available_traces, trace_bytes
        assert available_traces() == sorted(TRACES)
        # Awkward sizes included: the rounded-down mixture shares of the
        # gpu trace used to come up a few bytes short.
        for size in (13, 999, 1000):
            for name in available_traces():
                payload = trace_bytes(name, size, seed=3)
                assert len(payload) == size, (name, size)

    def test_deterministic(self):
        from repro.workloads.traces import trace_bytes
        assert trace_bytes("float", 777, seed=5) == trace_bytes("float", 777,
                                                                seed=5)

    def test_unknown_name_and_bad_size(self):
        from repro.workloads.traces import trace_bytes
        with pytest.raises(KeyError):
            trace_bytes("mp3", 100)
        with pytest.raises(ValueError):
            trace_bytes("text", 0)
