"""Unit tests for the burst population protocol."""

import pytest

from repro.core.burst import Burst
from repro.workloads.population import (
    BurstPopulation,
    ExplicitPopulation,
    OpaquePopulation,
    RandomPopulation,
    as_population,
)


class TestRandomPopulation:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomPopulation(0)
        with pytest.raises(ValueError):
            RandomPopulation(4, burst_length=0)

    def test_len_and_shape(self):
        population = RandomPopulation(17, burst_length=4, seed=7)
        assert len(population) == 17
        assert population.burst_length == 4
        bursts = population.bursts()
        assert len(bursts) == 17
        assert all(len(burst) == 4 for burst in bursts)

    def test_chunked_equals_monolithic(self):
        """Chunked generation must reproduce the whole-population stream."""
        population = RandomPopulation(100, seed=123)
        whole = [burst.data for burst in population.bursts()]
        chunked = [burst.data
                   for chunk in population.iter_chunks(chunk_size=13)
                   for burst in chunk]
        assert chunked == whole

    def test_chunking_invariant_for_unaligned_byte_counts(self):
        """NumPy's bounded-integer sampling discards partial buffer words
        between calls; generation therefore happens at a fixed internal
        block size so the stream never depends on the consumer's chunk
        size — including when chunk_size * burst_length is not a
        multiple of 4 (the regression: 3-byte bursts, 13-burst chunks)."""
        population = RandomPopulation(100, burst_length=3, seed=123)
        whole = [b.data for chunk in population.iter_chunks(chunk_size=100)
                 for b in chunk]
        for chunk_size in (1, 7, 13, 64):
            chunked = [b.data
                       for chunk in population.iter_chunks(chunk_size)
                       for b in chunk]
            assert chunked == whole, chunk_size

    def test_regeneration_is_deterministic(self):
        a = RandomPopulation(25, seed=9).bursts()
        b = RandomPopulation(25, seed=9).bursts()
        assert [x.data for x in a] == [y.data for y in b]

    def test_digest_distinguishes_parameters(self):
        base = RandomPopulation(10, seed=1).digest()
        assert RandomPopulation(10, seed=1).digest() == base
        assert RandomPopulation(11, seed=1).digest() != base
        assert RandomPopulation(10, seed=2).digest() != base
        assert RandomPopulation(10, burst_length=4, seed=1).digest() != base

    def test_matches_legacy_random_bursts(self):
        """With NumPy installed the declarative form reproduces
        random_bursts byte-for-byte (the legacy CLI population)."""
        np = pytest.importorskip("numpy", exc_type=ImportError)
        del np
        from repro.workloads.random_data import random_bursts

        population = RandomPopulation(60, seed=0x0DB1)
        legacy = random_bursts(count=60, seed=0x0DB1)
        assert [b.data for b in population.bursts()] == [b.data
                                                         for b in legacy]

    def test_iter_packed_matches_bursts(self):
        np = pytest.importorskip("numpy", exc_type=ImportError)
        population = RandomPopulation(40, seed=5)
        packed = np.concatenate(list(population.iter_packed(chunk_size=7)))
        assert packed.shape == (40, 8)
        assert [tuple(row) for row in packed.tolist()] == [
            burst.data for burst in population.bursts()]


class TestExplicitPopulation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ExplicitPopulation([])

    def test_round_trip(self):
        bursts = [Burst([1, 2]), Burst([3, 4])]
        population = ExplicitPopulation(bursts)
        assert len(population) == 2
        assert population.burst_length == 2
        assert [b.data for b in population.bursts()] == [(1, 2), (3, 4)]
        assert [b.data for b in population] == [(1, 2), (3, 4)]

    def test_ragged_has_no_common_length(self):
        population = ExplicitPopulation([Burst([1]), Burst([2, 3])])
        assert population.burst_length is None
        with pytest.raises(ValueError):
            list(population.iter_packed())

    def test_digest_tracks_content(self):
        a = ExplicitPopulation([Burst([1, 2])])
        b = ExplicitPopulation([Burst([1, 2])])
        c = ExplicitPopulation([Burst([1, 3])])
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_chunked_iteration(self):
        bursts = [Burst([i]) for i in range(10)]
        population = ExplicitPopulation(bursts)
        chunks = list(population.iter_chunks(chunk_size=4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert [b.data for chunk in chunks for b in chunk] == [
            (i,) for i in range(10)]


class TestOpaquePopulation:
    def test_metadata_only(self):
        population = OpaquePopulation("sha256:feed", count=5, burst_length=8)
        assert len(population) == 5
        assert population.digest() == "sha256:feed"
        with pytest.raises(RuntimeError):
            population.bursts()


class TestAsPopulation:
    def test_passthrough(self):
        population = RandomPopulation(3)
        assert as_population(population) is population

    def test_wraps_sequences(self):
        population = as_population([Burst([0xFF])])
        assert isinstance(population, BurstPopulation)
        assert len(population) == 1
