"""Trace-source protocol: digests, chunk joins, mmap windows, round-trips.

The load-bearing invariant is digest identity: every source's
``digest()`` must equal the inline payload digest of its concatenated
chunks (``sha256:<first 32 hex>``), because the replay cache keys both
paths by that string — a mismatch would silently cold-start every cache
on the streaming path.  Everything here runs NumPy-free except the
registry adapter.
"""

import hashlib
import os

import pytest

from repro.workloads.source import (
    DEFAULT_TRACE_CHUNK_BYTES,
    SYNTHETIC_BLOCK_BYTES,
    BytesTraceSource,
    FileTraceSource,
    RegistryTraceSource,
    SyntheticTraceSource,
    TraceSource,
    as_trace_source,
    source_from_json,
)

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False


def inline_digest(payload: bytes) -> str:
    return f"sha256:{hashlib.sha256(payload).hexdigest()[:32]}"


def drain(source) -> bytes:
    return b"".join(source.chunks())


PAYLOAD = bytes((i * 41 + (i >> 5)) & 0xFF for i in range(10000))


class TestBytesTraceSource:
    def test_digest_matches_inline_format(self):
        source = BytesTraceSource(PAYLOAD, chunk_bytes=97)
        assert source.digest() == inline_digest(PAYLOAD)

    @pytest.mark.parametrize("chunk_bytes", [1, 7, 64, 4096, 10**6])
    def test_chunks_join_to_payload(self, chunk_bytes):
        source = BytesTraceSource(PAYLOAD, chunk_bytes=chunk_bytes)
        assert drain(source) == PAYLOAD
        assert all(len(chunk) <= chunk_bytes for chunk in source.chunks())
        assert source.size() == len(PAYLOAD)

    def test_chunks_restartable(self):
        source = BytesTraceSource(PAYLOAD, chunk_bytes=333)
        assert drain(source) == drain(source)

    def test_rejects_empty_payload(self):
        with pytest.raises(ValueError):
            BytesTraceSource(b"")

    def test_satisfies_protocol(self):
        assert isinstance(BytesTraceSource(b"x"), TraceSource)


class TestFileTraceSource:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_bytes(PAYLOAD)
        return path

    def test_digest_matches_inline_format(self, trace_path):
        source = FileTraceSource(trace_path, chunk_bytes=1024)
        assert source.digest() == inline_digest(PAYLOAD)

    @pytest.mark.parametrize("chunk_bytes", [1, 100, 4096, 1 << 20])
    def test_chunks_join_to_file(self, trace_path, chunk_bytes):
        source = FileTraceSource(trace_path, chunk_bytes=chunk_bytes)
        assert drain(source) == PAYLOAD

    def test_mmap_and_read_paths_agree(self, trace_path):
        mapped = FileTraceSource(trace_path, chunk_bytes=777)
        plain = FileTraceSource(trace_path, chunk_bytes=777, use_mmap=False)
        assert list(mapped.chunks()) == list(plain.chunks())
        assert mapped.digest() == plain.digest()

    def test_limit_caps_the_stream(self, trace_path):
        source = FileTraceSource(trace_path, chunk_bytes=512, limit=2500)
        assert source.size() == 2500
        assert drain(source) == PAYLOAD[:2500]
        assert source.digest() == inline_digest(PAYLOAD[:2500])

    def test_limit_beyond_file_is_harmless(self, trace_path):
        source = FileTraceSource(trace_path, limit=10 ** 9)
        assert source.size() == len(PAYLOAD)
        assert drain(source) == PAYLOAD

    def test_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        with pytest.raises(ValueError):
            FileTraceSource(empty)

    def test_digest_streams_lazily_once(self, trace_path):
        source = FileTraceSource(trace_path, chunk_bytes=4096)
        first = source.digest()
        os.unlink(trace_path)  # digest is memoised; no re-read needed
        assert source.digest() == first


class TestSyntheticTraceSource:
    def test_chunk_stability(self):
        """The same (seed, size) yields the same bytes at any chunking."""
        reference = drain(SyntheticTraceSource(200000, seed=9,
                                               chunk_bytes=65536))
        for chunk_bytes in (1000, 4096, 65536, 100000, 1 << 20):
            source = SyntheticTraceSource(200000, seed=9,
                                          chunk_bytes=chunk_bytes)
            assert drain(source) == reference
            assert source.digest() == inline_digest(reference)

    def test_seed_changes_content(self):
        a = SyntheticTraceSource(5000, seed=1).digest()
        b = SyntheticTraceSource(5000, seed=2).digest()
        assert a != b

    def test_sub_block_sizes(self):
        source = SyntheticTraceSource(100, seed=3, chunk_bytes=7)
        payload = drain(source)
        assert len(payload) == 100
        assert source.size() == 100

    def test_block_is_a_pure_function_of_index(self):
        small = SyntheticTraceSource(SYNTHETIC_BLOCK_BYTES, seed=4)
        large = SyntheticTraceSource(3 * SYNTHETIC_BLOCK_BYTES, seed=4)
        assert drain(large)[:SYNTHETIC_BLOCK_BYTES] == drain(small)


@pytest.mark.skipif(not HAVE_NUMPY, reason="registry traces need NumPy")
class TestRegistryTraceSource:
    def test_digest_matches_materialised_trace(self):
        from repro.workloads.traces import trace_bytes

        source = RegistryTraceSource("text", 8192, seed=11, chunk_bytes=1000)
        payload = trace_bytes("text", 8192, seed=11)
        assert drain(source) == payload
        assert source.digest() == inline_digest(payload)

    def test_unknown_trace_rejected(self):
        with pytest.raises(KeyError):
            RegistryTraceSource("nope", 1024)


class TestAsTraceSource:
    def test_bytes_coerce(self):
        source = as_trace_source(PAYLOAD, chunk_bytes=50)
        assert isinstance(source, BytesTraceSource)
        assert source.chunk_bytes == 50

    def test_path_coerces(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"abc")
        source = as_trace_source(str(path))
        assert isinstance(source, FileTraceSource)
        assert drain(source) == b"abc"

    def test_source_passes_through(self):
        source = SyntheticTraceSource(10)
        assert as_trace_source(source) is source

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_trace_source(42)


class TestSourceFromJson:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(PAYLOAD)
        original = FileTraceSource(path, chunk_bytes=123, limit=5000)
        rebuilt = source_from_json(original.describe())
        assert isinstance(rebuilt, FileTraceSource)
        assert rebuilt.digest() == original.digest()
        assert rebuilt.chunk_bytes == 123

    def test_missing_file_degrades_to_none(self):
        assert source_from_json({"kind": "file", "path": "/no/such/file",
                                 "bytes": 10}) is None

    def test_synthetic_round_trip(self):
        original = SyntheticTraceSource(12345, seed=6, chunk_bytes=512)
        rebuilt = source_from_json(original.describe())
        assert rebuilt.digest() == original.digest()

    def test_bytes_kind_is_not_reconstructible(self):
        record = BytesTraceSource(b"abc").describe()
        assert source_from_json(record) is None

    @pytest.mark.skipif(not HAVE_NUMPY, reason="registry traces need NumPy")
    def test_registry_round_trip(self):
        original = RegistryTraceSource("float", 4096, seed=2)
        rebuilt = source_from_json(original.describe())
        assert rebuilt.digest() == original.digest()

    def test_default_chunk_bytes(self):
        rebuilt = source_from_json({"kind": "synthetic", "n_bytes": 100})
        assert rebuilt.chunk_bytes == DEFAULT_TRACE_CHUNK_BYTES
