"""Persisted controller replays: roundtrips, render-only loads, priming."""

from __future__ import annotations

import json

import pytest

from repro.analysis.artifacts import canonical_artifact_json
from repro.sim.experiments import (
    REPLAY_PAYLOAD_INLINE_LIMIT,
    ActivityCache,
    interface_replay_experiment,
    load_artifact,
    load_replay_artifact,
    replay_result_to_json,
    run_replay,
    save_replay_artifact,
)


def _payload(size: int, seed: int = 7) -> bytes:
    return bytes((seed + index * 37) % 256 for index in range(size))


def _small_spec(**overrides):
    defaults = dict(channels=2, byte_lanes=2, window=8,
                    interfaces=("pod135", "lvstl11"))
    defaults.update(overrides)
    return interface_replay_experiment(_payload(768), **defaults)


class TestRoundtrip:
    def test_save_load_preserves_everything(self, tmp_path):
        result = run_replay(_small_spec())
        path = tmp_path / "replay.json"
        save_replay_artifact(result, path)
        loaded = load_replay_artifact(path)
        assert loaded.spec.payload == result.spec.payload
        assert loaded.spec.points == result.spec.points
        assert loaded.series == result.series
        assert loaded.totals == result.totals
        assert loaded.point_keys == result.point_keys
        assert loaded.provenance["loaded_from"] == str(path)

    def test_loaded_spec_is_rerunnable(self, tmp_path):
        result = run_replay(_small_spec())
        path = tmp_path / "replay.json"
        save_replay_artifact(result, path)
        rerun = run_replay(load_replay_artifact(path).spec)
        assert rerun.series == result.series
        assert rerun.totals == result.totals

    def test_artifact_is_tagged_and_inlined(self, tmp_path):
        result = run_replay(_small_spec())
        path = tmp_path / "replay.json"
        save_replay_artifact(result, path)
        raw = json.load(open(path))
        assert raw["kind"] == "replay"
        assert bytes.fromhex(raw["spec"]["payload"]["hex"]) == \
            result.spec.payload
        assert raw["spec"]["payload"]["bytes"] == len(result.spec.payload)

    def test_json_stable_across_saves(self, tmp_path):
        result = run_replay(_small_spec())
        assert (canonical_artifact_json(replay_result_to_json(result))
                == canonical_artifact_json(replay_result_to_json(result)))

    def test_sweep_loader_rejects_replay_kind(self, tmp_path):
        path = tmp_path / "replay.json"
        save_replay_artifact(run_replay(_small_spec()), path)
        with pytest.raises(ValueError, match="load_replay_artifact"):
            load_artifact(path)


class TestRenderOnly:
    @pytest.fixture()
    def saved(self, tmp_path):
        payload = _payload(REPLAY_PAYLOAD_INLINE_LIMIT + 1)
        spec = interface_replay_experiment(
            payload, channels=2, byte_lanes=2, window=8,
            interfaces=("pod135", "sstl15"))
        result = run_replay(spec)
        path = tmp_path / "big.json"
        save_replay_artifact(result, path)
        return result, path

    def test_large_payload_is_digest_only(self, saved):
        result, path = saved
        payload_record = json.load(open(path))["spec"]["payload"]
        assert "hex" not in payload_record
        assert payload_record["digest"] == result.spec.payload_digest()
        assert payload_record["bytes"] == len(result.spec.payload)

    def test_series_and_digest_survive(self, saved):
        result, path = saved
        loaded = load_replay_artifact(path)
        assert loaded.series == result.series
        assert loaded.totals == result.totals
        assert loaded.spec.payload_digest() == result.spec.payload_digest()

    def test_rerun_refuses_without_cache(self, saved):
        __, path = saved
        with pytest.raises(RuntimeError, match="cannot re-execute"):
            run_replay(load_replay_artifact(path).spec)

    def test_primed_cache_rerenders_exactly(self, saved):
        """The artifact's totals re-seed a cache; the render-only spec
        then re-prices every point without touching the payload."""
        result, path = saved
        loaded = load_replay_artifact(path)
        cache = ActivityCache()
        for key, totals in loaded.totals.items():
            cache.store(key, totals)
        rerun = run_replay(loaded.spec, cache=cache)
        assert rerun.series == result.series
        assert rerun.totals == result.totals
        assert rerun.provenance["replays"] == 0
        assert rerun.provenance["payload"] == result.spec.payload_digest()
