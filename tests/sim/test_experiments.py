"""Equivalence and behaviour tests for the experiment engine.

The heart of this module is the *legacy equivalence suite*: straight-line
reimplementations of the original bespoke sweep loops (as shipped before
the engine refactor) are compared against the engine-backed functions for
**bit-identical** output on every available backend.  On top of that:
``--jobs`` determinism, activity-cache accounting (including the
OPT (Fixed) / tracking-OPT ratio dedup), artifact round-trips and
re-renders, and the provenance contract.
"""

import pytest

from repro.baselines import DbiAc, DbiDc, Raw
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.vectorized import available_backends
from repro.phy.power import GBPS, InterfaceEnergyModel, PICOFARAD
from repro.phy.pod import pod135
from repro.sim.experiments import (
    ActivityCache,
    ExperimentSpec,
    GridPoint,
    SchemeSlot,
    alpha_experiment,
    load_artifact,
    load_experiment,
    population_activity,
    rate_experiment,
    run_experiment,
    save_artifact,
    shared_cache,
)
from repro.sim.report import format_alpha_sweep, format_load_sweep
from repro.sim.sweep import (
    alpha_sweep,
    collect_activity,
    data_rate_sweep,
    load_sweep,
    to_alpha_result,
    to_figure_result,
    to_load_result,
    to_rate_result,
)
from repro.workloads.population import ExplicitPopulation, RandomPopulation

pytestmark = []

ENCODER_ENERGY = {"dbi-dc": 0.2e-12, "dbi-ac": 0.3e-12,
                  "dbi-opt-fixed": 1.7e-12}


@pytest.fixture(scope="module")
def population():
    return RandomPopulation(120, seed=0xBEEF)


@pytest.fixture(scope="module")
def bursts(population):
    return population.bursts()


# -- straight-line reimplementations of the pre-engine sweep loops -----------

def legacy_alpha_sweep(bursts, points, include_fixed, backend):
    ac_costs = [i / (points - 1) for i in range(points)]
    static_schemes = {"raw": Raw(), "dbi-dc": DbiDc(), "dbi-ac": DbiAc()}
    if include_fixed:
        static_schemes["dbi-opt-fixed"] = DbiOptimal(CostModel.fixed())
    static_activity = {name: collect_activity(scheme, bursts, backend=backend)
                       for name, scheme in static_schemes.items()}
    series = {name: [] for name in static_schemes}
    series["dbi-opt"] = []
    for ac_cost in ac_costs:
        model = CostModel.from_ac_fraction(ac_cost)
        for name, activity in static_activity.items():
            series[name].append(activity.mean_cost(model))
        optimal = collect_activity(DbiOptimal(model), bursts, backend=backend)
        series["dbi-opt"].append(optimal.mean_cost(model))
    return ac_costs, series


def legacy_data_rate_sweep(bursts, rates, c_load, backend):
    pod = pod135()
    static_activity = {
        "raw": collect_activity(Raw(), bursts, backend=backend),
        "dbi-dc": collect_activity(DbiDc(), bursts, backend=backend),
        "dbi-ac": collect_activity(DbiAc(), bursts, backend=backend),
        "dbi-opt-fixed": collect_activity(DbiOptimal(CostModel.fixed()),
                                          bursts, backend=backend),
    }
    normalized = {name: [] for name in list(static_activity) + ["dbi-opt"]}
    absolute = {name: [] for name in normalized}
    for rate in rates:
        energy_model = InterfaceEnergyModel(pod, rate, c_load)
        raw_energy = static_activity["raw"].mean_energy(energy_model)
        for name, activity in static_activity.items():
            energy = activity.mean_energy(energy_model)
            absolute[name].append(energy)
            normalized[name].append(energy / raw_energy)
        optimal = collect_activity(DbiOptimal(energy_model.cost_model()),
                                   bursts, backend=backend)
        energy = optimal.mean_energy(energy_model)
        absolute["dbi-opt"].append(energy)
        normalized["dbi-opt"].append(energy / raw_energy)
    return normalized, absolute


def legacy_load_sweep(bursts, rates, loads, encoder_energy_j, backend):
    pod = pod135()
    activity = {
        "dbi-dc": collect_activity(DbiDc(), bursts, backend=backend),
        "dbi-ac": collect_activity(DbiAc(), bursts, backend=backend),
        "dbi-opt-fixed": collect_activity(DbiOptimal(CostModel.fixed()),
                                          bursts, backend=backend),
    }
    normalized = {}
    for c_load in loads:
        series = []
        for rate in rates:
            energy_model = InterfaceEnergyModel(pod, rate, c_load)
            totals = {name: activity[name].mean_energy(energy_model)
                      + encoder_energy_j[name] for name in activity}
            conventional = min(totals["dbi-dc"], totals["dbi-ac"])
            series.append(totals["dbi-opt-fixed"] / conventional)
        normalized[c_load] = series
    return normalized


@pytest.mark.parametrize("backend", available_backends())
class TestLegacyEquivalence:
    """Engine results must be bit-identical to the pre-engine loops."""

    def test_alpha_sweep(self, bursts, backend):
        ac_costs, series = legacy_alpha_sweep(bursts, points=7,
                                              include_fixed=True,
                                              backend=backend)
        result = alpha_sweep(bursts, points=7, include_fixed=True,
                             backend=backend)
        assert result.ac_costs == ac_costs
        assert result.series == series

    def test_data_rate_sweep(self, bursts, backend):
        rates = [2 * GBPS, 8 * GBPS, 14 * GBPS]
        c_load = 3 * PICOFARAD
        normalized, absolute = legacy_data_rate_sweep(bursts, rates, c_load,
                                                      backend)
        result = data_rate_sweep(bursts, c_load_farads=c_load,
                                 data_rates_hz=rates, backend=backend)
        assert result.data_rates_hz == rates
        assert result.normalized == normalized
        assert result.absolute == absolute

    def test_load_sweep(self, bursts, backend):
        rates = [4 * GBPS, 10 * GBPS]
        loads = [1 * PICOFARAD, 3 * PICOFARAD]
        normalized = legacy_load_sweep(bursts, rates, loads, ENCODER_ENERGY,
                                       backend)
        result = load_sweep(bursts, c_loads_farads=loads, data_rates_hz=rates,
                            encoder_energy_j=ENCODER_ENERGY, backend=backend)
        assert result.normalized == normalized

    def test_population_activity_matches_collect(self, population, bursts,
                                                 backend):
        for scheme in (Raw(), DbiDc(), DbiOptimal(CostModel.fixed())):
            chunked = population_activity(scheme, population,
                                          backend=backend, chunk_size=17)
            assert chunked == collect_activity(scheme, bursts,
                                               backend=backend)


class TestParallelExecution:
    def test_jobs_determinism(self, population):
        spec = alpha_experiment(population, points=5, include_fixed=True)
        serial = run_experiment(spec, jobs=1)
        parallel = run_experiment(spec, jobs=4)
        assert parallel.series == serial.series
        assert parallel.totals == serial.totals

    def test_jobs_validation(self, population):
        spec = alpha_experiment(population, points=3)
        with pytest.raises(ValueError):
            run_experiment(spec, jobs=0)

    def test_legacy_wrappers_accept_jobs(self, bursts):
        serial = alpha_sweep(bursts, points=4)
        parallel = alpha_sweep(bursts, points=4, jobs=2)
        assert parallel.series == serial.series


class TestActivityCache:
    def test_static_schemes_encode_once(self, population):
        """points=5 ⇒ raw/dc/ac/fixed once + OPT at 4 distinct ratios
        (the tracking OPT at AC fraction 0.5 reuses OPT (Fixed))."""
        spec = alpha_experiment(population, points=5, include_fixed=True)
        result = run_experiment(spec)
        assert result.provenance["encodes"] == 8
        assert result.provenance["cache_hits"] == 0

    def test_fixed_and_tracking_opt_share_totals(self, population):
        spec = alpha_experiment(population, points=5, include_fixed=True)
        result = run_experiment(spec)
        fixed = DbiOptimal(CostModel.fixed())
        tracking = DbiOptimal(CostModel.from_ac_fraction(0.5))
        assert fixed.fingerprint() == tracking.fingerprint()
        key = ActivityCache.key_for(fixed, spec.population)
        assert key in result.totals
        # the shared totals price both series identically at ac=0.5
        assert (result.series["dbi-opt"][2]
                == result.series["dbi-opt-fixed"][2])

    def test_shared_cache_across_experiments(self, population):
        cache = ActivityCache()
        first = run_experiment(alpha_experiment(population, points=3),
                               cache=cache)
        assert first.provenance["encodes"] == 6  # raw/dc/ac + 3 ratios
        second = run_experiment(
            alpha_experiment(population, points=3, include_fixed=True),
            cache=cache)
        # nothing is new: statics hit, and OPT (Fixed) shares the first
        # run's tracking-OPT entry at AC fraction 0.5
        assert second.provenance["encodes"] == 0
        assert second.series["raw"] == first.series["raw"]
        assert "dbi-opt-fixed" in second.series

    def test_rate_then_load_share_static_totals(self, population):
        cache = ActivityCache()
        run_experiment(rate_experiment(population, data_rates_hz=[4 * GBPS]),
                       cache=cache)
        result = run_experiment(
            load_experiment(population, data_rates_hz=[4 * GBPS],
                            c_loads_farads=[3 * PICOFARAD],
                            encoder_energy_j=ENCODER_ENERGY),
            cache=cache)
        # dc/ac/fixed were all encoded by the rate experiment already
        assert result.provenance["encodes"] == 0

    def test_fresh_cache_per_run_by_default(self, population):
        spec = alpha_experiment(population, points=3)
        first = run_experiment(spec)
        second = run_experiment(spec)
        assert second.provenance["cache_hits"] == 0
        assert second.series == first.series

    def test_shared_cache_singleton(self):
        assert shared_cache() is shared_cache()


class TestArtifacts:
    def test_round_trip_bit_identical(self, population, tmp_path):
        spec = alpha_experiment(population, points=5, include_fixed=True)
        result = run_experiment(spec)
        path = tmp_path / "alpha.json"
        save_artifact(result, path)
        loaded = load_artifact(path)
        assert loaded.series == result.series
        assert loaded.totals == result.totals
        assert (format_alpha_sweep(to_alpha_result(loaded))
                == format_alpha_sweep(to_alpha_result(result)))

    def test_load_round_trip_renders_same_tables(self, population, tmp_path):
        spec = load_experiment(population, data_rates_hz=[4 * GBPS, 8 * GBPS],
                               c_loads_farads=[1e-12, 3e-12],
                               encoder_energy_j=ENCODER_ENERGY)
        result = run_experiment(spec)
        path = tmp_path / "load.json"
        save_artifact(result, path)
        loaded = load_artifact(path)
        assert (format_load_sweep(to_load_result(loaded))
                == format_load_sweep(to_load_result(result)))
        # float grid keys survive the JSON round trip exactly
        assert to_load_result(loaded).normalized.keys() \
            == to_load_result(result).normalized.keys()

    def test_declarative_artifact_reruns_identically(self, population,
                                                     tmp_path):
        spec = rate_experiment(population, data_rates_hz=[2 * GBPS, 6 * GBPS])
        result = run_experiment(spec)
        path = tmp_path / "rate.json"
        result.save(path)
        loaded = load_artifact(path)
        rerun = run_experiment(loaded.spec)
        assert rerun.series == result.series
        assert to_rate_result(rerun).normalized \
            == to_rate_result(result).normalized

    def test_explicit_population_is_render_only(self, bursts, tmp_path):
        spec = alpha_experiment(ExplicitPopulation(bursts[:20]), points=3)
        result = run_experiment(spec)
        path = tmp_path / "explicit.json"
        save_artifact(result, path)
        loaded = load_artifact(path)
        assert to_alpha_result(loaded).series == to_alpha_result(result).series
        with pytest.raises(RuntimeError):
            run_experiment(loaded.spec)

    def test_figure_dispatch(self, population, tmp_path):
        result = run_experiment(alpha_experiment(population, points=3))
        assert to_figure_result(result).series == result.series
        with pytest.raises(ValueError):
            to_rate_result(result)

    def test_format_validation(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something/else"}')
        with pytest.raises(ValueError):
            load_artifact(path)

    def test_provenance_contract(self, population, tmp_path):
        result = run_experiment(alpha_experiment(population, points=3),
                                jobs=1)
        for field in ("backend", "jobs", "encodes", "cache_hits",
                      "population", "repro_version", "created_unix"):
            assert field in result.provenance
        path = tmp_path / "prov.json"
        save_artifact(result, path)
        loaded = load_artifact(path)
        assert loaded.provenance["loaded_from"] == str(path)


class TestSpecValidation:
    def test_duplicate_slot_names(self, population):
        with pytest.raises(ValueError):
            ExperimentSpec(name="dup", population=population,
                           slots=(SchemeSlot("x", Raw()),
                                  SchemeSlot("x", DbiDc())),
                           grid=(GridPoint(1.0, 1.0),))

    def test_tracking_slot_rejects_instance(self):
        with pytest.raises(ValueError):
            SchemeSlot("dbi-opt", scheme=Raw(), tracks_point=True)

    def test_unknown_pricing(self, population):
        with pytest.raises(ValueError):
            ExperimentSpec(name="bad", population=population,
                           slots=(SchemeSlot("raw", Raw()),),
                           grid=(GridPoint(1.0, 1.0),), pricing="joules")

    def test_points_validation_preserved(self, bursts):
        with pytest.raises(ValueError):
            alpha_sweep(bursts, points=1)

    def test_encoder_energy_validation_preserved(self, bursts):
        with pytest.raises(KeyError):
            load_sweep(bursts[:10], data_rates_hz=[4 * GBPS],
                       encoder_energy_j={"dbi-dc": 0.0})

    def test_ragged_population_uses_reference_path(self):
        from repro.core.burst import Burst

        ragged = ExplicitPopulation([Burst([0x00] * 4), Burst([0xFF] * 6)])
        totals = population_activity(DbiDc(), ragged)
        reference = population_activity(DbiDc(), ragged, backend="reference")
        assert totals == reference
