"""Unit tests for the controller-replay experiment axis."""

import pytest

from repro.sim.experiments import (
    ActivityCache,
    ReplayPoint,
    ReplaySpec,
    interface_replay_experiment,
    run_replay,
)
from repro.core.vectorized import available_backends
from repro.phy.power import GBPS, PICOFARAD


def small_spec(**overrides):
    defaults = dict(
        name="test-replay",
        payload=bytes(range(256)) * 8,
        points=(ReplayPoint("pod135", 12 * GBPS, 3 * PICOFARAD),),
        channels=2, byte_lanes=2, window=8,
    )
    defaults.update(overrides)
    return ReplaySpec(**defaults)


class TestReplaySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(payload=b"")
        with pytest.raises(ValueError):
            small_spec(points=())
        with pytest.raises(ValueError):
            small_spec(channels=0)
        point = ReplayPoint("pod135", 12 * GBPS, 3 * PICOFARAD)
        with pytest.raises(ValueError):
            small_spec(points=(point, point))

    def test_point_label_defaults(self):
        point = ReplayPoint("lvstl11", 3.2 * GBPS, 2 * PICOFARAD)
        assert point.label == "lvstl11@3.2Gbps/2pF"

    def test_replay_key_is_ratio_keyed(self):
        spec = small_spec()
        slow = ReplayPoint("pod135", 1 * GBPS, 3 * PICOFARAD)
        fast = ReplayPoint("pod135", 18 * GBPS, 3 * PICOFARAD)
        assert (spec.replay_key(slow.energy_model().cost_model())
                != spec.replay_key(fast.energy_model().cost_model()))
        # Same point, different payloads -> different keys.
        other = small_spec(payload=b"\x00" * 64)
        model = slow.energy_model().cost_model()
        assert spec.replay_key(model) != other.replay_key(model)


class TestRunReplay:
    def test_totals_are_exact_and_consistent(self):
        result = run_replay(small_spec(), backend="reference")
        totals = next(iter(result.totals.values()))
        assert totals.bytes_written == 256 * 8
        assert totals.beats == totals.bytes_written
        assert totals.zeros == sum(c[0] for c in totals.channels)
        assert totals.transitions == sum(c[1] for c in totals.channels)
        priced = result.series[next(iter(result.series))]
        assert priced["energy_joules"] == pytest.approx(
            sum(priced["per_channel_energy"]))

    def test_backends_agree_exactly(self):
        results = [run_replay(small_spec(), backend=backend)
                   for backend in available_backends()]
        reference = results[0]
        for other in results[1:]:
            assert other.totals == reference.totals
            assert other.series == reference.series

    def test_transition_only_points_share_one_replay(self):
        """SSTL and LVSTL clamp to the same differential ratio -> one
        replay serves both operating points."""
        spec = interface_replay_experiment(
            bytes(range(256)) * 4, interfaces=("pod135", "sstl15", "lvstl11"),
            channels=2, byte_lanes=2, window=8)
        result = run_replay(spec)
        assert result.provenance["replays"] == 2
        assert len(result.series) == 3
        # ... but the *priced* energies still differ per standard.
        energies = {label: priced["energy_joules"]
                    for label, priced in result.series.items()}
        assert len(set(energies.values())) == 3

    def test_shared_cache_reuses_replays(self):
        cache = ActivityCache()
        spec = small_spec()
        first = run_replay(spec, cache=cache)
        second = run_replay(spec, cache=cache)
        assert first.provenance["replays"] == 1
        assert second.provenance["replays"] == 0
        assert second.provenance["cache_hits"] == 1
        assert second.series == first.series

    def test_jobs_deterministic(self):
        spec = interface_replay_experiment(
            bytes(range(256)) * 4,
            interfaces=("pod135", "pod12", "sstl15"),
            data_rate_hz=2 * GBPS, channels=2, byte_lanes=2, window=8)
        serial = run_replay(spec, jobs=1)
        parallel = run_replay(spec, jobs=3)
        assert parallel.totals == serial.totals
        assert parallel.series == serial.series

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            run_replay(small_spec(), jobs=0)
