"""Streaming + adaptive replay through the experiment engine.

Differential anchor of the PR: a chunked, tracking-off ``run_replay``
must be bit-identical — integer totals AND priced float energies — to
the in-memory path, on every available backend (the suite runs NumPy-free
where the backend list collapses to the reference).  On top of that:
cache keys coincide between the paths (payload→source migration keeps
caches warm), adaptive axes round-trip through artifacts and the disk
cache, and schedules are chunking-independent while tracking keys bind
the chunk size.
"""

import pytest

from repro.core.vectorized import available_backends
from repro.ctrl.adaptive import (
    OperatingPoint,
    OperatingPointSchedule,
    TrackingConfig,
)
from repro.sim.experiments import (
    ActivityCache,
    ReplayPoint,
    ReplaySpec,
    load_replay_artifact,
    run_replay,
    save_replay_artifact,
)
from repro.workloads.source import BytesTraceSource, SyntheticTraceSource

PAYLOAD = bytes((i * 89 + (i >> 7)) & 0xFF for i in range(30000))
POINTS = (ReplayPoint("pod135", 12e9, 3e-12),
          ReplayPoint("pod12", 8e9, 3e-12))
OP_A = OperatingPoint("pod135", 12e9, 3e-12)
OP_B = OperatingPoint("pod12", 8e9, 3e-12)


def source_spec(chunk_bytes=1000, **overrides):
    return ReplaySpec(name="stream",
                      source=BytesTraceSource(PAYLOAD,
                                              chunk_bytes=chunk_bytes),
                      points=POINTS, **overrides)


class TestStreamingBitIdentity:
    @pytest.mark.parametrize("backend", available_backends())
    def test_chunked_equals_inline(self, backend):
        inline = run_replay(ReplaySpec(name="stream", payload=PAYLOAD,
                                       points=POINTS), backend=backend)
        for chunk_bytes in (123, 4096, 10 ** 6):
            streamed = run_replay(source_spec(chunk_bytes),
                                  backend=backend)
            assert streamed.totals == inline.totals
            assert streamed.series == inline.series  # float energies too
            assert streamed.point_keys == inline.point_keys

    def test_payload_to_source_migration_keeps_cache_warm(self):
        cache = ActivityCache()
        run_replay(ReplaySpec(name="stream", payload=PAYLOAD,
                              points=POINTS), cache=cache)
        migrated = run_replay(source_spec(777), cache=cache)
        assert migrated.provenance["replays"] == 0

    def test_streamed_provenance(self):
        result = run_replay(source_spec(2048))
        assert result.provenance["streamed"] is True
        assert result.provenance["chunk_bytes"] == 2048
        assert result.provenance["payload_bytes"] == len(PAYLOAD)
        assert result.provenance["source"]["kind"] == "bytes"


class TestSpecValidation:
    def test_payload_and_source_are_exclusive(self):
        with pytest.raises(ValueError):
            ReplaySpec(name="x", payload=PAYLOAD,
                       source=BytesTraceSource(PAYLOAD), points=POINTS)

    def test_one_trace_is_required(self):
        with pytest.raises(ValueError):
            ReplaySpec(name="x", points=POINTS)

    def test_schedule_and_tracking_are_exclusive(self):
        with pytest.raises(ValueError):
            ReplaySpec(name="x", payload=PAYLOAD, points=POINTS,
                       schedule=OperatingPointSchedule((OP_A, OP_B), (5,)),
                       tracking=TrackingConfig((OP_A, OP_B)))

    def test_adaptive_axis_allows_empty_points(self):
        spec = ReplaySpec(name="x", payload=PAYLOAD,
                          tracking=TrackingConfig((OP_A, OP_B)))
        assert spec.adaptive_label == "tracking"

    def test_adaptive_label_collision_rejected(self):
        with pytest.raises(ValueError):
            ReplaySpec(name="x", payload=PAYLOAD, points=POINTS,
                       schedule=OperatingPointSchedule(
                           (OP_A, OP_B), (5,), label=POINTS[0].label))


class TestAdaptiveReplay:
    def test_schedule_is_chunking_independent(self):
        schedule = OperatingPointSchedule((OP_A, OP_B), (200,),
                                          label="dvfs")
        results = [run_replay(source_spec(chunk_bytes, schedule=schedule))
                   for chunk_bytes in (512, 7000)]
        keys = [r.point_keys["dvfs"] for r in results]
        assert keys[0] == keys[1]  # chunk size absent from the key...
        assert results[0].totals[keys[0]] == results[1].totals[keys[1]]
        assert results[0].series["dvfs"] == results[1].series["dvfs"]

    def test_tracking_key_binds_chunk_bytes(self):
        tracking = TrackingConfig((OP_A, OP_B), label="trk")
        specs = [ReplaySpec(name="t", payload=PAYLOAD, points=(),
                            tracking=tracking, chunk_bytes=chunk_bytes)
                 for chunk_bytes in (512, 1024)]
        assert specs[0].adaptive_key() != specs[1].adaptive_key()

    def test_segments_price_to_the_series(self):
        schedule = OperatingPointSchedule((OP_A, OP_B), (150,),
                                          label="dvfs")
        result = run_replay(ReplaySpec(name="s", payload=PAYLOAD,
                                       points=POINTS, schedule=schedule))
        priced = result.series["dvfs"]
        totals = result.totals_for("dvfs")
        assert len(totals.segments) == 2
        assert priced["energy_joules"] == pytest.approx(sum(
            segment["energy_joules"]
            for segment in priced["per_segment_energy"]))
        # Segment tallies cover the whole replay exactly.
        fixed = result.totals_for(POINTS[0].label)
        assert sum(s[3] for s in totals.segments) == fixed.beats

    def test_adaptive_result_is_cached(self):
        cache = ActivityCache()
        schedule = OperatingPointSchedule((OP_A, OP_B), (150,),
                                          label="dvfs")
        spec = ReplaySpec(name="s", payload=PAYLOAD, points=(),
                          schedule=schedule)
        first = run_replay(spec, cache=cache)
        second = run_replay(spec, cache=cache)
        assert first.provenance["replays"] == 1
        assert second.provenance["replays"] == 0
        assert second.series == first.series


class TestArtifacts:
    def test_source_artifact_reruns_when_reconstructible(self, tmp_path):
        schedule = OperatingPointSchedule((OP_A, OP_B), (120,),
                                          label="dvfs")
        spec = ReplaySpec(name="big",
                          source=SyntheticTraceSource(60000, seed=5,
                                                      chunk_bytes=4096),
                          points=POINTS, schedule=schedule,
                          chunk_bytes=4096)
        result = run_replay(spec)
        path = tmp_path / "replay.json"
        save_replay_artifact(result, path)
        loaded = load_replay_artifact(path)
        assert not getattr(loaded.spec, "_render_only", False)
        assert loaded.spec.schedule == schedule
        assert loaded.series == result.series
        assert loaded.totals == result.totals
        rerun = run_replay(loaded.spec)
        assert rerun.totals == result.totals

    def test_bytes_source_artifact_is_render_only(self, tmp_path):
        result = run_replay(source_spec(999))
        path = tmp_path / "replay.json"
        save_replay_artifact(result, path)
        loaded = load_replay_artifact(path)
        assert getattr(loaded.spec, "_render_only", False)
        assert loaded.series == result.series
        with pytest.raises(RuntimeError):
            run_replay(loaded.spec)

    def test_tracking_config_round_trips(self, tmp_path):
        tracking = TrackingConfig((OP_A, OP_B), half_life_bytes=512.0,
                                  min_dwell_bytes=64, label="trk")
        spec = ReplaySpec(name="t", payload=PAYLOAD[:8192], points=(),
                          tracking=tracking, chunk_bytes=1024)
        result = run_replay(spec)
        path = tmp_path / "replay.json"
        save_replay_artifact(result, path)
        loaded = load_replay_artifact(path)
        assert loaded.spec.tracking == tracking
        assert loaded.spec.chunk_bytes == 1024
        assert loaded.totals_for("trk").segments \
            == result.totals_for("trk").segments

    def test_render_only_cache_rerenders_adaptive(self, tmp_path):
        """A warm cache lets a render-only artifact re-execute nothing."""
        cache = ActivityCache()
        spec = source_spec(999, schedule=OperatingPointSchedule(
            (OP_A, OP_B), (120,), label="dvfs"))
        result = run_replay(spec, cache=cache)
        path = tmp_path / "replay.json"
        save_replay_artifact(result, path)
        loaded = load_replay_artifact(path)
        again = run_replay(loaded.spec, cache=cache)
        assert again.series == result.series
        assert again.provenance["replays"] == 0


class TestDiskCacheSegments:
    def test_replay_totals_with_segments_round_trip(self):
        from repro.service.diskcache import decode_record, encode_record
        from repro.sim.experiments import ReplayTotals

        totals = ReplayTotals(
            transactions=10, bytes_written=640, beats=640,
            channels=((100, 200, 320), (90, 210, 320)),
            segments=(("a", 50, 60, 300), ("b", 140, 350, 340)))
        kind, record = encode_record(totals)
        assert kind == "replay"
        assert decode_record(kind, record) == totals

    def test_fixed_point_records_stay_unchanged(self):
        """No ``segments`` key for fixed replays — old files still load."""
        from repro.service.diskcache import decode_record, encode_record
        from repro.sim.experiments import ReplayTotals

        totals = ReplayTotals(transactions=1, bytes_written=64, beats=64,
                              channels=((1, 2, 64),))
        __, record = encode_record(totals)
        assert "segments" not in record
        assert decode_record("replay", record) == totals
