"""The simultaneous-switching experiment axis: caching, artifacts, CLI glue."""

import pytest

from repro.analysis.sso import SsoStatistics, sso_of_scheme
from repro.core.schemes import get_scheme
from repro.sim.experiments import (
    ActivityCache,
    SsoSpec,
    load_artifact,
    load_sso_artifact,
    run_sso,
    sso_experiment,
)
from repro.workloads.population import RandomPopulation


@pytest.fixture
def population():
    return RandomPopulation(count=60, seed=0x5550)


@pytest.fixture
def spec(population):
    return sso_experiment(population, schemes=("raw", "dbi-dc", "dbi-opt"),
                          interfaces=("pod135", "lvstl11"))


class TestSsoSpec:
    def test_validation(self, population):
        slot = (("raw", get_scheme("raw")),)
        with pytest.raises(ValueError):
            SsoSpec(name="x", population=population, slots=())
        with pytest.raises(ValueError):
            SsoSpec(name="x", population=population, slots=slot,
                    interfaces=())
        with pytest.raises(ValueError):
            SsoSpec(name="x", population=population,
                    slots=slot + slot)  # duplicate slot names
        with pytest.raises(ValueError):
            SsoSpec(name="x", population=population, slots=slot,
                    threshold=10)
        with pytest.raises(KeyError):
            SsoSpec(name="x", population=population, slots=slot,
                    interfaces=("not-a-preset",))

    def test_key_binds_chained_flag(self, population):
        slot = (("raw", get_scheme("raw")),)
        plain = SsoSpec(name="x", population=population, slots=slot)
        chained = SsoSpec(name="x", population=population, slots=slot,
                          chained=True)
        assert plain.sso_key(get_scheme("raw")) != chained.sso_key(
            get_scheme("raw"))

    def test_default_interfaces_cover_all_presets(self, population):
        from repro.phy.interface import available_interfaces
        built = sso_experiment(population)
        assert list(built.interfaces) == available_interfaces()


class TestRunSso:
    def test_series_matches_scalar_engine(self, spec):
        result = run_sso(spec)
        bursts = list(spec.population.bursts())
        for slot_name, scheme in spec.slots:
            expected = sso_of_scheme(scheme, bursts)
            for row in result.series[slot_name]:
                assert row["beats"] == expected.beats
                assert row["max_switching"] == expected.max_switching
                assert row["total_switching"] == expected.total_switching
                assert row["mean_switching"] == expected.mean_switching
                assert row["exceed_fraction"] == expected.exceed_fraction(
                    spec.threshold)

    def test_interface_only_changes_currents(self, spec):
        result = run_sso(spec)
        for rows in result.series.values():
            pod, lvstl = rows
            assert pod["max_switching"] == lvstl["max_switching"]
            assert pod["peak_current_amps"] != lvstl["peak_current_amps"]

    def test_cache_reuse(self, spec):
        cache = ActivityCache()
        first = run_sso(spec, cache=cache)
        assert first.provenance["cache_misses"] == len(spec.slots)
        second = run_sso(spec, cache=cache)
        assert second.provenance["cache_misses"] == 0
        assert second.provenance["cache_hits"] == len(spec.slots)
        assert first.series == second.series

    def test_backends_identical(self, spec):
        assert (run_sso(spec, backend="reference").series
                == run_sso(spec, backend=None).series)

    def test_totals_are_statistics(self, spec):
        result = run_sso(spec)
        assert len(result.totals) == len(spec.slots)
        assert all(isinstance(stats, SsoStatistics)
                   for stats in result.totals.values())


class TestSsoArtifacts:
    def test_roundtrip(self, spec, tmp_path):
        result = run_sso(spec)
        path = tmp_path / "sso.json"
        result.save(path)
        loaded = load_sso_artifact(path)
        assert loaded.series == result.series
        assert loaded.totals == result.totals
        assert loaded.spec.interfaces == spec.interfaces
        assert loaded.spec.chained == spec.chained
        assert loaded.provenance["loaded_from"] == str(path)

    def test_loaded_spec_reruns_identically(self, spec, tmp_path):
        result = run_sso(spec)
        path = tmp_path / "sso.json"
        result.save(path)
        rerun = run_sso(load_sso_artifact(path).spec)
        assert rerun.series == result.series

    def test_kind_is_discriminated(self, spec, tmp_path):
        result = run_sso(spec)
        path = tmp_path / "sso.json"
        result.save(path)
        with pytest.raises(ValueError, match="load_sso_artifact"):
            load_artifact(path)
