"""Unit tests for the evaluation runner."""

import pytest

from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.sim.runner import evaluate, evaluate_named


def test_empty_population_rejected():
    with pytest.raises(ValueError):
        evaluate(["raw"], [])


def test_duplicate_scheme_names_rejected():
    with pytest.raises(ValueError):
        evaluate(["raw", "raw"], [Burst([1])])


def test_accepts_instances_and_names():
    result = evaluate(["raw", DbiOptimal(CostModel.fixed())], [Burst([0x00])])
    assert set(result.schemes()) == {"raw", "dbi-opt"}


def test_independent_mode_restarts_from_idle():
    """In the paper's per-burst mode every burst pays the idle-high entry
    cost again."""
    bursts = [Burst([0x55] * 4)] * 3
    result = evaluate(["raw"], bursts, chained=False)
    per_burst = result["raw"].mean_transitions
    single = evaluate(["raw"], bursts[:1])["raw"].mean_transitions
    assert per_burst == pytest.approx(single)


def test_chained_mode_amortises_entry():
    bursts = [Burst([0x55] * 4)] * 3
    independent = evaluate(["raw"], bursts, chained=False)["raw"].transitions
    chained = evaluate(["raw"], bursts, chained=True)["raw"].transitions
    assert chained < independent


def test_evaluate_named_allows_parameterised_duplicates():
    schemes = {
        "opt-dc-ish": DbiOptimal(CostModel.from_ac_fraction(0.1)),
        "opt-ac-ish": DbiOptimal(CostModel.from_ac_fraction(0.9)),
    }
    result = evaluate_named(schemes, [Burst([0x0F, 0xF0] * 2)])
    assert set(result.schemes()) == set(schemes)


def test_workload_label_propagates():
    result = evaluate(["raw"], [Burst([1])], workload="mylabel")
    assert result.workload == "mylabel"


def test_metrics_match_direct_encoding(small_random_bursts):
    from repro.baselines import DbiDc
    result = evaluate(["dbi-dc"], small_random_bursts)
    direct_zeros = sum(DbiDc().encode(b).zeros() for b in small_random_bursts)
    assert result["dbi-dc"].zeros == direct_zeros
