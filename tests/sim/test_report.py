"""Unit tests for report formatting."""

import pytest

from repro.core.costs import CostModel
from repro.phy.power import GBPS
from repro.sim.report import (
    csv_table,
    format_alpha_sweep,
    format_data_rate_sweep,
    format_evaluation,
    format_load_sweep,
    markdown_table,
    savings_summary,
)
from repro.sim.runner import evaluate
from repro.sim.sweep import alpha_sweep, data_rate_sweep, load_sweep
from repro.workloads.random_data import random_bursts


@pytest.fixture(scope="module")
def population():
    return random_bursts(count=80, seed=17)


class TestTables:
    def test_markdown_structure(self):
        text = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_markdown_width_mismatch(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [[1, 2]])

    def test_csv(self):
        text = csv_table(["x", "y"], [[1, 2.5]])
        assert text == "x,y\n1,2.5\n"

    def test_csv_width_mismatch(self):
        with pytest.raises(ValueError):
            csv_table(["x"], [[1, 2]])


class TestSweepFormatters:
    def test_alpha_sweep_table(self, population):
        result = alpha_sweep(population, points=11)
        text = format_alpha_sweep(result, points=6)
        assert "ac cost" in text
        assert "dbi-opt" in text

    def test_data_rate_table(self, population):
        result = data_rate_sweep(population[:40],
                                 data_rates_hz=[4 * GBPS, 8 * GBPS])
        text = format_data_rate_sweep(result, every=1)
        assert "Gbps" in text
        assert "4.0" in text

    def test_load_sweep_table(self, population):
        result = load_sweep(population[:40], data_rates_hz=[4 * GBPS],
                            c_loads_farads=[1e-12, 3e-12],
                            encoder_energy_j={"dbi-dc": 0.0, "dbi-ac": 0.0,
                                              "dbi-opt-fixed": 0.0})
        text = format_load_sweep(result, every=1)
        assert "1 pF" in text and "3 pF" in text


class TestEvaluationFormatting:
    def test_format_evaluation(self, population):
        result = evaluate(["raw", "dbi-dc"], population[:20])
        text = format_evaluation(result)
        assert "raw" in text and "dbi-dc" in text
        assert "mean cost" in text

    def test_savings_summary(self, population):
        result = evaluate(["dbi-dc", "dbi-ac", "dbi-opt"], population[:40])
        summary = savings_summary(result, CostModel.fixed())
        assert summary["optimal"] <= summary["best_conventional"]
        assert summary["saving_percent"] >= 0
