"""The reliability and granularity experiment axes (PR 6)."""

import pytest

from repro.core.costs import CostModel
from repro.core.schemes import get_scheme
from repro.extensions.granularity import (
    VALID_GROUP_SIZES,
    granularity_table,
)
from repro.extensions.reliability import fault_coverage_curve
from repro.sim.experiments import (
    ActivityCache,
    FaultSpec,
    GranularitySpec,
    fault_experiment,
    granularity_experiment,
    load_artifact,
    load_fault_artifact,
    load_granularity_artifact,
    run_faults,
    run_granularity,
)
from repro.workloads.patterns import pattern_population
from repro.workloads.population import RandomPopulation


@pytest.fixture(scope="module")
def population():
    return RandomPopulation(count=80, seed=17)


class TestFaultSpec:
    def test_validation(self, population):
        with pytest.raises(ValueError):
            fault_experiment(population, schemes=())
        with pytest.raises(ValueError):
            fault_experiment(population, rates=())
        with pytest.raises(ValueError):
            FaultSpec(name="dup", population=population,
                      slots=(("x", get_scheme("raw")),
                             ("x", get_scheme("dbi-dc"))))

    def test_coverage_key_binds_everything(self, population):
        spec = fault_experiment(population, rates=(0.01,), seed=5)
        scheme = get_scheme("dbi-opt")
        key = spec.coverage_key(scheme, 0.01)
        assert scheme.fingerprint() in key
        assert population.digest() in key
        assert "s=5" in key
        other_rate = spec.coverage_key(scheme, 0.02)
        assert key != other_rate


class TestRunFaults:
    def test_matches_direct_curve(self, population):
        spec = fault_experiment(population, rates=(0.01, 0.1), seed=11)
        result = run_faults(spec)
        for slot_name, scheme in spec.slots:
            direct = fault_coverage_curve(scheme, population.bursts(),
                                          rates=(0.01, 0.1), seed=11)
            assert ([row["bit_errors"] for row in result.series[slot_name]]
                    == [row.bit_errors for row in direct])
            assert ([row["amplification"]
                     for row in result.series[slot_name]]
                    == [row.amplification for row in direct])

    def test_cache_discipline(self, population):
        """Repeat runs hit; a superset of rates re-injects only the new
        ones and reproduces the shared rows exactly."""
        cache = ActivityCache()
        spec = fault_experiment(population, rates=(0.01, 0.1), seed=11)
        first = run_faults(spec, cache=cache)
        assert first.provenance["cache_misses"] == 2 * len(spec.slots)
        again = run_faults(spec, cache=cache)
        assert again.provenance["injections"] == 0
        assert again.series == first.series
        wider = fault_experiment(population, rates=(0.001, 0.01, 0.1),
                                 seed=11)
        widened = run_faults(wider, cache=cache)
        assert widened.provenance["cache_hits"] == 2 * len(spec.slots)
        for slot_name in first.series:
            assert widened.series[slot_name][1:] == first.series[slot_name]

    def test_backend_parity(self, population):
        spec = fault_experiment(population, rates=(0.05,), seed=3)
        vector = run_faults(spec, backend="vector")
        reference = run_faults(spec, backend="reference")
        assert vector.series == reference.series

    def test_artifact_round_trip(self, population, tmp_path):
        spec = fault_experiment(population, rates=(0.02,), seed=9)
        result = run_faults(spec)
        path = tmp_path / "faults.json"
        result.save(path)
        loaded = load_fault_artifact(path)
        assert loaded.series == result.series
        assert loaded.spec.rates == spec.rates
        assert loaded.spec.seed == spec.seed
        # The spec is re-runnable and reproduces the series exactly.
        rerun = run_faults(loaded.spec)
        assert rerun.series == result.series

    def test_kind_guards(self, population, tmp_path):
        path = tmp_path / "faults.json"
        run_faults(fault_experiment(population, rates=(0.02,))).save(path)
        with pytest.raises(ValueError, match="kind"):
            load_artifact(path)
        with pytest.raises(ValueError, match="kind"):
            load_granularity_artifact(path)


class TestGranularitySpec:
    def test_validation(self, population):
        with pytest.raises(ValueError):
            granularity_experiment(population, group_sizes=())
        with pytest.raises(ValueError):
            GranularitySpec(name="bad", population=population,
                            model=CostModel.fixed(), group_sizes=(3,))


class TestRunGranularity:
    def test_matches_granularity_table(self, population):
        result = run_granularity(granularity_experiment(population))
        table = granularity_table(population.bursts(), CostModel.fixed())
        assert [(row["group_size"], row["mean_zeros"],
                 row["mean_transitions"], row["mean_cost"],
                 row["lines_per_byte_lane"]) for row in result.rows] == table

    def test_cache_shares_ratio_keyed_encodes(self, population):
        """Two models with the same alpha/beta ratio share cached
        totals — the grouped fingerprint is ratio-keyed like DbiOptimal's."""
        cache = ActivityCache()
        run_granularity(granularity_experiment(
            population, model=CostModel(1.0, 1.0)), cache=cache)
        scaled = run_granularity(granularity_experiment(
            population, model=CostModel(2.0, 2.0)), cache=cache)
        assert scaled.provenance["encodes"] == 0
        assert scaled.provenance["cache_hits"] == len(VALID_GROUP_SIZES)

    def test_patterned_population(self):
        """The directed pattern suite runs through the axis as a
        rectangular batch population."""
        result = run_granularity(
            granularity_experiment(pattern_population(repeats=3)))
        assert [row["group_size"] for row in result.rows] == list(
            VALID_GROUP_SIZES)

    def test_artifact_round_trip(self, population, tmp_path):
        result = run_granularity(granularity_experiment(
            population, model=CostModel(2.0, 1.0), group_sizes=(4, 8)))
        path = tmp_path / "granularity.json"
        result.save(path)
        loaded = load_granularity_artifact(path)
        assert loaded.rows == result.rows
        assert loaded.spec.model == CostModel(2.0, 1.0)
        rerun = run_granularity(loaded.spec)
        assert rerun.rows == result.rows

    def test_kind_guards(self, population, tmp_path):
        path = tmp_path / "granularity.json"
        run_granularity(granularity_experiment(population)).save(path)
        with pytest.raises(ValueError, match="kind"):
            load_artifact(path)
        with pytest.raises(ValueError, match="kind"):
            load_fault_artifact(path)
