"""Unit tests for scheme metrics."""

import pytest

from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.schemes import get_scheme
from repro.phy.pod import pod135
from repro.phy.power import GBPS, InterfaceEnergyModel, PICOFARAD
from repro.sim.metrics import EvaluationResult, SchemeMetrics


@pytest.fixture
def metrics():
    m = SchemeMetrics(scheme="raw")
    scheme = get_scheme("raw")
    for burst in (Burst([0x00] * 4), Burst([0xFF] * 4)):
        m.record(scheme.encode(burst))
    return m


class TestSchemeMetrics:
    def test_record_tallies(self, metrics):
        assert metrics.bursts == 2
        assert metrics.total_bytes == 8
        assert metrics.zeros == 32  # the all-zero burst
        assert metrics.transitions == 8

    def test_means(self, metrics):
        assert metrics.mean_zeros == 16.0
        assert metrics.mean_transitions == 4.0

    def test_invert_rate_zero_for_raw(self, metrics):
        assert metrics.invert_rate == 0.0

    def test_mean_cost(self, metrics):
        model = CostModel(2.0, 1.0)
        assert metrics.mean_cost(model) == pytest.approx((2 * 8 + 32) / 2)

    def test_mean_energy(self, metrics):
        energy_model = InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)
        expected = energy_model.burst_energy(8, 32) / 2
        assert metrics.mean_energy(energy_model) == pytest.approx(expected)

    def test_empty_metrics(self):
        empty = SchemeMetrics(scheme="x")
        assert empty.mean_zeros == 0.0
        assert empty.mean_cost(CostModel.fixed()) == 0.0
        assert empty.invert_rate == 0.0


class TestEvaluationResult:
    @pytest.fixture
    def result(self):
        from repro.sim.runner import evaluate
        return evaluate(["raw", "dbi-dc", "dbi-opt"],
                        [Burst([0x00] * 8), Burst([0x13] * 8)],
                        workload="unit")

    def test_getitem_and_schemes(self, result):
        assert result.schemes() == ["raw", "dbi-dc", "dbi-opt"]
        assert result["raw"].bursts == 2

    def test_relative_cost(self, result):
        model = CostModel.fixed()
        rel = result.relative_cost("dbi-opt", "raw", model)
        assert 0 < rel <= 1.0

    def test_best_scheme(self, result):
        model = CostModel.dc_only()
        assert result.best_scheme(model, ["raw", "dbi-dc"]) == "dbi-dc"

    def test_best_scheme_empty_candidates(self, result):
        with pytest.raises(ValueError):
            result.best_scheme(CostModel.fixed(), [])
