"""Unit tests for the parameter sweeps (shape-level figure checks live in
the benchmarks; these cover the mechanics on small populations)."""

import pytest

from repro.core.costs import CostModel
from repro.phy.pod import pod135
from repro.phy.power import GBPS, PICOFARAD
from repro.sim.sweep import (
    ActivityTotals,
    alpha_sweep,
    collect_activity,
    data_rate_sweep,
    load_sweep,
)
from repro.workloads.random_data import random_bursts


@pytest.fixture(scope="module")
def population():
    return random_bursts(count=150, seed=21)


class TestActivityTotals:
    def test_collect_matches_manual(self, population):
        from repro.baselines import DbiDc
        activity = collect_activity(DbiDc(), population)
        scheme = DbiDc()
        zeros = sum(scheme.encode(b).zeros() for b in population)
        assert activity.zeros == zeros
        assert activity.bursts == len(population)

    def test_mean_cost(self):
        activity = ActivityTotals(transitions=10, zeros=20, bursts=2)
        assert activity.mean_cost(CostModel(1.0, 2.0)) == pytest.approx(25.0)
        assert activity.mean_transitions == 5.0
        assert activity.mean_zeros == 10.0


class TestAlphaSweep:
    def test_points_validation(self, population):
        with pytest.raises(ValueError):
            alpha_sweep(population, points=1)

    def test_series_keys(self, population):
        result = alpha_sweep(population, points=5)
        assert set(result.series) == {"raw", "dbi-dc", "dbi-ac", "dbi-opt"}

    def test_include_fixed(self, population):
        result = alpha_sweep(population, points=5, include_fixed=True)
        assert "dbi-opt-fixed" in result.series

    def test_opt_lower_envelope(self, population):
        result = alpha_sweep(population, points=9)
        for index in range(9):
            conventional = min(result.series["dbi-dc"][index],
                               result.series["dbi-ac"][index],
                               result.series["raw"][index])
            assert result.series["dbi-opt"][index] <= conventional + 1e-9

    def test_endpoints_match_specialists(self, population):
        result = alpha_sweep(population, points=5)
        assert result.series["dbi-opt"][0] == pytest.approx(
            result.series["dbi-dc"][0])
        assert result.series["dbi-opt"][-1] == pytest.approx(
            result.series["dbi-ac"][-1])

    def test_advantage_and_crossover_helpers(self, population):
        result = alpha_sweep(population, points=11)
        gains = result.advantage_over_conventional()
        assert len(gains) == 11
        assert max(gains) > 0
        crossover = result.crossover_ac_cost()
        assert crossover is not None
        assert 0.4 < crossover < 0.7

    def test_extra_schemes(self, population):
        from repro.baselines import DbiGreedyWeighted
        result = alpha_sweep(
            population[:50], points=3,
            extra_schemes={"dbi-greedy": DbiGreedyWeighted(CostModel.fixed())})
        assert "dbi-greedy" in result.series


class TestDataRateSweep:
    def test_rates_validation(self, population):
        with pytest.raises(ValueError):
            data_rate_sweep(population, data_rates_hz=[])

    def test_raw_normalisation(self, population):
        result = data_rate_sweep(population[:60],
                                 data_rates_hz=[4 * GBPS, 12 * GBPS])
        assert result.normalized["raw"] == pytest.approx([1.0, 1.0])

    def test_opt_below_raw_everywhere(self, population):
        result = data_rate_sweep(population[:60],
                                 data_rates_hz=[2 * GBPS, 8 * GBPS, 16 * GBPS])
        assert all(value <= 1.0 for value in result.normalized["dbi-opt"])

    def test_best_gain(self, population):
        result = data_rate_sweep(population[:60],
                                 data_rates_hz=[2 * GBPS, 12 * GBPS])
        rate, energy = result.best_gain("dbi-opt")
        assert rate in (2 * GBPS, 12 * GBPS)
        assert energy < 1.0

    def test_absolute_energy_decreases_with_rate(self, population):
        """Higher rate -> shorter bit time -> less DC energy per burst."""
        result = data_rate_sweep(population[:60],
                                 data_rates_hz=[2 * GBPS, 16 * GBPS])
        assert (result.absolute["raw"][1] < result.absolute["raw"][0])


class TestLoadSweep:
    def test_requires_known_encoder_energies(self, population):
        with pytest.raises(KeyError):
            load_sweep(population[:30], data_rates_hz=[4 * GBPS],
                       encoder_energy_j={"dbi-dc": 0.0})

    def test_explicit_encoder_energies(self, population):
        energies = {"dbi-dc": 0.2e-12, "dbi-ac": 0.3e-12,
                    "dbi-opt-fixed": 1.7e-12}
        result = load_sweep(population[:60],
                            c_loads_farads=[3 * PICOFARAD],
                            data_rates_hz=[4 * GBPS, 14 * GBPS],
                            encoder_energy_j=energies)
        series = result.normalized[3 * PICOFARAD]
        assert len(series) == 2
        assert all(value > 0 for value in series)

    def test_zero_encoder_energy_recovers_pure_interface_ratio(self, population):
        energies = {"dbi-dc": 0.0, "dbi-ac": 0.0, "dbi-opt-fixed": 0.0}
        result = load_sweep(population[:60],
                            c_loads_farads=[3 * PICOFARAD],
                            data_rates_hz=[14 * GBPS],
                            encoder_energy_j=energies)
        # Near the balanced point OPT(Fixed) must beat both DC and AC.
        assert result.normalized[3 * PICOFARAD][0] < 1.0
