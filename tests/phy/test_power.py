"""Unit tests for the CACTI-IO-derived energy model (paper Eqs. 1-4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.burst import Burst
from repro.core.schemes import get_scheme
from repro.phy.pod import pod12, pod135
from repro.phy.power import (
    GBPS,
    InterfaceEnergyModel,
    PICOFARAD,
    crossover_data_rate,
)


@pytest.fixture
def model():
    return InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)


class TestValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            InterfaceEnergyModel(pod135(), 0.0, 3e-12)

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            InterfaceEnergyModel(pod135(), 1e9, 0.0)

    def test_rejects_negative_activity(self, model):
        with pytest.raises(ValueError):
            model.burst_energy(-1, 0)


class TestEquations:
    def test_eq1_energy_per_zero(self, model):
        expected = 1.35 ** 2 / (60 + 40) / (12 * GBPS)
        assert model.energy_per_zero == pytest.approx(expected)

    def test_eq2_energy_per_transition(self, model):
        v_swing = 1.35 * 60 / 100
        expected = 0.5 * 1.35 * v_swing * 3e-12
        assert model.energy_per_transition == pytest.approx(expected)

    def test_eq3_swing(self, model):
        assert model.v_swing == pytest.approx(1.35 * 0.6)

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    def test_eq4_linearity(self, zeros, transitions):
        m = InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)
        assert m.burst_energy(transitions, zeros) == pytest.approx(
            zeros * m.energy_per_zero + transitions * m.energy_per_transition)

    def test_encoded_burst_energy(self, model):
        encoded = get_scheme("raw").encode(Burst([0x00]))
        # 8 zeros + 8 transitions from idle-high.
        expected = model.burst_energy(8, 8)
        assert model.encoded_burst_energy(encoded) == pytest.approx(expected)


class TestCostBridge:
    def test_cost_model_coefficients(self, model):
        cost = model.cost_model()
        assert cost.alpha == pytest.approx(model.energy_per_transition)
        assert cost.beta == pytest.approx(model.energy_per_zero)

    def test_ac_fraction_increases_with_rate(self):
        low = InterfaceEnergyModel(pod135(), 2 * GBPS, 3 * PICOFARAD)
        high = InterfaceEnergyModel(pod135(), 18 * GBPS, 3 * PICOFARAD)
        assert high.ac_fraction > low.ac_fraction

    def test_with_data_rate_and_load(self, model):
        faster = model.with_data_rate(20 * GBPS)
        assert faster.data_rate_hz == 20 * GBPS
        assert faster.c_load_farads == model.c_load_farads
        heavier = model.with_load(8 * PICOFARAD)
        assert heavier.c_load_farads == 8 * PICOFARAD
        assert heavier.data_rate_hz == model.data_rate_hz


class TestCrossover:
    def test_balanced_point_for_paper_setup(self):
        """The transition-equals-zero rate for POD135 + 3 pF sits in the
        10-15 Gbps band — the paper's peak-gain region."""
        rate = crossover_data_rate(pod135(), 3 * PICOFARAD)
        assert 10e9 < rate < 15e9

    def test_heavier_load_lowers_crossover(self):
        """Fig. 8's trend: more load shifts the sweet spot down."""
        light = crossover_data_rate(pod135(), 1 * PICOFARAD)
        heavy = crossover_data_rate(pod135(), 8 * PICOFARAD)
        assert heavy < light

    def test_at_crossover_ac_fraction_is_half(self):
        rate = crossover_data_rate(pod135(), 3 * PICOFARAD, ac_fraction=0.5)
        model = InterfaceEnergyModel(pod135(), rate, 3 * PICOFARAD)
        assert model.ac_fraction == pytest.approx(0.5)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            crossover_data_rate(pod135(), 3e-12, ac_fraction=0.0)
        with pytest.raises(ValueError):
            crossover_data_rate(pod135(), 3e-12, ac_fraction=1.0)

    def test_pod12_similar_normalised_behaviour(self):
        """Paper: 'results for DDR4 with POD12 are almost identical' —
        the AC fraction at a given operating point barely moves."""
        a = InterfaceEnergyModel(pod135(), 10 * GBPS, 3 * PICOFARAD)
        b = InterfaceEnergyModel(pod12(), 10 * GBPS, 3 * PICOFARAD)
        assert a.ac_fraction == pytest.approx(b.ac_fraction, abs=0.05)
