"""Unit tests for per-lane state tracking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.sso import sso_of_words
from repro.core.bitops import total_transitions, total_zeros
from repro.phy.lane import Lane, LaneGroup

word_lists = st.lists(st.integers(min_value=0, max_value=0x1FF),
                      min_size=1, max_size=32)


class TestLane:
    def test_initial_state_idle_high(self):
        assert Lane().level == 1

    def test_drive_counts(self):
        lane = Lane()
        for level in (0, 0, 1, 0):
            lane.drive(level)
        assert lane.zero_beats == 3
        assert lane.transitions == 3  # 1->0, 0->1, 1->0
        assert lane.beats == 4

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            Lane().drive(2)

    def test_fractions(self):
        lane = Lane()
        lane.drive(0)
        lane.drive(1)
        assert lane.zero_fraction == pytest.approx(0.5)
        assert lane.toggle_rate == pytest.approx(1.0)

    def test_empty_fractions(self):
        lane = Lane()
        assert lane.zero_fraction == 0.0
        assert lane.toggle_rate == 0.0

    def test_reset(self):
        lane = Lane()
        lane.drive(0)
        lane.reset()
        assert (lane.level, lane.zero_beats, lane.transitions, lane.beats) == (1, 0, 0, 0)


class TestLaneGroup:
    def test_needs_nine_lanes(self):
        with pytest.raises(ValueError):
            LaneGroup(lanes=[Lane() for _ in range(8)])

    def test_lane_names(self):
        names = [lane.name for lane in LaneGroup().lanes]
        assert names == [f"DQ{i}" for i in range(8)] + ["DBI"]

    @given(word_lists)
    def test_matches_word_level_tallies(self, words):
        """Per-wire accounting must agree with the aggregate word-level
        counts used by the encoders."""
        group = LaneGroup()
        group.drive_words(words)
        assert group.total_zero_beats == total_zeros(words)
        assert group.total_transitions == total_transitions(words)

    @given(word_lists)
    def test_state_word_tracks_last(self, words):
        group = LaneGroup()
        group.drive_words(words)
        assert group.state_word == words[-1]

    def test_per_lane_stats_structure(self):
        group = LaneGroup()
        group.drive_word(0x000)
        stats = group.per_lane_stats()
        assert len(stats) == 9
        assert all(zeros == 1 for _name, zeros, _trans in stats)

    def test_max_simultaneous_switching(self):
        group = LaneGroup()
        # From idle-high, 0x000 toggles all nine lanes at once.
        assert group.max_simultaneous_switching([0x000, 0x1FF]) == 9

    def test_sso_reduced_by_dbi_dc(self):
        """Kim et al.'s point (paper ref. [14]): DBI DC bounds worst-case
        simultaneous switching."""
        from repro.baselines import DbiDc, Raw
        from repro.core.burst import Burst
        burst = Burst([0x00, 0xFF] * 4)
        raw_words = Raw().encode(burst).words
        dc_words = DbiDc().encode(burst).words
        group = LaneGroup()
        assert group.max_simultaneous_switching(raw_words) == 8
        assert group.max_simultaneous_switching(dc_words) <= 5

    @given(word_lists)
    def test_max_switching_matches_sso_analysis(self, words):
        """LaneGroup and the SSO analysis module count identical worst
        cases: both popcount XORs from the idle-high boundary, so the two
        SSO figures can never drift apart."""
        assert (LaneGroup().max_simultaneous_switching(words)
                == sso_of_words(words).max_switching)

    @given(word_lists, st.integers(min_value=0, max_value=0x1FF))
    def test_max_switching_matches_sso_from_any_state(self, words, start):
        group = LaneGroup()
        group.reset(start)
        assert (group.max_simultaneous_switching(words)
                == sso_of_words(words, prev_word=start).max_switching)

    def test_reset_to_pattern(self):
        group = LaneGroup()
        group.drive_word(0x000)
        group.reset(0x155)
        assert group.state_word == 0x155
        assert group.total_transitions == 0


try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

IMPLS = ("int", "uint64") if HAVE_NUMPY else ("int",)


class TestDriveWordsBatch:
    """drive_words_batch must be bit-identical to the scalar path."""

    @staticmethod
    def snapshot(group):
        return ([(lane.level, lane.zero_beats, lane.transitions, lane.beats)
                 for lane in group.lanes], group.state_word)

    @pytest.mark.parametrize("impl", IMPLS)
    @given(words=word_lists,
           start=st.integers(min_value=0, max_value=0x1FF))
    def test_matches_scalar_path(self, words, start, impl):
        scalar = LaneGroup()
        batched = LaneGroup()
        scalar.reset(start)
        batched.reset(start)
        scalar.drive_words(words)
        batched.drive_words_batch(words, word_impl=impl)
        assert self.snapshot(batched) == self.snapshot(scalar)

    @pytest.mark.parametrize("impl", IMPLS)
    @given(first=word_lists, second=word_lists)
    def test_accumulates_across_calls(self, first, second, impl):
        scalar = LaneGroup()
        batched = LaneGroup()
        scalar.drive_words(first + second)
        batched.drive_words_batch(first, word_impl=impl)
        batched.drive_words_batch(second, word_impl=impl)
        assert self.snapshot(batched) == self.snapshot(scalar)

    def test_empty_is_noop(self):
        group = LaneGroup()
        group.drive_words_batch([])
        assert self.snapshot(group) == self.snapshot(LaneGroup())

    def test_rejects_out_of_range_words(self):
        with pytest.raises(ValueError):
            LaneGroup().drive_words_batch([0x200])
