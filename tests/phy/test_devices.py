"""Unit tests for JEDEC device profiles."""

import pytest

from repro.phy.devices import DeviceProfile, PROFILES, ddr4, gddr5, gddr5x, get_profile
from repro.phy.pod import pod135


class TestValidation:
    def test_dq_width_multiple_of_eight(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="x", interface=pod135(), dq_width=12,
                          max_data_rate_hz=1e9, default_c_load_farads=1e-12)

    def test_positive_rate_and_load(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="x", interface=pod135(), dq_width=8,
                          max_data_rate_hz=0.0, default_c_load_farads=1e-12)
        with pytest.raises(ValueError):
            DeviceProfile(name="x", interface=pod135(), dq_width=8,
                          max_data_rate_hz=1e9, default_c_load_farads=0.0)


class TestBuiltins:
    def test_families(self):
        assert gddr5().interface.name == "POD135"
        assert gddr5x().interface.name == "POD135"
        assert ddr4().interface.name == "POD12"

    def test_gddr5x_rate_matches_paper(self):
        """'Current GDDR5X uses up to 12 Gbps data rate per pin.'"""
        assert gddr5x().max_data_rate_hz == pytest.approx(12e9)

    def test_graphics_part_lane_structure(self):
        profile = gddr5x()
        assert profile.byte_lanes == 4
        assert profile.pins_with_dbi == 36

    def test_burst_length_is_jedec_bl8(self):
        for profile in (gddr5(), gddr5x(), ddr4()):
            assert profile.burst_length == 8


class TestHelpers:
    def test_energy_model_defaults(self):
        model = gddr5x().energy_model()
        assert model.data_rate_hz == pytest.approx(12e9)
        assert model.c_load_farads == pytest.approx(3e-12)

    def test_energy_model_overrides(self):
        model = gddr5x().energy_model(data_rate_hz=8e9, c_load_farads=2e-12)
        assert model.data_rate_hz == pytest.approx(8e9)
        assert model.c_load_farads == pytest.approx(2e-12)

    def test_data_rate_range(self):
        rates = gddr5x().data_rate_range(points=12)
        assert len(rates) == 12
        assert rates[-1] == pytest.approx(12e9)
        assert rates[0] > 0

    def test_data_rate_range_validation(self):
        with pytest.raises(ValueError):
            gddr5x().data_rate_range(points=1)

    def test_registry(self):
        assert set(PROFILES) == {"gddr5", "gddr5x", "ddr4"}
        assert get_profile("GDDR5X").name == "GDDR5X"
        with pytest.raises(KeyError):
            get_profile("hbm")
