"""Unit tests for the unified interface-model protocol."""

import pytest

from repro.phy.interface import (
    COSTLY_LEVELS,
    INTERFACES,
    Interface,
    available_interfaces,
    get_interface,
)
from repro.phy.lvstl import LvstlInterface, lvstl11
from repro.phy.pod import pod12, pod135
from repro.phy.power import GBPS, InterfaceEnergyModel, PICOFARAD
from repro.phy.sstl import sstl15


class TestProtocolConformance:
    @pytest.mark.parametrize("name", sorted(INTERFACES))
    def test_every_preset_satisfies_the_protocol(self, name):
        iface = get_interface(name)
        assert isinstance(iface, Interface)
        assert iface.costly_level in COSTLY_LEVELS
        assert iface.v_swing > 0
        assert iface.energy_per_transition(3 * PICOFARAD) > 0
        for level in (0, 1):
            assert iface.dc_current(level) >= 0.0
        # The per-level energies follow the termination currents.
        rate = 4 * GBPS
        for level, energy in ((0, iface.energy_per_zero(rate)),
                              (1, iface.energy_per_one(rate))):
            if iface.dc_current(level) == 0.0:
                assert energy == 0.0
            else:
                assert energy > 0.0

    def test_registry_lookup(self):
        assert get_interface("POD135").name == "POD135"
        assert get_interface("lvstl11").name == "LVSTL11"
        assert "pod12" in available_interfaces()
        with pytest.raises(KeyError):
            get_interface("ecl")

    def test_costly_level_polarity_table(self):
        assert pod135().costly_level == "zero"
        assert sstl15().costly_level == "both"
        assert lvstl11().costly_level == "one"


class TestLvstl:
    def test_polarity_mirror_of_pod(self):
        """LVSTL is POD's mirror: ones cost, zeros are free."""
        lvstl = lvstl11()
        rate = 3.2 * GBPS
        assert lvstl.energy_per_zero(rate) == 0.0
        assert lvstl.energy_per_one(rate) > 0.0
        assert lvstl.dc_current(0) == 0.0
        assert lvstl.dc_current(1) > 0.0

    def test_voh_divider(self):
        lvstl = LvstlInterface(vddq=1.1, r_termination=60.0, r_pullup=40.0)
        assert lvstl.v_high == pytest.approx(1.1 * 0.6)
        assert lvstl.v_swing == lvstl.v_high

    def test_low_swing(self):
        """The whole point of LVSTL: swing well below the POD12 swing."""
        assert lvstl11().v_swing < pod12().v_swing

    def test_validation(self):
        with pytest.raises(ValueError):
            LvstlInterface(vddq=0.0)
        with pytest.raises(ValueError):
            LvstlInterface(vddq=1.1, r_termination=-1.0)
        with pytest.raises(ValueError):
            lvstl11().energy_per_one(0.0)
        with pytest.raises(ValueError):
            lvstl11().energy_per_zero(-1.0)
        with pytest.raises(ValueError):
            lvstl11().energy_per_transition(0.0)
        with pytest.raises(ValueError):
            lvstl11().dc_current(2)


class TestEnergyModelOverAnyInterface:
    @pytest.mark.parametrize("name", sorted(INTERFACES))
    def test_constructs_and_prices(self, name):
        model = InterfaceEnergyModel(get_interface(name), 4 * GBPS,
                                     3 * PICOFARAD)
        energy = model.burst_energy(10, 20, lane_beats=72)
        assert energy > 0.0
        # Adding the one-level term never reduces the total.
        assert energy >= model.burst_energy(10, 20)

    def test_pod_two_argument_form_unchanged(self):
        """The one-level term is exactly zero on POD, bit for bit."""
        model = InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)
        assert model.energy_per_one == 0.0
        assert (model.burst_energy(7, 13, lane_beats=72)
                == model.burst_energy(7, 13))

    def test_lane_beats_validation(self):
        model = InterfaceEnergyModel(sstl15(), 2 * GBPS, 3 * PICOFARAD)
        with pytest.raises(ValueError):
            model.burst_energy(0, 10, lane_beats=5)

    def test_sstl_energy_depends_only_on_transitions(self):
        """With lane_beats accounted, SSTL energy is invariant to the
        zeros/ones split — the physical reason DBI DC buys nothing."""
        model = InterfaceEnergyModel(sstl15(), 2 * GBPS, 3 * PICOFARAD)
        beats = 9 * 8
        assert (model.burst_energy(5, 10, lane_beats=beats)
                == pytest.approx(model.burst_energy(5, 60, lane_beats=beats)))

    def test_lvstl_energy_decreases_with_zeros(self):
        model = InterfaceEnergyModel(lvstl11(), 2 * GBPS, 3 * PICOFARAD)
        beats = 9 * 8
        assert (model.burst_energy(5, 60, lane_beats=beats)
                < model.burst_energy(5, 10, lane_beats=beats))


class TestDifferentialCostBridge:
    def test_pod_bridge_is_the_paper_bridge(self):
        model = InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)
        cost = model.cost_model()
        assert cost.alpha == model.energy_per_transition
        assert cost.beta == model.energy_per_zero

    def test_sstl_bridge_is_transition_only(self):
        model = InterfaceEnergyModel(sstl15(), 2 * GBPS, 3 * PICOFARAD)
        cost = model.cost_model()
        assert cost.beta == 0.0
        assert cost.alpha > 0.0

    def test_lvstl_bridge_clamps_to_transition_only(self):
        model = InterfaceEnergyModel(lvstl11(), 2 * GBPS, 3 * PICOFARAD)
        cost = model.cost_model()
        assert cost.beta == 0.0
        assert cost.alpha > 0.0
