"""Unit tests for the multi-lane memory bus simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DbiDc, Raw
from repro.core.burst import Burst
from repro.phy.bus import BusStatistics, MemoryBus
from repro.phy.pod import pod135
from repro.phy.power import GBPS, InterfaceEnergyModel, PICOFARAD

payloads = st.binary(min_size=1, max_size=256)


@pytest.fixture
def energy_model():
    return InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)


class TestBusStatistics:
    def test_merge(self):
        a = BusStatistics(bursts=1, beats=8, zeros=3, transitions=4,
                          energy_joules=1e-12)
        b = BusStatistics(bursts=2, beats=16, zeros=5, transitions=6,
                          energy_joules=2e-12)
        merged = a.merge(b)
        assert merged.bursts == 3
        assert merged.zeros == 8
        assert merged.energy_joules == pytest.approx(3e-12)

    def test_means(self):
        stats = BusStatistics(bursts=4, beats=32, zeros=8, transitions=12,
                              energy_joules=4e-12)
        assert stats.zeros_per_burst == 2.0
        assert stats.transitions_per_burst == 3.0
        assert stats.energy_per_burst == pytest.approx(1e-12)

    def test_empty_means(self):
        stats = BusStatistics()
        assert stats.zeros_per_burst == 0.0
        assert stats.energy_per_burst == 0.0


class TestMemoryBus:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBus(Raw, byte_lanes=0)
        with pytest.raises(ValueError):
            MemoryBus(Raw, burst_length=0)

    def test_striping(self):
        bus = MemoryBus(Raw, byte_lanes=2, burst_length=2)
        bus.write(bytes([1, 2, 3, 4]))
        # Lane 0 gets bytes 1, 3; lane 1 gets bytes 2, 4.
        assert bus.lanes[0].stats.bursts == 1
        assert bus.lanes[1].stats.bursts == 1

    def test_burst_count(self):
        bus = MemoryBus(Raw, byte_lanes=4, burst_length=8)
        stats = bus.write(bytes(range(64)))
        # 64 bytes / 4 lanes = 16 bytes per lane = 2 bursts per lane.
        assert stats.bursts == 8
        assert stats.beats == 64

    def test_tail_padding_adds_no_zero_cost(self):
        bus = MemoryBus(Raw, byte_lanes=1, burst_length=8)
        stats = bus.write(bytes([0xFF] * 3))
        assert stats.zeros == 0
        assert stats.transitions == 0

    @given(payloads)
    @settings(max_examples=30, deadline=None)
    def test_write_returns_call_delta(self, payload):
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=4)
        first = bus.write(payload)
        second = bus.write(payload)
        cumulative = bus.statistics()
        assert cumulative.bursts == first.bursts + second.bursts
        assert cumulative.zeros == first.zeros + second.zeros

    def test_energy_accounting(self, energy_model):
        bus = MemoryBus(Raw, byte_lanes=1, burst_length=8,
                        energy_model=energy_model)
        stats = bus.write(bytes([0x00] * 8))
        expected = energy_model.burst_energy(stats.transitions, stats.zeros)
        assert stats.energy_joules == pytest.approx(expected)

    def test_state_threads_across_writes(self):
        """Chained bursts: the second burst sees the first one's final
        word, so a constant stream stops paying transitions."""
        bus = MemoryBus(Raw, byte_lanes=1, burst_length=4)
        bus.write(bytes([0x55] * 4))
        second = bus.write(bytes([0x55] * 4))
        assert second.transitions == 0

    def test_write_bursts_single_lane(self):
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=4)
        stats = bus.write_bursts([Burst([0x00] * 4)], lane=1)
        assert stats.bursts == 1
        assert bus.lanes[1].stats.bursts == 1
        assert bus.lanes[0].stats.bursts == 0

    def test_write_bursts_lane_bounds(self):
        bus = MemoryBus(Raw, byte_lanes=2)
        with pytest.raises(IndexError):
            bus.write_bursts([Burst([1])], lane=2)

    def test_reset(self):
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=4)
        bus.write(bytes(range(16)))
        bus.reset()
        stats = bus.statistics()
        assert stats.bursts == 0
        assert all(lane.state_word == 0x1FF for lane in bus.lanes)

    def test_dc_beats_raw_on_zero_heavy_payload(self, energy_model):
        payload = bytes([0x00] * 64)
        raw_bus = MemoryBus(Raw, byte_lanes=4, energy_model=energy_model)
        dc_bus = MemoryBus(DbiDc, byte_lanes=4, energy_model=energy_model)
        raw_stats = raw_bus.write(payload)
        dc_stats = dc_bus.write(payload)
        assert dc_stats.energy_joules < raw_stats.energy_joules

    def test_lane_isolation(self):
        """Encoders must not share state across lanes."""
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=2)
        bus.write(bytes([0x00, 0xFF, 0x00, 0xFF]))
        # Lane 0 saw two 0x00 bytes, lane 1 two 0xFF bytes.
        assert bus.lanes[0].stats.zeros != bus.lanes[1].stats.zeros


try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False


class TestWriteBurstsEnergyConsistency:
    """Regression: the call result must use the same per-burst energy
    accounting as the cumulative lane statistics (it used to price the
    call totals once, drifting by float rounding)."""

    @given(payloads)
    @settings(max_examples=25, deadline=None)
    def test_call_delta_equals_stats_growth(self, payload):
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=4,
                        energy_model=InterfaceEnergyModel(
                            pod135(), 12 * GBPS, 3 * PICOFARAD))
        bursts = [Burst(payload[i:i + 4].ljust(4, b"\xff"))
                  for i in range(0, len(payload), 4)]
        before = bus.statistics().energy_joules
        result = bus.write_bursts(bursts, lane=1)
        after = bus.statistics().energy_joules
        assert result.energy_joules == after - before
        assert result.energy_joules == bus.lanes[1].stats.energy_joules

    def test_matches_send_burst_accrual(self, energy_model):
        """write_bursts and burst-at-a-time writes agree bit for bit."""
        bursts = [Burst([0x00, 0xFF, 0x3C, 0xC3]), Burst([0x55] * 4),
                  Burst([0xAA] * 4)]
        together = MemoryBus(DbiDc, byte_lanes=1, burst_length=4,
                             energy_model=energy_model)
        one_by_one = MemoryBus(DbiDc, byte_lanes=1, burst_length=4,
                               energy_model=energy_model)
        total = together.write_bursts(bursts)
        for burst in bursts:
            one_by_one.write_bursts([burst])
        assert (total.energy_joules
                == one_by_one.statistics().energy_joules
                == together.statistics().energy_joules)


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector backend requires NumPy")
class TestBatchedBusParity:
    """The vector-backend MemoryBus must be bit-identical to the scalar
    reference: statistics, per-wire counters, wire state and energy."""

    schemes = st.sampled_from(["raw", "dbi-dc", "dbi-ac", "dbi-opt"])

    @staticmethod
    def snapshot(bus):
        return [((lane.stats.bursts, lane.stats.beats, lane.stats.zeros,
                  lane.stats.transitions, lane.stats.energy_joules),
                 lane.state_word,
                 [(wire.level, wire.zero_beats, wire.transitions, wire.beats)
                  for wire in lane.group.lanes])
                for lane in bus.lanes]

    @staticmethod
    def make_pair(scheme_name, energy_model=None, word_impl="auto"):
        from repro.core.schemes import get_scheme
        factory = lambda: get_scheme(scheme_name)
        if energy_model is None:
            energy_model = InterfaceEnergyModel(pod135(), 12 * GBPS,
                                                3 * PICOFARAD)
        reference = MemoryBus(factory, byte_lanes=3, burst_length=4,
                              energy_model=energy_model,
                              backend="reference")
        vector = MemoryBus(factory, byte_lanes=3, burst_length=4,
                           energy_model=energy_model, backend="vector",
                           word_impl=word_impl)
        return reference, vector

    @given(payload=payloads, scheme_name=schemes)
    @settings(max_examples=30, deadline=None)
    def test_striped_writes_identical(self, payload, scheme_name):
        reference, vector = self.make_pair(scheme_name)
        for chunk in (payload, payload[::-1]):  # ragged tails included
            ref_stats = reference.write(chunk)
            vec_stats = vector.write(chunk)
            assert vars(ref_stats) == vars(vec_stats)
            assert self.snapshot(reference) == self.snapshot(vector)

    @pytest.mark.parametrize("word_impl", ("int", "uint64"))
    def test_word_impls_identical(self, energy_model, word_impl):
        reference, vector = self.make_pair("dbi-opt", energy_model,
                                           word_impl=word_impl)
        payload = bytes(range(256)) + bytes([0xFF, 0x00] * 10) + bytes(5)
        assert (vars(reference.write(payload))
                == vars(vector.write(payload)))
        assert self.snapshot(reference) == self.snapshot(vector)

    @given(payload=payloads)
    @settings(max_examples=20, deadline=None)
    def test_write_bursts_identical_with_ragged_tail(self, payload):
        """Pre-formed bursts of mixed lengths: the vector path must fall
        back (non-rectangular pack) and still match."""
        bursts = [Burst(payload[i:i + 4]) for i in range(0, len(payload), 4)]
        reference, vector = self.make_pair("dbi-dc")
        ref_stats = reference.write_bursts(bursts, lane=2)
        vec_stats = vector.write_bursts(bursts, lane=2)
        assert vars(ref_stats) == vars(vec_stats)
        assert self.snapshot(reference) == self.snapshot(vector)

    def test_vector_write_skips_scalar_encode(self, monkeypatch):
        """Acceptance: on the vector backend, MemoryBus.write never runs
        per-burst scheme.encode for a batchable scheme."""
        from repro.core import schemes as schemes_mod

        def forbidden(self, burst, prev_word=0x1FF):
            raise AssertionError("scalar encode called on vector backend")

        monkeypatch.setattr(schemes_mod.DbiScheme, "encode", forbidden)
        from repro.core.schemes import get_scheme
        bus = MemoryBus(lambda: get_scheme("dbi-opt"), byte_lanes=2,
                        burst_length=8, backend="vector")
        stats = bus.write(bytes(range(64)))
        assert stats.bursts == 8
