"""Unit tests for the multi-lane memory bus simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DbiDc, Raw
from repro.core.burst import Burst
from repro.phy.bus import BusStatistics, MemoryBus
from repro.phy.pod import pod135
from repro.phy.power import GBPS, InterfaceEnergyModel, PICOFARAD

payloads = st.binary(min_size=1, max_size=256)


@pytest.fixture
def energy_model():
    return InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)


class TestBusStatistics:
    def test_merge(self):
        a = BusStatistics(bursts=1, beats=8, zeros=3, transitions=4,
                          energy_joules=1e-12)
        b = BusStatistics(bursts=2, beats=16, zeros=5, transitions=6,
                          energy_joules=2e-12)
        merged = a.merge(b)
        assert merged.bursts == 3
        assert merged.zeros == 8
        assert merged.energy_joules == pytest.approx(3e-12)

    def test_means(self):
        stats = BusStatistics(bursts=4, beats=32, zeros=8, transitions=12,
                              energy_joules=4e-12)
        assert stats.zeros_per_burst == 2.0
        assert stats.transitions_per_burst == 3.0
        assert stats.energy_per_burst == pytest.approx(1e-12)

    def test_empty_means(self):
        stats = BusStatistics()
        assert stats.zeros_per_burst == 0.0
        assert stats.energy_per_burst == 0.0


class TestMemoryBus:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBus(Raw, byte_lanes=0)
        with pytest.raises(ValueError):
            MemoryBus(Raw, burst_length=0)

    def test_striping(self):
        bus = MemoryBus(Raw, byte_lanes=2, burst_length=2)
        bus.write(bytes([1, 2, 3, 4]))
        # Lane 0 gets bytes 1, 3; lane 1 gets bytes 2, 4.
        assert bus.lanes[0].stats.bursts == 1
        assert bus.lanes[1].stats.bursts == 1

    def test_burst_count(self):
        bus = MemoryBus(Raw, byte_lanes=4, burst_length=8)
        stats = bus.write(bytes(range(64)))
        # 64 bytes / 4 lanes = 16 bytes per lane = 2 bursts per lane.
        assert stats.bursts == 8
        assert stats.beats == 64

    def test_tail_padding_adds_no_zero_cost(self):
        bus = MemoryBus(Raw, byte_lanes=1, burst_length=8)
        stats = bus.write(bytes([0xFF] * 3))
        assert stats.zeros == 0
        assert stats.transitions == 0

    @given(payloads)
    @settings(max_examples=30, deadline=None)
    def test_write_returns_call_delta(self, payload):
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=4)
        first = bus.write(payload)
        second = bus.write(payload)
        cumulative = bus.statistics()
        assert cumulative.bursts == first.bursts + second.bursts
        assert cumulative.zeros == first.zeros + second.zeros

    def test_energy_accounting(self, energy_model):
        bus = MemoryBus(Raw, byte_lanes=1, burst_length=8,
                        energy_model=energy_model)
        stats = bus.write(bytes([0x00] * 8))
        expected = energy_model.burst_energy(stats.transitions, stats.zeros)
        assert stats.energy_joules == pytest.approx(expected)

    def test_state_threads_across_writes(self):
        """Chained bursts: the second burst sees the first one's final
        word, so a constant stream stops paying transitions."""
        bus = MemoryBus(Raw, byte_lanes=1, burst_length=4)
        bus.write(bytes([0x55] * 4))
        second = bus.write(bytes([0x55] * 4))
        assert second.transitions == 0

    def test_write_bursts_single_lane(self):
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=4)
        stats = bus.write_bursts([Burst([0x00] * 4)], lane=1)
        assert stats.bursts == 1
        assert bus.lanes[1].stats.bursts == 1
        assert bus.lanes[0].stats.bursts == 0

    def test_write_bursts_lane_bounds(self):
        bus = MemoryBus(Raw, byte_lanes=2)
        with pytest.raises(IndexError):
            bus.write_bursts([Burst([1])], lane=2)

    def test_reset(self):
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=4)
        bus.write(bytes(range(16)))
        bus.reset()
        stats = bus.statistics()
        assert stats.bursts == 0
        assert all(lane.state_word == 0x1FF for lane in bus.lanes)

    def test_dc_beats_raw_on_zero_heavy_payload(self, energy_model):
        payload = bytes([0x00] * 64)
        raw_bus = MemoryBus(Raw, byte_lanes=4, energy_model=energy_model)
        dc_bus = MemoryBus(DbiDc, byte_lanes=4, energy_model=energy_model)
        raw_stats = raw_bus.write(payload)
        dc_stats = dc_bus.write(payload)
        assert dc_stats.energy_joules < raw_stats.energy_joules

    def test_lane_isolation(self):
        """Encoders must not share state across lanes."""
        bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=2)
        bus.write(bytes([0x00, 0xFF, 0x00, 0xFF]))
        # Lane 0 saw two 0x00 bytes, lane 1 two 0xFF bytes.
        assert bus.lanes[0].stats.zeros != bus.lanes[1].stats.zeros
