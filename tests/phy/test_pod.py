"""Unit tests for the POD electrical model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.pod import PodInterface, pod12, pod135, pod15


class TestValidation:
    def test_rejects_non_positive_voltage(self):
        with pytest.raises(ValueError):
            PodInterface(vddq=0.0)

    def test_rejects_non_positive_resistance(self):
        with pytest.raises(ValueError):
            PodInterface(vddq=1.35, r_pullup=0.0)
        with pytest.raises(ValueError):
            PodInterface(vddq=1.35, r_pulldown=-1.0)


class TestElectrics:
    def test_termination_current(self):
        pod = PodInterface(vddq=1.0, r_pullup=60.0, r_pulldown=40.0)
        assert pod.termination_current == pytest.approx(0.01)

    def test_zero_power(self):
        pod = PodInterface(vddq=1.0, r_pullup=60.0, r_pulldown=40.0)
        assert pod.zero_power == pytest.approx(0.01)

    def test_v_swing_divider(self):
        """Paper Eq. 3: swing = VDDQ * R_pu / (R_pu + R_pd)."""
        pod = pod135()
        assert pod.v_swing == pytest.approx(1.35 * 60 / 100)

    def test_swing_plus_vlow_is_vddq(self):
        pod = pod135()
        assert pod.v_swing + pod.v_low == pytest.approx(pod.vddq)

    @given(st.floats(min_value=0.5, max_value=2.0),
           st.floats(min_value=10.0, max_value=200.0),
           st.floats(min_value=10.0, max_value=200.0))
    def test_zero_energy_scales_with_v_squared(self, vddq, r_pu, r_pd):
        base = PodInterface(vddq=vddq, r_pullup=r_pu, r_pulldown=r_pd)
        doubled = PodInterface(vddq=2 * vddq, r_pullup=r_pu, r_pulldown=r_pd)
        rate = 1e9
        assert (doubled.energy_per_zero(rate)
                == pytest.approx(4 * base.energy_per_zero(rate)))

    def test_energy_per_zero_inverse_in_rate(self):
        """Paper Eq. 1: E_zero has a 1/f factor — halving the rate doubles
        the per-bit DC energy."""
        pod = pod135()
        assert (pod.energy_per_zero(6e9)
                == pytest.approx(2 * pod.energy_per_zero(12e9)))

    def test_energy_per_transition_linear_in_load(self):
        """Paper Eq. 2: E_transition is proportional to c_load."""
        pod = pod135()
        assert (pod.energy_per_transition(6e-12)
                == pytest.approx(2 * pod.energy_per_transition(3e-12)))

    def test_paper_operating_point_magnitudes(self):
        """At POD135, 12 Gbps, 3 pF: E_zero ~ 1.5 pJ, E_transition ~ 1.6 pJ
        (comparable, which is why alpha = beta works so well there)."""
        pod = pod135()
        e_zero = pod.energy_per_zero(12e9)
        e_transition = pod.energy_per_transition(3e-12)
        assert e_zero == pytest.approx(1.52e-12, rel=0.02)
        assert e_transition == pytest.approx(1.64e-12, rel=0.02)

    def test_rate_and_load_validation(self):
        pod = pod135()
        with pytest.raises(ValueError):
            pod.energy_per_zero(0.0)
        with pytest.raises(ValueError):
            pod.energy_per_transition(-1e-12)


class TestProfiles:
    def test_voltages(self):
        assert pod135().vddq == 1.35
        assert pod12().vddq == 1.2
        assert pod15().vddq == 1.5

    def test_names(self):
        assert pod135().name == "POD135"
        assert pod12().name == "POD12"
        assert pod15().name == "POD15"

    def test_scaled_keeps_network(self):
        scaled = pod135().scaled(1.2)
        assert scaled.vddq == 1.2
        assert scaled.r_pullup == pod135().r_pullup
        assert scaled.name == "POD120"
