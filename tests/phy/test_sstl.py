"""Unit tests for the SSTL reference model."""

import pytest

from repro.phy.sstl import SstlInterface, sstl135, sstl15


def test_vtt_is_midrail():
    assert sstl15().vtt == pytest.approx(0.75)


def test_level_symmetry():
    """The defining SSTL property: zeros and ones burn the same power,
    which is why DBI DC is pointless on SSTL links."""
    sstl = sstl15()
    assert sstl.energy_per_zero(1e9) == pytest.approx(sstl.energy_per_one(1e9))


def test_level_power_positive_and_smaller_than_pod_zero_power():
    from repro.phy.pod import pod15
    sstl = sstl15()
    pod = pod15()
    assert sstl.level_power > 0
    # Centre-tap termination halves the driving voltage, so per-level
    # power is below POD's zero power for comparable networks.
    assert sstl.level_power < pod.zero_power


def test_transition_energy_positive():
    assert sstl135().energy_per_transition(3e-12) > 0


def test_validation():
    with pytest.raises(ValueError):
        SstlInterface(vddq=-1.0)
    with pytest.raises(ValueError):
        SstlInterface(vddq=1.5, r_termination=0.0)
    with pytest.raises(ValueError):
        sstl15().energy_per_zero(0.0)
    with pytest.raises(ValueError):
        sstl15().energy_per_transition(0.0)


def test_dbi_dc_saves_nothing_on_sstl():
    """End-to-end sanity: the total level energy of a burst on SSTL is
    identical whether or not bytes are inverted (only transitions matter),
    so a zero-minimising code cannot help."""
    from repro.baselines import DbiDc, Raw
    from repro.core.burst import Burst
    sstl = sstl15()
    burst = Burst([0x00] * 8)
    raw = Raw().encode(burst)
    dc = DbiDc().encode(burst)
    rate = 1.6e9

    def level_energy(encoded):
        beats = len(encoded) * 9
        return beats * sstl.energy_per_zero(rate)  # same for 0 and 1

    assert level_energy(raw) == pytest.approx(level_energy(dc))
