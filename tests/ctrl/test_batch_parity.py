"""Differential suite: batched controller path vs the per-byte reference.

The acceptance contract of PR 5: :class:`MemoryController` with
``backend="vector"`` is bit-identical to ``backend="reference"`` (and to
the legacy :class:`WriteController`) — same integer statistics, same
per-lane invert decisions — across POD/SSTL/LVSTL operating points,
arbitrary channel/lane geometries, ragged payloads and multi-batch
submission.  Without NumPy ``auto`` resolves to the reference path, so
the suite runs (and passes trivially on the backend axis) NumPy-free.
"""

import random

import pytest

from repro.core.costs import CostModel
from repro.core.vectorized import available_backends
from repro.ctrl.controller import (
    CACHE_LINE_BYTES,
    MemoryController,
    WriteController,
    WriteTransaction,
    transactions_from_bytes,
)
from repro.phy.interface import get_interface
from repro.phy.power import GBPS, InterfaceEnergyModel, PICOFARAD

#: Operating points spanning the three electrical standards.
OPERATING_POINTS = [
    ("pod135", 12 * GBPS, 3 * PICOFARAD),
    ("pod12", 3.2 * GBPS, 3 * PICOFARAD),
    ("sstl15", 1.6 * GBPS, 3 * PICOFARAD),
    ("lvstl11", 3.2 * GBPS, 2 * PICOFARAD),
]


def random_transactions(count, seed, line_bytes=CACHE_LINE_BYTES,
                        ragged=False):
    rng = random.Random(seed)
    transactions = []
    for index in range(count):
        size = rng.randrange(1, line_bytes + 1) if ragged else line_bytes
        transactions.append(WriteTransaction(
            index * CACHE_LINE_BYTES,
            bytes(rng.getrandbits(8) for _ in range(size))))
    return transactions


def replay(backend, transactions, energy_model, channels, lanes, window,
           batches=1):
    controller = MemoryController(
        channels=channels, byte_lanes=lanes,
        model=energy_model.cost_model(), window=window,
        energy_model=energy_model, backend=backend, record=True)
    step = max(1, len(transactions) // batches)
    for start in range(0, len(transactions), step):
        controller.submit(transactions[start:start + step])
    stats = controller.flush()
    return controller, stats


def assert_controllers_identical(reference, vector, channels, lanes):
    ref_stats, vec_stats = reference.statistics(), vector.statistics()
    assert (vec_stats.zeros, vec_stats.transitions, vec_stats.beats) == \
        (ref_stats.zeros, ref_stats.transitions, ref_stats.beats)
    assert vec_stats.transactions == ref_stats.transactions
    assert vec_stats.bytes_written == ref_stats.bytes_written
    assert vec_stats.energy_joules == ref_stats.energy_joules
    for channel in range(channels):
        for lane in range(lanes):
            assert (vector.lane_activity(channel, lane)
                    == reference.lane_activity(channel, lane))
            assert (vector.lane_decisions(channel, lane)
                    == reference.lane_decisions(channel, lane))


@pytest.mark.parametrize("interface_name,rate,c_load", OPERATING_POINTS)
@pytest.mark.parametrize("geometry", [(1, 1), (1, 4), (2, 4), (3, 2)])
def test_vector_path_matches_reference(interface_name, rate, c_load,
                                       geometry):
    channels, lanes = geometry
    energy_model = InterfaceEnergyModel(get_interface(interface_name), rate,
                                        c_load)
    transactions = random_transactions(40, seed=hash((interface_name,
                                                      geometry)) & 0xFFFF)
    reference, _ = replay("reference", transactions, energy_model,
                          channels, lanes, window=8)
    for backend in available_backends():
        vector, _ = replay(backend, transactions, energy_model,
                           channels, lanes, window=8, batches=3)
        assert_controllers_identical(reference, vector, channels, lanes)


@pytest.mark.parametrize("window", [1, 3, 8, 16, 33])
def test_parity_across_windows(window):
    energy_model = InterfaceEnergyModel(get_interface("pod135"), 12 * GBPS,
                                        3 * PICOFARAD)
    transactions = random_transactions(30, seed=window, ragged=True)
    reference, _ = replay("reference", transactions, energy_model, 2, 2,
                          window)
    for backend in available_backends():
        vector, _ = replay(backend, transactions, energy_model, 2, 2,
                           window, batches=4)
        assert_controllers_identical(reference, vector, 2, 2)


def test_parity_on_trace_payload():
    """Cache-line replay of a structured payload, incl. a short tail line."""
    payload = bytes(range(256)) * 10 + b"\x00" * 37
    transactions = transactions_from_bytes(payload)
    energy_model = InterfaceEnergyModel(get_interface("lvstl11"), 3.2 * GBPS,
                                        2 * PICOFARAD)
    reference, _ = replay("reference", transactions, energy_model, 2, 4, 16)
    for backend in available_backends():
        vector, _ = replay(backend, transactions, energy_model, 2, 4, 16,
                           batches=2)
        assert_controllers_identical(reference, vector, 2, 4)


def test_legacy_write_controller_is_the_reference():
    """WriteController (per-byte API) and batched submit agree exactly."""
    transactions = random_transactions(25, seed=99)
    legacy = WriteController(channels=2, byte_lanes=4,
                             model=CostModel.fixed(), window=8, record=True)
    for transaction in transactions:
        legacy.write(transaction)
    legacy_stats = legacy.flush()
    for backend in available_backends():
        controller = MemoryController(channels=2, byte_lanes=4,
                                      model=CostModel.fixed(), window=8,
                                      backend=backend, record=True)
        controller.submit(transactions)
        stats = controller.flush()
        assert (stats.zeros, stats.transitions, stats.beats) == \
            (legacy_stats.zeros, legacy_stats.transitions, legacy_stats.beats)
        for channel in range(2):
            for lane in range(4):
                assert (controller.lane_decisions(channel, lane)
                        == legacy.lane_decisions(channel, lane))
