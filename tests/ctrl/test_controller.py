"""Unit tests for the write-path controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.ctrl.controller import (
    CACHE_LINE_BYTES,
    WriteController,
    WriteTransaction,
    compare_controllers,
)
from repro.phy.pod import pod135
from repro.phy.power import GBPS, InterfaceEnergyModel, PICOFARAD

payloads = st.binary(min_size=1, max_size=128)


class TestWriteTransaction:
    def test_validation(self):
        with pytest.raises(ValueError):
            WriteTransaction(-1, b"x")
        with pytest.raises(ValueError):
            WriteTransaction(0, b"")


class TestChannelMapping:
    def test_interleaving(self):
        controller = WriteController(channels=4)
        assert controller.channel_of(0) == 0
        assert controller.channel_of(CACHE_LINE_BYTES) == 1
        assert controller.channel_of(4 * CACHE_LINE_BYTES) == 0

    def test_single_channel(self):
        controller = WriteController(channels=1)
        assert controller.channel_of(123456) == 0


class TestWriteController:
    def test_validation(self):
        with pytest.raises(ValueError):
            WriteController(channels=0)
        with pytest.raises(ValueError):
            WriteController(byte_lanes=0)

    @given(payloads)
    @settings(max_examples=30, deadline=None)
    def test_flush_accounts_every_byte(self, payload):
        controller = WriteController(channels=1, byte_lanes=2, window=8)
        controller.write(WriteTransaction(0, payload))
        stats = controller.flush()
        assert stats.bytes_written == len(payload)
        assert stats.transactions == 1
        assert controller.pending_bytes() == 0
        # Every committed byte contributes one beat on its lane.
        total_beats = sum(lane.beats for lane in controller.lanes.values())
        assert total_beats == len(payload)

    def test_statistics_before_flush_exclude_pending(self):
        controller = WriteController(channels=1, byte_lanes=1, window=16)
        controller.write(WriteTransaction(0, bytes([0x00] * 4)))
        # Window not full: nothing committed yet.
        assert controller.statistics().zeros == 0
        assert controller.pending_bytes() == 4
        stats = controller.flush()
        assert stats.zeros > 0

    def test_all_ones_payload_is_free(self):
        controller = WriteController(channels=1, byte_lanes=2, window=4)
        controller.write(WriteTransaction(0, bytes([0xFF] * 32)))
        stats = controller.flush()
        assert stats.zeros == 0
        assert stats.transitions == 0

    def test_energy_accounting(self):
        energy_model = InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)
        controller = WriteController(channels=1, byte_lanes=1, window=4,
                                     energy_model=energy_model)
        controller.write(WriteTransaction(0, bytes([0x00] * 8)))
        stats = controller.flush()
        expected = energy_model.burst_energy(stats.transitions, stats.zeros)
        assert stats.energy_joules == pytest.approx(expected)
        assert stats.energy_per_byte > 0

    def test_channels_are_independent(self):
        controller = WriteController(channels=2, byte_lanes=1, window=2)
        controller.write(WriteTransaction(0, bytes([0x00] * 8)))
        controller.write(WriteTransaction(CACHE_LINE_BYTES, bytes([0xFF] * 8)))
        controller.flush()
        zeros_by_channel = {
            channel: sum(lane.zeros for (c, _l), lane in
                         controller.lanes.items() if c == channel)
            for channel in (0, 1)
        }
        assert zeros_by_channel[0] > 0
        assert zeros_by_channel[1] == 0


class TestLineBytesSteering:
    def test_non_default_line_size_still_round_robins(self):
        """Steering granularity follows line_bytes: 128-byte lines over 2
        channels must alternate, not funnel into channel 0."""
        from repro.ctrl.controller import MemoryController, transactions_from_bytes
        controller = MemoryController(channels=2, byte_lanes=2, window=4,
                                      line_bytes=128, backend="reference")
        controller.submit(transactions_from_bytes(bytes(512), line_bytes=128))
        controller.flush()
        for channel in range(2):
            assert controller.channel_statistics(channel).beats == 256
            assert controller.channel_statistics(channel).bursts == 2

    def test_line_bytes_validation(self):
        from repro.ctrl.controller import MemoryController
        with pytest.raises(ValueError):
            MemoryController(line_bytes=0)


class TestCompareControllers:
    def test_lookahead_never_hurts(self):
        import numpy as np
        rng = np.random.default_rng(13)
        stream = [bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
                  for _ in range(8)]
        rows = compare_controllers(stream, CostModel.fixed(),
                                   windows=(1, 8, 32))
        costs = [cost for _window, cost in rows]
        assert costs[0] >= costs[1] >= costs[2] - 1e-9
