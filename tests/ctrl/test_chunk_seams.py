"""Chunk-seam differential suite: streaming replay == one-shot replay.

The bounded-memory streaming path is only admissible if chunk seams are
invisible: submitting a trace in arbitrary pieces must be bit-identical
to submitting it in one batch, because the replay cache shares keys
between the two.  That holds structurally — a lane encoder's pending
state depends only on the cumulative bytes pushed through it, never on
how the pushes were grouped — and this suite enforces it empirically for
arbitrary chunkings (hypothesis-chosen cut points), ragged tails,
windows 1–32 and every available backend.  Without NumPy the backend
list collapses to the reference path and the suite still runs.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.core.vectorized import available_backends
from repro.ctrl.controller import (
    MemoryController,
    transactions_from_bytes,
    transactions_from_source,
)
from repro.workloads.source import BytesTraceSource

LINE_BYTES = 16


def cuts_to_chunks(payload, cuts):
    marks = sorted({cut % (len(payload) + 1) for cut in cuts})
    edges = [0] + [mark for mark in marks if 0 < mark < len(payload)] \
        + [len(payload)]
    return [payload[a:b] for a, b in zip(edges, edges[1:]) if b > a]


def controller_fingerprint(controller):
    """Everything observable: totals plus per-lane integer activity."""
    stats = controller.statistics()
    lanes = tuple(
        controller.lane_activity(channel, lane)
        for channel in range(controller.channels)
        for lane in range(controller.byte_lanes))
    return (stats.transactions, stats.bytes_written, stats.zeros,
            stats.transitions, stats.beats, lanes)


def replay_oneshot(payload, backend, window, channels=2, lanes=2):
    controller = MemoryController(
        channels=channels, byte_lanes=lanes, model=CostModel(1.0, 0.7),
        window=window, line_bytes=LINE_BYTES, backend=backend)
    controller.submit(transactions_from_bytes(payload, LINE_BYTES))
    controller.flush()
    return controller_fingerprint(controller)


def replay_chunked(chunks, backend, window, channels=2, lanes=2):
    controller = MemoryController(
        channels=channels, byte_lanes=lanes, model=CostModel(1.0, 0.7),
        window=window, line_bytes=LINE_BYTES, backend=backend)
    for batch in transactions_from_source(chunks, LINE_BYTES):
        controller.submit(batch)
    controller.flush()
    return controller_fingerprint(controller)


class TestChunkSeams:
    @given(payload=st.binary(min_size=1, max_size=400),
           cuts=st.lists(st.integers(min_value=0, max_value=400),
                         max_size=8),
           window=st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_is_bit_identical(self, payload, cuts, window):
        chunks = cuts_to_chunks(payload, cuts)
        for backend in available_backends():
            assert (replay_chunked(chunks, backend, window)
                    == replay_oneshot(payload, backend, window)), backend

    @given(payload=st.binary(min_size=1, max_size=300),
           chunk_bytes=st.integers(min_value=1, max_value=301),
           window=st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_trace_source_matches_oneshot(self, payload, chunk_bytes,
                                          window):
        source = BytesTraceSource(payload, chunk_bytes=chunk_bytes)
        for backend in available_backends():
            controller = MemoryController(
                channels=2, byte_lanes=2, model=CostModel(1.0, 0.7),
                window=window, line_bytes=LINE_BYTES, backend=backend)
            controller.submit_source(source)
            controller.flush()
            assert (controller_fingerprint(controller)
                    == replay_oneshot(payload, backend, window)), backend

    def test_ragged_tail_across_seams(self):
        """A chunk seam inside the final short transaction."""
        payload = bytes(range(256)) * 2 + b"\x5a\x5a\x5a"  # 515 B, 16 B lines
        chunks = [payload[:500], payload[500:510], payload[510:]]
        for backend in available_backends():
            for window in (1, 5, 16, 32):
                assert (replay_chunked(chunks, backend, window)
                        == replay_oneshot(payload, backend, window))

    def test_empty_chunks_are_skipped(self):
        payload = bytes(range(64))
        chunks = [b"", payload[:10], b"", payload[10:], b""]
        for backend in available_backends():
            assert (replay_chunked(chunks, backend, 8)
                    == replay_oneshot(payload, backend, 8))

    def test_all_empty_source_rejected(self):
        with pytest.raises(ValueError):
            list(transactions_from_source([b"", b""], LINE_BYTES))

    def test_streaming_digest_equals_inline_key_half(self):
        """The cache-key trace half coincides between the two paths."""
        payload = bytes((i * 13) & 0xFF for i in range(5000))
        source = BytesTraceSource(payload, chunk_bytes=700)
        inline = f"sha256:{hashlib.sha256(payload).hexdigest()[:32]}"
        assert source.digest() == inline
