"""Hypothesis property tests for controller invariants.

Three structural guarantees of the write path, independent of backend:

* address → channel steering is *total* (defined for every non-negative
  address) and *stable* (a pure function of the address);
* lane striping round-trips payload bytes — nothing is lost, duplicated
  or reordered within a lane;
* merged channel statistics equal the sum of the per-lane statistics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.core.vectorized import resolve_backend
from repro.ctrl.controller import (
    CACHE_LINE_BYTES,
    MemoryController,
    WriteTransaction,
)

geometries = st.tuples(st.integers(min_value=1, max_value=4),
                       st.integers(min_value=1, max_value=5))
payload_lists = st.lists(st.binary(min_size=1, max_size=96),
                         min_size=1, max_size=8)


def build(channels, lanes, window=8, record=False):
    return MemoryController(channels=channels, byte_lanes=lanes,
                            model=CostModel.fixed(), window=window,
                            backend=resolve_backend("auto"), record=record)


class TestChannelSteering:
    @given(geometry=geometries,
           addresses=st.lists(st.integers(min_value=0, max_value=2 ** 48),
                              min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_total_and_stable(self, geometry, addresses):
        channels, lanes = geometry
        controller = build(channels, lanes)
        for address in addresses:
            first = controller.channel_of(address)
            assert 0 <= first < channels
            assert controller.channel_of(address) == first
            # Every address inside the same cache line steers identically.
            assert controller.channel_of(
                (address // CACHE_LINE_BYTES) * CACHE_LINE_BYTES) == first

    @given(line=st.integers(min_value=0, max_value=1000),
           channels=st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_round_robin_over_lines(self, line, channels):
        controller = build(channels, 1)
        assert (controller.channel_of(line * CACHE_LINE_BYTES)
                == line % channels)


class TestStripingRoundTrip:
    @given(geometry=geometries, payloads=payload_lists)
    @settings(max_examples=40, deadline=None)
    def test_lane_streams_reassemble_payloads(self, geometry, payloads):
        """De-striping the recorded lane decisions recovers every
        transaction's payload byte-for-byte."""
        channels, lanes = geometry
        controller = build(channels, lanes, record=True)
        transactions = [WriteTransaction(i * CACHE_LINE_BYTES, data)
                        for i, data in enumerate(payloads)]
        controller.submit(transactions)
        stats = controller.flush()
        assert stats.bytes_written == sum(len(p) for p in payloads)
        assert controller.pending_bytes() == 0

        cursors = {(c, l): iter(controller.lane_decisions(c, l))
                   for c in range(channels) for l in range(lanes)}
        for transaction in transactions:
            channel = controller.channel_of(transaction.address)
            rebuilt = bytearray(len(transaction.data))
            for offset in range(len(transaction.data)):
                byte, _flag = next(cursors[(channel, offset % lanes)])
                rebuilt[offset] = byte
            assert bytes(rebuilt) == transaction.data
        # ... and nothing is left over in any lane.
        for cursor in cursors.values():
            assert next(cursor, None) is None


class TestStatisticsConsistency:
    @given(geometry=geometries, payloads=payload_lists)
    @settings(max_examples=40, deadline=None)
    def test_channels_merge_to_lane_sums(self, geometry, payloads):
        channels, lanes = geometry
        controller = build(channels, lanes)
        controller.submit([WriteTransaction(i * CACHE_LINE_BYTES, data)
                           for i, data in enumerate(payloads)])
        controller.flush()
        total = controller.statistics()
        zeros = transitions = beats = 0
        for channel in range(channels):
            merged = controller.channel_statistics(channel)
            lane_zeros = sum(controller.lane_statistics(channel, l).zeros
                             for l in range(lanes))
            lane_trans = sum(controller.lane_statistics(channel, l).transitions
                             for l in range(lanes))
            lane_beats = sum(controller.lane_statistics(channel, l).beats
                             for l in range(lanes))
            assert (merged.zeros, merged.transitions, merged.beats) == \
                (lane_zeros, lane_trans, lane_beats)
            zeros += merged.zeros
            transitions += merged.transitions
            beats += merged.beats
        assert (total.zeros, total.transitions, total.beats) == \
            (zeros, transitions, beats)
        assert beats == total.bytes_written
        assert (sum(controller.channel_statistics(c).bursts
                    for c in range(channels)) == total.transactions)
