"""Adaptive operating points: schedules, online tracking, auto fallback.

Three contracts:

* **Schedule math** — boundary validation, segment lookup for both
  units, and per-segment tallies that sum exactly to the controller
  totals, identically on both backends.
* **Tracking wins** — the PR's acceptance test: on a two-phase trace
  (zeros-heavy half, transition-heavy half) whose phases prefer
  *different* operating points, online tracking must land strictly below
  **every** fixed point, and the switch log must show the re-pricing
  happening mid-trace.
* **Auto fallback** — ``backend="auto"`` drops to the reference
  implementation below ``AUTO_VECTOR_MIN_CELLS`` trellis cells (where
  NumPy call overhead loses); an explicit ``"vector"`` is always
  honoured.
"""

import pytest

from repro.core.costs import CostModel
from repro.core.vectorized import available_backends
from repro.ctrl.adaptive import (
    AdaptiveCostTracker,
    OperatingPoint,
    OperatingPointSchedule,
    TrackingConfig,
)
from repro.ctrl.controller import (
    AUTO_VECTOR_MIN_CELLS,
    MemoryController,
    transactions_from_bytes,
)
from repro.phy.power import GBPS, PICOFARAD
from repro.workloads.source import BytesTraceSource

HAVE_VECTOR = "vector" in available_backends()

#: The two-phase test points: A prices zeros cheaply (high-rate POD135),
#: B prices transitions cheaply (low-rate POD12) — their preference
#: crosses between the phases below.
POINT_A = OperatingPoint("pod135", 12 * GBPS, 3 * PICOFARAD)
POINT_B = OperatingPoint("pod12", 8 * GBPS, 3 * PICOFARAD)

LANES = 4

#: Phase Z: constant 0x0F — zero transitions, four zeros per data beat.
#: Phase T: per-lane 0x33/0x66 alternation (the block repeats at twice
#: the lane stride, so striping preserves it) — four unavoidable data
#: transitions AND four zeros per beat under any invert choice.
PHASE_Z = b"\x0f" * (24 * 1024)
PHASE_T = (b"\x33" * LANES + b"\x66" * LANES) * (24 * 1024 // (2 * LANES))


class TestOperatingPoint:
    def test_auto_label(self):
        assert POINT_A.label == "pod135@12Gbps/3pF"

    def test_unknown_interface_rejected(self):
        with pytest.raises(KeyError):
            OperatingPoint("noge", 1 * GBPS, 1 * PICOFARAD)

    def test_positive_rate_and_load(self):
        with pytest.raises(ValueError):
            OperatingPoint("pod135", 0.0, 3 * PICOFARAD)

    def test_describe_binds_exact_coefficients(self):
        nearly = OperatingPoint("pod135", 12 * GBPS * (1 + 1e-12),
                                3 * PICOFARAD, label="x")
        assert nearly.describe() != POINT_A.describe()


class TestSchedule:
    def test_boundary_count_must_match(self):
        with pytest.raises(ValueError):
            OperatingPointSchedule((POINT_A, POINT_B), ())

    def test_boundaries_strictly_increase(self):
        third = OperatingPoint("sstl15", 2 * GBPS, 3 * PICOFARAD)
        with pytest.raises(ValueError):
            OperatingPointSchedule((POINT_A, POINT_B, third), (50, 50))

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            OperatingPointSchedule((POINT_A, POINT_B), (10,), unit="beats")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            OperatingPointSchedule((POINT_A, POINT_A), (10,))

    def test_segment_lookup_transactions(self):
        schedule = OperatingPointSchedule((POINT_A, POINT_B), (100,))
        assert schedule.segment_for(99, 0) == 0
        assert schedule.segment_for(100, 0) == 1

    def test_segment_lookup_address(self):
        schedule = OperatingPointSchedule((POINT_A, POINT_B), (4096,),
                                          unit="address")
        assert schedule.segment_for(0, 4095) == 0
        assert schedule.segment_for(0, 4096) == 1

    def test_segments_sum_to_totals_everywhere(self):
        payload = bytes((i * 29) & 0xFF for i in range(40000))
        fingerprints = []
        for backend in available_backends():
            schedule = OperatingPointSchedule((POINT_A, POINT_B), (300,))
            controller = MemoryController(
                channels=2, byte_lanes=LANES, window=16,
                schedule=schedule, backend=backend)
            controller.submit(transactions_from_bytes(payload, 64))
            controller.flush()
            stats = controller.statistics()
            segments = controller.segments()
            assert [s.label for s in segments] == [POINT_A.label,
                                                   POINT_B.label]
            assert sum(s.zeros for s in segments) == stats.zeros
            assert sum(s.transitions for s in segments) == stats.transitions
            assert sum(s.beats for s in segments) == stats.beats
            fingerprints.append([tuple(s.__dict__.values())
                                 for s in segments])
        assert all(fp == fingerprints[0] for fp in fingerprints)

    def test_address_interleaving_can_revisit_a_segment(self):
        schedule = OperatingPointSchedule((POINT_A, POINT_B), (128,),
                                          unit="address")
        controller = MemoryController(channels=1, byte_lanes=2, window=4,
                                      schedule=schedule,
                                      backend="reference")
        # addresses 0, 192, 64: segment 0 -> 1 -> back to 0.
        controller.submit(transactions_from_bytes(bytes(64), 64, 0))
        controller.submit(transactions_from_bytes(bytes(64), 64, 192))
        controller.submit(transactions_from_bytes(bytes(64), 64, 64))
        controller.flush()
        labels = [s.label for s in controller.segments()]
        assert labels == [POINT_A.label, POINT_B.label, POINT_A.label]

    def test_schedule_with_tracker_rejected(self):
        schedule = OperatingPointSchedule((POINT_A, POINT_B), (10,))
        tracker = AdaptiveCostTracker((POINT_A, POINT_B))
        with pytest.raises(ValueError):
            MemoryController(schedule=schedule, tracker=tracker)


class TestTracker:
    def test_prior_is_first_point(self):
        tracker = AdaptiveCostTracker((POINT_B, POINT_A))
        assert tracker.select() is POINT_B
        assert tracker.switches == []

    def test_rates_are_weighted_means(self):
        tracker = AdaptiveCostTracker((POINT_A,), half_life_bytes=1e12)
        tracker.observe(zeros=30, transitions=10, beats=20)
        transitions, zeros = tracker.rates()
        assert transitions == pytest.approx(0.5)
        assert zeros == pytest.approx(1.5)

    def test_half_life_forgets_old_phases(self):
        tracker = AdaptiveCostTracker((POINT_A,), half_life_bytes=100.0)
        tracker.observe(zeros=1000, transitions=0, beats=1000)
        tracker.observe(zeros=0, transitions=1000, beats=1000)
        transitions, zeros = tracker.rates()
        assert transitions > 0.99  # ten half-lives wiped the first phase
        assert zeros < 0.01

    def test_min_dwell_damps_the_second_switch_only(self):
        tracker = AdaptiveCostTracker((POINT_A, POINT_B),
                                      half_life_bytes=64.0,
                                      min_dwell_bytes=10 ** 6)
        tracker.observe(zeros=0, transitions=9 * 512, beats=512)
        first = tracker.select()
        tracker.observe(zeros=9 * 512, transitions=0, beats=512)
        assert tracker.select() is first  # dwell window holds it

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveCostTracker((POINT_A,), half_life_bytes=0)
        with pytest.raises(ValueError):
            AdaptiveCostTracker((), half_life_bytes=1.0)
        tracker = AdaptiveCostTracker((POINT_A,))
        with pytest.raises(ValueError):
            tracker.observe(zeros=-1, transitions=0, beats=1)

    def test_tracking_config_builds_fresh_trackers(self):
        config = TrackingConfig((POINT_A, POINT_B), half_life_bytes=64.0)
        one, two = config.build(), config.build()
        one.observe(zeros=10, transitions=10, beats=10)
        assert two.beats_seen == 0
        assert config.describe() == config.describe()


def tracked_energy(payload, chunk_bytes, backend,
                   half_life_bytes=4096.0):
    tracker = AdaptiveCostTracker((POINT_A, POINT_B),
                                  half_life_bytes=half_life_bytes)
    controller = MemoryController(channels=1, byte_lanes=LANES, window=16,
                                  tracker=tracker, backend=backend)
    controller.submit_source(BytesTraceSource(payload,
                                              chunk_bytes=chunk_bytes))
    controller.flush()
    return controller, tracker


def fixed_energy(payload, point, backend):
    controller = MemoryController(channels=1, byte_lanes=LANES, window=16,
                                  model=point.cost_model(),
                                  energy_model=point.energy_model(),
                                  backend=backend)
    controller.submit(transactions_from_bytes(payload, 64))
    controller.flush()
    return controller.statistics().energy_joules


class TestTwoPhaseTracking:
    """The PR acceptance criterion: tracking beats every fixed point."""

    payload = PHASE_Z + PHASE_T

    def test_phases_prefer_different_points(self):
        """Sanity: neither fixed point wins both phases."""
        backend = available_backends()[-1]
        assert (fixed_energy(PHASE_Z, POINT_A, backend)
                < fixed_energy(PHASE_Z, POINT_B, backend))
        assert (fixed_energy(PHASE_T, POINT_B, backend)
                > 0)  # priced under its own model
        assert (fixed_energy(PHASE_T, POINT_B, backend)
                < fixed_energy(PHASE_T, POINT_A, backend))

    @pytest.mark.parametrize("backend", available_backends())
    def test_tracking_beats_every_fixed_point(self, backend):
        controller, tracker = tracked_energy(self.payload, 4096, backend)
        adaptive = controller.adaptive_energy_joules()
        for point in (POINT_A, POINT_B):
            assert adaptive < fixed_energy(self.payload, point, backend), \
                point.label

    def test_repricing_happens_mid_trace(self):
        backend = available_backends()[-1]
        controller, tracker = tracked_energy(self.payload, 4096, backend)
        assert tracker.switches, "tracker never re-priced the trellis"
        beats_total = controller.statistics().beats
        switch_beats, switch_label = tracker.switches[-1]
        assert 0 < switch_beats < beats_total
        assert switch_label == POINT_B.label
        labels = [s.label for s in controller.segments()]
        assert labels[0] == POINT_A.label  # prior matched phase Z
        assert labels[-1] == POINT_B.label  # tracked into phase T

    @pytest.mark.skipif(not HAVE_VECTOR, reason="needs the vector backend")
    def test_tracked_replay_is_backend_identical(self):
        results = []
        for backend in ("reference", "vector"):
            controller, tracker = tracked_energy(self.payload, 8192,
                                                 backend)
            stats = controller.statistics()
            results.append((stats.zeros, stats.transitions, stats.beats,
                            tracker.switches,
                            [tuple(vars(s).values())
                             for s in controller.segments()]))
        assert results[0] == results[1]


class TestAutoFallback:
    @pytest.mark.skipif(not HAVE_VECTOR, reason="needs NumPy installed")
    def test_small_links_fall_back_to_reference(self):
        controller = MemoryController(channels=1, byte_lanes=2, window=16,
                                      backend="auto")
        assert controller.channels * controller.byte_lanes * 16 \
            < AUTO_VECTOR_MIN_CELLS
        assert controller.backend == "reference"

    @pytest.mark.skipif(not HAVE_VECTOR, reason="needs NumPy installed")
    def test_large_links_stay_vectorized(self):
        controller = MemoryController(channels=2, byte_lanes=4, window=16,
                                      backend="auto")
        assert controller.backend == "vector"

    @pytest.mark.skipif(not HAVE_VECTOR, reason="needs NumPy installed")
    def test_explicit_vector_is_honoured(self):
        controller = MemoryController(channels=1, byte_lanes=2, window=16,
                                      backend="vector")
        assert controller.backend == "vector"

    def test_reference_is_always_allowed(self):
        controller = MemoryController(channels=1, byte_lanes=1, window=1,
                                      backend="reference")
        assert controller.backend == "reference"

    @pytest.mark.skipif(not HAVE_VECTOR, reason="needs NumPy installed")
    def test_fallback_is_bit_identical_anyway(self):
        """The fallback is a pure perf decision — results never change."""
        payload = bytes((i * 31) & 0xFF for i in range(4096))
        stats = []
        for backend in ("auto", "vector"):
            controller = MemoryController(channels=1, byte_lanes=2,
                                          window=16, backend=backend,
                                          model=CostModel(1.0, 0.5))
            controller.submit(transactions_from_bytes(payload, 64))
            controller.flush()
            stats.append(controller.statistics())
        assert stats[0] == stats[1]
