"""Differential tests: batched SSO engine vs the scalar reference.

Runs on the no-NumPy CI leg too: every case exercises ``word_impl="int"``
and the uint64/ndarray legs skip themselves when NumPy is absent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sso import (
    SsoStatistics,
    sso_comparison,
    sso_of_scheme,
    sso_of_scheme_batch,
    sso_of_words,
    sso_of_words_batch,
)
from repro.core.bitops import ALL_ONES_WORD
from repro.core.burst import Burst
from repro.core.schemes import available_schemes, get_scheme

try:
    import numpy
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

IMPLS = ("int", "uint64") if HAVE_NUMPY else ("int",)

word_rows = st.lists(
    st.lists(st.integers(min_value=0, max_value=0x1FF),
             min_size=1, max_size=12),
    min_size=0, max_size=8)

burst_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=0xFF),
             min_size=1, max_size=8).map(lambda data: Burst(data)),
    min_size=0, max_size=12)


def merged_reference(rows, prev_words, chained):
    """Fold the scalar engine over *rows* the way the batch engine does."""
    beats = 0
    worst = 0
    total = 0
    histogram = {}
    prev = prev_words
    for index, row in enumerate(rows):
        if chained:
            boundary = prev
        elif isinstance(prev_words, int):
            boundary = prev_words
        else:
            boundary = prev_words[index]
        stats = sso_of_words(row, prev_word=boundary)
        beats += stats.beats
        worst = max(worst, stats.max_switching)
        total += stats.total_switching
        for k, count in stats.histogram.items():
            histogram[k] = histogram.get(k, 0) + count
        if chained and row:
            prev = row[-1]
    return SsoStatistics(beats=beats, max_switching=worst,
                         total_switching=total, histogram=histogram)


class TestSsoOfWordsBatch:
    @pytest.mark.parametrize("impl", IMPLS)
    @settings(max_examples=60, deadline=None)
    @given(rows=word_rows, chained=st.booleans())
    def test_matches_merged_scalar(self, rows, chained, impl):
        batch = sso_of_words_batch(rows, chained=chained, word_impl=impl)
        assert batch == merged_reference(rows, ALL_ONES_WORD, chained)

    @pytest.mark.parametrize("impl", IMPLS)
    @settings(max_examples=40, deadline=None)
    @given(rows=word_rows, prev=st.integers(min_value=0, max_value=0x1FF))
    def test_scalar_prev_broadcast(self, rows, prev, impl):
        batch = sso_of_words_batch(rows, prev_words=prev, word_impl=impl)
        assert batch == merged_reference(rows, prev, chained=False)

    @pytest.mark.parametrize("impl", IMPLS)
    def test_per_row_prev_words(self, impl):
        rows = [[0x000, 0x0FF], [0x1FF], [0x155, 0x0AA]]
        prevs = [0x1FF, 0x000, 0x155]
        batch = sso_of_words_batch(rows, prev_words=prevs, word_impl=impl)
        assert batch == merged_reference(rows, prevs, chained=False)

    def test_prev_words_length_mismatch(self):
        with pytest.raises(ValueError):
            sso_of_words_batch([[0x1FF]], prev_words=[0x1FF, 0x000])

    def test_chained_rejects_per_row_prev(self):
        with pytest.raises(ValueError):
            sso_of_words_batch([[0x1FF]], prev_words=[0x1FF], chained=True)

    def test_empty_input(self):
        stats = sso_of_words_batch([])
        assert stats == SsoStatistics(beats=0, max_switching=0,
                                      total_switching=0, histogram={})

    def test_out_of_range_word_rejected(self):
        with pytest.raises(ValueError):
            sso_of_words_batch([[0x200]])

    def test_doc_example(self):
        assert sso_of_words_batch([[0x000], [0x1FF]]).histogram == {0: 1, 9: 1}

    @pytest.mark.skipif(not HAVE_NUMPY, reason="ndarray input requires NumPy")
    @pytest.mark.parametrize("impl", IMPLS)
    def test_ndarray_input(self, impl):
        rng = numpy.random.default_rng(11)
        matrix = rng.integers(0, 0x200, size=(7, 8), dtype=numpy.int64)
        rows = [list(map(int, row)) for row in matrix]
        for chained in (False, True):
            assert (sso_of_words_batch(matrix, chained=chained,
                                       word_impl=impl)
                    == merged_reference(rows, ALL_ONES_WORD, chained))

    @pytest.mark.skipif(not HAVE_NUMPY, reason="ndarray input requires NumPy")
    def test_ndarray_must_be_2d(self):
        with pytest.raises(ValueError):
            sso_of_words_batch(numpy.zeros(4, dtype=numpy.int64))


class TestSsoOfSchemeBatch:
    @pytest.mark.parametrize("scheme_name", available_schemes())
    @pytest.mark.parametrize("chained", (False, True))
    @pytest.mark.parametrize("impl", IMPLS)
    @settings(max_examples=12, deadline=None)
    @given(bursts=burst_lists)
    def test_matches_scalar_engine(self, bursts, scheme_name, chained, impl):
        reference = sso_of_scheme(get_scheme(scheme_name), bursts,
                                  chained=chained)
        batch = sso_of_scheme_batch(get_scheme(scheme_name), bursts,
                                    chained=chained, word_impl=impl)
        assert batch == reference

    @pytest.mark.parametrize("scheme_name", ("raw", "dbi-dc", "dbi-opt"))
    def test_reference_backend_delegates(self, scheme_name):
        bursts = [Burst(range(index, index + 8)) for index in range(6)]
        scheme = get_scheme(scheme_name)
        assert (sso_of_scheme_batch(scheme, bursts, backend="reference")
                == sso_of_scheme(scheme, bursts))

    def test_empty_population(self):
        stats = sso_of_scheme_batch(get_scheme("raw"), [])
        assert stats.beats == 0 and stats.histogram == {}

    def test_accepts_iterator(self):
        bursts = [Burst(range(8))] * 3
        assert (sso_of_scheme_batch(get_scheme("dbi-dc"), iter(bursts))
                == sso_of_scheme(get_scheme("dbi-dc"), bursts))


class TestSsoComparisonChained:
    @staticmethod
    def expected_row(name, stats):
        return [name, stats.max_switching, f"{stats.mean_switching:.2f}",
                f"{100 * stats.exceed_fraction(4):.1f}%"]

    def test_chained_kwarg_threads_through(self):
        bursts = [Burst([0x00] * 8), Burst([0xFF] * 8)] * 3
        schemes = {"raw": get_scheme("raw"), "dbi-ac": get_scheme("dbi-ac")}
        unchained = sso_comparison(schemes, bursts)
        chained = sso_comparison(schemes, bursts, chained=True)
        for row, row_c, (name, scheme) in zip(unchained, chained,
                                              schemes.items()):
            assert row == self.expected_row(
                name, sso_of_scheme(scheme, bursts))
            assert row_c == self.expected_row(
                name, sso_of_scheme(scheme, bursts, chained=True))
        # The boundary condition must actually matter for this workload.
        assert chained[0] != unchained[0]
