"""Unit tests for SSO (simultaneous switching) analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sso import (
    DBI_DC_IDLE_FIRST_BEAT_BOUND,
    DBI_DC_TOGGLE_BOUND,
    sso_comparison,
    sso_of_scheme,
    sso_of_words,
)
from repro.baselines import DbiAc, DbiDc, Raw
from repro.core.burst import Burst
from repro.workloads.random_data import random_bursts

word_lists = st.lists(st.integers(min_value=0, max_value=0x1FF),
                      min_size=1, max_size=24)


class TestSsoOfWords:
    def test_worst_case(self):
        stats = sso_of_words([0x000, 0x1FF, 0x000])
        assert stats.max_switching == 9
        assert stats.total_switching == 27
        assert stats.histogram == {9: 3}

    def test_quiet_bus(self):
        stats = sso_of_words([0x1FF] * 4)
        assert stats.max_switching == 0
        assert stats.mean_switching == 0.0

    @given(word_lists)
    def test_histogram_sums_to_beats(self, words):
        stats = sso_of_words(words)
        assert sum(stats.histogram.values()) == stats.beats == len(words)

    @given(word_lists)
    def test_total_matches_transition_count(self, words):
        from repro.core.bitops import total_transitions
        stats = sso_of_words(words)
        assert stats.total_switching == total_transitions(words)

    def test_exceed_fraction(self):
        stats = sso_of_words([0x000, 0x1FF])  # 9 then 9 lanes switch
        assert stats.exceed_fraction(8) == 1.0
        assert stats.exceed_fraction(9) == 0.0

    def test_empty_exceed_fraction(self):
        stats = sso_of_words([])
        assert stats.exceed_fraction(0) == 0.0


class TestSsoOfScheme:
    @pytest.fixture(scope="class")
    def population(self):
        return random_bursts(count=150, seed=44)

    def test_dc_toggle_bound(self, population):
        """DBI DC words carry <= 4 zeros each, so at most 8 lanes toggle
        per beat (the Kim-et-al. SSO benefit); RAW can toggle all 9."""
        stats = sso_of_scheme(DbiDc(), population)
        assert stats.max_switching <= DBI_DC_TOGGLE_BOUND

    def test_dc_first_beat_bound_from_idle(self, population):
        """From the idle-high bus, the first beat toggles at most 5 lanes
        under DBI DC (each toggling lane is one of <= 4 data zeros, plus
        possibly the DBI lane)."""
        from repro.core.bitops import ALL_ONES_WORD, popcount
        scheme = DbiDc()
        for burst in population:
            first_word = scheme.encode(burst).words[0]
            assert popcount(ALL_ONES_WORD ^ first_word) \
                <= DBI_DC_IDLE_FIRST_BEAT_BOUND

    def test_raw_saturates_all_data_lanes(self):
        """RAW's checkerboard worst case toggles all 8 data lanes every
        beat (the DBI lane is pinned high, so 8 is RAW's ceiling too —
        but RAW pays it on *every* beat, unlike DBI DC)."""
        burst = Burst([0x00, 0xFF] * 4)
        raw = sso_of_scheme(Raw(), [burst])
        dc = sso_of_scheme(DbiDc(), [burst])
        assert raw.max_switching == 8
        assert raw.exceed_fraction(7) == 1.0
        assert dc.exceed_fraction(7) < raw.exceed_fraction(7)

    def test_ac_minimises_mean_switching(self, population):
        """DBI AC's objective IS per-beat switching: its mean must not
        exceed RAW's or DC's."""
        raw = sso_of_scheme(Raw(), population).mean_switching
        dc = sso_of_scheme(DbiDc(), population).mean_switching
        ac = sso_of_scheme(DbiAc(), population).mean_switching
        assert ac <= raw
        assert ac <= dc

    def test_chained_mode_runs(self, population):
        stats = sso_of_scheme(DbiAc(), population[:20], chained=True)
        assert stats.beats == 20 * 8


def test_sso_comparison_rows():
    population = random_bursts(count=50, seed=9)
    rows = sso_comparison({"raw": Raw(), "dbi-dc": DbiDc()}, population)
    assert len(rows) == 2
    assert rows[0][0] == "raw"
    assert isinstance(rows[0][1], int)
