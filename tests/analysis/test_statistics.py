"""Unit tests for Monte-Carlo statistics."""

import math

import pytest

from repro.analysis.statistics import (
    MeanEstimate,
    estimate_mean,
    per_burst_costs,
    samples_for_precision,
    scheme_cost_estimate,
)
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.schemes import get_scheme
from repro.workloads.random_data import random_bursts


class TestEstimateMean:
    def test_known_sample(self):
        estimate = estimate_mean([1.0, 2.0, 3.0, 4.0])
        assert estimate.mean == pytest.approx(2.5)
        expected_se = math.sqrt((5.0 / 3.0) / 4.0)
        assert estimate.std_error == pytest.approx(expected_se)

    def test_interval_symmetric(self):
        estimate = estimate_mean([1.0, 2.0, 3.0])
        low, high = estimate.interval
        assert (low + high) / 2 == pytest.approx(estimate.mean)
        assert estimate.half_width == pytest.approx((high - low) / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_mean([1.0])
        with pytest.raises(ValueError):
            estimate_mean([1.0, 2.0], confidence=1.5)

    def test_higher_confidence_wider_interval(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = estimate_mean(samples, confidence=0.9)
        wide = estimate_mean(samples, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_separation(self):
        a = MeanEstimate(mean=1.0, std_error=0.01, confidence=0.95,
                         n_samples=100)
        b = MeanEstimate(mean=2.0, std_error=0.01, confidence=0.95,
                         n_samples=100)
        c = MeanEstimate(mean=1.02, std_error=0.05, confidence=0.95,
                         n_samples=100)
        assert a.separated_from(b)
        assert not a.separated_from(c)


class TestSchemeEstimates:
    @pytest.fixture(scope="class")
    def population(self):
        return random_bursts(count=1500, seed=77)

    def test_per_burst_costs_length(self, population):
        costs = per_burst_costs(get_scheme("raw"), population[:30],
                                CostModel.fixed())
        assert len(costs) == 30

    def test_opt_gain_statistically_significant(self, population):
        """The paper's 6.7% gain is many standard errors wide even at a
        fraction of the paper's sample count."""
        model = CostModel.fixed()
        opt = scheme_cost_estimate(DbiOptimal(model), population, model)
        dc = scheme_cost_estimate(get_scheme("dbi-dc"), population, model)
        ac = scheme_cost_estimate(get_scheme("dbi-ac"), population, model)
        best_conventional = min((dc, ac), key=lambda e: e.mean)
        assert opt.separated_from(best_conventional)
        assert (best_conventional.mean - opt.mean) > 10 * opt.std_error

    def test_paper_sample_count_suffices(self, population):
        """10 000 bursts give a CI half-width far below the reported
        2-cost-point effect size."""
        model = CostModel.fixed()
        samples = per_burst_costs(DbiOptimal(model), population, model)
        needed = samples_for_precision(samples, target_half_width=0.2)
        assert needed < 10_000

    def test_samples_for_precision_validation(self, population):
        model = CostModel.fixed()
        samples = per_burst_costs(get_scheme("raw"), population[:50], model)
        with pytest.raises(ValueError):
            samples_for_precision(samples, target_half_width=0.0)

    def test_tighter_precision_needs_more_samples(self, population):
        model = CostModel.fixed()
        samples = per_burst_costs(get_scheme("raw"), population[:200], model)
        loose = samples_for_precision(samples, target_half_width=0.5)
        tight = samples_for_precision(samples, target_half_width=0.05)
        assert tight > loose
