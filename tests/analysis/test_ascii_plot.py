"""Unit tests for ASCII plotting."""

import pytest

from repro.analysis.ascii_plot import AsciiPlot, quick_plot, sparkline


class TestAsciiPlot:
    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError):
            AsciiPlot().render()

    def test_mismatched_series_rejected(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError):
            plot.add_series("a", [1, 2], [1.0])

    def test_empty_series_rejected(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError):
            plot.add_series("a", [], [])

    def test_too_many_series(self):
        plot = AsciiPlot()
        for index in range(8):
            plot.add_series(f"s{index}", [0, 1], [0, 1])
        with pytest.raises(ValueError):
            plot.add_series("overflow", [0, 1], [0, 1])

    def test_render_contains_title_and_legend(self):
        plot = AsciiPlot(title="my title", width=30, height=6)
        plot.add_series("alpha", [0, 1, 2], [0.0, 2.0, 1.0])
        text = plot.render()
        assert "my title" in text
        assert "o=alpha" in text

    def test_render_line_count(self):
        plot = AsciiPlot(width=20, height=5)
        plot.add_series("a", [0, 1], [0.0, 1.0])
        lines = plot.render().splitlines()
        # height rows + axis + labels + legend (no title).
        assert len(lines) == 5 + 3

    def test_flat_series_handled(self):
        plot = AsciiPlot(width=10, height=4)
        plot.add_series("flat", [0, 1], [1.0, 1.0])
        assert plot.render()

    def test_extreme_points_plotted_at_edges(self):
        plot = AsciiPlot(width=11, height=5)
        plot.add_series("a", [0, 10], [0.0, 1.0])
        rows = plot.render().splitlines()
        grid = rows[:5]
        assert grid[0].rstrip().endswith("o")   # max at top-right
        assert "o" in grid[-1]                    # min at bottom-left


class TestQuickPlot:
    def test_multi_series(self):
        text = quick_plot([0, 1], {"a": [0, 1], "b": [1, 0]}, title="t")
        assert "a" in text and "b" in text


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_levels(self):
        line = sparkline([0, 10])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_flat(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""
