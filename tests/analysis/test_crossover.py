"""Unit tests for crossover/landmark extraction."""

import pytest

from repro.analysis.crossover import (
    advantage_region,
    elementwise_min,
    interpolated_crossing,
    peak_advantage,
)


class TestInterpolatedCrossing:
    def test_exact_midpoint(self):
        assert interpolated_crossing([0, 1], [2, 0], [1, 1]) == pytest.approx(0.5)

    def test_no_crossing(self):
        assert interpolated_crossing([0, 1], [2, 2], [1, 1]) is None

    def test_crossing_at_first_point(self):
        assert interpolated_crossing([0, 1], [0, 0], [1, 1]) == 0

    def test_touching_then_crossing(self):
        # Equal at x=1 (delta 0), below at x=2: crossing at x=1.
        assert interpolated_crossing([0, 1, 2], [3, 1, 0],
                                     [1, 1, 1]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            interpolated_crossing([0], [1, 2], [1, 2])

    def test_linear_series(self):
        xs = [0.0, 0.25, 0.5, 0.75, 1.0]
        first = [1.0 - x for x in xs]
        second = [x for x in xs]
        assert interpolated_crossing(xs, first, second) == pytest.approx(0.5)


class TestAdvantageRegion:
    def test_single_region(self):
        xs = [0, 1, 2, 3, 4]
        candidate = [2, 0.5, 0.5, 0.5, 2]
        reference = [1, 1, 1, 1, 1]
        assert advantage_region(xs, candidate, reference) == (1, 3)

    def test_no_region(self):
        assert advantage_region([0, 1], [2, 2], [1, 1]) is None

    def test_widest_region_chosen(self):
        xs = list(range(7))
        candidate = [0, 2, 0, 0, 0, 2, 0]
        reference = [1] * 7
        assert advantage_region(xs, candidate, reference) == (2, 4)

    def test_region_extends_to_boundary(self):
        xs = [0, 1, 2]
        assert advantage_region(xs, [0, 0, 0], [1, 1, 1]) == (0, 2)


class TestPeakAdvantage:
    def test_basic(self):
        x, gain = peak_advantage([0, 1], [1.0, 0.5], [1.0, 1.0])
        assert (x, gain) == (1, 0.5)

    def test_negative_gain_possible(self):
        x, gain = peak_advantage([0, 1], [2.0, 1.5], [1.0, 1.0])
        assert gain == pytest.approx(-0.5)
        assert x == 1

    def test_zero_reference_rejected(self):
        with pytest.raises(ZeroDivisionError):
            peak_advantage([0], [1.0], [0.0])


class TestElementwiseMin:
    def test_basic(self):
        assert elementwise_min([1, 5], [3, 2]) == [1, 2]

    def test_three_series(self):
        assert elementwise_min([3, 3], [2, 4], [5, 1]) == [2, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            elementwise_min()
        with pytest.raises(ValueError):
            elementwise_min([1], [1, 2])
