"""Unit tests for savings accounting."""

import pytest

from repro.analysis.savings import (
    SavingsRecord,
    savings_matrix,
    savings_vs_best_conventional,
    savings_vs_reference,
)
from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.sim.runner import evaluate
from repro.workloads.random_data import random_bursts


@pytest.fixture(scope="module")
def result():
    bursts = random_bursts(count=100, seed=33)
    return evaluate(["raw", "dbi-dc", "dbi-ac", "dbi-opt"], bursts,
                    workload="unit")


class TestSavingsRecord:
    def test_fractions(self):
        record = SavingsRecord(workload="w", scheme="s", reference="r",
                               scheme_cost=75.0, reference_cost=100.0)
        assert record.saving_fraction == pytest.approx(0.25)
        assert record.saving_percent == pytest.approx(25.0)

    def test_negative_saving(self):
        record = SavingsRecord(workload="w", scheme="s", reference="r",
                               scheme_cost=110.0, reference_cost=100.0)
        assert record.saving_percent == pytest.approx(-10.0)


class TestSavingsVsReference:
    def test_reference_has_zero_saving(self, result):
        records = savings_vs_reference(result, CostModel.fixed(), "raw")
        by_scheme = {r.scheme: r for r in records}
        assert by_scheme["raw"].saving_percent == pytest.approx(0.0)

    def test_opt_saves_vs_raw(self, result):
        records = savings_vs_reference(result, CostModel.fixed(), "raw")
        by_scheme = {r.scheme: r for r in records}
        assert by_scheme["dbi-opt"].saving_percent > 5.0

    def test_scheme_subset(self, result):
        records = savings_vs_reference(result, CostModel.fixed(), "raw",
                                       schemes=["dbi-dc"])
        assert [r.scheme for r in records] == ["dbi-dc"]

    def test_bad_reference(self):
        empty = evaluate(["raw"], [Burst([0xFF])])
        with pytest.raises(ValueError):
            savings_vs_reference(empty, CostModel.fixed(), "raw")


class TestBestConventional:
    def test_positive_at_balanced_point(self, result):
        record = savings_vs_best_conventional(result, CostModel.fixed())
        assert record.scheme == "dbi-opt"
        assert record.reference in ("dbi-dc", "dbi-ac")
        assert record.saving_percent > 0

    def test_zero_at_dc_extreme(self):
        """An OPT encoder tuned to alpha = 0 ties DBI DC, so the saving
        collapses to ~0.  (An OPT encoder with *fixed* coefficients judged
        under the DC-only metric would rightly lose to DBI DC.)"""
        from repro.core.encoder import DbiOptimal
        model = CostModel.dc_only()
        bursts = random_bursts(count=100, seed=33)
        tuned = evaluate(["dbi-dc", "dbi-ac", DbiOptimal(model)], bursts)
        record = savings_vs_best_conventional(tuned, model)
        assert record.saving_percent == pytest.approx(0.0, abs=1e-9)

    def test_fixed_opt_loses_under_dc_only_metric(self, result):
        """Mis-tuned coefficients cost real energy: the fixed-coefficient
        OPT evaluated at alpha = 0 is worse than DBI DC (the Fig. 4 gap)."""
        record = savings_vs_best_conventional(result, CostModel.dc_only())
        assert record.saving_percent < 0


def test_savings_matrix():
    model = CostModel.fixed()
    results = [
        evaluate(["raw", "dbi-opt"], random_bursts(count=50, seed=s),
                 workload=f"w{s}")
        for s in (1, 2)
    ]
    matrix = savings_matrix(results, model, "raw")
    assert set(matrix) == {"w1", "w2"}
    assert all("dbi-opt" in row for row in matrix.values())
