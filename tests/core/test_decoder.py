"""Unit tests for the shared DBI decoder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitops import make_word
from repro.core.burst import Burst
from repro.core.decoder import (
    decode_stream,
    decode_words,
    invert_flags_from_words,
    verify_round_trip,
    verify_stream,
)
from repro.core.schemes import EncodedBurst, get_scheme

byte_lists = st.lists(st.integers(min_value=0, max_value=255),
                      min_size=1, max_size=12)
flag_lists = st.lists(st.booleans(), min_size=1, max_size=12)


@given(byte_lists, flag_lists)
def test_decode_words_round_trip(data, flags):
    flags = (flags * len(data))[:len(data)]
    words = [make_word(byte, flag) for byte, flag in zip(data, flags)]
    assert decode_words(words).data == tuple(data)


@given(byte_lists, flag_lists)
def test_invert_flags_recovered(data, flags):
    flags = (flags * len(data))[:len(data)]
    words = [make_word(byte, flag) for byte, flag in zip(data, flags)]
    assert invert_flags_from_words(words) == list(flags)


def test_decode_stream_order():
    scheme = get_scheme("dbi-dc")
    bursts = [Burst([i]) for i in (0, 128, 255)]
    encoded = [scheme.encode(b) for b in bursts]
    assert decode_stream(encoded) == bursts


def test_verify_round_trip_true_for_all_schemes(small_random_bursts):
    from repro.core.schemes import available_schemes
    for name in available_schemes():
        scheme = get_scheme(name)
        for burst in small_random_bursts[:10]:
            assert verify_round_trip(scheme.encode(burst))


def test_verify_stream():
    scheme = get_scheme("dbi-opt")
    encoded = scheme.encode_stream([Burst([1, 2]), Burst([3, 4])])
    assert verify_stream(encoded)


def test_wire_corruption_changes_decoded_data():
    """Flipping the DBI lane on the wire decodes to complemented data —
    the decoder has no redundancy, so the corruption must surface."""
    burst = Burst([0x0F])
    encoded = get_scheme("raw").encode(burst)
    corrupted_words = [word ^ 0x100 for word in encoded.words]
    assert decode_words(corrupted_words).data == (0xF0,)


def test_decode_words_rejects_out_of_range():
    with pytest.raises(ValueError):
        decode_words([0x200])
