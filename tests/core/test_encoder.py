"""Unit tests for the optimal encoders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.burst import Burst
from repro.core.costs import CostModel, QuantizedCostModel
from repro.core.encoder import DbiOptimal, DbiOptimalFixed, DbiOptimalQuantized
from repro.core.trellis import solve

byte_lists = st.lists(st.integers(min_value=0, max_value=255),
                      min_size=1, max_size=10)


class TestDbiOptimal:
    def test_requires_cost_model(self):
        with pytest.raises(TypeError):
            DbiOptimal("not a model")

    def test_matches_solve(self, paper_burst, fixed_model):
        scheme = DbiOptimal(fixed_model)
        encoded = scheme.encode(paper_burst)
        assert encoded.invert_flags == solve(paper_burst, fixed_model).invert_flags

    @settings(max_examples=80, deadline=None)
    @given(byte_lists)
    def test_round_trip(self, data):
        encoded = DbiOptimal(CostModel.fixed()).encode(Burst(data))
        encoded.verify()

    def test_dc_only_matches_dbi_dc_cost(self, medium_random_bursts):
        """Paper: OPT with alpha=0 is identical to DBI DC (in cost)."""
        from repro.baselines import DbiDc
        model = CostModel.dc_only()
        optimal = DbiOptimal(model)
        baseline = DbiDc()
        for burst in medium_random_bursts[:100]:
            assert (optimal.encode(burst).cost(model)
                    == pytest.approx(baseline.encode(burst).cost(model)))

    def test_ac_only_matches_dbi_ac_cost(self, medium_random_bursts):
        """Paper: OPT with beta=0 performs identical to DBI AC."""
        from repro.baselines import DbiAc
        model = CostModel.ac_only()
        optimal = DbiOptimal(model)
        baseline = DbiAc()
        for burst in medium_random_bursts[:100]:
            assert (optimal.encode(burst).cost(model)
                    == pytest.approx(baseline.encode(burst).cost(model)))


class TestDbiOptimalFixed:
    def test_uses_unit_coefficients(self):
        scheme = DbiOptimalFixed()
        assert scheme.model.alpha == 1.0
        assert scheme.model.beta == 1.0
        assert scheme.name == "dbi-opt-fixed"

    def test_same_decisions_as_explicit_fixed_model(self, paper_burst):
        explicit = DbiOptimal(CostModel.fixed())
        assert (DbiOptimalFixed().encode(paper_burst).invert_flags
                == explicit.encode(paper_burst).invert_flags)


class TestDbiOptimalQuantized:
    def test_name_tracks_bits(self):
        scheme = DbiOptimalQuantized(CostModel.fixed(), bits=4)
        assert scheme.name == "dbi-opt-q4"
        assert isinstance(scheme.model, QuantizedCostModel)

    def test_unit_ratio_survives_quantization(self, paper_burst, fixed_model):
        quantized = DbiOptimalQuantized(CostModel.fixed(), bits=3)
        exact = DbiOptimal(fixed_model)
        assert (quantized.encode(paper_burst).cost(fixed_model)
                == exact.encode(paper_burst).cost(fixed_model))

    @settings(max_examples=40, deadline=None)
    @given(byte_lists, st.floats(min_value=0.05, max_value=0.95))
    def test_quantized_never_better_than_exact(self, data, fraction):
        """The exact optimum lower-bounds any quantised encoder."""
        burst = Burst(data)
        model = CostModel.from_ac_fraction(fraction)
        exact_cost = DbiOptimal(model).encode(burst).cost(model)
        quantized = DbiOptimalQuantized(model, bits=3)
        quantized_cost = quantized.encode(burst).cost(model)
        assert quantized_cost >= exact_cost - 1e-9

    def test_more_bits_converge_to_exact(self, medium_random_bursts):
        model = CostModel.from_ac_fraction(0.61)
        exact = DbiOptimal(model)
        gaps = []
        for bits in (1, 3, 6):
            quantized = DbiOptimalQuantized(model, bits=bits)
            gap = 0.0
            for burst in medium_random_bursts[:60]:
                gap += (quantized.encode(burst).cost(model)
                        - exact.encode(burst).cost(model))
            gaps.append(gap)
        assert gaps[0] >= gaps[1] >= gaps[2]
