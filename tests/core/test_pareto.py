"""Unit tests for exhaustive enumeration and Pareto analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.burst import Burst
from repro.core.pareto import (
    EncodingPoint,
    convex_hull_lower,
    enumerate_encodings,
    pareto_front,
    pareto_summary,
    supported_points,
)

tiny_bursts = st.lists(st.integers(min_value=0, max_value=255),
                       min_size=1, max_size=6).map(Burst)


class TestEnumeration:
    def test_counts_all_patterns(self):
        points = enumerate_encodings(Burst([1, 2, 3]))
        assert len(points) == 8
        assert len({p.invert_flags for p in points}) == 8

    def test_single_byte_activity(self):
        points = {p.invert_flags: p for p in enumerate_encodings(Burst([0x0F]))}
        raw = points[(False,)]
        inv = points[(True,)]
        assert (raw.zeros, raw.transitions) == (4, 4)
        assert (inv.zeros, inv.transitions) == (5, 5)

    def test_rejects_long_bursts(self):
        with pytest.raises(ValueError):
            enumerate_encodings(Burst([0] * 21))


class TestParetoFront:
    def test_no_point_dominates_another(self):
        frontier = pareto_front(enumerate_encodings(Burst([0x8E, 0x86, 0x96])))
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (a.transitions <= b.transitions
                             and a.zeros <= b.zeros
                             and (a.transitions < b.transitions
                                  or a.zeros < b.zeros))
                assert not dominates

    def test_sorted_by_transitions(self):
        frontier = pareto_front(enumerate_encodings(Burst([0x8E, 0x86, 0x96])))
        transitions = [p.transitions for p in frontier]
        assert transitions == sorted(transitions)

    @settings(max_examples=40, deadline=None)
    @given(tiny_bursts)
    def test_every_point_dominated_by_frontier(self, burst):
        points = enumerate_encodings(burst)
        frontier = pareto_front(points)
        for point in points:
            assert any(f.transitions <= point.transitions
                       and f.zeros <= point.zeros for f in frontier)


class TestSupportedPoints:
    @settings(max_examples=20, deadline=None)
    @given(tiny_bursts)
    def test_supported_subset_of_frontier(self, burst):
        frontier = {p.point for p in pareto_front(enumerate_encodings(burst))}
        for point in supported_points(burst, resolution=64):
            assert point in frontier

    @settings(max_examples=20, deadline=None)
    @given(tiny_bursts)
    def test_supported_points_include_extremes(self, burst):
        """The pure-DC and pure-AC optima are always supported."""
        supported = supported_points(burst, resolution=64)
        zeros_values = [z for _t, z in supported]
        trans_values = [t for t, _z in supported]
        frontier = pareto_front(enumerate_encodings(burst))
        assert min(zeros_values) == min(p.zeros for p in frontier)
        assert min(trans_values) == min(p.transitions for p in frontier)

    @settings(max_examples=20, deadline=None)
    @given(tiny_bursts)
    def test_supported_points_are_antichain(self, burst):
        supported = supported_points(burst, resolution=64)
        for a in supported:
            for b in supported:
                if a is b:
                    continue
                assert not (a[0] <= b[0] and a[1] <= b[1]
                            and (a[0] < b[0] or a[1] < b[1]))


class TestConvexHull:
    def test_collinear_endpoints(self):
        hull = convex_hull_lower([(0, 10), (5, 5), (10, 0)])
        assert (0, 10) in hull and (10, 0) in hull

    def test_interior_point_removed(self):
        # (5, 6) lies above the segment (0,10)-(10,0).
        hull = convex_hull_lower([(0, 10), (5, 6), (10, 0)])
        assert (5, 6) not in hull

    def test_below_segment_point_kept(self):
        hull = convex_hull_lower([(0, 10), (5, 4), (10, 0)])
        assert (5, 4) in hull

    def test_small_inputs(self):
        assert convex_hull_lower([(1, 1)]) == [(1, 1)]
        assert convex_hull_lower([]) == []


def test_pareto_summary_format(paper_burst):
    text = pareto_summary(paper_burst)
    assert text.startswith("| transitions | zeros | supported |")
    # The five Pareto points of Fig. 2 produce five data rows.
    assert text.count("\n") == 1 + 5
