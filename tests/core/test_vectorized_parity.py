"""Differential tests: vector backend vs the pure-Python reference.

The vector backend's contract is *bit-identity*: for every scheme, every
cost model and every boundary state, the batched NumPy kernels must
produce exactly the same invert flags and exactly the same IEEE-754 path
costs as the per-burst reference implementation.  These tests enforce the
contract on seeded random populations across alpha/beta grids, burst
lengths 1–16, independent and chained/streaming modes, and cross-check
small bursts against the exhaustive brute-force oracle.
"""

import zlib

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core.burst import Burst
from repro.core.costs import CostModel, QuantizedCostModel
from repro.core.schemes import get_scheme
from repro.core.streaming import solve_stream
from repro.core.trellis import brute_force, solve
from repro.core.vectorized import (
    available_backends,
    pack_bursts,
    resolve_backend,
    solve_batch,
    solve_stream_batch,
    try_pack_bursts,
)

#: AC-cost grid covering the DC-only / AC-only limits, the paper's fixed
#: point and the Fig. 3 crossover region.
AC_FRACTIONS = (0.0, 0.15, 0.37, 0.5, 0.56, 0.79, 1.0)


def random_batch(rng, batch, length):
    return rng.integers(0, 256, size=(batch, length), dtype=np.uint8)


def reference_rows(data, model, prev_words):
    flags = np.zeros(data.shape, dtype=bool)
    costs = np.zeros(data.shape[0], dtype=np.float64)
    for row, (payload, prev) in enumerate(zip(data, prev_words)):
        solution = solve(Burst(payload.tolist()), model, prev_word=int(prev))
        flags[row] = solution.invert_flags
        costs[row] = solution.total_cost
    return flags, costs


class TestSolveBatchParity:
    @pytest.mark.parametrize("ac_fraction", AC_FRACTIONS)
    @pytest.mark.parametrize("length", list(range(1, 17)))
    def test_alpha_grid_all_lengths(self, ac_fraction, length):
        """Flags and costs bit-identical across the alpha/beta grid."""
        rng = np.random.default_rng(1000 * length + int(ac_fraction * 100))
        model = CostModel.from_ac_fraction(ac_fraction)
        data = random_batch(rng, 48, length)
        prev_words = rng.integers(0, 512, size=48)
        flags, costs = solve_batch(data, model, prev_words=prev_words)
        ref_flags, ref_costs = reference_rows(data, model, prev_words)
        assert (flags == ref_flags).all()
        assert (costs == ref_costs).all()

    def test_quantized_model(self):
        model = QuantizedCostModel.from_cost_model(
            CostModel.from_ac_fraction(0.43), bits=3)
        rng = np.random.default_rng(7)
        data = random_batch(rng, 64, 8)
        prev_words = np.full(64, 0x1FF)
        flags, costs = solve_batch(data, model)
        ref_flags, ref_costs = reference_rows(data, model, prev_words)
        assert (flags == ref_flags).all()
        assert (costs == ref_costs).all()

    def test_bit_identical_on_10k_bursts(self):
        """The acceptance bar: 10 000 random JEDEC bursts, exact match."""
        rng = np.random.default_rng(0x0DB1)
        model = CostModel.fixed()
        data = random_batch(rng, 10_000, 8)
        prev_words = np.full(10_000, 0x1FF)
        flags, costs = solve_batch(data, model)
        ref_flags, ref_costs = reference_rows(data, model, prev_words)
        assert (flags == ref_flags).all()
        assert (costs == ref_costs).all()

    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 6])
    def test_brute_force_crosscheck(self, length):
        """Vector costs equal the exhaustive 2^n oracle for n <= 6."""
        rng = np.random.default_rng(2018 + length)
        model = CostModel.from_ac_fraction(0.37)
        data = random_batch(rng, 32, length)
        prev_words = rng.integers(0, 512, size=32)
        flags, costs = solve_batch(data, model, prev_words=prev_words)
        for row in range(32):
            oracle = brute_force(Burst(data[row].tolist()), model,
                                 prev_word=int(prev_words[row]))
            assert costs[row] == pytest.approx(oracle.total_cost, abs=1e-12)
            # The chosen flags must realise the optimal cost too.
            from repro.core.streaming import stream_cost
            realised = stream_cost(data[row].tolist(),
                                   [bool(f) for f in flags[row]], model,
                                   prev_word=int(prev_words[row]))
            assert realised == pytest.approx(oracle.total_cost, abs=1e-12)


class TestStreamingParity:
    def test_solve_stream_batch_matches_reference(self):
        """Batched streaming solve vs solve_stream, arbitrary boundaries."""
        rng = np.random.default_rng(99)
        model = CostModel.from_ac_fraction(0.61)
        data = random_batch(rng, 80, 24)
        prev_words = rng.integers(0, 512, size=80)
        flags, costs = solve_stream_batch(data, model, prev_words=prev_words)
        for row in range(80):
            ref_flags, ref_cost = solve_stream(data[row].tolist(), model,
                                               prev_word=int(prev_words[row]))
            assert tuple(map(bool, flags[row])) == ref_flags
            assert costs[row] == ref_cost

    def test_chained_evaluation_parity(self):
        """Runner chained mode: identical metrics on both backends."""
        from repro.sim.runner import evaluate
        from repro.workloads.random_data import random_bursts

        bursts = random_bursts(count=300, seed=17)
        schemes = ["raw", "dbi-dc", "dbi-ac", "dbi-acdc", "bus-invert",
                   "dbi-greedy", "dbi-opt"]
        vector = evaluate(schemes, bursts, chained=True, backend="vector")
        reference = evaluate(schemes, bursts, chained=True,
                             backend="reference")
        for name in schemes:
            v, r = vector[name], reference[name]
            assert (v.zeros, v.transitions, v.inverted_bytes) == \
                   (r.zeros, r.transitions, r.inverted_bytes)


class TestSchemeKernelParity:
    SCHEMES = ["raw", "dbi-dc", "dbi-ac", "dbi-acdc", "bus-invert",
               "dbi-greedy", "dbi-opt", "dbi-opt-fixed", "dbi-opt-q3"]

    @pytest.mark.parametrize("name", SCHEMES)
    @pytest.mark.parametrize("length", [1, 5, 8, 16])
    def test_encode_batch_matches_encode(self, name, length):
        scheme = get_scheme(name)
        assert scheme.supports_batch()
        # zlib.crc32 is stable across processes (unlike hash()), keeping
        # the "seeded" populations reproducible on failure.
        rng = np.random.default_rng(zlib.crc32(name.encode()) + length)
        data = random_batch(rng, 40, length)
        bursts = [Burst(row.tolist()) for row in data]
        prev_word = int(rng.integers(0, 512))
        vector = scheme.encode_batch(bursts, prev_word=prev_word,
                                     backend="vector")
        reference = scheme.encode_batch(bursts, prev_word=prev_word,
                                        backend="reference")
        for enc_v, enc_r in zip(vector, reference):
            assert enc_v.invert_flags == enc_r.invert_flags
            assert enc_v.words == enc_r.words

    @pytest.mark.parametrize("name", SCHEMES)
    def test_batch_activity_matches_per_burst(self, name):
        from repro.sim.sweep import collect_activity
        from repro.workloads.random_data import random_bursts

        scheme = get_scheme(name)
        bursts = random_bursts(count=250, seed=5)
        vector = collect_activity(scheme, bursts, backend="vector")
        reference = collect_activity(scheme, bursts, backend="reference")
        assert (vector.transitions, vector.zeros) == \
               (reference.transitions, reference.zeros)


class TestBackendSelection:
    def test_available_backends_contains_vector(self):
        assert available_backends() == ["reference", "vector"]

    def test_resolve(self):
        assert resolve_backend("auto") == "vector"
        assert resolve_backend("reference") == "reference"
        assert resolve_backend("vector") == "vector"
        with pytest.raises(ValueError):
            resolve_backend("gpu")

    def test_set_default_backend_round_trip(self):
        from repro.core.vectorized import get_default_backend, set_default_backend

        original = get_default_backend()
        try:
            set_default_backend("reference")
            assert resolve_backend() == "reference"
            with pytest.raises(ValueError):
                set_default_backend("nope")
        finally:
            set_default_backend(original)

    def test_pack_rejects_ragged(self):
        with pytest.raises(ValueError):
            pack_bursts([Burst([1, 2]), Burst([3])])
        assert try_pack_bursts([Burst([1, 2]), Burst([3])]) is None

    def test_encode_batch_falls_back_on_ragged(self):
        scheme = get_scheme("dbi-opt")
        bursts = [Burst([0x00, 0xFF]), Burst([0x0F])]
        encoded = scheme.encode_batch(bursts, backend="vector")
        reference = [scheme.encode(burst) for burst in bursts]
        assert [e.invert_flags for e in encoded] == \
               [e.invert_flags for e in reference]
