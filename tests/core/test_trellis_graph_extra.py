"""Additional coverage for the explicit trellis graph artefacts."""

import pytest

from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.trellis import (
    END_NODE,
    START_NODE,
    TrellisGraph,
    flags_from_path,
    node_name,
    solve_on_graph,
)


@pytest.fixture
def graph():
    return TrellisGraph(burst=Burst([0x0F, 0xF0]), model=CostModel.fixed())


def test_node_name_format():
    assert node_name(3, False) == "byte3:raw"
    assert node_name(0, True) == "byte0:inv"


def test_edge_words_recorded(graph):
    for edge in graph.edges:
        if edge.target == END_NODE:
            assert edge.word is None
        else:
            assert edge.word is not None
            assert 0 <= edge.word <= 0x1FF


def test_missing_edge_raises(graph):
    with pytest.raises(KeyError):
        graph.edge_weight(START_NODE, END_NODE)


def test_invalid_prev_word_rejected():
    with pytest.raises(ValueError):
        TrellisGraph(burst=Burst([1]), model=CostModel.fixed(),
                     prev_word=0x3FF)


def test_flags_from_path_skips_virtual_nodes():
    path = [START_NODE, node_name(0, True), node_name(1, False), END_NODE]
    assert flags_from_path(path) == (True, False)


def test_single_byte_graph_solvable():
    graph = TrellisGraph(burst=Burst([0x00]), model=CostModel.dc_only())
    path, cost = solve_on_graph(graph)
    assert flags_from_path(path) == (True,)
    assert cost == 1.0


def test_custom_boundary_changes_weights():
    burst = Burst([0x00])
    model = CostModel.ac_only()
    from_idle = TrellisGraph(burst=burst, model=model, prev_word=0x1FF)
    from_low = TrellisGraph(burst=burst, model=model, prev_word=0x000)
    raw_node = node_name(0, False)
    assert (from_idle.edge_weight(START_NODE, raw_node)
            != from_low.edge_weight(START_NODE, raw_node))
