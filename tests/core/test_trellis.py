"""Unit tests for the trellis shortest-path search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import ALL_ONES_WORD
from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.schemes import EncodedBurst
from repro.core.trellis import (
    END_NODE,
    START_NODE,
    TrellisGraph,
    brute_force,
    flags_from_path,
    node_name,
    solve,
    solve_on_graph,
)

short_bursts = st.lists(st.integers(min_value=0, max_value=255),
                        min_size=1, max_size=8).map(Burst)
# Subnormal coefficients are excluded: scaling one by a factor < 1 can
# underflow to 0.0, turning a valid model into the rejected (0, 0) pair.
cost_models = st.tuples(
    st.floats(min_value=0.0, max_value=4.0, allow_subnormal=False),
    st.floats(min_value=0.0, max_value=4.0, allow_subnormal=False),
).filter(lambda ab: ab[0] + ab[1] > 0).map(lambda ab: CostModel(*ab))
words = st.integers(min_value=0, max_value=0x1FF)


class TestSolveBasics:
    def test_all_zero_burst_inverts_under_dc(self):
        solution = solve(Burst([0x00] * 4), CostModel.dc_only())
        assert solution.invert_flags == (True,) * 4

    def test_all_ones_burst_never_inverts(self):
        solution = solve(Burst([0xFF] * 4), CostModel.fixed())
        assert solution.invert_flags == (False,) * 4
        assert solution.total_cost == 0.0

    def test_tie_prefers_non_inverted(self):
        # A byte with exactly 4 zeros costs the same raw (4 zeros) and
        # inverted (4+1... not a tie). Use pure-AC ties instead: with
        # prev all-ones, byte 0xF0 has 4 raw transitions and 5 inverted,
        # so raw. Byte 0x0F is symmetric: raw 4, inverted 5 -> raw.
        solution = solve(Burst([0xF0]), CostModel.ac_only())
        assert solution.invert_flags == (False,)

    def test_step_costs_shape(self):
        burst = Burst([1, 2, 3])
        solution = solve(burst, CostModel.fixed())
        assert len(solution.step_costs) == 3
        # Path costs are monotonically non-decreasing along the recursion.
        for (raw_a, inv_a), (raw_b, inv_b) in zip(solution.step_costs,
                                                  solution.step_costs[1:]):
            assert min(raw_b, inv_b) >= min(raw_a, inv_a)

    def test_total_cost_matches_encoded_burst(self, paper_burst, fixed_model):
        solution = solve(paper_burst, fixed_model)
        encoded = EncodedBurst(burst=paper_burst,
                               invert_flags=solution.invert_flags)
        assert encoded.cost(fixed_model) == solution.total_cost

    def test_invalid_prev_word(self):
        with pytest.raises(ValueError):
            solve(Burst([1]), CostModel.fixed(), prev_word=0x200)


class TestOptimality:
    @settings(max_examples=150, deadline=None)
    @given(short_bursts, cost_models, words)
    def test_matches_brute_force_cost(self, burst, model, prev_word):
        fast = solve(burst, model, prev_word=prev_word)
        slow = brute_force(burst, model, prev_word=prev_word)
        assert fast.total_cost == pytest.approx(slow.total_cost)

    @settings(max_examples=100, deadline=None)
    @given(short_bursts, cost_models)
    def test_beats_every_single_flip(self, burst, model):
        """Local optimality: flipping any one decision can't help."""
        solution = solve(burst, model)
        base = EncodedBurst(burst=burst,
                            invert_flags=solution.invert_flags).cost(model)
        for index in range(len(burst)):
            flags = list(solution.invert_flags)
            flags[index] = not flags[index]
            flipped = EncodedBurst(burst=burst, invert_flags=tuple(flags))
            assert flipped.cost(model) >= base - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(short_bursts, cost_models, st.floats(min_value=0.1, max_value=9.0))
    def test_scale_invariance(self, burst, model, factor):
        """Uniform scaling of the coefficients preserves the solution cost
        ratio (the paper's integer-coefficient argument)."""
        base = solve(burst, model)
        scaled = solve(burst, model.scaled(factor))
        assert scaled.total_cost == pytest.approx(factor * base.total_cost)


class TestTrellisGraph:
    def test_node_count(self, paper_burst, fixed_model):
        graph = TrellisGraph(burst=paper_burst, model=fixed_model)
        assert len(graph.nodes) == 2 + 2 * len(paper_burst)

    def test_edge_count(self, paper_burst, fixed_model):
        graph = TrellisGraph(burst=paper_burst, model=fixed_model)
        n = len(paper_burst)
        assert len(graph.edges) == 2 + 4 * (n - 1) + 2

    def test_start_edge_weights_match_paper(self, paper_burst, fixed_model):
        """Fig. 2's first two edge labels are 8 (raw) and 10 (inverted)."""
        graph = TrellisGraph(burst=paper_burst, model=fixed_model)
        assert graph.edge_weight(START_NODE, node_name(0, False)) == 8
        assert graph.edge_weight(START_NODE, node_name(0, True)) == 10

    def test_end_edges_are_free(self, paper_burst, fixed_model):
        graph = TrellisGraph(burst=paper_burst, model=fixed_model)
        last = len(paper_burst) - 1
        assert graph.edge_weight(node_name(last, False), END_NODE) == 0.0
        assert graph.edge_weight(node_name(last, True), END_NODE) == 0.0

    def test_adjacency_covers_all_edges(self, paper_burst, fixed_model):
        graph = TrellisGraph(burst=paper_burst, model=fixed_model)
        adjacency = graph.adjacency()
        assert sum(len(edges) for edges in adjacency.values()) == len(graph.edges)

    def test_render_mentions_every_node(self, fixed_model):
        graph = TrellisGraph(burst=Burst([1, 2]), model=fixed_model)
        text = graph.render()
        for node in graph.nodes:
            assert node in text


class TestGraphSolver:
    @settings(max_examples=60, deadline=None)
    @given(short_bursts, cost_models)
    def test_graph_solution_matches_dp(self, burst, model):
        graph = TrellisGraph(burst=burst, model=model)
        path, cost = solve_on_graph(graph)
        solution = solve(burst, model)
        assert cost == pytest.approx(solution.total_cost)
        flags = flags_from_path(path)
        graph_cost = EncodedBurst(burst=burst, invert_flags=flags).cost(model)
        assert graph_cost == pytest.approx(solution.total_cost)

    def test_networkx_cross_validation(self, paper_burst, fixed_model):
        nx = pytest.importorskip("networkx")
        graph = TrellisGraph(burst=paper_burst, model=fixed_model)
        digraph = graph.to_networkx()
        nx_cost = nx.shortest_path_length(digraph, START_NODE, END_NODE,
                                          weight="weight")
        assert nx_cost == pytest.approx(solve(paper_burst, fixed_model).total_cost)


class TestBruteForce:
    def test_rejects_long_bursts(self):
        with pytest.raises(ValueError):
            brute_force(Burst([0] * 21), CostModel.fixed())

    def test_single_byte(self):
        solution = brute_force(Burst([0x00]), CostModel.dc_only())
        assert solution.invert_flags == (True,)
        assert solution.total_cost == 1.0  # the DBI zero
