"""Unit tests for the bit-manipulation substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitops


class TestPopcount:
    def test_zero(self):
        assert bitops.popcount(0) == 0

    def test_all_ones_byte(self):
        assert bitops.popcount(0xFF) == 8

    def test_single_bits(self):
        for position in range(16):
            assert bitops.popcount(1 << position) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitops.popcount(-1)

    @given(st.integers(min_value=0, max_value=2**64))
    def test_matches_bin_count(self, value):
        assert bitops.popcount(value) == bin(value).count("1")


class TestByteWordValidation:
    def test_check_byte_accepts_bounds(self):
        assert bitops.check_byte(0) == 0
        assert bitops.check_byte(255) == 255

    def test_check_byte_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bitops.check_byte(256)
        with pytest.raises(ValueError):
            bitops.check_byte(-1)

    def test_check_byte_rejects_bool(self):
        with pytest.raises(TypeError):
            bitops.check_byte(True)

    def test_check_byte_rejects_float(self):
        with pytest.raises(TypeError):
            bitops.check_byte(1.0)

    def test_check_word_accepts_bounds(self):
        assert bitops.check_word(0) == 0
        assert bitops.check_word(0x1FF) == 0x1FF

    def test_check_word_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bitops.check_word(0x200)


class TestWordAssembly:
    def test_non_inverted_sets_dbi(self):
        assert bitops.make_word(0x00, inverted=False) == 0x100
        assert bitops.make_word(0xFF, inverted=False) == 0x1FF

    def test_inverted_clears_dbi_and_complements(self):
        assert bitops.make_word(0x00, inverted=True) == 0x0FF
        assert bitops.make_word(0xFF, inverted=True) == 0x000

    @given(st.integers(min_value=0, max_value=255), st.booleans())
    def test_decode_round_trip(self, byte, inverted):
        assert bitops.decode_word(bitops.make_word(byte, inverted)) == byte

    @given(st.integers(min_value=0, max_value=255))
    def test_word_dbi_flag(self, byte):
        assert bitops.word_dbi(bitops.make_word(byte, False)) == 1
        assert bitops.word_dbi(bitops.make_word(byte, True)) == 0

    @given(st.integers(min_value=0, max_value=255), st.booleans())
    def test_word_byte_extracts_data_lanes(self, byte, inverted):
        word = bitops.make_word(byte, inverted)
        expected = (byte ^ 0xFF) if inverted else byte
        assert bitops.word_byte(word) == expected


class TestActivityCounts:
    def test_zeros_in_word_all_ones(self):
        assert bitops.zeros_in_word(0x1FF) == 0

    def test_zeros_in_word_all_zeros(self):
        assert bitops.zeros_in_word(0) == 9

    def test_zeros_in_byte(self):
        assert bitops.zeros_in_byte(0b10110111) == 2

    def test_transitions_identity(self):
        assert bitops.transitions(0x155, 0x155) == 0

    def test_transitions_full_flip(self):
        assert bitops.transitions(0x1FF, 0x000) == 9

    @given(st.integers(min_value=0, max_value=0x1FF),
           st.integers(min_value=0, max_value=0x1FF))
    def test_transitions_symmetric(self, a, b):
        assert bitops.transitions(a, b) == bitops.transitions(b, a)

    @given(st.integers(min_value=0, max_value=0x1FF),
           st.integers(min_value=0, max_value=0x1FF),
           st.integers(min_value=0, max_value=0x1FF))
    def test_transitions_triangle_inequality(self, a, b, c):
        assert (bitops.transitions(a, c)
                <= bitops.transitions(a, b) + bitops.transitions(b, c))

    @given(st.integers(min_value=0, max_value=255), st.booleans())
    def test_inversion_complements_zero_count(self, byte, inverted):
        raw = bitops.make_word(byte, False)
        inv = bitops.make_word(byte, True)
        # raw zeros: zeros of byte; inverted zeros: ones of byte + DBI zero.
        assert bitops.zeros_in_word(raw) == bitops.zeros_in_byte(byte)
        assert bitops.zeros_in_word(inv) == 9 - bitops.zeros_in_byte(byte)


class TestParsingFormatting:
    def test_parse_bits_paper_byte(self):
        assert bitops.parse_bits("10001110") == 0x8E

    def test_parse_bits_ignores_spaces_and_underscores(self):
        assert bitops.parse_bits("1000_1110") == bitops.parse_bits("1000 1110")

    def test_parse_bits_rejects_garbage(self):
        with pytest.raises(ValueError):
            bitops.parse_bits("10021110")

    def test_parse_bits_rejects_empty(self):
        with pytest.raises(ValueError):
            bitops.parse_bits("  ")

    @given(st.integers(min_value=0, max_value=255))
    def test_format_parse_round_trip(self, byte):
        assert bitops.parse_bits(bitops.format_bits(byte)) == byte

    def test_format_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            bitops.format_bits(256, width=8)


class TestLaneTransforms:
    def test_bytes_to_lanes_simple(self):
        lanes = bitops.bytes_to_lanes([0b1, 0b0, 0b1])
        assert lanes[0] == 0b101
        assert all(lane == 0 for lane in lanes[1:])

    @given(st.lists(st.integers(min_value=0, max_value=255),
                    min_size=1, max_size=16))
    def test_bytes_to_lanes_preserves_bit_count(self, data):
        lanes = bitops.bytes_to_lanes(data)
        assert (sum(bitops.popcount(lane) for lane in lanes)
                == sum(bitops.popcount(byte) for byte in data))

    def test_iter_bits_lsb_first(self):
        assert list(bitops.iter_bits(0b1101, 4)) == [1, 0, 1, 1]

    def test_hamming_weight_table(self):
        table = bitops.hamming_weight_table(8)
        assert len(table) == 256
        assert all(table[i] == bin(i).count("1") for i in range(256))

    def test_total_zeros_and_transitions(self):
        words = [0x1FF, 0x0FF, 0x1FF]
        assert bitops.total_zeros(words) == 1  # only the DBI bit of 0x0FF
        assert bitops.total_transitions(words) == 0 + 1 + 1
