"""Differential suite: BatchStreamingEncoder vs per-lane reference.

The batch encoder's contract is bit-identity with one
:class:`~repro.core.streaming.StreamingOptimalEncoder` per lane — same
committed decisions, same integer activity tallies, same boundary-word
chain — for any window/commit cadence, any push chunking and any cost
model.  These tests enforce it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.core.bitops import ALL_ONES_WORD, make_word, transitions, zeros_in_word
from repro.core.costs import CostModel
from repro.core.streaming import BatchStreamingEncoder, StreamingOptimalEncoder


def reference_lane(stream, model, window, prev_word=ALL_ONES_WORD):
    """Run the per-lane reference; return (decisions, zeros, trans, prev)."""
    encoder = StreamingOptimalEncoder(model=model, window=window,
                                      prev_word=prev_word)
    decisions = encoder.push(list(stream)) + encoder.flush()
    zeros = trans = 0
    last = prev_word
    for byte, flag in decisions:
        word = make_word(byte, flag)
        zeros += zeros_in_word(word)
        trans += transitions(last, word)
        last = word
    return decisions, zeros, trans, last


def assert_parity(streams, model, window, chunks=1):
    """Batch-encode *streams* (optionally split into pushes) and compare."""
    batch = BatchStreamingEncoder(model, rows=len(streams), window=window,
                                  record=True)
    if chunks == 1:
        batch.push(streams)
    else:
        step = max(1, max(len(s) for s in streams) // chunks)
        offset = 0
        while any(offset < len(s) for s in streams):
            batch.push([bytes(s[offset:offset + step]) for s in streams])
            offset += step
    batch.flush()
    assert batch.pending_counts() == [0] * len(streams)
    for row, stream in enumerate(streams):
        decisions, zeros, trans, last = reference_lane(stream, model, window)
        assert batch.decisions(row) == decisions, f"lane {row}"
        assert int(batch.zeros[row]) == zeros
        assert int(batch.transitions[row]) == trans
        assert int(batch.beats[row]) == len(stream)
        assert int(batch.prev_words[row]) == last


byte_streams = st.lists(
    st.binary(min_size=0, max_size=60), min_size=1, max_size=6)
models = st.sampled_from([
    CostModel.fixed(),
    CostModel.dc_only(),
    CostModel.ac_only(),
    CostModel.from_ac_fraction(0.3),
    CostModel.from_ac_fraction(0.77),
])


class TestBatchParity:
    @given(streams=byte_streams, model=models,
           window=st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_ragged_streams_any_window(self, streams, model, window):
        assert_parity(streams, model, window)

    @given(streams=byte_streams, model=models,
           chunks=st.integers(min_value=2, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_push_chunking_is_invisible(self, streams, model, chunks):
        assert_parity(streams, model, window=8, chunks=chunks)

    def test_many_equal_lanes(self):
        import numpy as np
        rng = np.random.default_rng(0x0DB1)
        streams = [bytes(rng.integers(0, 256, size=256, dtype=np.uint8))
                   for _ in range(16)]
        assert_parity(streams, CostModel.fixed(), window=16)

    def test_empty_lane_is_fine(self):
        assert_parity([b"", b"\x00" * 20], CostModel.fixed(), window=4)

    def test_zero_heavy_streams_invert(self):
        batch = BatchStreamingEncoder(CostModel.dc_only(), rows=2, window=4,
                                      record=True)
        batch.push([bytes(8), bytes(8)])
        batch.flush()
        for row in range(2):
            assert all(flag for _byte, flag in batch.decisions(row))


class TestValidation:
    def test_rejects_bad_shapes(self):
        batch = BatchStreamingEncoder(CostModel.fixed(), rows=2)
        with pytest.raises(ValueError):
            batch.push([b"aa"])  # one stream for two lanes
        import numpy as np
        with pytest.raises(ValueError):
            batch.push([b"aa", np.zeros((2, 2), dtype=np.uint8)])

    def test_rejected_push_leaves_state_untouched(self):
        """A push that fails validation must not half-feed any lane."""
        import numpy as np
        batch = BatchStreamingEncoder(CostModel.fixed(), rows=2, window=4,
                                      record=True)
        with pytest.raises(ValueError):
            batch.push([b"\x00" * 3, np.zeros((2, 2), dtype=np.uint8)])
        assert batch.pending_counts() == [0, 0]
        # Retrying with corrected streams matches a clean single push.
        batch.push([b"\x00" * 3, b"\xff" * 3])
        batch.flush()
        assert_parity([b"\x00" * 3, b"\xff" * 3], CostModel.fixed(), window=4)
        assert int(batch.beats[0]) == 3 and int(batch.beats[1]) == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchStreamingEncoder(CostModel.fixed(), rows=0)
        with pytest.raises(ValueError):
            BatchStreamingEncoder(CostModel.fixed(), rows=1, window=0)
        with pytest.raises(ValueError):
            BatchStreamingEncoder(CostModel.fixed(), rows=1, window=4,
                                  commit=5)

    def test_decisions_require_record(self):
        batch = BatchStreamingEncoder(CostModel.fixed(), rows=1)
        with pytest.raises(RuntimeError):
            batch.decisions(0)

    def test_rejects_out_of_range_array_values(self):
        """ndarray input must not silently wrap mod 256 (check_byte parity)."""
        import numpy as np
        batch = BatchStreamingEncoder(CostModel.fixed(), rows=1, window=4)
        with pytest.raises(ValueError):
            batch.push([np.array([300, 5], dtype=np.int64)])
        with pytest.raises(ValueError):
            batch.push([np.array([-1], dtype=np.int64)])
        with pytest.raises(TypeError):
            batch.push([np.array([0.5, 1.0])])
        assert batch.pending_counts() == [0]
