"""Cross-cutting property-based tests on the core invariants.

These encode the paper's structural claims as hypotheses over random
bursts and cost models:

1. OPT never costs more than any other scheme (global optimality).
2. OPT(alpha=0) matches DBI DC's cost; OPT(beta=0) matches DBI AC's cost.
3. Every scheme round-trips through the common decoder.
4. DBI DC's <=4-zeros-per-word guarantee.
5. AC == ACDC under the idle-high boundary condition.
6. Batch-API invariants: encode→decode round-trips on every backend,
   the streaming encoder's cost converges monotonically (in the mean)
   toward the joint optimum as the lookahead window grows, and batch
   order never changes optimal costs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BusInvert,
    DbiAc,
    DbiAcDc,
    DbiDc,
    DbiGreedyWeighted,
    Raw,
)
from repro.core.bitops import zeros_in_word
from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.schemes import get_scheme

bursts = st.lists(st.integers(min_value=0, max_value=255),
                  min_size=1, max_size=16).map(Burst)
models = st.tuples(
    st.floats(min_value=0.0, max_value=5.0),
    st.floats(min_value=0.0, max_value=5.0),
).filter(lambda ab: ab[0] + ab[1] > 0.01).map(lambda ab: CostModel(*ab))
prev_words = st.integers(min_value=0, max_value=0x1FF)


@settings(max_examples=200, deadline=None)
@given(bursts, models, prev_words)
def test_opt_is_globally_minimal(burst, model, prev_word):
    """No baseline ever beats the trellis optimum."""
    optimal_cost = DbiOptimal(model).encode(burst, prev_word=prev_word).cost(model)
    for scheme in (Raw(), DbiDc(), DbiAc(), DbiAcDc(),
                   DbiGreedyWeighted(model), BusInvert()):
        competitor = scheme.encode(burst, prev_word=prev_word).cost(model)
        assert optimal_cost <= competitor + 1e-9


@settings(max_examples=150, deadline=None)
@given(bursts, prev_words)
def test_opt_dc_limit(burst, prev_word):
    """alpha = 0 reduces OPT to DBI DC (equal cost, possibly different
    tie choices)."""
    model = CostModel.dc_only()
    opt = DbiOptimal(model).encode(burst, prev_word=prev_word).cost(model)
    dc = DbiDc().encode(burst, prev_word=prev_word).cost(model)
    assert opt == dc


@settings(max_examples=150, deadline=None)
@given(bursts, prev_words)
def test_opt_ac_limit(burst, prev_word):
    """beta = 0 reduces OPT to DBI AC in cost.

    Greedy transition minimisation is globally optimal for a 2-state
    trellis with symmetric toggle costs, so the equality is exact.
    """
    model = CostModel.ac_only()
    opt = DbiOptimal(model).encode(burst, prev_word=prev_word).cost(model)
    ac = DbiAc().encode(burst, prev_word=prev_word).cost(model)
    assert opt == ac


@settings(max_examples=100, deadline=None)
@given(bursts, prev_words)
def test_all_schemes_round_trip(burst, prev_word):
    for name in ("raw", "dbi-dc", "dbi-ac", "dbi-acdc", "dbi-opt",
                 "dbi-opt-fixed", "dbi-greedy", "bus-invert"):
        encoded = get_scheme(name).encode(burst, prev_word=prev_word)
        assert encoded.decode().data == burst.data


@settings(max_examples=150, deadline=None)
@given(bursts)
def test_dc_bounds_zeros_per_word(burst):
    """JEDEC guarantee: DBI DC never transmits more than 4 zeros per word."""
    encoded = DbiDc().encode(burst)
    for word in encoded.words:
        assert zeros_in_word(word) <= 4


@settings(max_examples=150, deadline=None)
@given(bursts)
def test_ac_equals_acdc_from_idle(burst):
    """Paper §II: the idle-high boundary makes DBI AC identical to ACDC."""
    assert (DbiAc().encode(burst).invert_flags
            == DbiAcDc().encode(burst).invert_flags)


@settings(max_examples=100, deadline=None)
@given(bursts, prev_words)
def test_greedy_never_beats_opt_and_first_step_is_optimal(burst, prev_word):
    """The greedy heuristic lower-bounds nothing but is bounded by OPT;
    its first decision is locally optimal by construction."""
    model = CostModel.fixed()
    opt = DbiOptimal(model).encode(burst, prev_word=prev_word).cost(model)
    greedy_encoded = DbiGreedyWeighted(model).encode(burst, prev_word=prev_word)
    assert opt <= greedy_encoded.cost(model) + 1e-9
    # First decision: strictly cheaper than the opposite first choice,
    # or a tie resolved to non-inverted.
    from repro.core.bitops import make_word
    first = burst[0]
    chosen = model.word_cost(prev_word, make_word(first, greedy_encoded.invert_flags[0]))
    other = model.word_cost(prev_word, make_word(first, not greedy_encoded.invert_flags[0]))
    if greedy_encoded.invert_flags[0]:
        assert chosen < other
    else:
        assert chosen <= other


@settings(max_examples=100, deadline=None)
@given(bursts, prev_words)
def test_wire_complement_symmetry(burst, prev_word):
    """Wire-level complement symmetry of the transition metric.

    Complementing a 9-bit word swaps the raw and inverted representations
    of the same byte, so the set of achievable word sequences for a burst
    is closed under complement.  Transitions are complement-invariant,
    hence for beta = 0 the optimal cost is identical from ``prev_word``
    and from its 9-bit complement.
    """
    model = CostModel.ac_only()
    mirrored = prev_word ^ 0x1FF
    original = DbiOptimal(model).encode(burst, prev_word=prev_word).cost(model)
    complemented = DbiOptimal(model).encode(burst, prev_word=mirrored).cost(model)
    assert original == complemented


# -- batch API invariants -----------------------------------------------------

batches = st.lists(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=8),
    min_size=1, max_size=12,
).map(lambda rows: [Burst(row) for row in rows])


@settings(max_examples=60, deadline=None)
@given(batches, prev_words)
def test_encode_batch_round_trips_on_every_backend(bursts, prev_word):
    """encode→decode identity holds for encode_batch on all backends.

    Batches are deliberately ragged some of the time, exercising both the
    vector fast path and the reference fallback.
    """
    from repro.core.vectorized import available_backends

    for backend in available_backends():
        for name in ("raw", "dbi-dc", "dbi-ac", "dbi-opt"):
            scheme = get_scheme(name)
            encoded = scheme.encode_batch(bursts, prev_word=prev_word,
                                          backend=backend)
            assert len(encoded) == len(bursts)
            for burst, enc in zip(bursts, encoded):
                assert enc.decode().data == burst.data


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255),
                min_size=2, max_size=20),
       st.integers(min_value=1, max_value=20), prev_words)
def test_windowed_cost_never_beats_joint_optimum(data, window, prev_word):
    """Any finite lookahead is lower-bounded by the joint stream optimum,
    and a window covering the whole stream achieves it exactly."""
    from repro.core.streaming import solve_stream, windowed_stream_cost

    model = CostModel.fixed()
    __, optimal = solve_stream(data, model, prev_word=prev_word)
    windowed = windowed_stream_cost(data, model, window, prev_word=prev_word)
    assert windowed >= optimal - 1e-9
    full = windowed_stream_cost(data, model, len(data), prev_word=prev_word)
    assert full == pytest.approx(optimal, abs=1e-9)


def test_streaming_mean_cost_monotone_in_window():
    """Population-mean cost decreases as the lookahead window doubles.

    Per-instance monotonicity does *not* hold (a longer window can commit
    a prefix that happens to be worse for one particular stream), but the
    mean over a population converges monotonically to the joint optimum —
    the window-size ablation's headline claim.
    """
    import random

    from repro.core.streaming import solve_stream, windowed_stream_cost

    rng = random.Random(0x0DB1)
    streams = [[rng.randrange(256) for _ in range(32)] for _ in range(60)]
    for ac_fraction in (0.3, 0.5, 0.7):
        model = CostModel.from_ac_fraction(ac_fraction)
        means = [
            sum(windowed_stream_cost(s, model, window) for s in streams)
            for window in (1, 2, 4, 8, 16, 32)
        ]
        for wider, narrower in zip(means[1:], means):
            assert wider <= narrower + 1e-9
        optimum = sum(solve_stream(s, model)[1] for s in streams)
        assert means[-1] == pytest.approx(optimum, abs=1e-9)


def test_optimal_batch_cost_invariant_under_permutation():
    """Permuting the burst order permutes, but never changes, the optimal
    per-burst costs (independent boundaries ⇒ no cross-burst coupling)."""
    np = pytest.importorskip("numpy", exc_type=ImportError)
    from repro.core.vectorized import solve_batch

    rng = np.random.default_rng(123)
    data = rng.integers(0, 256, size=(200, 8), dtype=np.uint8)
    model = CostModel.from_ac_fraction(0.37)
    __, costs = solve_batch(data, model)
    permutation = rng.permutation(200)
    __, permuted_costs = solve_batch(data[permutation], model)
    assert (permuted_costs == costs[permutation]).all()
    assert permuted_costs.sum() == pytest.approx(costs.sum(), rel=1e-12)
