"""Unit tests for the scheme interface, EncodedBurst and the registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.burst import Burst
from repro.core.costs import CostModel
from repro.core.schemes import (
    DbiScheme,
    EncodedBurst,
    available_schemes,
    get_scheme,
    register_scheme,
)

byte_lists = st.lists(st.integers(min_value=0, max_value=255),
                      min_size=1, max_size=12)


class TestEncodedBurst:
    def test_flag_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EncodedBurst(burst=Burst([1, 2]), invert_flags=(False,))

    def test_words_follow_flags(self):
        encoded = EncodedBurst(burst=Burst([0x0F, 0x0F]),
                               invert_flags=(False, True))
        assert encoded.words == (0x10F, 0x0F0)

    def test_zeros_includes_dbi_lane(self):
        encoded = EncodedBurst(burst=Burst([0xFF]), invert_flags=(True,))
        # Inverted 0xFF -> data 0x00 (8 zeros) + DBI zero.
        assert encoded.zeros() == 9

    def test_transitions_from_idle_high(self):
        encoded = EncodedBurst(burst=Burst([0x00]), invert_flags=(False,))
        assert encoded.transitions() == 8

    def test_transitions_with_custom_prev(self):
        encoded = EncodedBurst(burst=Burst([0x00]), invert_flags=(False,),
                               prev_word=0x100)
        assert encoded.transitions() == 0

    def test_cost_uses_model(self):
        encoded = EncodedBurst(burst=Burst([0x00]), invert_flags=(False,))
        assert encoded.cost(CostModel(2.0, 1.0)) == 2 * 8 + 1 * 8

    @given(byte_lists, st.lists(st.booleans(), min_size=1, max_size=12))
    def test_round_trip_any_flags(self, data, flags):
        if len(flags) != len(data):
            flags = (flags * len(data))[:len(data)]
        encoded = EncodedBurst(burst=Burst(data), invert_flags=tuple(flags))
        assert encoded.decode().data == tuple(data)
        encoded.verify()

    def test_last_word(self):
        encoded = EncodedBurst(burst=Burst([0x01, 0x02]),
                               invert_flags=(False, True))
        assert encoded.last_word() == (0x02 ^ 0xFF)

    def test_activity_pair_order(self):
        encoded = EncodedBurst(burst=Burst([0x00]), invert_flags=(False,))
        transitions, zeros = encoded.activity()
        assert (transitions, zeros) == (8, 8)


class TestRegistry:
    def test_builtin_schemes_present(self):
        names = available_schemes()
        for expected in ("raw", "dbi-dc", "dbi-ac", "dbi-acdc",
                         "dbi-opt", "dbi-opt-fixed", "dbi-greedy",
                         "bus-invert"):
            assert expected in names

    def test_get_scheme_instantiates(self):
        scheme = get_scheme("dbi-dc")
        assert isinstance(scheme, DbiScheme)
        assert scheme.name == "dbi-dc"

    def test_get_scheme_returns_fresh_instances(self):
        assert get_scheme("dbi-dc") is not get_scheme("dbi-dc")

    def test_unknown_scheme(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            get_scheme("nope")

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_scheme("", lambda: None)


class TestEncodeStream:
    def test_state_threads_between_bursts(self):
        scheme = get_scheme("dbi-ac")
        bursts = [Burst([0x00] * 2), Burst([0x00] * 2)]
        encoded = scheme.encode_stream(bursts)
        assert len(encoded) == 2
        # The second burst must start from the first burst's final word.
        assert encoded[1].prev_word == encoded[0].last_word()

    def test_stream_round_trips(self):
        scheme = get_scheme("dbi-opt")
        bursts = [Burst([i, 255 - i]) for i in range(10)]
        for encoded in scheme.encode_stream(bursts):
            encoded.verify()


class TestFingerprints:
    """Scheme fingerprints are the cache keys of the experiment engine."""

    def test_parameterless_schemes_use_registry_name(self):
        assert get_scheme("raw").fingerprint() == "raw"
        assert get_scheme("dbi-dc").fingerprint() == "dbi-dc"
        assert get_scheme("dbi-ac").fingerprint() == "dbi-ac"

    def test_optimal_keyed_by_ratio(self):
        from repro.core.costs import CostModel
        from repro.core.encoder import DbiOptimal, DbiOptimalFixed

        fixed = DbiOptimalFixed()
        # Equal ratios share a fingerprint regardless of scale and flavour.
        assert DbiOptimal(CostModel(2.0, 2.0)).fingerprint() \
            == fixed.fingerprint()
        assert DbiOptimal(CostModel.from_ac_fraction(0.5)).fingerprint() \
            == fixed.fingerprint()
        # Distinct ratios must never collide.
        assert DbiOptimal(CostModel(1.0, 3.0)).fingerprint() \
            != fixed.fingerprint()

    def test_greedy_keyed_by_ratio(self):
        from repro.baselines.chang import DbiGreedyWeighted
        from repro.core.costs import CostModel

        a = DbiGreedyWeighted(CostModel(1.0, 1.0))
        b = DbiGreedyWeighted(CostModel(3.0, 3.0))
        c = DbiGreedyWeighted(CostModel(1.0, 2.0))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_greedy_and_optimal_never_collide(self):
        from repro.baselines.chang import DbiGreedyWeighted
        from repro.core.costs import CostModel
        from repro.core.encoder import DbiOptimal

        model = CostModel(1.0, 1.0)
        assert DbiGreedyWeighted(model).fingerprint() \
            != DbiOptimal(model).fingerprint()
