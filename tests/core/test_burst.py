"""Unit tests for the Burst container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.burst import Burst, PAPER_FIG2_BURST, chunk_bytes

byte_lists = st.lists(st.integers(min_value=0, max_value=255),
                      min_size=1, max_size=32)


class TestConstruction:
    def test_from_iterable(self):
        assert Burst([1, 2, 3]).data == (1, 2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Burst([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Burst([0, 256])

    def test_from_bit_strings(self):
        burst = Burst.from_bit_strings(["00000001", "10000000"])
        assert burst.data == (1, 128)

    def test_from_bytes(self):
        assert Burst.from_bytes(b"\x01\x02").data == (1, 2)

    def test_from_int_little_endian(self):
        assert Burst.from_int(0x0201, length=2).data == (1, 2)

    def test_from_int_overflow_rejected(self):
        with pytest.raises(ValueError):
            Burst.from_int(0x10000, length=2)

    def test_immutable(self):
        burst = Burst([1])
        with pytest.raises(AttributeError):
            burst.data = (2,)


class TestAccessors:
    def test_len_iter_getitem(self):
        burst = Burst([9, 8, 7])
        assert len(burst) == 3
        assert list(burst) == [9, 8, 7]
        assert burst[1] == 8

    def test_to_bytes_round_trip(self):
        burst = Burst([0, 127, 255])
        assert Burst.from_bytes(burst.to_bytes()) == burst

    @given(byte_lists)
    def test_bit_strings_round_trip(self, data):
        burst = Burst(data)
        assert Burst.from_bit_strings(burst.bit_strings()) == burst

    @given(byte_lists)
    def test_zeros_counts_zero_bits(self, data):
        burst = Burst(data)
        expected = sum(8 - bin(byte).count("1") for byte in data)
        assert burst.zeros() == expected

    @given(byte_lists)
    def test_inverted_involution(self, data):
        burst = Burst(data)
        assert burst.inverted().inverted() == burst

    @given(byte_lists)
    def test_inverted_complements_zeros(self, data):
        burst = Burst(data)
        assert burst.zeros() + burst.inverted().zeros() == 8 * len(data)


class TestPaperBurst:
    def test_length(self):
        assert len(PAPER_FIG2_BURST) == 8

    def test_first_and_last_bytes(self):
        assert PAPER_FIG2_BURST[0] == 0b10001110
        assert PAPER_FIG2_BURST[7] == 0b11000100

    def test_raw_zero_count(self):
        # Visible in Fig. 2: the raw burst has 28 zero bits.
        assert PAPER_FIG2_BURST.zeros() == 28


class TestChunking:
    def test_exact_chunks(self):
        bursts = chunk_bytes(range(8), burst_length=4)
        assert [b.data for b in bursts] == [(0, 1, 2, 3), (4, 5, 6, 7)]

    def test_padding_with_idle_high(self):
        bursts = chunk_bytes([1, 2, 3], burst_length=4)
        assert bursts[0].data == (1, 2, 3, 0xFF)

    def test_padding_custom_byte(self):
        bursts = chunk_bytes([1], burst_length=2, pad_byte=0x00)
        assert bursts[0].data == (1, 0)

    def test_invalid_burst_length(self):
        with pytest.raises(ValueError):
            chunk_bytes([1], burst_length=0)

    def test_empty_payload(self):
        assert chunk_bytes([], burst_length=4) == []

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=64),
           st.integers(min_value=1, max_value=16))
    def test_chunking_preserves_payload(self, payload, burst_length):
        bursts = chunk_bytes(payload, burst_length)
        recovered = [byte for burst in bursts for byte in burst][:len(payload)]
        assert recovered == payload
