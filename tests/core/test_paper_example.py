"""The paper's Fig. 2 worked example, asserted number by number.

These are the strongest anchors the paper text provides: the activity of
DBI DC, DBI AC and DBI OPT on the example burst, the total costs, and the
five Pareto-optimal trade-offs.
"""

import pytest

from repro.baselines import DbiAc, DbiAcDc, DbiDc, Raw
from repro.core.burst import PAPER_FIG2_BURST
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.pareto import enumerate_encodings, pareto_front, supported_points
from repro.core.trellis import solve

#: (zeros, transitions) of the five Pareto points in Fig. 2's caption row.
PAPER_PARETO = {(26, 42), (27, 28), (28, 24), (29, 23), (43, 22)}


class TestFig2Anchors:
    def test_dbi_dc_activity(self):
        encoded = DbiDc().encode(PAPER_FIG2_BURST)
        transitions, zeros = encoded.activity()
        assert (zeros, transitions) == (26, 42)

    def test_dbi_ac_activity(self):
        encoded = DbiAc().encode(PAPER_FIG2_BURST)
        transitions, zeros = encoded.activity()
        assert (zeros, transitions) == (43, 22)

    def test_acdc_equals_ac_under_idle_boundary(self):
        """Paper §II: with all lines idling high, DBI AC == DBI ACDC."""
        ac = DbiAc().encode(PAPER_FIG2_BURST)
        acdc = DbiAcDc().encode(PAPER_FIG2_BURST)
        assert ac.invert_flags == acdc.invert_flags

    def test_optimal_cost_is_52(self):
        solution = solve(PAPER_FIG2_BURST, CostModel.fixed())
        assert solution.total_cost == 52

    def test_optimal_activity_is_a_cost52_pareto_point(self):
        """The paper shows (28 zeros, 24 transitions); (29, 23) ties at
        cost 52 and is equally optimal — accept either."""
        encoded = DbiOptimal(CostModel.fixed()).encode(PAPER_FIG2_BURST)
        transitions, zeros = encoded.activity()
        assert zeros + transitions == 52
        assert (zeros, transitions) in {(28, 24), (29, 23)}

    def test_dc_and_ac_costs_from_text(self):
        """'DBI DC choose an encoding with a cost of 26+42=68 and DBI AC
        selects an encoding with a cost of 43+22=65.'"""
        model = CostModel.fixed()
        assert DbiDc().encode(PAPER_FIG2_BURST).cost(model) == 68
        assert DbiAc().encode(PAPER_FIG2_BURST).cost(model) == 65

    def test_raw_burst_zero_count(self):
        encoded = Raw().encode(PAPER_FIG2_BURST)
        assert encoded.zeros() == 28

    def test_pareto_front_matches_figure(self):
        frontier = pareto_front(enumerate_encodings(PAPER_FIG2_BURST))
        assert {(p.zeros, p.transitions) for p in frontier} == PAPER_PARETO

    def test_all_five_points_supported(self):
        """'If we vary the coefficients ... we find 5 other pareto optimal
        encoding options': every frontier point is reachable by OPT."""
        supported = {(z, t) for t, z in supported_points(PAPER_FIG2_BURST)}
        assert supported == PAPER_PARETO

    def test_neither_dc_nor_ac_reach_balanced_points(self):
        """The three balanced trade-offs are invisible to DC and AC."""
        model = CostModel.fixed()
        dc_activity = DbiDc().encode(PAPER_FIG2_BURST).activity()
        ac_activity = DbiAc().encode(PAPER_FIG2_BURST).activity()
        balanced = {(28, 24), (29, 23), (27, 28)}
        for transitions, zeros in (dc_activity, ac_activity):
            assert (zeros, transitions) not in balanced

    def test_first_byte_edge_weights(self):
        """Fig. 2 labels the start edges 8 (raw) and 10 (inverted)."""
        model = CostModel.fixed()
        from repro.core.bitops import ALL_ONES_WORD, make_word
        first = PAPER_FIG2_BURST[0]
        assert model.word_cost(ALL_ONES_WORD, make_word(first, False)) == 8
        assert model.word_cost(ALL_ONES_WORD, make_word(first, True)) == 10
