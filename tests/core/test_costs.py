"""Unit tests for cost models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.costs import CostModel, QuantizedCostModel


class TestCostModelValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel(-1.0, 1.0)
        with pytest.raises(ValueError):
            CostModel(1.0, -1.0)

    def test_both_zero_rejected(self):
        with pytest.raises(ValueError):
            CostModel(0.0, 0.0)

    def test_single_zero_allowed(self):
        assert CostModel(0.0, 1.0).alpha == 0.0
        assert CostModel(1.0, 0.0).beta == 0.0


class TestConstructors:
    def test_fixed(self):
        model = CostModel.fixed()
        assert (model.alpha, model.beta) == (1.0, 1.0)

    def test_dc_only(self):
        assert CostModel.dc_only().ac_fraction == 0.0

    def test_ac_only(self):
        assert CostModel.ac_only().ac_fraction == 1.0

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_from_ac_fraction_round_trip(self, fraction):
        model = CostModel.from_ac_fraction(fraction)
        assert model.ac_fraction == pytest.approx(fraction)
        assert model.alpha + model.beta == pytest.approx(1.0)

    def test_from_ac_fraction_bounds(self):
        with pytest.raises(ValueError):
            CostModel.from_ac_fraction(1.5)
        with pytest.raises(ValueError):
            CostModel.from_ac_fraction(-0.1)

    def test_from_energies(self):
        model = CostModel.from_energies(2e-12, 1e-12)
        assert model.ac_fraction == pytest.approx(2 / 3)


class TestCosts:
    def test_word_cost_counts_dbi_lane(self):
        model = CostModel.fixed()
        # 0x1FF -> 0x0FF: DBI lane falls (1 transition), one zero on DBI.
        assert model.word_cost(0x1FF, 0x0FF) == 2.0

    def test_word_cost_pure_dc(self):
        model = CostModel.dc_only()
        assert model.word_cost(0x1FF, 0x000) == 9.0

    def test_word_cost_pure_ac(self):
        model = CostModel.ac_only()
        assert model.word_cost(0x1FF, 0x000) == 9.0

    def test_activity_cost(self):
        model = CostModel(2.0, 3.0)
        assert model.activity_cost(5, 7) == 2.0 * 5 + 3.0 * 7

    def test_activity_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel.fixed().activity_cost(-1, 0)

    @given(st.floats(min_value=0.1, max_value=10.0),
           st.integers(min_value=0, max_value=0x1FF),
           st.integers(min_value=0, max_value=0x1FF))
    def test_scaling_scales_cost_linearly(self, factor, prev, word):
        base = CostModel(1.0, 2.0)
        scaled = base.scaled(factor)
        assert scaled.word_cost(prev, word) == pytest.approx(
            factor * base.word_cost(prev, word))

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CostModel.fixed().scaled(0.0)


class TestQuantization:
    def test_fixed_point_is_exact(self):
        quantized = QuantizedCostModel.from_cost_model(CostModel.fixed(), bits=3)
        assert quantized.ac_fraction == pytest.approx(0.5)
        assert quantized.quantization_error == pytest.approx(0.0)

    def test_three_bit_range(self):
        quantized = QuantizedCostModel.from_cost_model(
            CostModel.from_ac_fraction(0.7), bits=3)
        assert 0 <= quantized.alpha <= 7
        assert 0 <= quantized.beta <= 7

    def test_non_integer_coefficients_rejected(self):
        with pytest.raises(ValueError):
            QuantizedCostModel(1.5, 1.0, bits=3)

    def test_overflowing_coefficients_rejected(self):
        with pytest.raises(ValueError):
            QuantizedCostModel(9.0, 1.0, bits=3)

    @given(st.floats(min_value=0.02, max_value=0.98),
           st.integers(min_value=2, max_value=6))
    def test_quantization_error_bounded(self, fraction, bits):
        target = CostModel.from_ac_fraction(fraction)
        quantized = QuantizedCostModel.from_cost_model(target, bits=bits)
        # With b-bit coefficients the ratio grid spacing around 0.5 is
        # roughly 1/(2^b); allow a generous bound.
        assert quantized.quantization_error <= 1.0 / (1 << bits)

    @given(st.integers(min_value=1, max_value=6))
    def test_more_bits_never_hurt(self, bits):
        target = CostModel.from_ac_fraction(0.37)
        coarse = QuantizedCostModel.from_cost_model(target, bits=bits)
        fine = QuantizedCostModel.from_cost_model(target, bits=bits + 1)
        assert fine.quantization_error <= coarse.quantization_error + 1e-12

    def test_cost_model_quantized_shortcut(self):
        quantized = CostModel.fixed().quantized(3)
        assert isinstance(quantized, QuantizedCostModel)
        assert quantized.bits == 3
