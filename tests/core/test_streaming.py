"""Unit and property tests for the streaming optimal encoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.burst import Burst, chunk_bytes
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.streaming import (
    StreamingOptimalEncoder,
    solve_stream,
    stream_cost,
    windowed_stream_cost,
)

streams = st.lists(st.integers(min_value=0, max_value=255),
                   min_size=1, max_size=48)
models = st.floats(min_value=0.05, max_value=0.95).map(
    CostModel.from_ac_fraction)


class TestSolveStream:
    @settings(max_examples=60, deadline=None)
    @given(streams, models)
    def test_flags_achieve_reported_cost(self, data, model):
        flags, cost = solve_stream(data, model)
        assert stream_cost(data, flags, model) == pytest.approx(cost)

    @settings(max_examples=60, deadline=None)
    @given(streams, models)
    def test_joint_beats_per_burst_chained(self, data, model):
        """Joint optimisation never loses to chained per-burst optimum."""
        __, joint = solve_stream(data, model)
        scheme = DbiOptimal(model)
        chained = 0.0
        state = 0x1FF
        for burst in chunk_bytes(data, 8):
            encoded = scheme.encode(burst, prev_word=state)
            chained += encoded.cost(model) - 0.0
            state = encoded.last_word()
        # Padding bytes (0xFF) add no cost, so totals are comparable.
        assert joint <= chained + 1e-9

    def test_joint_strictly_better_sometimes(self):
        """A concrete stream where per-burst greediness leaves the bus in
        a bad state for the next burst."""
        model = CostModel.fixed()
        # Burst 1 ends with a byte whose optimal polarity flips the bus;
        # burst 2 starts with data matching the unflipped state.
        data = [0x00] * 8 + [0xFF] * 8
        __, joint = solve_stream(data, model)
        scheme = DbiOptimal(model)
        state = 0x1FF
        chained = 0.0
        for burst in chunk_bytes(data, 8):
            encoded = scheme.encode(burst, prev_word=state)
            chained += encoded.cost(model)
            state = encoded.last_word()
        assert joint <= chained

    def test_stream_cost_validation(self):
        with pytest.raises(ValueError):
            stream_cost([1, 2], [True], CostModel.fixed())


class TestStreamingEncoder:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingOptimalEncoder(CostModel.fixed(), window=0)
        with pytest.raises(ValueError):
            StreamingOptimalEncoder(CostModel.fixed(), window=4, commit=5)

    def test_default_commit_is_half_window(self):
        encoder = StreamingOptimalEncoder(CostModel.fixed(), window=8)
        assert encoder.commit == 4

    @settings(max_examples=40, deadline=None)
    @given(streams, st.integers(min_value=1, max_value=12))
    def test_emits_every_byte_exactly_once(self, data, window):
        encoder = StreamingOptimalEncoder(CostModel.fixed(), window=window)
        out = encoder.push(data) + encoder.flush()
        assert [byte for byte, __ in out] == list(data)
        assert encoder.committed_bytes == len(data)

    @settings(max_examples=40, deadline=None)
    @given(streams, st.integers(min_value=1, max_value=12))
    def test_committed_cost_is_consistent(self, data, window):
        model = CostModel.fixed()
        encoder = StreamingOptimalEncoder(model, window=window)
        out = encoder.push(data) + encoder.flush()
        flags = [flag for __, flag in out]
        assert encoder.committed_cost == pytest.approx(
            stream_cost(data, flags, model))

    def test_flush_empty(self):
        encoder = StreamingOptimalEncoder(CostModel.fixed())
        assert encoder.flush() == []

    def test_full_window_equals_joint_optimum(self):
        model = CostModel.fixed()
        data = list(range(32))
        __, optimum = solve_stream(data, model)
        cost = windowed_stream_cost(data, model, window=len(data),
                                    commit=len(data))
        assert cost == pytest.approx(optimum)

    @settings(max_examples=25, deadline=None)
    @given(streams)
    def test_window_never_beats_optimum(self, data):
        model = CostModel.fixed()
        __, optimum = solve_stream(data, model)
        for window in (1, 4, 8):
            cost = windowed_stream_cost(data, model, window=window)
            assert cost >= optimum - 1e-9

    def test_larger_windows_help_on_average(self, medium_random_bursts):
        model = CostModel.fixed()
        data = [byte for burst in medium_random_bursts[:40] for byte in burst]
        costs = [windowed_stream_cost(data, model, window=w)
                 for w in (1, 4, 16)]
        assert costs[0] >= costs[1] >= costs[2]

    def test_bus_state_tracks_last_committed_word(self):
        model = CostModel.fixed()
        encoder = StreamingOptimalEncoder(model, window=2, commit=2)
        out = encoder.push([0x00, 0x00])
        assert len(out) == 2
        from repro.core.bitops import make_word
        assert encoder.bus_state == make_word(0x00, out[-1][1])
