"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.burst import Burst, PAPER_FIG2_BURST
from repro.core.costs import CostModel


@pytest.fixture(scope="session")
def paper_burst() -> Burst:
    """The worked example of the paper's Fig. 2."""
    return PAPER_FIG2_BURST


@pytest.fixture(scope="session")
def fixed_model() -> CostModel:
    """alpha = beta = 1 (the paper's fixed-coefficient setting)."""
    return CostModel.fixed()


def _random_bursts(count: int, seed: int):
    # Imported lazily: the workload generators require NumPy, and the
    # core/baselines subtrees must stay collectable without it (the CI
    # reference-fallback leg runs them NumPy-free).
    pytest.importorskip("numpy", exc_type=ImportError)
    from repro.workloads.random_data import random_bursts

    return random_bursts(count=count, seed=seed)


@pytest.fixture(scope="session")
def small_random_bursts():
    """A small deterministic random population for fast checks."""
    return _random_bursts(count=50, seed=1234)


@pytest.fixture(scope="session")
def medium_random_bursts():
    """A mid-size deterministic random population for statistics checks."""
    return _random_bursts(count=500, seed=99)
