"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.burst import Burst, PAPER_FIG2_BURST
from repro.core.costs import CostModel


@pytest.fixture(scope="session")
def paper_burst() -> Burst:
    """The worked example of the paper's Fig. 2."""
    return PAPER_FIG2_BURST


@pytest.fixture(scope="session")
def fixed_model() -> CostModel:
    """alpha = beta = 1 (the paper's fixed-coefficient setting)."""
    return CostModel.fixed()


def _random_bursts(count: int, seed: int):
    # RandomPopulation reproduces workloads.random_data.random_bursts
    # byte-for-byte when NumPy is installed and substitutes a
    # deterministic pure-Python stream when it is not, so every suite
    # using these fixtures stays runnable on the CI NumPy-free leg.
    from repro.workloads.population import RandomPopulation

    return RandomPopulation(count=count, seed=seed).bursts()


@pytest.fixture(scope="session")
def small_random_bursts():
    """A small deterministic random population for fast checks."""
    return _random_bursts(count=50, seed=1234)


@pytest.fixture(scope="session")
def medium_random_bursts():
    """A mid-size deterministic random population for statistics checks."""
    return _random_bursts(count=500, seed=99)
