"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fridge"])


class TestEncode:
    def test_default_burst_all_schemes(self, capsys):
        code, out, __ = run_cli(capsys, "encode")
        assert code == 0
        assert "dbi-opt" in out
        assert "10001110" in out  # the paper's default burst

    def test_bits_input(self, capsys):
        code, out, __ = run_cli(capsys, "encode", "--bits", "00000000",
                                "--scheme", "dbi-dc")
        assert code == 0
        assert "| dbi-dc |" in out
        assert "I" in out  # the zero byte is inverted

    def test_hex_input(self, capsys):
        code, out, __ = run_cli(capsys, "encode", "--hex", "8e", "86",
                                "--scheme", "dbi-opt")
        assert code == 0
        assert "10001110 10000110" in out

    def test_custom_coefficients(self, capsys):
        code, out, __ = run_cli(capsys, "encode", "--hex", "0f",
                                "--alpha", "0", "--beta", "2",
                                "--scheme", "dbi-dc")
        assert code == 0
        assert "b=2" in out


class TestSchemes:
    def test_lists_all(self, capsys):
        code, out, __ = run_cli(capsys, "schemes")
        assert code == 0
        from repro.core.schemes import available_schemes
        for name in available_schemes():
            assert name in out


class TestPareto:
    def test_default_burst(self, capsys):
        code, out, __ = run_cli(capsys, "pareto")
        assert code == 0
        assert "| transitions | zeros |" in out

    def test_too_long_burst(self, capsys):
        code, __, err = run_cli(capsys, "pareto", "--hex", *(["00"] * 17))
        assert code == 2
        assert "at most 16" in err


class TestSweeps:
    def test_sweep_alpha_small(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-alpha", "--samples", "60",
                                "--points", "5")
        assert code == 0
        assert "AC/DC crossover" in out
        assert "OPT peak gain" in out

    def test_sweep_alpha_plot(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-alpha", "--samples", "40",
                                "--points", "3", "--plot")
        assert code == 0
        assert "o=raw" in out

    def test_sweep_rate_small(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-rate", "--samples", "40",
                                "--max-gbps", "4")
        assert code == 0
        assert "Gbps" in out

    def test_sweep_rate_pod12(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-rate", "--samples", "40",
                                "--max-gbps", "2", "--interface", "pod12")
        assert code == 0

    def test_sweep_load_small(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-load", "--samples", "40",
                                "--max-gbps", "4", "--loads-pf", "3", "8")
        assert code == 0
        assert "best saving" in out


class TestCtrl:
    def test_synthetic_replay(self, capsys):
        code, out, __ = run_cli(capsys, "ctrl", "--bursts", "200",
                                "--channels", "2", "--lanes", "2")
        assert code == 0
        assert "pod135@12Gbps/3pF" in out
        assert "| channel |" in out and "| total |" in out
        assert "pJ/byte" in out

    def test_named_trace(self, capsys):
        pytest.importorskip("numpy")
        code, out, __ = run_cli(capsys, "ctrl", "--trace", "text",
                                "--bytes", "4096", "--interface", "pod12")
        assert code == 0
        assert "pod12" in out
        assert "4096 bytes" in out

    def test_trace_file(self, capsys, tmp_path):
        path = tmp_path / "dump.bin"
        path.write_bytes(bytes(range(256)) * 4)
        code, out, __ = run_cli(capsys, "ctrl", "--trace", str(path),
                                "--interface", "sstl15", "--lanes", "1")
        assert code == 0
        assert "sstl15" in out

    def test_unknown_trace(self, capsys):
        code, __, err = run_cli(capsys, "ctrl", "--trace", "quantumfoam")
        assert code == 2
        assert "unknown trace" in err or "NumPy" in err

    def test_empty_trace_file(self, capsys, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        code, __, err = run_cli(capsys, "ctrl", "--trace", str(path))
        assert code == 2
        assert "empty" in err

    def test_multi_interface_shares_replays(self, capsys):
        code, out, __ = run_cli(capsys, "ctrl", "--bursts", "100",
                                "--interface", "pod135", "sstl15", "lvstl11")
        assert code == 0
        # SSTL and LVSTL collapse to one transition-only replay.
        assert "replays=2" in out
        for name in ("pod135", "sstl15", "lvstl11"):
            assert name in out

    def test_backend_parity_on_cli_totals(self, capsys):
        outputs = []
        for backend in ("reference", "auto"):
            code, out, __ = run_cli(capsys, "ctrl", "--bursts", "100",
                                    "--backend", backend)
            assert code == 0
            outputs.append([line for line in out.splitlines()
                            if line.startswith("|")])
        assert outputs[0] == outputs[1]

    def test_jobs_flag(self, capsys):
        code, out, __ = run_cli(capsys, "ctrl", "--bursts", "100",
                                "--interface", "pod135", "pod12",
                                "--jobs", "2")
        assert code == 0

    def test_trace_and_bursts_conflict(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "ctrl", "--trace", "text", "--bursts", "10")

    def test_rejects_unknown_interface(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "ctrl", "--interface", "ttl")


class TestTable1:
    def test_table1_prints_rows(self, capsys):
        code, out, __ = run_cli(capsys, "table1")
        assert code == 0
        assert "DBI OPT (Fixed Coeff.)" in out
        assert "Energy/Burst" in out


class TestEngineFlags:
    """--backend / --jobs / --out / --from-artifact on the sweep commands."""

    def test_backend_reference(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-alpha", "--samples", "40",
                                "--points", "3", "--backend", "reference")
        assert code == 0
        assert "AC/DC crossover" in out

    def test_backend_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "sweep-alpha", "--backend", "quantum")

    def test_jobs_parallel(self, capsys):
        code_serial, out_serial, __ = run_cli(
            capsys, "sweep-alpha", "--samples", "40", "--points", "3")
        code_parallel, out_parallel, __ = run_cli(
            capsys, "sweep-alpha", "--samples", "40", "--points", "3",
            "--jobs", "2")
        assert code_serial == code_parallel == 0
        assert out_parallel == out_serial

    def test_encode_backend_flag(self, capsys):
        code, out, __ = run_cli(capsys, "encode", "--hex", "8e",
                                "--scheme", "dbi-opt",
                                "--backend", "reference")
        assert code == 0
        assert "dbi-opt" in out

    def test_out_then_from_artifact(self, capsys, tmp_path):
        path = tmp_path / "alpha.json"
        code, out_run, __ = run_cli(capsys, "sweep-alpha", "--samples", "40",
                                    "--points", "3", "--out", str(path))
        assert code == 0
        assert path.exists()
        assert "artifact written" in out_run
        code, out_loaded, __ = run_cli(capsys, "sweep-alpha",
                                       "--from-artifact", str(path))
        assert code == 0
        # identical tables, modulo the provenance footer
        table = [line for line in out_run.splitlines()
                 if line.startswith("|")]
        table_loaded = [line for line in out_loaded.splitlines()
                        if line.startswith("|")]
        assert table_loaded == table
        assert "loaded from" in out_loaded

    def test_rate_and_load_artifacts(self, capsys, tmp_path):
        rate_path = tmp_path / "rate.json"
        code, __, ___ = run_cli(capsys, "sweep-rate", "--samples", "40",
                                "--max-gbps", "2", "--out", str(rate_path))
        assert code == 0
        code, out, __ = run_cli(capsys, "sweep-rate",
                                "--from-artifact", str(rate_path))
        assert code == 0
        assert "Gbps" in out

        load_path = tmp_path / "load.json"
        code, __, ___ = run_cli(capsys, "sweep-load", "--samples", "40",
                                "--max-gbps", "2", "--loads-pf", "3",
                                "--out", str(load_path))
        assert code == 0
        code, out, __ = run_cli(capsys, "sweep-load",
                                "--from-artifact", str(load_path))
        assert code == 0
        assert "best saving" in out

    def test_from_artifact_missing_file(self, capsys, tmp_path):
        code, __, err = run_cli(capsys, "sweep-alpha",
                                "--from-artifact", str(tmp_path / "no.json"))
        assert code == 2
        assert "cannot load artifact" in err

    def test_from_artifact_bad_payload(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        code, __, err = run_cli(capsys, "sweep-alpha",
                                "--from-artifact", str(path))
        assert code == 2
        assert "cannot load artifact" in err

    def test_from_artifact_non_object_payload(self, capsys, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        code, __, err = run_cli(capsys, "sweep-alpha",
                                "--from-artifact", str(path))
        assert code == 2
        assert "cannot load artifact" in err

    def test_from_artifact_warns_on_ignored_flags(self, capsys, tmp_path):
        path = tmp_path / "alpha.json"
        code, __, ___ = run_cli(capsys, "sweep-alpha", "--samples", "40",
                                "--points", "3", "--out", str(path))
        assert code == 0
        code, __, err = run_cli(capsys, "sweep-alpha", "--samples", "999",
                                "--jobs", "2", "--from-artifact", str(path))
        assert code == 0
        assert "ignored" in err and "--samples" in err and "--jobs" in err

    def test_out_directory_validated_up_front(self, capsys, tmp_path):
        code, __, err = run_cli(capsys, "sweep-alpha", "--samples", "40",
                                "--points", "3", "--out",
                                str(tmp_path / "missing" / "fig.json"))
        assert code == 2
        assert "does not exist" in err

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "sweep-alpha", "--jobs", "0")

    def test_from_artifact_figure_mismatch(self, capsys, tmp_path):
        path = tmp_path / "alpha.json"
        code, __, ___ = run_cli(capsys, "sweep-alpha", "--samples", "40",
                                "--points", "3", "--out", str(path))
        assert code == 0
        code, __, err = run_cli(capsys, "sweep-rate",
                                "--from-artifact", str(path))
        assert code == 2
        assert "expected 'rate'" in err


class TestFaultsCommand:
    def test_default_table(self, capsys):
        code, out, __ = run_cli(capsys, "faults", "--samples", "60",
                                "--rates", "0.01", "0.1")
        assert code == 0
        assert "| scheme | fault rate |" in out
        assert "dbi-opt" in out
        assert "# backend=" in out

    def test_patterns_population(self, capsys):
        code, out, __ = run_cli(capsys, "faults", "--patterns",
                                "checkerboard", "all_zeros", "--samples",
                                "10", "--schemes", "dbi-dc", "--rates",
                                "0.05")
        assert code == 0
        assert "| dbi-dc |" in out

    def test_word_impl_and_backend_parity(self, capsys):
        code_a, out_a, __ = run_cli(capsys, "faults", "--samples", "40",
                                    "--rates", "0.05", "--word-impl", "int")
        code_b, out_b, __ = run_cli(capsys, "faults", "--samples", "40",
                                    "--rates", "0.05", "--backend",
                                    "reference")
        assert code_a == code_b == 0
        table = lambda text: [line for line in text.splitlines()
                              if line.startswith("|")]
        assert table(out_a) == table(out_b)

    def test_out_artifact(self, capsys, tmp_path):
        path = tmp_path / "faults.json"
        code, out, __ = run_cli(capsys, "faults", "--samples", "40",
                                "--rates", "0.05", "--out", str(path))
        assert code == 0
        assert f"artifact written to {path}" in out
        from repro.sim.experiments import load_fault_artifact
        assert load_fault_artifact(path).spec.rates == (0.05,)

    def test_out_directory_validated(self, capsys, tmp_path):
        code, __, err = run_cli(capsys, "faults", "--samples", "10",
                                "--out", str(tmp_path / "nope" / "f.json"))
        assert code == 2
        assert "does not exist" in err


class TestGranularityCommand:
    def test_default_table(self, capsys):
        code, out, __ = run_cli(capsys, "granularity", "--samples", "60")
        assert code == 0
        assert "| group size |" in out
        # One row per valid group size plus the header row.
        assert sum(line.startswith("| ") for line in out.splitlines()) == 5

    def test_group_size_choices_enforced(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "granularity", "--group-sizes", "3")

    def test_patterns_and_coefficients(self, capsys):
        code, out, __ = run_cli(capsys, "granularity", "--patterns",
                                "--alpha", "2", "--beta", "1",
                                "--group-sizes", "4", "8")
        assert code == 0
        assert "cost (a=2, b=1)" in out

    def test_out_artifact(self, capsys, tmp_path):
        path = tmp_path / "granularity.json"
        code, out, __ = run_cli(capsys, "granularity", "--samples", "40",
                                "--out", str(path))
        assert code == 0
        from repro.sim.experiments import load_granularity_artifact
        loaded = load_granularity_artifact(path)
        assert [row["group_size"] for row in loaded.rows] == [1, 2, 4, 8]

class TestSsoCommand:
    def test_default_table_ranked_worst_first(self, capsys):
        code, out, __ = run_cli(capsys, "sso", "--samples", "60",
                                "--interfaces", "pod135")
        assert code == 0
        assert "| scheme | interface | max SSO |" in out
        assert "# backend=" in out
        body = [line for line in out.splitlines()
                if line.startswith("| ") and "max SSO" not in line]
        maxima = [int(line.split("|")[3]) for line in body]
        assert maxima == sorted(maxima, reverse=True)

    def test_chained_and_word_impl_parity(self, capsys):
        base = ("sso", "--samples", "40", "--schemes", "raw", "dbi-dc",
                "--interfaces", "pod135", "--chained")
        code_a, out_a, __ = run_cli(capsys, *base, "--word-impl", "int")
        code_b, out_b, __ = run_cli(capsys, *base, "--backend", "reference")
        assert code_a == code_b == 0
        table = lambda text: [line for line in text.splitlines()
                              if line.startswith("|")]
        assert table(out_a) == table(out_b)
        assert "chained boundary" in out_a

    def test_patterns_population(self, capsys):
        code, out, __ = run_cli(capsys, "sso", "--patterns", "checkerboard",
                                "--samples", "10", "--schemes", "dbi-ac",
                                "--interfaces", "lvstl11")
        assert code == 0
        assert "| dbi-ac | lvstl11 |" in out

    def test_out_artifact(self, capsys, tmp_path):
        path = tmp_path / "sso.json"
        code, out, __ = run_cli(capsys, "sso", "--samples", "40",
                                "--interfaces", "pod135", "lvstl11",
                                "--out", str(path))
        assert code == 0
        assert f"artifact written to {path}" in out
        from repro.sim.experiments import load_sso_artifact
        loaded = load_sso_artifact(path)
        assert loaded.spec.interfaces == ("pod135", "lvstl11")

    def test_interface_choices_enforced(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "sso", "--interfaces", "martian")

    def test_accepts_cache_dir(self, capsys, tmp_path):
        code, out, __ = run_cli(capsys, "sso", "--samples", "30",
                                "--schemes", "raw", "--interfaces", "pod135",
                                "--cache-dir", str(tmp_path / "cache"))
        assert code == 0
        code2, out2, __ = run_cli(capsys, "sso", "--samples", "30",
                                  "--schemes", "raw", "--interfaces",
                                  "pod135", "--cache-dir",
                                  str(tmp_path / "cache"))
        assert code2 == 0
        assert "cache_hits=1" in out2


class TestCtrlArtifacts:
    def test_out_then_from_artifact(self, capsys, tmp_path):
        path = tmp_path / "replay.json"
        code, direct, __ = run_cli(capsys, "ctrl", "--bursts", "120",
                                   "--channels", "2", "--lanes", "2",
                                   "--out", str(path))
        assert code == 0
        assert f"artifact written to {path}" in direct

        code, loaded, __ = run_cli(capsys, "ctrl", "--from-artifact",
                                   str(path))
        assert code == 0
        assert f"loaded from {path}" in loaded
        # The rendered tables are identical to the simulating run's.
        direct_rows = [line for line in direct.splitlines()
                       if line.startswith("|") or line.startswith("##")]
        loaded_rows = [line for line in loaded.splitlines()
                       if line.startswith("|") or line.startswith("##")]
        assert direct_rows == loaded_rows

    def test_from_artifact_bad_file(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{\"format\": \"nope\"}\n")
        code, __, err = run_cli(capsys, "ctrl", "--from-artifact", str(path))
        assert code == 2
        assert "cannot load artifact" in err

    def test_from_artifact_rejects_sweep_kind(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        code, __, err = run_cli(capsys, "sweep-alpha", "--samples", "30",
                                "--points", "3", "--out", str(path))
        assert code == 0
        code, __, err = run_cli(capsys, "ctrl", "--from-artifact", str(path))
        assert code == 2
        assert "cannot load artifact" in err

    def test_out_directory_validated(self, capsys, tmp_path):
        code, __, err = run_cli(capsys, "ctrl", "--bursts", "10",
                                "--out", str(tmp_path / "nope" / "r.json"))
        assert code == 2
        assert "does not exist" in err


class TestCacheDirFlag:
    def test_ctrl_warm_run_hits_disk_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, cold, __ = run_cli(capsys, "ctrl", "--bursts", "100",
                                 "--cache-dir", cache_dir)
        assert code == 0
        assert "replays=1" in cold
        code, warm, __ = run_cli(capsys, "ctrl", "--bursts", "100",
                                 "--cache-dir", cache_dir)
        assert code == 0
        assert "replays=0" in warm
        assert "cache_hits=1" in warm
        cold_rows = [line for line in cold.splitlines()
                     if line.startswith("|")]
        warm_rows = [line for line in warm.splitlines()
                     if line.startswith("|")]
        assert cold_rows == warm_rows

    def test_sweep_warm_run_matches_cold(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ("sweep-alpha", "--samples", "40", "--points", "3",
                "--cache-dir", cache_dir)
        code, cold, __ = run_cli(capsys, *argv)
        assert code == 0
        code, warm, __ = run_cli(capsys, *argv)
        assert code == 0
        assert [line for line in cold.splitlines() if line.startswith("|")] \
            == [line for line in warm.splitlines() if line.startswith("|")]

    def test_faults_accepts_cache_dir(self, capsys, tmp_path):
        code, out, __ = run_cli(capsys, "faults", "--samples", "30",
                                "--rates", "0.05", "--cache-dir",
                                str(tmp_path / "cache"))
        assert code == 0
        import os
        assert os.listdir(tmp_path / "cache")  # entries were persisted

    def test_granularity_accepts_cache_dir(self, capsys, tmp_path):
        code, out, __ = run_cli(capsys, "granularity", "--samples", "30",
                                "--group-sizes", "4", "--cache-dir",
                                str(tmp_path / "cache"))
        assert code == 0


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7351
        assert args.cache_dir is None
        assert args.artifact_dir is None

    def test_flags(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--cache-dir", "/tmp/c", "--artifact-dir", "/tmp/a",
             "--backend", "reference"])
        assert args.port == 0
        assert args.cache_dir == "/tmp/c"
        assert args.artifact_dir == "/tmp/a"
        assert args.backend == "reference"

    def test_serve_and_exit(self, capsys, monkeypatch):
        """`repro serve` on an ephemeral port announces its address."""
        from repro.service import daemon as daemon_module

        started = {}

        class _Recorder(daemon_module.ExperimentDaemon):
            def serve_forever(self):
                started["address"] = self.address
                raise KeyboardInterrupt

            def shutdown(self):
                # BaseServer.shutdown() would wait for a serve loop that
                # never started; closing the socket is all that's left.
                self._server.server_close()

        monkeypatch.setattr(daemon_module, "ExperimentDaemon", _Recorder)
        code, out, __ = run_cli(capsys, "serve", "--port", "0")
        assert code == 0
        host, port = started["address"]
        assert f"listening on {host}:{port}" in out


class TestCtrlStreaming:
    """The streaming/adaptive additions to `repro ctrl`."""

    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "dump.bin"
        path.write_bytes(bytes((i * 37) & 0xFF for i in range(20000)))
        return str(path)

    def test_trace_file_streams_in_chunks(self, capsys, trace_path):
        code, out, __ = run_cli(capsys, "ctrl", "--trace-file", trace_path,
                                "--chunk-bytes", "4096")
        assert code == 0
        assert "streamed in 4096-byte chunks" in out
        assert "20000 bytes" in out

    def test_trace_path_also_streams(self, capsys, trace_path):
        """--trace with an existing file routes through the source too."""
        code, out, __ = run_cli(capsys, "ctrl", "--trace", trace_path)
        assert code == 0
        assert "streamed in" in out

    def test_streamed_equals_inline_bursts(self, capsys, tmp_path):
        """A file of the synthetic payload prices identically to --bursts."""
        from repro.workloads.population import RandomPopulation

        payload = b"".join(bytes(burst.data) for burst in
                           RandomPopulation(count=100, seed=0x0DB1))
        path = tmp_path / "same.bin"
        path.write_bytes(payload)
        __, inline, ___ = run_cli(capsys, "ctrl", "--bursts", "100")
        __, streamed, ___ = run_cli(capsys, "ctrl", "--trace-file",
                                    str(path), "--chunk-bytes", "512")
        table = [line for line in inline.splitlines()
                 if line.startswith("|")]
        assert table == [line for line in streamed.splitlines()
                         if line.startswith("|")]

    def test_bytes_caps_the_stream(self, capsys, trace_path):
        code, out, __ = run_cli(capsys, "ctrl", "--trace-file", trace_path,
                                "--bytes", "8192")
        assert code == 0
        assert "8192 bytes" in out

    def test_schedule_renders_segments(self, capsys, trace_path):
        code, out, __ = run_cli(capsys, "ctrl", "--trace-file", trace_path,
                                "--schedule", "pod135@12", "pod12@8:100")
        assert code == 0
        assert "(schedule, per segment)" in out
        assert "| pod135@12Gbps/3pF |" in out
        assert "| pod12@8Gbps/3pF |" in out

    def test_track_renders_segments(self, capsys, trace_path):
        code, out, __ = run_cli(capsys, "ctrl", "--trace-file", trace_path,
                                "--track", "pod135@12", "pod12@8",
                                "--chunk-bytes", "2048")
        assert code == 0
        assert "(tracking, per segment)" in out

    def test_schedule_artifact_round_trip(self, capsys, tmp_path,
                                          trace_path):
        out_path = tmp_path / "replay.json"
        code, direct, __ = run_cli(capsys, "ctrl", "--trace-file",
                                   trace_path, "--schedule", "pod135@12",
                                   "pod12@8:100", "--out", str(out_path))
        assert code == 0
        code, loaded, __ = run_cli(capsys, "ctrl", "--from-artifact",
                                   str(out_path))
        assert code == 0
        assert ([line for line in direct.splitlines()
                 if line.startswith("|")]
                == [line for line in loaded.splitlines()
                    if line.startswith("|")])

    def test_schedule_missing_start_is_an_error(self, capsys):
        code, __, err = run_cli(capsys, "ctrl", "--bursts", "50",
                                "--schedule", "pod135@12", "pod12@8")
        assert code == 2
        assert ":START" in err

    def test_schedule_bad_interface(self, capsys):
        code, __, err = run_cli(capsys, "ctrl", "--bursts", "50",
                                "--schedule", "ttl@12")
        assert code == 2

    def test_track_rejects_start_markers(self, capsys):
        code, __, err = run_cli(capsys, "ctrl", "--bursts", "50",
                                "--track", "pod135@12", "pod12@8:100")
        assert code == 2
        assert "--schedule" in err

    def test_schedule_and_track_conflict(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "ctrl", "--bursts", "50",
                    "--schedule", "pod135@12",
                    "--track", "pod135@12", "pod12@8")

    def test_missing_trace_file(self, capsys):
        code, __, err = run_cli(capsys, "ctrl", "--trace-file",
                                "/no/such/trace.bin")
        assert code == 2
        assert "trace file" in err
