"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fridge"])


class TestEncode:
    def test_default_burst_all_schemes(self, capsys):
        code, out, __ = run_cli(capsys, "encode")
        assert code == 0
        assert "dbi-opt" in out
        assert "10001110" in out  # the paper's default burst

    def test_bits_input(self, capsys):
        code, out, __ = run_cli(capsys, "encode", "--bits", "00000000",
                                "--scheme", "dbi-dc")
        assert code == 0
        assert "| dbi-dc |" in out
        assert "I" in out  # the zero byte is inverted

    def test_hex_input(self, capsys):
        code, out, __ = run_cli(capsys, "encode", "--hex", "8e", "86",
                                "--scheme", "dbi-opt")
        assert code == 0
        assert "10001110 10000110" in out

    def test_custom_coefficients(self, capsys):
        code, out, __ = run_cli(capsys, "encode", "--hex", "0f",
                                "--alpha", "0", "--beta", "2",
                                "--scheme", "dbi-dc")
        assert code == 0
        assert "b=2" in out


class TestSchemes:
    def test_lists_all(self, capsys):
        code, out, __ = run_cli(capsys, "schemes")
        assert code == 0
        from repro.core.schemes import available_schemes
        for name in available_schemes():
            assert name in out


class TestPareto:
    def test_default_burst(self, capsys):
        code, out, __ = run_cli(capsys, "pareto")
        assert code == 0
        assert "| transitions | zeros |" in out

    def test_too_long_burst(self, capsys):
        code, __, err = run_cli(capsys, "pareto", "--hex", *(["00"] * 17))
        assert code == 2
        assert "at most 16" in err


class TestSweeps:
    def test_sweep_alpha_small(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-alpha", "--samples", "60",
                                "--points", "5")
        assert code == 0
        assert "AC/DC crossover" in out
        assert "OPT peak gain" in out

    def test_sweep_alpha_plot(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-alpha", "--samples", "40",
                                "--points", "3", "--plot")
        assert code == 0
        assert "o=raw" in out

    def test_sweep_rate_small(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-rate", "--samples", "40",
                                "--max-gbps", "4")
        assert code == 0
        assert "Gbps" in out

    def test_sweep_rate_pod12(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-rate", "--samples", "40",
                                "--max-gbps", "2", "--interface", "pod12")
        assert code == 0

    def test_sweep_load_small(self, capsys):
        code, out, __ = run_cli(capsys, "sweep-load", "--samples", "40",
                                "--max-gbps", "4", "--loads-pf", "3", "8")
        assert code == 0
        assert "best saving" in out


class TestTable1:
    def test_table1_prints_rows(self, capsys):
        code, out, __ = run_cli(capsys, "table1")
        assert code == 0
        assert "DBI OPT (Fixed Coeff.)" in out
        assert "Energy/Burst" in out
