"""SSO-tally throughput — the word-parallel phy layer's acceptance gate.

Tallies the per-beat switching statistics of ``REPRO_BENCH_SSO_BURSTS``
(default 10 000) DBI-OPT encoded bursts on both engines:

* **reference** — :func:`repro.analysis.sso.sso_of_scheme`: one Python
  XOR + popcount per beat (timed on a fraction of the workload and
  extrapolated linearly — it is linear in beats by construction);
* **word-parallel** — :func:`sso_of_scheme_batch`: one
  ``batch_flags`` encode, transition words packed into bit planes, the
  histogram read off carry-save counter planes with popcounts, under
  both word implementations (``uint64`` NumPy lanes and pure-Python big
  ints).

The gate requires the ``uint64`` word implementation (the auto pick
whenever NumPy is present, as on this CI job) to be **>= 10x faster**,
with bit-identical statistics on the parity prefix; the pure-int row is
reported ungated — it is the no-NumPy fallback, not the production
path.  A batched :class:`repro.phy.bus.MemoryBus` write row is reported
for context (the same word-parallel layer driving per-wire counters).

Every run persists its measurements to ``BENCH_phy_sso.json`` (override
the directory with ``REPRO_BENCH_ARTIFACT_DIR``), uploaded by CI's
``benchmark-trajectory`` job.
"""

import json
import os
import pathlib
import time

import pytest

from conftest import emit

from repro.analysis.sso import sso_of_scheme, sso_of_scheme_batch
from repro.core.schemes import get_scheme
from repro.phy.bus import MemoryBus
from repro.workloads.population import RandomPopulation

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - benches are skipped without NumPy
    HAVE_NUMPY = False

#: Workload size of the gate.
BENCH_BURSTS = int(os.environ.get("REPRO_BENCH_SSO_BURSTS", "10000"))

#: Required wall-clock advantage of the gated (auto) word implementation.
SPEEDUP_FLOOR = 10.0

#: The reference is timed on 1/N of the workload and extrapolated.
REFERENCE_FRACTION = 10

#: Both paths are timed best-of-N so one scheduler hiccup cannot flip
#: the gate (the standard guard for a wall-clock ratio assertion).
TIMING_REPS = 3

ARTIFACT_NAME = "BENCH_phy_sso.json"


def _best_of(reps, fn):
    """Minimum wall-clock seconds over *reps* calls of *fn*."""
    return min(_timed(fn) for _ in range(reps))


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _write_artifact(payload):
    directory = pathlib.Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    path = directory / ARTIFACT_NAME
    payload = {"schema": "repro.bench/phy_sso/1", **payload}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="the gated word implementation requires NumPy")
def test_sso_throughput_gate():
    bursts = RandomPopulation(count=BENCH_BURSTS, seed=0x0DB1).bursts()
    scheme = get_scheme("dbi-opt")
    prefix = bursts[:BENCH_BURSTS // REFERENCE_FRACTION]

    reference_stats = sso_of_scheme(scheme, prefix)
    t_reference = REFERENCE_FRACTION * _best_of(
        TIMING_REPS, lambda: sso_of_scheme(scheme, prefix))

    # Bit-identity (histogram, max, total) on the parity prefix.
    assert sso_of_scheme_batch(scheme, prefix) == reference_stats

    rows = []
    for word_impl, gated in (("uint64", True), ("int", False)):
        stats = sso_of_scheme_batch(scheme, bursts, word_impl=word_impl)
        elapsed = _best_of(
            TIMING_REPS,
            lambda: sso_of_scheme_batch(scheme, bursts, word_impl=word_impl))
        assert stats.beats == sum(len(burst) for burst in bursts)
        rows.append({
            "word_impl": word_impl,
            "gated": gated,
            "batch_s": round(elapsed, 4),
            "speedup": round(t_reference / elapsed, 1),
            "beats_per_second": round(stats.beats / elapsed),
            "max_switching": stats.max_switching,
            "mean_switching": round(stats.mean_switching, 4),
        })

    # Context row: the same word-parallel layer behind MemoryBus.write.
    payload = bytes(byte for burst in bursts for byte in burst)
    bus = MemoryBus(lambda: get_scheme("dbi-opt"), byte_lanes=4,
                    burst_length=8, backend="vector")
    t_bus = _best_of(TIMING_REPS, lambda: bus.write(payload))

    path = _write_artifact({
        "n_bursts": BENCH_BURSTS,
        "beats": reference_stats.beats * REFERENCE_FRACTION,
        "speedup_floor": SPEEDUP_FLOOR,
        "reference_s": round(t_reference, 4),
        "reference_extrapolated": True,
        "tallies": rows,
        "bus_write": {
            "payload_bytes": len(payload),
            "byte_lanes": 4,
            "elapsed_s": round(t_bus, 4),
        },
    })

    lines = [
        f"| {row['word_impl']} | {row['batch_s']:.3f}s "
        f"({row['speedup']:.0f}x, {row['beats_per_second']:,} beats/s) "
        f"| {'GATED >= ' + str(SPEEDUP_FLOOR) + 'x' if row['gated'] else 'reported'} |"
        for row in rows
    ]
    emit(f"word-parallel SSO tally at {BENCH_BURSTS} bursts "
         f"(artifact: {path})",
         f"reference {t_reference:.2f}s* \n" + "\n".join(lines)
         + f"\nbatched MemoryBus.write of {len(payload):,} bytes: "
         f"{t_bus:.3f}s"
         + "\n(* = reference time extrapolated from "
         f"1/{REFERENCE_FRACTION} of the workload)")

    for row in rows:
        if row["gated"]:
            assert row["speedup"] >= SPEEDUP_FLOOR, row
