"""Gate-level activity throughput — the bit-parallel engine's acceptance gate.

Times :meth:`Netlist.simulate_activity` three ways over the same
10 000-vector random-burst workload:

* **reference** — the scalar per-vector, per-gate interpreter;
* **int** — the bit-parallel compiled engine packing vectors into
  arbitrary-width Python integers (no NumPy involved);
* **uint64** — the same program over NumPy ``uint64`` lane arrays.

The gate requires the *pure-Python* bit-parallel path alone to be
**>= 20x faster** than the scalar interpreter on the Fig. 5
fixed-coefficient OPT encoder at ``REPRO_BENCH_ACTIVITY_VECTORS``
vectors (default 10 000), with bit-identical toggle tallies.  The NumPy
path is reported (and sanity-gated at the same floor) on top.

Every run persists its measurements to ``BENCH_hw_activity.json``
(override the directory with ``REPRO_BENCH_ARTIFACT_DIR``) so CI keeps a
perf trajectory of the gate-level layer.
"""

import json
import os
import pathlib
import time

from conftest import emit

from repro.hw.bitsim import compile_netlist
from repro.hw.encoders import build_dc_encoder, build_opt_encoder
from repro.hw.netlist import Netlist
from repro.workloads.population import RandomPopulation

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - benches are skipped without NumPy
    HAVE_NUMPY = False

#: Workload size of the gate (Table I's default population is 10x this;
#: the scalar reference makes the full 100k unaffordable to *time*).
BENCH_VECTORS = int(os.environ.get("REPRO_BENCH_ACTIVITY_VECTORS", "10000"))

#: Required wall-clock advantage of the pure-Python bit-parallel path
#: over the scalar interpreter.
SPEEDUP_FLOOR = 20.0

#: The scalar interpreter is timed on this fraction of the workload for
#: the large OPT netlist and extrapolated linearly (it is linear in
#: vectors by construction); the small DC netlist is timed in full.
OPT_REFERENCE_FRACTION = 10

ARTIFACT_NAME = "BENCH_hw_activity.json"


def _vectors(count: int):
    from repro.hw.activity import vectors_from_bursts

    population = RandomPopulation(count=count, seed=0x0DB1)
    return vectors_from_bursts(population.bursts())


def _time(function):
    start = time.perf_counter()
    result = function()
    return time.perf_counter() - start, result


def _measure(netlist: Netlist, vectors, reference_fraction: int = 1):
    """Wall-clock one design across all engines; returns a result row."""
    compiled = compile_netlist(netlist)
    reference_vectors = vectors[:len(vectors) // reference_fraction]
    t_reference, reference = _time(
        lambda: netlist.simulate_activity(iter(reference_vectors),
                                          backend="reference"))
    t_reference *= reference_fraction
    t_int, report_int = _time(
        lambda: compiled.simulate_activity(iter(vectors), word_impl="int"))
    # Bit-identity is checked on exactly the vectors the scalar engine
    # simulated: the timed run itself unless the reference was
    # subsampled for timing.
    if reference_fraction > 1:
        parity = compiled.simulate_activity(iter(reference_vectors),
                                            word_impl="int")
    else:
        parity = report_int
    assert parity.gate_toggles == reference.gate_toggles
    row = {
        "design": netlist.name,
        "n_gates": netlist.n_gates,
        "n_vectors": len(vectors),
        "reference_s": round(t_reference, 4),
        "reference_extrapolated": reference_fraction > 1,
        "int_s": round(t_int, 4),
        "speedup_int": round(t_reference / t_int, 1),
    }
    if HAVE_NUMPY:
        t_u64, report_u64 = _time(
            lambda: compiled.simulate_activity(iter(vectors),
                                               word_impl="uint64"))
        assert report_u64.gate_toggles == report_int.gate_toggles
        row["uint64_s"] = round(t_u64, 4)
        row["speedup_uint64"] = round(t_reference / t_u64, 1)
    return row


def _write_artifact(rows):
    directory = pathlib.Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    path = directory / ARTIFACT_NAME
    payload = {
        "schema": "repro.bench/hw_activity/1",
        "n_vectors": BENCH_VECTORS,
        "speedup_floor": SPEEDUP_FLOOR,
        "numpy": HAVE_NUMPY,
        "designs": rows,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_activity_throughput_gate():
    vectors = _vectors(BENCH_VECTORS)
    dc_row = _measure(build_dc_encoder(8), vectors)
    opt_row = _measure(build_opt_encoder(8), vectors,
                       reference_fraction=OPT_REFERENCE_FRACTION)
    rows = [dc_row, opt_row]
    path = _write_artifact(rows)

    lines = [
        f"| {row['design']} | {row['n_gates']} gates "
        f"| ref {row['reference_s']:.2f}s"
        f"{'*' if row['reference_extrapolated'] else ''} "
        f"| int {row['int_s']:.3f}s ({row['speedup_int']:.0f}x) "
        + (f"| uint64 {row['uint64_s']:.3f}s "
           f"({row['speedup_uint64']:.0f}x) |" if HAVE_NUMPY else "|")
        for row in rows
    ]
    emit(f"gate-level activity throughput at {BENCH_VECTORS} vectors "
         f"(artifact: {path})", "\n".join(lines)
         + "\n(* = scalar time extrapolated from "
         f"1/{OPT_REFERENCE_FRACTION} of the workload)")

    # The acceptance gate: pure-Python bit-parallel packing alone clears
    # 20x on the Fig. 5 OPT encoder; NumPy must not regress below it.
    assert opt_row["speedup_int"] >= SPEEDUP_FLOOR, opt_row
    if HAVE_NUMPY:
        assert opt_row["speedup_uint64"] >= SPEEDUP_FLOOR, opt_row
        assert dc_row["speedup_uint64"] >= SPEEDUP_FLOOR, dc_row
