"""Fig. 4 — the fixed-coefficient encoder vs the true optimum.

Adds DBI OPT (Fixed, alpha = beta = 1) to the Fig. 3 sweep and asserts
the paper's claims: the fixed encoder beats the best conventional scheme
over roughly [0.23, 0.79] and its peak gain (~6.58 %) is nearly the
optimum's (~6.75 %).
"""

import pytest

from conftest import emit
from repro.analysis.crossover import (
    advantage_region,
    elementwise_min,
    peak_advantage,
)
from repro.sim.report import format_alpha_sweep
from repro.sim.sweep import alpha_sweep


def test_fig4_fixed_coefficients(benchmark, population):
    result = benchmark.pedantic(
        alpha_sweep, args=(population,),
        kwargs={"points": 26, "include_fixed": True},
        rounds=1, iterations=1)

    emit("Fig. 4 — energy per burst with OPT (Fixed)",
         format_alpha_sweep(result, points=11))

    dc = result.series["dbi-dc"]
    ac = result.series["dbi-ac"]
    opt = result.series["dbi-opt"]
    fixed = result.series["dbi-opt-fixed"]
    best = elementwise_min(dc, ac)

    # Fixed coefficients sacrifice nothing at the balanced point...
    mid = len(result.ac_costs) // 2
    assert fixed[mid] == pytest.approx(opt[mid], rel=0.005)

    # ... and never beat the true optimum anywhere (lower bound).
    for fixed_value, opt_value in zip(fixed, opt):
        assert fixed_value >= opt_value - 1e-9

    # 'performs better than previous scheme from an AC cost of 0.23 to 0.79'
    region = advantage_region(result.ac_costs, fixed, best)
    assert region is not None
    start, end = region
    emit("Fig. 4 — landmarks",
         f"OPT (Fixed) beats best conventional for alpha in "
         f"[{start:.2f}, {end:.2f}] (paper: [0.23, 0.79])")
    assert start == pytest.approx(0.23, abs=0.08)
    assert end == pytest.approx(0.79, abs=0.08)

    # 'The maximum energy reduction from this encoding is nearly identical
    # at 6.58%.'
    __, opt_gain = peak_advantage(result.ac_costs, opt, best)
    peak_x, fixed_gain = peak_advantage(result.ac_costs, fixed, best)
    emit("Fig. 4 — landmarks",
         f"OPT (Fixed) peak gain {100 * fixed_gain:.2f}% at "
         f"alpha = {peak_x:.2f} (paper: 6.58%)")
    assert 0.05 < fixed_gain < 0.08
    assert fixed_gain > 0.93 * opt_gain
