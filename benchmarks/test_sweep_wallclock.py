"""Sweep wall-clock benchmark — the experiment-engine acceptance gate.

Times the paper's figure suite two ways over the same population:

* **naive** — every (scheme, grid cell) encoded independently, the way a
  generic declarative parameter-sweep harness evaluates its model at
  each grid point (and the shape the bespoke loops degenerate to without
  their hand-rolled hoisting);
* **engine** — :func:`repro.sim.experiments.run_experiment` with a
  shared :class:`~repro.sim.experiments.ActivityCache`, which collapses
  the grid to one encode per distinct (scheme fingerprint, population)
  pair: statics encode once per suite, OPT once per distinct
  alpha/beta ratio.

The gate requires the engine to be **>= 2x faster** at
``REPRO_SWEEP_BENCH_SAMPLES`` bursts (default 10 000, the paper's
Monte-Carlo population) while producing bit-identical series.  On
multi-core machines an informational ``--jobs`` timing is printed too
(no gate — CI cores vary).
"""

import os
import time

from conftest import emit

from repro.phy.power import GBPS, PICOFARAD
from repro.sim.experiments import (
    ActivityCache,
    alpha_experiment,
    load_experiment,
    population_activity,
    run_experiment,
)
from repro.workloads.population import RandomPopulation

#: Population size of the gate (the paper's figures use 10 000).
SWEEP_BENCH_SAMPLES = int(os.environ.get("REPRO_SWEEP_BENCH_SAMPLES",
                                         "10000"))

#: Required wall-clock advantage of the cached engine over naive
#: cell-by-cell execution.
SPEEDUP_FLOOR = 2.0

ENCODER_ENERGY = {"dbi-dc": 0.2e-12, "dbi-ac": 0.3e-12,
                  "dbi-opt-fixed": 1.7e-12}


def _figure_suite(population):
    """The benchmark workload: a Fig. 3/4 grid plus a Fig. 8 grid."""
    return [
        alpha_experiment(population, points=13, include_fixed=True),
        load_experiment(population,
                        c_loads_farads=(1 * PICOFARAD, 3 * PICOFARAD,
                                        8 * PICOFARAD),
                        data_rates_hz=[GBPS * step for step in range(2, 12)],
                        encoder_energy_j=ENCODER_ENERGY),
    ]


def _run_naive(specs):
    """Evaluate every (slot, cell) independently — no cache, no dedup."""
    all_series = []
    encodes = 0
    for spec in specs:
        series = {}
        for slot in spec.slots:
            values = []
            for point in spec.grid:
                totals = population_activity(slot.resolve(point),
                                             spec.population)
                encodes += 1
                if spec.pricing == "cost":
                    value = (point.alpha * totals.transitions
                             + point.beta * totals.zeros) / totals.bursts
                else:
                    value = (totals.zeros * point.beta
                             + totals.transitions * point.alpha
                             ) / totals.bursts
                values.append(value)
            series[slot.name] = values
        all_series.append(series)
    return all_series, encodes


def test_engine_speedup_over_naive_sweeps():
    population = RandomPopulation(SWEEP_BENCH_SAMPLES, seed=0x0DB1)
    specs = _figure_suite(population)

    start = time.perf_counter()
    naive_series, naive_encodes = _run_naive(specs)
    naive_elapsed = time.perf_counter() - start

    cache = ActivityCache()
    start = time.perf_counter()
    results = [run_experiment(spec, cache=cache) for spec in specs]
    engine_elapsed = time.perf_counter() - start
    engine_encodes = sum(r.provenance["encodes"] for r in results)

    # Equivalence at scale: the cached engine changes nothing numerically.
    for result, series in zip(results, naive_series):
        assert result.series == series

    speedup = naive_elapsed / engine_elapsed
    lines = [
        f"population: {SWEEP_BENCH_SAMPLES} bursts",
        f"naive cell-by-cell: {naive_encodes} encodes, "
        f"{naive_elapsed:.3f} s",
        f"engine (shared cache): {engine_encodes} encodes, "
        f"{engine_elapsed:.3f} s",
        f"speedup: {speedup:.1f}x (gate: >= {SPEEDUP_FLOOR}x)",
    ]

    cpus = os.cpu_count() or 1
    if cpus > 1:
        start = time.perf_counter()
        parallel = [run_experiment(spec, jobs=min(4, cpus),
                                   cache=ActivityCache()) for spec in specs]
        parallel_elapsed = time.perf_counter() - start
        for result, series in zip(parallel, naive_series):
            assert result.series == series
        lines.append(f"engine (--jobs {min(4, cpus)}, cold cache): "
                     f"{parallel_elapsed:.3f} s (informational)")

    emit("sweep wall-clock (engine vs naive)", "\n".join(lines))
    assert speedup >= SPEEDUP_FLOOR, (
        f"engine speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x gate "
        f"({naive_elapsed:.3f}s naive vs {engine_elapsed:.3f}s engine)")
