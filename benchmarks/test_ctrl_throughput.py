"""Controller write-path throughput — the batched path's acceptance gate.

Replays the same ``REPRO_BENCH_CTRL_TRANSACTIONS`` (default 10 000)
random cache-line transactions through :class:`MemoryController` on both
backends:

* **reference** — one per-byte :class:`StreamingOptimalEncoder` per
  (channel, lane): the executable specification (timed on a fraction of
  the workload and extrapolated linearly — it is linear in transactions
  by construction);
* **vector** — the batched write path: packed striping plus lock-step
  ``(channels x lanes, window)`` windowed-Viterbi rounds.

The gate requires the vector path to be **>= 10x faster** at the
HBM-like 16-channel x 8-lane geometry, with bit-identical statistics on
the parity prefix.  Narrower links are reported ungated — the
vectorization axis is the link width, so their speedups are
proportionally smaller (see the artifact for the trajectory).

Every run persists its measurements to ``BENCH_ctrl_throughput.json``
(override the directory with ``REPRO_BENCH_ARTIFACT_DIR``), uploaded by
CI's ``benchmark-trajectory`` job.
"""

import json
import os
import pathlib
import random
import time

import pytest

from conftest import emit

from repro.core.costs import CostModel
from repro.ctrl.controller import CACHE_LINE_BYTES, MemoryController, WriteTransaction

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - benches are skipped without NumPy
    HAVE_NUMPY = False

#: Workload size of the gate.
BENCH_TRANSACTIONS = int(os.environ.get("REPRO_BENCH_CTRL_TRANSACTIONS",
                                        "10000"))

#: Required wall-clock advantage of the batched path at the gated geometry.
SPEEDUP_FLOOR = 10.0

#: The gated link geometry (channels, byte lanes) plus ungated context rows.
GEOMETRIES = [
    {"channels": 16, "byte_lanes": 8, "gated": True},   # HBM-like
    {"channels": 8, "byte_lanes": 8, "gated": False},
    {"channels": 2, "byte_lanes": 4, "gated": False},   # GDDR-like
]

#: Streaming-encoder lookahead used by both paths.
WINDOW = 16

#: The reference is timed on 1/N of the workload and extrapolated.
REFERENCE_FRACTION = 10

ARTIFACT_NAME = "BENCH_ctrl_throughput.json"


def _transactions(count):
    rng = random.Random(0x0DB1)
    return [WriteTransaction(
        index * CACHE_LINE_BYTES,
        bytes(rng.getrandbits(8) for _ in range(CACHE_LINE_BYTES)))
        for index in range(count)]


def _replay(backend, transactions, channels, byte_lanes):
    controller = MemoryController(channels=channels, byte_lanes=byte_lanes,
                                  model=CostModel.fixed(), window=WINDOW,
                                  backend=backend)
    start = time.perf_counter()
    controller.submit(transactions)
    stats = controller.flush()
    return time.perf_counter() - start, stats


def _measure(transactions, channels, byte_lanes):
    prefix = transactions[:len(transactions) // REFERENCE_FRACTION]
    t_reference, reference_stats = _replay("reference", prefix, channels,
                                           byte_lanes)
    t_reference *= REFERENCE_FRACTION
    t_vector, _stats = _replay("vector", transactions, channels, byte_lanes)
    # Bit-identity is checked on exactly the transactions the reference
    # replayed.
    _t, parity_stats = _replay("vector", prefix, channels, byte_lanes)
    assert (parity_stats.zeros, parity_stats.transitions,
            parity_stats.beats) == (reference_stats.zeros,
                                    reference_stats.transitions,
                                    reference_stats.beats)
    return {
        "channels": channels,
        "byte_lanes": byte_lanes,
        "n_transactions": len(transactions),
        "window": WINDOW,
        "reference_s": round(t_reference, 4),
        "reference_extrapolated": True,
        "vector_s": round(t_vector, 4),
        "speedup": round(t_reference / t_vector, 1),
    }


def _write_artifact(rows):
    directory = pathlib.Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    path = directory / ARTIFACT_NAME
    # Read-modify-write: the streaming bench shares this artifact (its
    # "streaming" section must survive this test rewriting its own keys).
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        payload = {}
    payload.update({
        "schema": "repro.bench/ctrl_throughput/1",
        "n_transactions": BENCH_TRANSACTIONS,
        "speedup_floor": SPEEDUP_FLOOR,
        "geometries": rows,
    })
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="the batched write path requires NumPy")
def test_ctrl_throughput_gate():
    transactions = _transactions(BENCH_TRANSACTIONS)
    rows = []
    for geometry in GEOMETRIES:
        row = _measure(transactions, geometry["channels"],
                       geometry["byte_lanes"])
        row["gated"] = geometry["gated"]
        rows.append(row)
    path = _write_artifact(rows)

    lines = [
        f"| {row['channels']}ch x {row['byte_lanes']} lanes "
        f"| ref {row['reference_s']:.2f}s* "
        f"| vector {row['vector_s']:.3f}s ({row['speedup']:.0f}x) "
        f"| {'GATED >= ' + str(SPEEDUP_FLOOR) + 'x' if row['gated'] else 'reported'} |"
        for row in rows
    ]
    emit(f"controller write-path throughput at {BENCH_TRANSACTIONS} "
         f"transactions (artifact: {path})", "\n".join(lines)
         + "\n(* = reference time extrapolated from "
         f"1/{REFERENCE_FRACTION} of the workload)")

    for row in rows:
        if row["gated"]:
            assert row["speedup"] >= SPEEDUP_FLOOR, row
