"""Fault-injection throughput — the mask-parallel engine's acceptance gate.

Injects ``REPRO_BENCH_FAULT_BURSTS`` x ``FAULTS_PER_BURST`` (default
10 000 x 10) uniform single-lane faults into DBI-OPT encoded bursts on
both backends:

* **reference** — :func:`repro.extensions.reliability.fault_sweep`: one
  Python decode per injected fault (timed on a fraction of the workload
  and extrapolated linearly — it is linear in faults by construction);
* **mask-parallel** — :func:`fault_sweep_batch`: all faults packed into
  the :mod:`repro.hw.bitsim` word representation, XOR injection and
  popcount tallies, under both word implementations (``uint64`` NumPy
  lanes and pure-Python big ints).

The gate requires the auto word implementation (``uint64`` whenever
NumPy is present, as on this CI job) to be **>= 10x faster**, with
bit-identical statistics on the parity prefix; the pure-int row is
reported ungated — it is the no-NumPy fallback, not the production
path.  A coverage-curve row (multi-lane faults at the default rate
grid) is reported for context.

Every run persists its measurements to ``BENCH_reliability.json``
(override the directory with ``REPRO_BENCH_ARTIFACT_DIR``), uploaded by
CI's ``benchmark-trajectory`` job.
"""

import json
import os
import pathlib
import time

import pytest

from conftest import emit

from repro.core.schemes import get_scheme
from repro.extensions.reliability import (
    DEFAULT_FAULT_RATES,
    fault_coverage_curve,
    fault_sweep,
    fault_sweep_batch,
)
from repro.workloads.population import RandomPopulation

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - benches are skipped without NumPy
    HAVE_NUMPY = False

#: Workload size of the gate.
BENCH_BURSTS = int(os.environ.get("REPRO_BENCH_FAULT_BURSTS", "10000"))

FAULTS_PER_BURST = 10
SEED = 7

#: Required wall-clock advantage of the gated (auto) word implementation.
SPEEDUP_FLOOR = 10.0

#: The reference is timed on 1/N of the workload and extrapolated.
REFERENCE_FRACTION = 10

#: Both paths are timed best-of-N so one scheduler hiccup cannot flip
#: the gate (the standard guard for a wall-clock ratio assertion).
TIMING_REPS = 3

ARTIFACT_NAME = "BENCH_reliability.json"


def _best_of(reps, fn):
    """Minimum wall-clock seconds over *reps* calls of *fn*."""
    return min(_timed(fn) for _ in range(reps))


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _write_artifact(payload):
    directory = pathlib.Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    path = directory / ARTIFACT_NAME
    payload = {"schema": "repro.bench/reliability/1", **payload}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="the gated word implementation requires NumPy")
def test_fault_injection_throughput_gate():
    bursts = RandomPopulation(count=BENCH_BURSTS, seed=0x0DB1).bursts()
    scheme = get_scheme("dbi-opt")
    prefix = bursts[:BENCH_BURSTS // REFERENCE_FRACTION]

    reference_stats = fault_sweep(scheme, prefix,
                                  faults_per_burst=FAULTS_PER_BURST,
                                  seed=SEED)
    t_reference = REFERENCE_FRACTION * _best_of(
        TIMING_REPS,
        lambda: fault_sweep(scheme, prefix,
                            faults_per_burst=FAULTS_PER_BURST, seed=SEED))

    # Bit-identity on exactly the faults the reference injected.
    assert fault_sweep_batch(scheme, prefix,
                             faults_per_burst=FAULTS_PER_BURST,
                             seed=SEED) == reference_stats

    rows = []
    for word_impl, gated in (("uint64", True), ("int", False)):
        stats = fault_sweep_batch(scheme, bursts,
                                  faults_per_burst=FAULTS_PER_BURST,
                                  seed=SEED, word_impl=word_impl)
        elapsed = _best_of(
            TIMING_REPS,
            lambda: fault_sweep_batch(scheme, bursts,
                                      faults_per_burst=FAULTS_PER_BURST,
                                      seed=SEED, word_impl=word_impl))
        assert stats.injected_faults == BENCH_BURSTS * FAULTS_PER_BURST
        rows.append({
            "word_impl": word_impl,
            "gated": gated,
            "batch_s": round(elapsed, 4),
            "speedup": round(t_reference / elapsed, 1),
            "faults_per_second": round(stats.injected_faults / elapsed),
            "mean_amplification": round(stats.mean_amplification, 4),
        })

    start = time.perf_counter()
    curve = fault_coverage_curve(scheme, bursts, rates=DEFAULT_FAULT_RATES,
                                 seed=SEED)
    t_curve = time.perf_counter() - start

    path = _write_artifact({
        "n_bursts": BENCH_BURSTS,
        "faults_per_burst": FAULTS_PER_BURST,
        "speedup_floor": SPEEDUP_FLOOR,
        "reference_s": round(t_reference, 4),
        "reference_extrapolated": True,
        "sweeps": rows,
        "coverage_curve": {
            "rates": list(DEFAULT_FAULT_RATES),
            "elapsed_s": round(t_curve, 4),
            "injected_faults": sum(row.injected_faults for row in curve),
        },
    })

    lines = [
        f"| {row['word_impl']} | {row['batch_s']:.3f}s "
        f"({row['speedup']:.0f}x, {row['faults_per_second']:,} faults/s) "
        f"| {'GATED >= ' + str(SPEEDUP_FLOOR) + 'x' if row['gated'] else 'reported'} |"
        for row in rows
    ]
    emit(f"mask-parallel fault injection at {BENCH_BURSTS} bursts x "
         f"{FAULTS_PER_BURST} faults (artifact: {path})",
         f"reference {t_reference:.2f}s* \n" + "\n".join(lines)
         + f"\ncoverage curve ({len(DEFAULT_FAULT_RATES)} rates): "
         f"{t_curve:.3f}s"
         + "\n(* = reference time extrapolated from "
         f"1/{REFERENCE_FRACTION} of the workload)")

    for row in rows:
        if row["gated"]:
            assert row["speedup"] >= SPEEDUP_FLOOR, row
