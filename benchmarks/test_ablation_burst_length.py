"""Ablation — burst length (beyond the paper).

The trellis search is length-agnostic; this bench measures how the OPT
advantage over the best conventional scheme grows with burst length
(longer bursts amortise the DBI-lane overhead and give the shortest path
more room to plan), and that the solver cost scales linearly.
"""

import pytest

from conftest import emit
from repro.analysis.savings import savings_vs_best_conventional
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.sim.report import markdown_table
from repro.sim.runner import evaluate
from repro.workloads.random_data import random_bursts

LENGTHS = (2, 4, 8, 16, 32)


def _gain_for_length(length: int) -> float:
    bursts = random_bursts(count=400, burst_length=length, seed=7)
    model = CostModel.fixed()
    result = evaluate(["dbi-dc", "dbi-ac", DbiOptimal(model)], bursts,
                      workload=f"bl{length}")
    return savings_vs_best_conventional(result, model).saving_percent


def test_ablation_burst_length(benchmark):
    gains = benchmark.pedantic(
        lambda: {length: _gain_for_length(length) for length in LENGTHS},
        rounds=1, iterations=1)

    emit("Ablation — OPT gain vs burst length (alpha = beta)",
         markdown_table(["burst length", "OPT saving vs best conventional"],
                        [[length, f"{gain:.2f}%"]
                         for length, gain in gains.items()]))

    # Savings exist at every length and BL8 (the paper's setting) sits in
    # the useful range.
    for length, gain in gains.items():
        assert gain > 0, f"no gain at burst length {length}"
    assert gains[8] > 3.0

    # Longer bursts never reduce the gain dramatically: the BL32 gain
    # stays within 2 points of the BL8 gain.
    assert gains[32] > gains[8] - 2.0


def test_solver_scales_linearly(benchmark):
    """One trellis solve on a 64-byte burst — O(n) in burst length."""
    from repro.core.burst import Burst
    from repro.core.trellis import solve
    import numpy as np
    rng = np.random.default_rng(5)
    long_burst = Burst(rng.integers(0, 256, size=64, dtype=np.uint8).tolist())
    model = CostModel.fixed()
    solution = benchmark(solve, long_burst, model)
    assert len(solution.invert_flags) == 64
