"""Ablation — coefficient quantisation (the paper's 3-bit HW choice).

Measures the encoding-quality loss of b-bit integer coefficients versus
exact real coefficients across operating points, quantifying the paper's
observation that 'the coefficients do not need to be very accurate'.
"""

import pytest

from conftest import emit
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal, DbiOptimalQuantized
from repro.sim.report import markdown_table
from repro.sim.sweep import collect_activity

BITS = (1, 2, 3, 4, 6)
FRACTIONS = (0.15, 0.35, 0.5, 0.65, 0.85)


def _quantisation_table(population):
    rows = []
    worst_by_bits = {}
    for bits in BITS:
        worst = 0.0
        row = [f"{bits}-bit"]
        for fraction in FRACTIONS:
            model = CostModel.from_ac_fraction(fraction)
            exact = collect_activity(DbiOptimal(model), population).mean_cost(model)
            quantized = collect_activity(
                DbiOptimalQuantized(model, bits=bits), population).mean_cost(model)
            loss = 100.0 * (quantized / exact - 1.0)
            worst = max(worst, loss)
            row.append(f"{loss:.3f}%")
        worst_by_bits[bits] = worst
        rows.append(row)
    return rows, worst_by_bits


def test_ablation_coefficient_bits(benchmark, population):
    sample = population[:500]
    rows, worst = benchmark.pedantic(_quantisation_table, args=(sample,),
                                     rounds=1, iterations=1)

    emit("Ablation — encoding loss of b-bit coefficients vs exact",
         markdown_table(["coefficients"] + [f"alpha={f}" for f in FRACTIONS],
                        rows))
    emit("Ablation — worst-case loss per width",
         ", ".join(f"{bits}b: {value:.3f}%" for bits, value in worst.items()))

    # Quality improves (weakly) with coefficient precision.
    assert worst[1] >= worst[3] >= worst[6] - 1e-9

    # The paper's 3-bit choice is visibly sufficient: worst loss well
    # under one percent of burst energy.
    assert worst[3] < 1.0

    # Even 1-bit (i.e. fixed alpha = beta) stays within a few percent.
    assert worst[1] < 5.0
