"""Ablation — workload dependence (beyond the paper's random bursts).

Evaluates every scheme on the synthetic traffic classes and reports OPT's
saving versus the best conventional scheme per class.  Verifies the
paper-level conclusion is robust: optimal joint DC/AC coding never loses
to the better of DC/AC, on any traffic.
"""

import pytest

from conftest import emit
from repro.analysis.savings import savings_vs_best_conventional
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.sim.report import markdown_table
from repro.sim.runner import evaluate
from repro.workloads.generator import make_workload

WORKLOADS = ("random", "sparse", "dense", "correlated", "text", "float",
             "image", "pointer", "zero-run", "gpu")


def _workload_savings():
    model = CostModel.fixed()
    rows = []
    savings = {}
    for name in WORKLOADS:
        load = make_workload(name, count=300)
        result = evaluate(["raw", "dbi-dc", "dbi-ac", DbiOptimal(model)],
                          load.bursts, workload=name)
        record = savings_vs_best_conventional(result, model)
        savings[name] = record.saving_percent
        rows.append([
            name,
            f"{result['raw'].mean_cost(model):.2f}",
            f"{result['dbi-dc'].mean_cost(model):.2f}",
            f"{result['dbi-ac'].mean_cost(model):.2f}",
            f"{result['dbi-opt'].mean_cost(model):.2f}",
            f"{record.saving_percent:.2f}%",
        ])
    return rows, savings


def test_ablation_workloads(benchmark):
    rows, savings = benchmark.pedantic(_workload_savings, rounds=1,
                                       iterations=1)

    emit("Ablation — cost per burst by workload (alpha = beta = 1)",
         markdown_table(["workload", "raw", "dbi-dc", "dbi-ac", "dbi-opt",
                         "OPT saving"], rows))

    # OPT never loses to the best conventional scheme on any traffic.
    for name, saving in savings.items():
        assert saving >= -1e-9, f"OPT lost on workload {name!r}"

    # On the paper's uniform-random traffic the saving matches Fig. 3's
    # balanced point (~6-7%).
    assert 4.0 < savings["random"] < 9.0

    # At least one realistic workload benefits more than random traffic
    # (structure gives the shortest path more to exploit).
    assert max(savings[name] for name in WORKLOADS if name != "random") \
        > savings["random"] - 1.0
