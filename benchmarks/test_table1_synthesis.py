"""Table I — synthesis results for the four encoder designs.

Builds the gate-level netlists, runs activity simulation over the
default 100k-burst random population (the bit-parallel engine makes the
full-scale workload the cheap path; ``REPRO_BENCH_TABLE1_BURSTS``
overrides), and prints the area/static/dynamic/rate/energy table next to
the paper's numbers.  Asserts the orderings and ratio-level claims (see
EXPERIMENTS.md for the measured-vs-paper discussion; absolute um2/uW
depend on the substituted cell library).
"""

import os

import pytest

from conftest import emit
from repro.hw.activity import DEFAULT_ACTIVITY_BURSTS
from repro.hw.synthesis import (
    _design_specs,
    synthesize,
    table_one_markdown,
)

TABLE1_BURSTS = int(os.environ.get("REPRO_BENCH_TABLE1_BURSTS",
                                   str(DEFAULT_ACTIVITY_BURSTS)))

PAPER_ROWS = """paper Table I (32 nm, Synopsys DC Ultra):
| Scheme | Area | Static | Dynamic | Rate | Total | E/burst |
| DBI DC | 275 um2 | 105 uW | 111 uW | 1.5 GHz | 216 uW | 0.14 pJ |
| DBI AC | 578 um2 | 170 uW | 250 uW | 1.5 GHz | 420 uW | 0.28 pJ |
| OPT (Fixed) | 3807 um2 | 257 uW | 2233 uW | 1.5 GHz | 2490 uW | 1.66 pJ |
| OPT (3-Bit) | 16584 um2 | 5200 uW | 3600 uW | 0.5 GHz | 8800 uW | 17.6 pJ |"""


def _run_table():
    return {name: synthesize(spec, activity_bursts=TABLE1_BURSTS)
            for name, spec in _design_specs().items()}


def test_table1_synthesis(benchmark):
    results = benchmark.pedantic(_run_table, rounds=1, iterations=1)

    emit("Table I — measured (this reproduction)",
         table_one_markdown(results))
    emit("Table I — reference", PAPER_ROWS)

    dc = results["dbi-dc"]
    ac = results["dbi-ac"]
    fixed = results["dbi-opt-fixed"]
    q3 = results["dbi-opt-q3"]

    # Area ordering and rough factors.
    assert dc.area_um2 < ac.area_um2 < fixed.area_um2 < q3.area_um2
    assert 5 < fixed.area_um2 / dc.area_um2 < 25        # paper: 13.8x
    assert 1.5 < q3.area_um2 / fixed.area_um2 < 8       # paper: 4.4x

    # Timing: only the 3-bit design misses 12 Gbps (1.5 GHz bursts).
    assert dc.meets_target and ac.meets_target and fixed.meets_target
    assert not q3.meets_target
    assert 0.2e9 < q3.burst_rate_hz < 0.8e9             # paper: 0.5 GHz

    # Energy-per-burst ordering and the configurable-design blow-up.
    assert (dc.energy_per_burst_j < ac.energy_per_burst_j
            < fixed.energy_per_burst_j < q3.energy_per_burst_j)
    assert q3.energy_per_burst_j / fixed.energy_per_burst_j > 4  # paper: 10.6x

    # The timing-failing design pays a leakage-density penalty.
    assert (q3.static_power_w / q3.area_um2
            > 2 * fixed.static_power_w / fixed.area_um2)
