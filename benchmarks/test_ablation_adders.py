"""Ablation — adder architecture in the OPT encoder's cost chain.

A negative result worth reporting: carry-select adders shorten a
standalone 8-bit add by ~30 %, but do NOT speed up the Fig. 5 cost chain,
because the accumulator's bits arrive with a carry-shaped skew that a
ripple adder absorbs for free.  The paper's synthesis tool would discover
the same thing via retiming; here it falls out of explicit arrival-time
analysis.
"""

import pytest

from conftest import emit
from repro.hw.components import carry_select_adder, ripple_adder
from repro.hw.encoders import build_opt_encoder
from repro.hw.netlist import Netlist
from repro.sim.report import markdown_table


def _standalone(fn):
    nl = Netlist("adder")
    a = nl.add_input("a", 8)
    b = nl.add_input("b", 8)
    nl.mark_output("s", fn(nl, a, b))
    return nl


def _build_all():
    return {
        "standalone ripple": _standalone(
            lambda nl, a, b: ripple_adder(nl, a, b, width=8)),
        "standalone carry-select": _standalone(
            lambda nl, a, b: carry_select_adder(nl, a, b, 8)),
        "encoder ripple": build_opt_encoder(8, adder="ripple"),
        "encoder carry-select": build_opt_encoder(8, adder="carry-select"),
    }


def test_ablation_adder_architecture(benchmark):
    netlists = benchmark.pedantic(_build_all, rounds=1, iterations=1)

    rows = [[name, nl.n_gates, f"{nl.area_um2():.0f}",
             f"{nl.critical_path_ps():.0f}"]
            for name, nl in netlists.items()]
    emit("Ablation — adder architecture (ripple vs carry-select)",
         markdown_table(["design", "gates", "area (um2)",
                         "critical path (ps)"], rows))

    # Standalone: carry-select is genuinely faster.
    assert (netlists["standalone carry-select"].critical_path_ps()
            < netlists["standalone ripple"].critical_path_ps())

    # In the chain: the skewed accumulator arrival negates the advantage.
    assert (netlists["encoder ripple"].critical_path_ps()
            <= netlists["encoder carry-select"].critical_path_ps())

    # And the area premium is real.
    assert (netlists["encoder carry-select"].area_um2()
            > 1.2 * netlists["encoder ripple"].area_um2())
    emit("Ablation — conclusion",
         "carry-select wins standalone but not in the Fig. 5 cost chain: "
         "the accumulator's carry-shaped arrival skew is absorbed by the "
         "ripple chain for free, so the paper's design needs no fast adders")
