"""Disk-cache warm path — the experiment service's acceptance gate.

Runs the paper's alpha sweep over ``REPRO_BENCH_SERVICE_SAMPLES``
(default 10 000) random bursts twice against one
:class:`~repro.service.diskcache.DiskActivityCache` directory:

* **cold** — an empty cache directory: every grid cell encodes the full
  population and publishes its totals to disk;
* **warm** — a *fresh* cache instance over the same directory (the
  memory tier starts empty, exactly like a new process — say, a daemon
  restart or another sweep shard): every cell must come back from disk
  without a single encode.

The gate requires the warm run to be **>= 5x faster** in wall-clock
with bit-identical series and totals.  A third, ungated row reports the
same query served from the already-populated memory tier (the steady
state of a long-running ``repro serve`` daemon).

Every run persists its measurements to ``BENCH_service.json`` (override
the directory with ``REPRO_BENCH_ARTIFACT_DIR``), uploaded by CI's
``benchmark-trajectory`` job.
"""

import json
import os
import pathlib
import tempfile
import time

from conftest import emit

from repro.service.diskcache import DiskActivityCache
from repro.sim.experiments import alpha_experiment, run_experiment
from repro.workloads.population import RandomPopulation

#: Population size of the gate (the paper's figures use 10 000 bursts).
BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SERVICE_SAMPLES", "10000"))

#: Alpha-sweep resolution (one OPT encode of the population per ratio).
BENCH_POINTS = int(os.environ.get("REPRO_BENCH_SERVICE_POINTS", "13"))

#: Required wall-clock advantage of the warm disk-cache path.
SPEEDUP_FLOOR = 5.0

ARTIFACT_NAME = "BENCH_service.json"


def _timed_run(spec, cache):
    start = time.perf_counter()
    result = run_experiment(spec, cache=cache)
    return time.perf_counter() - start, result


def _write_artifact(rows):
    directory = pathlib.Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    path = directory / ARTIFACT_NAME
    payload = {
        "schema": "repro.bench/service_cache/1",
        "samples": BENCH_SAMPLES,
        "points": BENCH_POINTS,
        "speedup_floor": SPEEDUP_FLOOR,
        "runs": rows,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_service_cache_warm_gate():
    spec = alpha_experiment(
        RandomPopulation(count=BENCH_SAMPLES, seed=0x0DB1),
        points=BENCH_POINTS, include_fixed=True)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as scratch:
        cold_s, cold = _timed_run(spec, DiskActivityCache(scratch))
        assert cold.provenance["encodes"] > 0

        # A fresh instance simulates a new process sharing the directory.
        warm_cache = DiskActivityCache(scratch)
        warm_s, warm = _timed_run(spec, warm_cache)
        assert warm.provenance["encodes"] == 0
        assert warm.series == cold.series
        assert warm.totals == cold.totals

        # Steady state: the same instance now serves from memory.
        memory_s, memory = _timed_run(spec, warm_cache)
        assert memory.series == cold.series

        entries = len(warm_cache)

    speedup = cold_s / warm_s
    rows = [
        {"tier": "cold (encode + publish)", "seconds": round(cold_s, 4),
         "encodes": cold.provenance["encodes"], "gated": False},
        {"tier": "warm (disk, fresh process)", "seconds": round(warm_s, 4),
         "encodes": 0, "speedup": round(speedup, 1), "gated": True},
        {"tier": "warm (memory, steady state)", "seconds": round(memory_s, 4),
         "encodes": 0, "speedup": round(cold_s / memory_s, 1),
         "gated": False},
    ]
    path = _write_artifact(rows)

    lines = [
        f"| {row['tier']} | {row['seconds']:.3f}s "
        f"| {row.get('speedup', '-')}x "
        f"| {'GATED >= ' + str(SPEEDUP_FLOOR) + 'x' if row['gated'] else 'reported'} |"
        for row in rows
    ]
    emit(f"disk-cache alpha sweep at {BENCH_SAMPLES} bursts x "
         f"{BENCH_POINTS} ratios, {entries} cache entries "
         f"(artifact: {path})", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm disk-cache run only {speedup:.1f}x faster than cold "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)")
