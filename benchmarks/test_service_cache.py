"""Disk-cache warm path — the experiment service's acceptance gate.

Runs the paper's alpha sweep over ``REPRO_BENCH_SERVICE_SAMPLES``
(default 10 000) random bursts twice against one
:class:`~repro.service.diskcache.DiskActivityCache` directory:

* **cold** — an empty cache directory: every grid cell encodes the full
  population and publishes its totals to disk;
* **warm** — a *fresh* cache instance over the same directory (the
  memory tier starts empty, exactly like a new process — say, a daemon
  restart or another sweep shard): every cell must come back from disk
  without a single encode.

The gate requires the warm run to be **>= 5x faster** in wall-clock
with bit-identical series and totals.  A third, ungated row reports the
same query served from the already-populated memory tier (the steady
state of a long-running ``repro serve`` daemon).

Every run persists its measurements to ``BENCH_service.json`` (override
the directory with ``REPRO_BENCH_ARTIFACT_DIR``), uploaded by CI's
``benchmark-trajectory`` job.
"""

import json
import os
import pathlib
import tempfile
import time

from conftest import emit

from repro.service.diskcache import DiskActivityCache
from repro.service.faults import FaultPlan, FaultyCache
from repro.sim.experiments import alpha_experiment, run_experiment
from repro.workloads.population import RandomPopulation

#: Population size of the gate (the paper's figures use 10 000 bursts).
BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SERVICE_SAMPLES", "10000"))

#: Alpha-sweep resolution (one OPT encode of the population per ratio).
BENCH_POINTS = int(os.environ.get("REPRO_BENCH_SERVICE_POINTS", "13"))

#: Required wall-clock advantage of the warm disk-cache path.
SPEEDUP_FLOOR = 5.0

#: Ceiling on what the fault-tolerance instrumentation (health counters,
#: degradation checks, an idle chaos wrapper) may add to the warm path.
OVERHEAD_CEILING = 0.05

#: Absolute slack under the relative ceiling — sub-millisecond timing
#: noise must not fail the gate on very fast warm runs.
OVERHEAD_SLACK_S = 0.002

ARTIFACT_NAME = "BENCH_service.json"


def _timed_run(spec, cache):
    start = time.perf_counter()
    result = run_experiment(spec, cache=cache)
    return time.perf_counter() - start, result


def _artifact_path():
    directory = pathlib.Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    return directory / ARTIFACT_NAME


def _update_artifact(**sections):
    """Read-modify-write the shared service artifact (tests share it)."""
    path = _artifact_path()
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        payload = {}
    payload.update({
        "schema": "repro.bench/service_cache/1",
        "samples": BENCH_SAMPLES,
        "points": BENCH_POINTS,
        "speedup_floor": SPEEDUP_FLOOR,
    })
    payload.update(sections)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_service_cache_warm_gate():
    spec = alpha_experiment(
        RandomPopulation(count=BENCH_SAMPLES, seed=0x0DB1),
        points=BENCH_POINTS, include_fixed=True)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as scratch:
        cold_s, cold = _timed_run(spec, DiskActivityCache(scratch))
        assert cold.provenance["encodes"] > 0

        # A fresh instance simulates a new process sharing the directory.
        warm_cache = DiskActivityCache(scratch)
        warm_s, warm = _timed_run(spec, warm_cache)
        assert warm.provenance["encodes"] == 0
        assert warm.series == cold.series
        assert warm.totals == cold.totals

        # Steady state: the same instance now serves from memory.
        memory_s, memory = _timed_run(spec, warm_cache)
        assert memory.series == cold.series

        entries = len(warm_cache)

    speedup = cold_s / warm_s
    rows = [
        {"tier": "cold (encode + publish)", "seconds": round(cold_s, 4),
         "encodes": cold.provenance["encodes"], "gated": False},
        {"tier": "warm (disk, fresh process)", "seconds": round(warm_s, 4),
         "encodes": 0, "speedup": round(speedup, 1), "gated": True},
        {"tier": "warm (memory, steady state)", "seconds": round(memory_s, 4),
         "encodes": 0, "speedup": round(cold_s / memory_s, 1),
         "gated": False},
    ]
    path = _update_artifact(runs=rows)

    lines = [
        f"| {row['tier']} | {row['seconds']:.3f}s "
        f"| {row.get('speedup', '-')}x "
        f"| {'GATED >= ' + str(SPEEDUP_FLOOR) + 'x' if row['gated'] else 'reported'} |"
        for row in rows
    ]
    emit(f"disk-cache alpha sweep at {BENCH_SAMPLES} bursts x "
         f"{BENCH_POINTS} ratios, {entries} cache entries "
         f"(artifact: {path})", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm disk-cache run only {speedup:.1f}x faster than cold "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)")


def test_instrumentation_overhead_gate():
    """Health counters + an idle chaos wrapper must stay under 5% warm.

    Times the warm (all cache hits) sweep twice, best-of-N each: once
    against the plain :class:`DiskActivityCache`, once against the same
    cache wrapped in a :class:`FaultyCache` with an *empty* fault plan —
    the full fault-tolerance bookkeeping with zero faults firing, i.e.
    the production steady state.  Gated at ``OVERHEAD_CEILING`` relative
    (plus a small absolute slack for timer noise).
    """
    spec = alpha_experiment(
        RandomPopulation(count=BENCH_SAMPLES, seed=0x0DB1),
        points=BENCH_POINTS, include_fixed=True)
    repeats = 5

    with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") as scratch:
        plain = DiskActivityCache(scratch)
        run_experiment(spec, cache=plain)  # populate disk + memory tiers

        plain_s = min(_timed_run(spec, plain)[0] for __ in range(repeats))
        wrapped_cache = FaultyCache(plain, FaultPlan({}, label="idle"))
        wrapped_runs = [_timed_run(spec, wrapped_cache)
                        for __ in range(repeats)]
        wrapped_s = min(seconds for seconds, __ in wrapped_runs)
        baseline = run_experiment(spec, cache=DiskActivityCache(scratch))
        for __, result in wrapped_runs:
            assert result.series == baseline.series
        assert wrapped_cache.injected == {}  # the idle plan fired nothing

    overhead = wrapped_s / plain_s - 1.0
    budget_s = plain_s * OVERHEAD_CEILING + OVERHEAD_SLACK_S
    path = _update_artifact(instrumentation={
        "plain_warm_s": round(plain_s, 5),
        "instrumented_warm_s": round(wrapped_s, 5),
        "overhead_fraction": round(overhead, 4),
        "ceiling": OVERHEAD_CEILING,
        "slack_s": OVERHEAD_SLACK_S,
        "gated": True,
    })
    emit(f"fault-tolerance instrumentation on the warm sweep "
         f"(best of {repeats}, artifact: {path})",
         f"| plain warm | {plain_s:.4f}s | baseline |\n"
         f"| instrumented warm | {wrapped_s:.4f}s "
         f"| {overhead * 100:+.1f}% (gated < {OVERHEAD_CEILING * 100:.0f}%) |")

    assert wrapped_s - plain_s <= budget_s, (
        f"instrumented warm sweep {wrapped_s:.4f}s vs plain {plain_s:.4f}s "
        f"({overhead * 100:+.1f}%) exceeds the "
        f"{OVERHEAD_CEILING * 100:.0f}% + {OVERHEAD_SLACK_S * 1000:.0f}ms "
        "budget")
