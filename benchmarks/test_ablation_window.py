"""Ablation — streaming lookahead window (beyond the paper).

Quantifies how much of the jointly-optimal cross-burst encoding a bounded
lookahead window captures, validating the paper's per-burst design point:
one burst of lookahead is already near-optimal.
"""

import pytest

from conftest import emit
from repro.core.costs import CostModel
from repro.core.streaming import solve_stream, windowed_stream_cost
from repro.sim.report import markdown_table
from repro.workloads.random_data import random_payload

WINDOWS = (1, 2, 4, 8, 16, 32)
STREAM_BYTES = 2048


def _window_table():
    model = CostModel.fixed()
    data = list(random_payload(STREAM_BYTES, seed=12))
    __, optimum = solve_stream(data, model)
    overheads = {}
    rows = []
    for window in WINDOWS:
        cost = windowed_stream_cost(data, model, window=window)
        overhead = 100.0 * (cost / optimum - 1.0)
        overheads[window] = overhead
        rows.append([window, f"{cost:.0f}", f"{overhead:.3f}%"])
    return rows, overheads, optimum


def test_ablation_window(benchmark):
    rows, overheads, optimum = benchmark.pedantic(_window_table, rounds=1,
                                                  iterations=1)

    emit("Ablation — lookahead window vs joint cross-burst optimum",
         markdown_table(["window", "cost", "overhead"], rows))

    # Monotone improvement with window size (weakly).
    values = [overheads[window] for window in WINDOWS]
    for previous, current in zip(values, values[1:]):
        assert current <= previous + 0.05

    # No window ever beats the joint optimum.
    assert all(value >= -1e-6 for value in values)

    # The paper's burst-granularity (8-byte) window is near-optimal.
    assert overheads[8] < 0.5

    # Greedy (window = 1) pays a real, measurable penalty.
    assert overheads[1] > overheads[32]
