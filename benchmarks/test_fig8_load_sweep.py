"""Fig. 8 — total energy (interface + encoder) of OPT (Fixed), normalised
to the best conventional scheme, for load capacitances 1-8 pF.

Encoder energies come from the gate-level synthesis model (Table I).
Asserts: meaningful (several percent) savings at 3-8 pF, and the
best-gain frequency falling as the load grows.
"""

import pytest

from conftest import emit
from repro.hw.synthesis import encoder_energy_per_burst
from repro.phy.power import GBPS
from repro.sim.report import format_load_sweep
from repro.sim.sweep import load_sweep

RATES = [0.5 * GBPS * step for step in range(1, 41)]
LOADS = (1e-12, 2e-12, 3e-12, 4e-12, 6e-12, 8e-12)


def test_fig8_load_sweep(benchmark, population):
    encoder_energies = encoder_energy_per_burst()
    result = benchmark.pedantic(
        load_sweep, args=(population[:1000],),
        kwargs={"c_loads_farads": LOADS, "data_rates_hz": RATES,
                "encoder_energy_j": encoder_energies},
        rounds=1, iterations=1)

    emit("Fig. 8 — OPT (Fixed) + encoder energy vs best(DC, AC)",
         format_load_sweep(result, every=4))
    emit("Fig. 8 — encoder energies used (pJ/burst)",
         ", ".join(f"{name}={energy * 1e12:.2f}"
                   for name, energy in sorted(encoder_energies.items())))

    best_points = {load: result.best_gain(load) for load in LOADS}
    rows = [f"{load * 1e12:.0f} pF: best {100 * (1 - value):.1f}% saving "
            f"at {rate / 1e9:.1f} Gbps"
            for load, (rate, value) in best_points.items()]
    emit("Fig. 8 — landmarks (paper: 5-6% at 3-8 pF)", "\n".join(rows))

    # 'At 3 to 8 pF load, the energy is reduced between 5-6% at the
    # operating points with the highest gains.'  Our encoder model is a
    # little more expensive than the paper's, so require >= 3%.
    for load in (3e-12, 4e-12, 6e-12, 8e-12):
        __, best_value = best_points[load]
        assert best_value < 0.97

    # Higher load -> lower best-gain frequency (monotone over the sweep).
    best_rates = [best_points[load][0] for load in LOADS]
    assert best_rates[0] >= best_rates[2] >= best_rates[-1]

    # Heavier loads help (1 pF is the weakest case).
    assert best_points[1e-12][1] > best_points[3e-12][1]
