"""Shared configuration for the figure/table benchmarks.

Each benchmark module regenerates one table or figure of the paper,
prints the rows/series it reports, and asserts the qualitative shape
(orderings, crossovers, gain magnitudes).  Population sizes default to a
laptop-friendly fraction of the paper's 10 000 bursts; set
``REPRO_BENCH_SAMPLES`` to override (e.g. 10000 for the full-scale run).
"""

from __future__ import annotations

import os

import pytest

try:
    from repro.workloads.random_data import random_bursts
except ImportError:  # NumPy missing
    random_bursts = None

# Every figure bench draws its population from the NumPy-backed workload
# generators, and several bench modules import repro.workloads at module
# scope — without NumPy, keep pytest from importing them at all instead
# of erroring during collection.
collect_ignore_glob = [] if random_bursts is not None else ["test_*.py"]

#: Number of random bursts used by the figure sweeps.
BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "2000"))


@pytest.fixture(scope="session")
def population():
    """The Monte-Carlo burst population shared by all figure benches."""
    return random_bursts(count=BENCH_SAMPLES, seed=0x0DB1)


def emit(title: str, body: str) -> None:
    """Print a labelled block that survives pytest's capture with -s."""
    print(f"\n===== {title} =====")
    print(body)
