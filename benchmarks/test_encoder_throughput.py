"""Microbenchmarks — encoder throughput (software side).

Times the hot paths a memory-controller-model simulation would stress:
one trellis solve, batch encoding across schemes (reference and vector
backends), and the gate-level netlist evaluation of the Fig. 5 hardware
model.  The vector-vs-reference comparison at batch = 10 000 is an
acceptance gate: the NumPy backend must deliver at least a 10× speedup
over per-burst reference encoding.
"""

import time

import pytest

from repro.baselines import DbiAc, DbiDc
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.trellis import solve
from repro.core.vectorized import HAVE_NUMPY
from repro.hw.activity import netlist_invert_flags
from repro.hw.encoders import build_opt_encoder


def test_throughput_trellis_solve(benchmark, population):
    model = CostModel.fixed()
    burst = population[0]
    benchmark(solve, burst, model)


def test_throughput_opt_batch(benchmark, population):
    model = CostModel.fixed()
    scheme = DbiOptimal(model)
    sample = population[:200]

    def encode_batch():
        return sum(scheme.encode(burst).zeros() for burst in sample)

    total = benchmark(encode_batch)
    assert total > 0


def test_throughput_dc_batch(benchmark, population):
    scheme = DbiDc()
    sample = population[:200]
    benchmark(lambda: sum(scheme.encode(b).zeros() for b in sample))


def test_throughput_ac_batch(benchmark, population):
    scheme = DbiAc()
    sample = population[:200]
    benchmark(lambda: sum(scheme.encode(b).zeros() for b in sample))


def test_throughput_netlist_evaluation(benchmark, population):
    netlist = build_opt_encoder(8)
    burst = population[0]
    flags = benchmark(netlist_invert_flags, netlist, burst)
    assert len(flags) == 8


# -- vectorized batch backend -------------------------------------------------

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")

#: Batch size of the tentpole speedup gate.
SPEEDUP_BATCH = 10_000

#: Required advantage of the vector backend over per-burst encoding.
SPEEDUP_FLOOR = 10.0


@pytest.fixture(scope="module")
def packed_10k():
    from repro.core.vectorized import pack_bursts
    from repro.workloads.random_data import random_bursts

    return pack_bursts(random_bursts(count=SPEEDUP_BATCH, seed=0x0DB1))


@needs_numpy
def test_throughput_opt_vector_batch(benchmark, packed_10k):
    """One solve_batch call over the full 10k-burst population."""
    from repro.core.vectorized import solve_batch

    model = CostModel.fixed()
    flags, costs = benchmark(solve_batch, packed_10k, model)
    assert flags.shape == (SPEEDUP_BATCH, 8)
    assert (costs > 0).all()


@needs_numpy
def test_throughput_collect_activity_vector(benchmark):
    """The sweep hot path: whole-population activity tally, vector backend."""
    from repro.sim.sweep import collect_activity
    from repro.workloads.random_data import random_bursts

    bursts = random_bursts(count=SPEEDUP_BATCH, seed=0x0DB1)
    scheme = DbiOptimal(CostModel.fixed())
    totals = benchmark(collect_activity, scheme, bursts, "vector")
    assert totals.bursts == SPEEDUP_BATCH


@needs_numpy
def test_vector_batch_speedup_at_10k(packed_10k):
    """Acceptance gate: ≥10× over per-burst reference encoding at 10k.

    Measured on the core DP itself (flags + costs for every burst), best
    of three runs each to shrug off scheduler noise; the observed margin
    is typically 30–100×, so the 10× floor has generous headroom.
    """
    from repro.core.burst import Burst
    from repro.core.vectorized import solve_batch

    model = CostModel.fixed()
    bursts = [Burst(row.tolist()) for row in packed_10k]

    def best_of(runs, fn):
        times = []
        for _ in range(runs):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    vector_time = best_of(3, lambda: solve_batch(packed_10k, model))
    reference_time = best_of(3, lambda: [solve(b, model) for b in bursts])

    speedup = reference_time / vector_time
    print(f"\nbatch={SPEEDUP_BATCH}: reference {reference_time:.3f}s, "
          f"vector {vector_time * 1e3:.1f}ms, speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR
