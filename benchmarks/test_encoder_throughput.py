"""Microbenchmarks — encoder throughput (software side).

Times the hot paths a memory-controller-model simulation would stress:
one trellis solve, batch encoding across schemes, and the gate-level
netlist evaluation of the Fig. 5 hardware model.
"""

import pytest

from repro.baselines import DbiAc, DbiDc
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.core.trellis import solve
from repro.hw.activity import netlist_invert_flags
from repro.hw.encoders import build_opt_encoder


def test_throughput_trellis_solve(benchmark, population):
    model = CostModel.fixed()
    burst = population[0]
    benchmark(solve, burst, model)


def test_throughput_opt_batch(benchmark, population):
    model = CostModel.fixed()
    scheme = DbiOptimal(model)
    sample = population[:200]

    def encode_batch():
        return sum(scheme.encode(burst).zeros() for burst in sample)

    total = benchmark(encode_batch)
    assert total > 0


def test_throughput_dc_batch(benchmark, population):
    scheme = DbiDc()
    sample = population[:200]
    benchmark(lambda: sum(scheme.encode(b).zeros() for b in sample))


def test_throughput_ac_batch(benchmark, population):
    scheme = DbiAc()
    sample = population[:200]
    benchmark(lambda: sum(scheme.encode(b).zeros() for b in sample))


def test_throughput_netlist_evaluation(benchmark, population):
    netlist = build_opt_encoder(8)
    burst = population[0]
    flags = benchmark(netlist_invert_flags, netlist, burst)
    assert len(flags) == 8
