"""Ablation — greedy weighted heuristic vs the optimal trellis search.

Chang et al. (paper §II) propose heuristic joint encodings; this bench
quantifies what the shortest-path formulation buys over a greedy
per-byte decision that uses exactly the same edge weights.
"""

import pytest

from conftest import emit
from repro.baselines import DbiGreedyWeighted
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.sim.report import markdown_table
from repro.sim.sweep import collect_activity

FRACTIONS = (0.2, 0.35, 0.5, 0.65, 0.8)


def _heuristic_gaps(population):
    rows = []
    gaps = {}
    for fraction in FRACTIONS:
        model = CostModel.from_ac_fraction(fraction)
        optimal = collect_activity(DbiOptimal(model), population).mean_cost(model)
        greedy = collect_activity(DbiGreedyWeighted(model),
                                  population).mean_cost(model)
        gap = 100.0 * (greedy / optimal - 1.0)
        gaps[fraction] = gap
        rows.append([f"{fraction:.2f}", f"{optimal:.3f}", f"{greedy:.3f}",
                     f"{gap:.2f}%"])
    return rows, gaps


def test_ablation_heuristics(benchmark, population):
    sample = population[:800]
    rows, gaps = benchmark.pedantic(_heuristic_gaps, args=(sample,),
                                    rounds=1, iterations=1)

    emit("Ablation — greedy weighted heuristic vs optimal",
         markdown_table(["AC cost", "optimal", "greedy", "greedy penalty"],
                        rows))

    # Greedy is never better than optimal (sanity) and pays a measurable
    # penalty somewhere in the balanced region.
    for fraction, gap in gaps.items():
        assert gap >= -1e-9
    assert max(gaps.values()) > 0.2

    # At the extremes the greedy rule coincides with DC/AC and the trellis
    # advantage shrinks.
    assert gaps[0.2] <= max(gaps.values())
