"""Fig. 2 — the worked example: optimal DBI encoding as a shortest path.

Regenerates the trellis solution and the Pareto frontier for the paper's
example burst and benchmarks the trellis solver itself (the operation a
memory controller would perform once per burst).
"""

import pytest

from conftest import emit
from repro.baselines import DbiAc, DbiDc
from repro.core.burst import PAPER_FIG2_BURST
from repro.core.costs import CostModel
from repro.core.pareto import enumerate_encodings, pareto_front, pareto_summary
from repro.core.schemes import EncodedBurst
from repro.core.trellis import solve

PAPER_PARETO = {(26, 42), (27, 28), (28, 24), (29, 23), (43, 22)}


def test_fig2_shortest_path(benchmark):
    model = CostModel.fixed()
    solution = benchmark(solve, PAPER_FIG2_BURST, model)

    encoded = EncodedBurst(burst=PAPER_FIG2_BURST,
                           invert_flags=solution.invert_flags)
    transitions, zeros = encoded.activity()
    dc = DbiDc().encode(PAPER_FIG2_BURST)
    ac = DbiAc().encode(PAPER_FIG2_BURST)

    rows = [
        f"DBI DC : zeros={dc.zeros():2d} transitions={dc.transitions():2d} "
        f"cost={dc.cost(model):.0f}   (paper: 26/42, cost 68)",
        f"DBI AC : zeros={ac.zeros():2d} transitions={ac.transitions():2d} "
        f"cost={ac.cost(model):.0f}   (paper: 43/22, cost 65)",
        f"DBI OPT: zeros={zeros:2d} transitions={transitions:2d} "
        f"cost={solution.total_cost:.0f}   (paper: 28/24, cost 52)",
    ]
    emit("Fig. 2 — worked example", "\n".join(rows))
    emit("Fig. 2 — Pareto frontier", pareto_summary(PAPER_FIG2_BURST))

    assert solution.total_cost == 52
    assert (dc.zeros(), dc.transitions()) == (26, 42)
    assert (ac.zeros(), ac.transitions()) == (43, 22)
    frontier = pareto_front(enumerate_encodings(PAPER_FIG2_BURST))
    assert {(p.zeros, p.transitions) for p in frontier} == PAPER_PARETO
