"""Fig. 3 — energy per burst vs AC-cost fraction for RAW/DC/AC/OPT.

Sweeps alpha from 0 to 1 (beta = 1 - alpha) over the random-burst
population, prints the series the paper plots, and asserts its landmarks:
the ~0.56 AC/DC crossover and OPT's ~6.75 % peak gain.
"""

import pytest

from conftest import emit
from repro.analysis.ascii_plot import quick_plot
from repro.analysis.crossover import (
    elementwise_min,
    interpolated_crossing,
    peak_advantage,
)
from repro.sim.report import format_alpha_sweep
from repro.sim.sweep import alpha_sweep


def test_fig3_alpha_sweep(benchmark, population):
    result = benchmark.pedantic(alpha_sweep, args=(population,),
                                kwargs={"points": 26},
                                rounds=1, iterations=1)

    emit("Fig. 3 — energy per burst (cost units)",
         format_alpha_sweep(result, points=11))
    emit("Fig. 3 — plot", quick_plot(
        result.ac_costs,
        {name: result.series[name]
         for name in ("raw", "dbi-dc", "dbi-ac", "dbi-opt")},
        title="energy per burst vs AC cost (paper Fig. 3)",
        x_label="AC cost (alpha)", height=14))

    raw = result.series["raw"]
    dc = result.series["dbi-dc"]
    ac = result.series["dbi-ac"]
    opt = result.series["dbi-opt"]

    # RAW is flat at ~32 cost units for uniform random bursts.
    assert all(abs(value - 32.0) < 0.8 for value in raw)

    # Endpoints: OPT degenerates to the specialist schemes.
    assert opt[0] == pytest.approx(dc[0])
    assert opt[-1] == pytest.approx(ac[-1])

    # 'DBI AC encoding is cheaper than DBI DC encoding starting from 0.56.'
    crossover = interpolated_crossing(result.ac_costs, ac, dc)
    emit("Fig. 3 — landmarks", f"AC/DC crossover at alpha = {crossover:.3f} "
         f"(paper: 0.56)")
    assert crossover == pytest.approx(0.56, abs=0.04)

    # 'the average cost per burst is ... 6.75% lower than with DBI AC or DC.'
    best = elementwise_min(dc, ac)
    peak_x, peak_gain = peak_advantage(result.ac_costs, opt, best)
    emit("Fig. 3 — landmarks",
         f"OPT peak gain {100 * peak_gain:.2f}% at alpha = {peak_x:.2f} "
         f"(paper: 6.75% at the crossover)")
    assert 0.05 < peak_gain < 0.08
    assert abs(peak_x - crossover) < 0.1

    # OPT is the lower envelope everywhere.
    for index in range(len(result.ac_costs)):
        assert opt[index] <= min(raw[index], dc[index], ac[index]) + 1e-9
