"""Streaming write-path gate: sustained tx/s with trace-size-independent RSS.

Replays a ``REPRO_BENCH_STREAM_MIB`` MiB (default 64) synthetic trace
through :meth:`MemoryController.submit_source` at the gated HBM-like
16-channel x 8-lane geometry, plus a quarter-size control run.  Each
replay happens in a **fresh subprocess** (``python -m repro.ctrl.smoke``)
because ``ru_maxrss`` is a per-process high-water mark — only a clean
process gives a trustworthy peak for one trace size.

Two gates:

* **throughput** — the full-size replay must sustain at least
  ``TXS_FLOOR`` transactions/second (the vector path measures ~30k tx/s
  here; the floor is deliberately conservative for noisy CI hosts);
* **bounded memory** — peak RSS of the full run may exceed the
  quarter-size run's by at most ``RSS_MARGIN_MIB``.  A replay that
  materialised the trace would grow by at least the 3/4-trace size
  difference (48 MiB at the default), an order of magnitude above the
  margin.

Results extend ``BENCH_ctrl_throughput.json`` under a ``"streaming"``
key (read-modify-write, so the throughput bench's sections survive).
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from conftest import emit

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - benches are skipped without NumPy
    HAVE_NUMPY = False

MIB = 1 << 20

#: Full-size trace of the gate, in MiB (CI runs the default 64).
STREAM_MIB = float(os.environ.get("REPRO_BENCH_STREAM_MIB", "64"))

#: Sustained throughput floor for the full-size replay.
TXS_FLOOR = float(os.environ.get("REPRO_BENCH_STREAM_TXS_FLOOR", "5000"))

#: Allowed peak-RSS growth between the quarter- and full-size replays.
RSS_MARGIN_MIB = 32.0

#: Absolute backstop — no streaming replay should ever come near this.
RSS_CEILING_MIB = 512.0

ARTIFACT_NAME = "BENCH_ctrl_throughput.json"


def _launch(mib):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.ctrl.smoke", "--mib", str(mib),
         "--rss-ceiling-mib", str(RSS_CEILING_MIB)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def _collect(process):
    stdout, stderr = process.communicate(timeout=1800)
    assert process.returncode == 0, stderr
    return json.loads(stdout.splitlines()[-1])


def _write_artifact(section):
    directory = pathlib.Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
    path = directory / ARTIFACT_NAME
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["streaming"] = section
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="the batched write path requires NumPy")
def test_streaming_rss_and_throughput_gate():
    # Both subprocesses run concurrently: wall time tracks the full-size
    # replay, and each still owns its ru_maxrss high-water mark.
    full_proc = _launch(STREAM_MIB)
    quarter_proc = _launch(STREAM_MIB / 4)
    full = _collect(full_proc)
    quarter = _collect(quarter_proc)

    rss_growth = full["max_rss_mib"] - quarter["max_rss_mib"]
    section = {
        "stream_mib": STREAM_MIB,
        "txs_floor": TXS_FLOOR,
        "rss_margin_mib": RSS_MARGIN_MIB,
        "rss_growth_mib": round(rss_growth, 1),
        "full": full,
        "quarter": quarter,
    }
    path = _write_artifact(section)

    emit(f"streaming replay at {STREAM_MIB:g} MiB (artifact: {path})",
         f"| full | {full['transactions']} tx in {full['elapsed_s']}s "
         f"({full['tx_per_s']:.0f} tx/s) | RSS {full['max_rss_mib']} MiB |\n"
         f"| quarter | {quarter['transactions']} tx in "
         f"{quarter['elapsed_s']}s ({quarter['tx_per_s']:.0f} tx/s) "
         f"| RSS {quarter['max_rss_mib']} MiB |\n"
         f"RSS growth {rss_growth:+.1f} MiB over a "
         f"{STREAM_MIB * 3 / 4:g} MiB trace-size increase "
         f"(margin {RSS_MARGIN_MIB:g} MiB, floor {TXS_FLOOR:g} tx/s)")

    assert full["bytes_streamed"] == int(STREAM_MIB * MIB)
    assert full["tx_per_s"] >= TXS_FLOOR, section
    assert rss_growth < RSS_MARGIN_MIB, section
