"""Fig. 7 — interface energy per burst vs data rate, normalised to RAW.

POD135 (GDDR5X) with 3 pF load, 0.5-20 Gbps.  Asserts: DBI DC wins below
~3.8 Gbps, OPT (Fixed) wins beyond it with its best region around
10-16 Gbps, and DBI AC never catches OPT (Fixed) below 20 Gbps.
"""

import pytest

from conftest import emit
from repro.analysis.ascii_plot import quick_plot
from repro.analysis.crossover import interpolated_crossing
from repro.phy.pod import pod12, pod135
from repro.phy.power import GBPS, PICOFARAD
from repro.sim.report import format_data_rate_sweep
from repro.sim.sweep import data_rate_sweep

RATES = [0.5 * GBPS * step for step in range(1, 41)]


def test_fig7_datarate_sweep(benchmark, population):
    result = benchmark.pedantic(
        data_rate_sweep, args=(population[:1000],),
        kwargs={"interface": pod135(), "c_load_farads": 3 * PICOFARAD,
                "data_rates_hz": RATES},
        rounds=1, iterations=1)

    emit("Fig. 7 — normalised interface energy (POD135, 3 pF)",
         format_data_rate_sweep(result, every=4))
    gbps = [rate / 1e9 for rate in RATES]
    emit("Fig. 7 — plot", quick_plot(
        gbps,
        {name: result.normalized[name]
         for name in ("dbi-dc", "dbi-ac", "dbi-opt", "dbi-opt-fixed")},
        title="energy per burst normalised to RAW (paper Fig. 7)",
        x_label="data rate [Gbps]", height=14))

    dc = result.normalized["dbi-dc"]
    ac = result.normalized["dbi-ac"]
    fixed = result.normalized["dbi-opt-fixed"]
    opt = result.normalized["dbi-opt"]

    # 'DBI DC performs better than DBI OPT (Fixed) until 3.8 Gbps.'
    crossover = interpolated_crossing(gbps, fixed, dc)
    emit("Fig. 7 — landmarks",
         f"OPT (Fixed) overtakes DBI DC at {crossover:.2f} Gbps (paper: 3.8)")
    assert crossover == pytest.approx(3.8, abs=1.0)
    assert dc[0] < fixed[0]

    # 'DBI AC would require significantly more than 20 Gbps to beat it.'
    for ac_value, fixed_value in zip(ac, fixed):
        assert fixed_value <= ac_value

    # OPT is the lower envelope at every rate.
    for index in range(len(RATES)):
        assert opt[index] <= min(dc[index], ac[index], fixed[index]) + 1e-9

    # Best OPT region sits in the >= 10 Gbps band for 3 pF.
    best_rate, best_value = result.best_gain("dbi-opt")
    emit("Fig. 7 — landmarks",
         f"OPT best point {100 * (1 - best_value):.1f}% below RAW at "
         f"{best_rate / 1e9:.1f} Gbps (paper: max gain around 14 Gbps)")

    # 'results for DDR4 with POD12 are almost identical' (normalised).
    pod12_result = data_rate_sweep(population[:400], interface=pod12(),
                                   c_load_farads=3 * PICOFARAD,
                                   data_rates_hz=RATES[::8])
    for name in ("dbi-dc", "dbi-opt-fixed"):
        for a, b in zip(result.normalized[name][::8],
                        pod12_result.normalized[name]):
            assert a == pytest.approx(b, abs=0.02)
