"""Ablation — DBI granularity (beyond the paper).

Sweeps the invert-group size (1/2/4/8 data lanes per DBI line) with the
optimal encoder, quantifying the trade between encoding freedom and
DBI-lane overhead, and the pin cost of each point.
"""

import pytest

from conftest import emit
from repro.core.costs import CostModel
from repro.extensions.granularity import VALID_GROUP_SIZES, granularity_table
from repro.sim.report import markdown_table


def test_ablation_granularity(benchmark, population):
    sample = population[:600]
    model = CostModel.fixed()
    rows = benchmark.pedantic(granularity_table, args=(sample, model),
                              rounds=1, iterations=1)

    table_rows = [[g, f"{zeros:.2f}", f"{transitions:.2f}", f"{cost:.2f}",
                   lines] for g, zeros, transitions, cost, lines in rows]
    emit("Ablation — DBI granularity (optimal encoder, alpha = beta = 1)",
         markdown_table(["group size", "mean zeros", "mean transitions",
                         "mean cost", "lines per byte lane"], table_rows))

    costs = {g: cost for g, _z, _t, cost, _l in rows}
    lines = {g: l for g, _z, _t, _c, l in rows}

    # Pin cost falls monotonically with coarser groups.
    assert lines[1] > lines[2] > lines[4] > lines[8]

    # Bit-level DBI is useless: inverting one lane just moves its activity
    # onto the paired DBI lane.
    assert costs[1] > costs[8]

    # Nibble DBI edges out the JEDEC byte granularity, but only slightly —
    # the standard's 8-bit groups buy near-optimal cost at minimal pins.
    assert costs[4] < costs[8]
    assert costs[8] / costs[4] < 1.03
