"""Ablation — reliability under wire faults and encoder mis-decisions.

Quantifies the two failure modes that frame the paper's analog-encoder
remark: wrong invert decisions are free of data corruption (only energy),
while wire faults on the DBI lane are amplified eight-fold by decoding.
"""

import pytest

from conftest import emit
from repro.baselines import DbiDc, Raw
from repro.core.costs import CostModel
from repro.core.encoder import DbiOptimal
from repro.extensions.reliability import fault_sweep, wrong_decision_is_harmless
from repro.sim.report import markdown_table


def test_ablation_reliability(benchmark, population):
    sample = population[:400]
    model = CostModel.fixed()
    schemes = {"raw": Raw(), "dbi-dc": DbiDc(), "dbi-opt": DbiOptimal(model)}

    def run():
        return {name: fault_sweep(scheme, sample, faults_per_burst=2, seed=5)
                for name, scheme in schemes.items()}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name,
             result.injected_faults,
             f"{result.mean_amplification:.3f}",
             result.dbi_lane_faults,
             f"{result.dbi_amplification:.1f}"]
            for name, result in stats.items()]
    emit("Ablation — single-lane wire-fault amplification",
         markdown_table(["scheme", "faults", "mean bits corrupted / fault",
                         "DBI-lane faults", "bits / DBI-lane fault"], rows))

    for name, result in stats.items():
        # Data-lane faults stay single-bit; DBI-lane faults cost 8 bits.
        assert result.dbi_amplification == pytest.approx(8.0)
        # Expected amplification of a uniform lane fault: (8 + 8)/9.
        assert result.mean_amplification == pytest.approx(16 / 9, rel=0.2)

    # Encoder mis-decisions are harmless for every scheme (spot-check a
    # slice of the population exhaustively).
    for burst in sample[:40]:
        for scheme in schemes.values():
            assert wrong_decision_is_harmless(burst, scheme)
    emit("Ablation — encoder mis-decisions",
         "flipping any single invert decision never corrupts decoded data "
         "(checked exhaustively on 40 bursts x 3 schemes)")
