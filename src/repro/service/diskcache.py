"""Persistent, concurrency-safe tier of the activity cache.

:class:`DiskActivityCache` subclasses
:class:`~repro.sim.experiments.ActivityCache` and keeps its in-memory
dict as the front tier: every :meth:`store` writes through to disk,
every successful disk read populates the memory tier, and the engine's
``key in cache`` / ``cache.get(key)`` protocol works unchanged — the
executors in :mod:`repro.sim.experiments` cannot tell the tiers apart.

On-disk layout
--------------

One JSON file per cache key, named ``sha256(key).json`` inside the cache
directory, containing the key itself (collision/corruption guard), a
``kind`` discriminator and the integer record::

    {"format": "repro.cache/1", "key": "...", "kind": "activity",
     "record": {"transitions": ..., "zeros": ..., "bursts": ...}}

All four record families of the engine round-trip:
:class:`~repro.sim.experiments.ActivityTotals` (encode entries),
:class:`~repro.sim.experiments.ReplayTotals` (controller replays),
:class:`~repro.extensions.reliability.FaultCoverageRow` (fault-coverage
rows) and :class:`~repro.analysis.sso.SsoStatistics`
(simultaneous-switching tallies; histogram keys are stringified in JSON
and restored to ints on decode).

Concurrency
-----------

Writers are safe without locks: a store writes to a unique temporary
file in the cache directory and publishes it with :func:`os.replace`,
which is atomic on POSIX and Windows — a reader sees either the old
complete entry or the new complete entry, never a torn one.  Keys are
content-addressed (two writers racing on one key are writing the same
bytes by construction), so last-writer-wins is also correct.  The read
path takes no locks and never blocks on writers; entries that fail to
parse (foreign files, manual truncation) are treated as misses and
simply rewritten.

Graceful degradation
--------------------

A serving cache must survive a sick disk instead of killing the run:

* **write failures** (disk full, permissions, a vanished mount) do not
  raise — the first one downgrades the tier to *memory-only* (the
  in-process dict keeps serving; disk writes stop) and is counted;
* **corrupt entries** found on read are quarantined exactly once — the
  file is renamed to ``*.bad`` so it is never re-parsed, the read counts
  as a miss, and the next store rewrites a clean entry;
* :meth:`health` reports the whole picture (tier, degradation reason,
  write/read failures, quarantined entries) — the daemon exposes it via
  its ``health`` op.

Both behaviours preserve the repro's core invariant: a degraded run
re-encodes instead of serving bad bytes, so its results stay
bit-identical to a healthy run's.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterator, Optional, Tuple

from ..analysis.sso import SsoStatistics
from ..extensions.reliability import FaultCoverageRow
from ..sim.experiments import ActivityCache, ActivityTotals, ReplayTotals

#: Identifier written into every cache entry file.
CACHE_FORMAT = "repro.cache/1"

#: Environment variable selecting the shared cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


# -- record (de)serialisation ------------------------------------------------

def encode_record(totals) -> Tuple[str, Dict[str, object]]:
    """``(kind, JSON record)`` for any cached-totals value."""
    if isinstance(totals, ActivityTotals):
        return "activity", {"transitions": totals.transitions,
                            "zeros": totals.zeros,
                            "bursts": totals.bursts}
    if isinstance(totals, ReplayTotals):
        record: Dict[str, object] = {
            "transactions": totals.transactions,
            "bytes_written": totals.bytes_written,
            "beats": totals.beats,
            "channels": [list(channel) for channel in totals.channels]}
        if totals.segments:
            # Adaptive replays only; absent for fixed-point entries, so
            # pre-existing cache files keep decoding (and re-encoding a
            # fixed-point entry reproduces the old bytes exactly).
            record["segments"] = [list(segment)
                                  for segment in totals.segments]
        return "replay", record
    if isinstance(totals, FaultCoverageRow):
        return "fault", {"rate": totals.rate,
                         "injected_faults": totals.injected_faults,
                         "total_beats": totals.total_beats,
                         "bit_errors": totals.bit_errors,
                         "corrupted_beats": totals.corrupted_beats,
                         "dbi_lane_faults": totals.dbi_lane_faults}
    if isinstance(totals, SsoStatistics):
        return "sso", {"beats": totals.beats,
                       "max_switching": totals.max_switching,
                       "total_switching": totals.total_switching,
                       "histogram": {str(k): count for k, count
                                     in sorted(totals.histogram.items())}}
    raise TypeError(f"cannot persist cache record of type "
                    f"{type(totals).__name__}")


def decode_record(kind: str, record: Dict[str, object]):
    """Inverse of :func:`encode_record`."""
    if kind == "activity":
        return ActivityTotals(transitions=int(record["transitions"]),
                              zeros=int(record["zeros"]),
                              bursts=int(record["bursts"]))
    if kind == "replay":
        return ReplayTotals(
            transactions=int(record["transactions"]),
            bytes_written=int(record["bytes_written"]),
            beats=int(record["beats"]),
            channels=tuple(tuple(int(value) for value in channel)
                           for channel in record["channels"]),
            segments=tuple(
                (str(label), int(zeros), int(transitions), int(beats))
                for label, zeros, transitions, beats
                in record.get("segments", ())))
    if kind == "fault":
        return FaultCoverageRow(
            rate=float(record["rate"]),
            injected_faults=int(record["injected_faults"]),
            total_beats=int(record["total_beats"]),
            bit_errors=int(record["bit_errors"]),
            corrupted_beats=int(record["corrupted_beats"]),
            dbi_lane_faults=int(record["dbi_lane_faults"]))
    if kind == "sso":
        return SsoStatistics(
            beats=int(record["beats"]),
            max_switching=int(record["max_switching"]),
            total_switching=int(record["total_switching"]),
            histogram={int(k): int(count) for k, count
                       in record["histogram"].items()})
    raise ValueError(f"unknown cache record kind {kind!r}")


# -- the disk tier -----------------------------------------------------------

class DiskActivityCache(ActivityCache):
    """An :class:`~repro.sim.experiments.ActivityCache` that persists.

    ``directory`` is created on first use.  The inherited dict is the
    in-process read tier; the directory is the shared source of truth.
    Pass the same directory to any number of concurrent processes (or
    machines over a shared filesystem) — see the module docstring for
    the guarantees.
    """

    def __init__(self, directory) -> None:
        super().__init__()
        self.directory = os.path.abspath(os.fspath(directory))
        self.write_failures = 0
        self.read_failures = 0
        self.quarantined = 0
        self._disk_disabled = False
        self._degraded_reason: Optional[str] = None
        self._unquarantinable: set = set()
        try:
            os.makedirs(self.directory, exist_ok=True)
        except OSError as error:
            self._degrade(error)

    def _degrade(self, error: OSError) -> None:
        """A disk write failed: drop to the memory-only tier, loudly counted."""
        self.write_failures += 1
        if not self._disk_disabled:
            self._disk_disabled = True
            self._degraded_reason = f"{type(error).__name__}: {error}"

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside (once) so it is never re-parsed."""
        if path in self._unquarantinable:
            return
        try:
            os.replace(path, f"{path}.bad")
            self.quarantined += 1
        except OSError:
            # Can't rename (read-only dir?) — remember the path so the
            # corrupt file is counted and re-probed at most once.
            self._unquarantinable.add(path)
            self.read_failures += 1

    def _path(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self.directory, f"{digest}.json")

    def _load(self, key: str):
        """Read one entry from disk into memory; ``None`` on any miss.

        A missing file is a plain miss.  An unreadable file counts as a
        read failure.  A file that exists but fails to parse, carries
        the wrong key, or decodes to garbage is *corrupt*: it is
        quarantined to ``*.bad`` and the read is a miss — the caller
        re-encodes and the next store publishes a clean entry.
        """
        if key in self._totals:
            return self._totals[key]
        path = self._path(key)
        try:
            handle = open(path, "r", encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            self.read_failures += 1
            return None
        try:
            with handle:
                payload = json.load(handle)
        except OSError:
            self.read_failures += 1
            return None
        except (ValueError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if (not isinstance(payload, dict)
                or payload.get("format") != CACHE_FORMAT
                or payload.get("key") != key):
            self._quarantine(path)
            return None
        try:
            totals = decode_record(payload["kind"], payload["record"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None
        self._totals[key] = totals
        return totals

    def __contains__(self, key: str) -> bool:
        return self._load(key) is not None

    def get(self, key: str):
        totals = self._load(key)
        if totals is None:
            raise KeyError(key)
        return totals

    def _publish(self, temp: str, path: str) -> None:
        """Atomically publish a complete temp file (seam for fault tests)."""
        os.replace(temp, path)

    def store(self, key: str, totals) -> None:
        kind, record = encode_record(totals)
        self._totals[key] = totals
        if self._disk_disabled:
            return  # degraded: memory-only tier keeps serving
        payload = {"format": CACHE_FORMAT, "key": key, "kind": kind,
                   "record": record}
        path = self._path(key)
        # Unique temp name per writer: atomic publish via os.replace.
        temp = f"{path}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
        try:
            try:
                with open(temp, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                    handle.write("\n")
                self._publish(temp, path)
            except OSError as error:
                self._degrade(error)
        finally:
            try:
                if os.path.exists(temp):  # publish failed midway
                    os.unlink(temp)
            except OSError:
                pass

    def health(self) -> Dict[str, object]:
        """Degradation snapshot (also served by the daemon's ``health`` op)."""
        return {
            "tier": "memory-only" if self._disk_disabled else "disk",
            "degraded": self._disk_disabled,
            "degraded_reason": self._degraded_reason,
            "directory": self.directory,
            "memory_entries": len(self._totals),
            "write_failures": self.write_failures,
            "read_failures": self.read_failures,
            "quarantined": self.quarantined,
            "hits": self.hits,
            "misses": self.misses,
        }

    def _entry_files(self) -> Iterator[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return iter(())
        return (os.path.join(self.directory, name)
                for name in sorted(names) if name.endswith(".json"))

    def __len__(self) -> int:
        # Stores write through, so disk is a superset of memory.
        return sum(1 for __ in self._entry_files())

    def iter_keys(self) -> Iterator[str]:
        """Yield every persisted cache key (sorted by file name)."""
        for path in self._entry_files():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if (isinstance(payload, dict)
                        and payload.get("format") == CACHE_FORMAT):
                    yield str(payload["key"])
            except (OSError, ValueError, KeyError):
                continue

    def clear(self) -> None:
        for path in list(self._entry_files()):
            try:
                os.unlink(path)
            except OSError:
                pass
        super().clear()


# -- directory resolution ----------------------------------------------------

def resolve_cache_dir(explicit: Optional[str] = None) -> Optional[str]:
    """The cache directory to use: explicit flag, else ``REPRO_CACHE_DIR``.

    Returns ``None`` when neither is set (callers then keep the engine's
    default fresh in-memory cache).
    """
    if explicit:
        return os.fspath(explicit)
    return os.environ.get(CACHE_DIR_ENV) or None


def open_cache(cache_dir: Optional[str] = None
               ) -> Optional[DiskActivityCache]:
    """A :class:`DiskActivityCache` for the resolved directory, or ``None``."""
    resolved = resolve_cache_dir(cache_dir)
    if resolved is None:
        return None
    return DiskActivityCache(resolved)
