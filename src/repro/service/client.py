"""Retrying blocking client for the experiment daemon.

One TCP connection, JSON lines in both directions, no dependencies::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 7351) as client:
        client.ping()
        artifact = client.sweep(figure="alpha", samples=2000, points=26)
        stats = client.stats()

Convenience methods raise :class:`ServiceError` on ``ok: false``
responses and return the useful member (the artifact payload, the stats
dict, ...); :meth:`ServiceClient.request` is the raw escape hatch that
returns the full response object either way.

Fault tolerance
---------------

Every daemon op is idempotent (queries are deterministic and
cache-backed), so the convenience methods retry transient transport
failures — connection resets, stalls past the socket timeout, torn
response lines, daemon *busy* answers — under a shared
:class:`~repro.service.retry.RetryPolicy` with deterministic seeded
backoff.  A failed :meth:`request` always marks the connection broken
and drops it, so the next attempt reconnects and resyncs instead of
reading a stale or half-consumed line off the old stream; a response
line that cannot be parsed is treated the same way (never trusted).
:meth:`request` itself stays single-shot for callers that need manual
control.  Non-transient failures (:class:`ServiceError` answers from
the daemon) propagate immediately.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Mapping, Optional

from .retry import RetryPolicy, TransientServiceError


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false``; the message is its ``error``."""


class ServiceBusyError(ServiceError, TransientServiceError):
    """The daemon answered *busy* (``retryable: true``) — try again."""


#: Default client policy: three attempts, 50 ms seeded-jitter backoff.
DEFAULT_CLIENT_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.05)


class ServiceClient:
    """A persistent JSON-lines connection to one daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7351,
                 timeout: Optional[float] = 60.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_CLIENT_RETRY
        self._sock: Optional[socket.socket] = None
        self._file = None

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        """Drop the connection; idempotent and exception-safe.

        The socket is closed even if flushing the buffered file raises,
        and a second :meth:`close` is a no-op.
        """
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, request: Mapping[str, object]) -> Dict[str, object]:
        """Send one request object, return the full response object.

        Single-shot: transport failures raise after marking the
        connection broken (closed), so the *next* call reconnects and
        resyncs rather than reading a stale line.  Use the convenience
        wrappers for automatic retries.
        """
        self.connect()
        try:
            self._file.write(json.dumps(dict(request),
                                        separators=(",", ":"))
                             .encode("utf-8"))
            self._file.write(b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError:
            self.close()
            raise
        if not line:
            self.close()
            raise ConnectionError("daemon closed the connection")
        if not line.endswith(b"\n"):
            self.close()
            raise ConnectionError(
                f"truncated daemon response ({len(line)} bytes, no newline)")
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            self.close()
            raise ConnectionError(
                f"malformed daemon response line: {error}") from error
        if not isinstance(response, dict):
            self.close()
            raise ConnectionError(f"malformed daemon response: {response!r}")
        return response

    def _checked(self, request: Mapping[str, object]) -> Dict[str, object]:
        def attempt() -> Dict[str, object]:
            response = self.request(request)
            if not response.get("ok"):
                error = str(response.get("error", "unknown error"))
                if response.get("retryable"):
                    raise ServiceBusyError(error)
                raise ServiceError(error)
            return response

        return self.retry.call(attempt)

    # -- convenience wrappers -------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self._checked({"op": "ping"})

    def stats(self) -> Dict[str, object]:
        return self._checked({"op": "stats"})["stats"]

    def health(self) -> Dict[str, object]:
        """The daemon's degradation snapshot (cache tier, failures, load)."""
        return self._checked({"op": "health"})["health"]

    def sweep(self, **params) -> Dict[str, object]:
        """Run a figure sweep; returns the ``repro.experiment/1`` artifact."""
        return self._checked({"op": "sweep", **params})["artifact"]

    def replay(self, **params) -> Dict[str, object]:
        """Run a controller replay; returns the ``kind="replay"`` artifact."""
        return self._checked({"op": "replay", **params})["artifact"]

    def artifacts(self) -> list:
        """Names of the artifacts the daemon can serve."""
        return list(self._checked({"op": "artifact"})["artifacts"])

    def artifact(self, name: str) -> Dict[str, object]:
        """Fetch one stored artifact by name."""
        return self._checked({"op": "artifact", "name": name})["artifact"]
