"""Thin blocking client for the experiment daemon.

One TCP connection, JSON lines in both directions, no dependencies::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 7351) as client:
        client.ping()
        artifact = client.sweep(figure="alpha", samples=2000, points=26)
        stats = client.stats()

Convenience methods raise :class:`ServiceError` on ``ok: false``
responses and return the useful member (the artifact payload, the stats
dict, ...); :meth:`ServiceClient.request` is the raw escape hatch that
returns the full response object either way.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Mapping, Optional


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false``; the message is its ``error``."""


class ServiceClient:
    """A persistent JSON-lines connection to one daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7351,
                 timeout: Optional[float] = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, request: Mapping[str, object]) -> Dict[str, object]:
        """Send one request object, return the full response object."""
        self.connect()
        self._file.write(json.dumps(dict(request),
                                    separators=(",", ":")).encode("utf-8"))
        self._file.write(b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise ConnectionError(f"malformed daemon response: {response!r}")
        return response

    def _checked(self, request: Mapping[str, object]) -> Dict[str, object]:
        response = self.request(request)
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown error")))
        return response

    # -- convenience wrappers -------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self._checked({"op": "ping"})

    def stats(self) -> Dict[str, object]:
        return self._checked({"op": "stats"})["stats"]

    def sweep(self, **params) -> Dict[str, object]:
        """Run a figure sweep; returns the ``repro.experiment/1`` artifact."""
        return self._checked({"op": "sweep", **params})["artifact"]

    def replay(self, **params) -> Dict[str, object]:
        """Run a controller replay; returns the ``kind="replay"`` artifact."""
        return self._checked({"op": "replay", **params})["artifact"]

    def artifacts(self) -> list:
        """Names of the artifacts the daemon can serve."""
        return list(self._checked({"op": "artifact"})["artifacts"])

    def artifact(self, name: str) -> Dict[str, object]:
        """Fetch one stored artifact by name."""
        return self._checked({"op": "artifact", "name": name})["artifact"]
