"""Deterministic chaos harness for the service stack.

Fault injection for *infrastructure* with the same discipline the repro
applies to fault injection for *data*
(:mod:`repro.extensions.reliability`): every failure is drawn from a
seeded, self-describing :class:`FaultPlan`, so a chaos run is
reproducible byte-for-byte and a differential test can assert the
invariant that matters — under any planned fault schedule the final
result is either **bit-identical** to the fault-free run or a loud,
typed error, never silent corruption.

Three injectors consume a plan:

* :class:`FaultyCache` wraps any
  :class:`~repro.sim.experiments.ActivityCache` and injects cache-layer
  faults (``oserror`` write failures, ``torn`` lost publishes,
  ``corrupt`` on-disk garbage, ``stale`` spurious misses) at planned
  operation indices;
* :class:`FlakyProxy` sits between a client and the daemon and injects
  transport faults (``reset``, ``partial`` response lines, ``stall``);
* :func:`crash_point` is an environment-armed process-kill point (the
  shard workers call it) for simulating killed sweep workers — it
  fires exactly once per named sentinel, so a retried worker survives.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..sim.experiments import ActivityCache
from .diskcache import DiskActivityCache

#: Fault kinds :class:`FaultyCache` can inject.
CACHE_FAULTS = ("oserror", "torn", "corrupt", "stale")

#: Fault kinds :class:`FlakyProxy` can inject.
PROXY_FAULTS = ("reset", "partial", "stall")

#: Environment variable arming :func:`crash_point`:
#: ``name@sentinel_path`` entries separated by ``;`` (names may contain
#: ``:``, so ``os.pathsep`` would split them on POSIX).
CRASH_POINTS_ENV = "REPRO_FAULT_POINTS"

#: Exit code of a process killed by :func:`crash_point`.
CRASH_EXIT_CODE = 17


class FaultPlan:
    """A seeded, immutable schedule mapping operation index → fault kind.

    The plan is the single source of chaos: injectors ask
    :meth:`fault_at` with their running operation counter and fire
    whatever the schedule says.  Two plans built from the same seed (or
    the same explicit schedule) drive byte-identical chaos runs.
    """

    def __init__(self, schedule: Mapping[int, str],
                 label: str = "explicit") -> None:
        self.schedule: Dict[int, str] = {int(index): str(kind)
                                         for index, kind in schedule.items()}
        self.label = label

    @classmethod
    def seeded(cls, seed: int, kinds: Sequence[str] = CACHE_FAULTS,
               horizon: int = 64, rate: float = 0.2) -> "FaultPlan":
        """A reproducible random schedule over ``range(horizon)``.

        Each index independently faults with probability *rate*, drawing
        its kind uniformly from *kinds*; beyond the horizon the plan is
        clean, so any bounded retry budget eventually wins.
        """
        if not kinds:
            raise ValueError("need at least one fault kind")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        rng = random.Random(f"faultplan:{seed}")
        schedule = {}
        for index in range(horizon):
            if rng.random() < rate:
                schedule[index] = kinds[rng.randrange(len(kinds))]
        return cls(schedule,
                   label=f"seeded(seed={seed},rate={rate},horizon={horizon})")

    def fault_at(self, index: int) -> Optional[str]:
        return self.schedule.get(index)

    def __len__(self) -> int:
        return len(self.schedule)

    def describe(self) -> str:
        """Canonical JSON of the schedule (for provenance / debugging)."""
        return json.dumps({"label": self.label,
                           "schedule": {str(index): kind for index, kind
                                        in sorted(self.schedule.items())}},
                          sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.label}, {len(self.schedule)} faults)"


class FaultyCache(ActivityCache):
    """Wrap any :class:`~repro.sim.experiments.ActivityCache` with chaos.

    Every lookup (``key in cache``) and every :meth:`store` consumes one
    operation index from the plan, in call order; :meth:`get` is free so
    the engine's store-then-price sequence stays usable mid-chaos.  The
    injected faults:

    ``oserror``
        :meth:`store` raises :class:`OSError` (disk full) — nothing is
        persisted; the caller (e.g. a retried shard) must recover.
    ``torn``
        the store is silently lost, as if the process died between the
        temp write and the atomic publish; over a disk inner tier a
        realistic orphaned ``*.chaos.tmp`` file is left behind.
    ``corrupt``
        the store succeeds, then the published on-disk entry is garbled
        — the running process keeps its memory tier, but any *fresh*
        reader of the directory must quarantine the entry and re-encode.
    ``stale``
        the lookup reports a miss even when the entry exists, forcing a
        (bit-identical) re-encode.

    ``injected`` counts what actually fired, per kind.
    """

    def __init__(self, inner: ActivityCache, plan: FaultPlan) -> None:
        super().__init__()
        self.inner = inner
        self.plan = plan
        self.calls = 0
        self.injected: Dict[str, int] = {}

    def _tick(self) -> Optional[str]:
        kind = self.plan.fault_at(self.calls)
        self.calls += 1
        return kind

    def _record(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def __contains__(self, key: str) -> bool:
        if self._tick() == "stale":
            self._record("stale")
            return False
        return key in self.inner

    def get(self, key: str):
        return self.inner.get(key)

    def store(self, key: str, totals) -> None:
        kind = self._tick()
        if kind == "oserror":
            self._record("oserror")
            raise OSError(28, "injected fault: no space left on device")
        if kind == "torn":
            # The publish is lost but the writing process keeps its
            # memory-tier copy — exactly what dying between the temp
            # write and os.replace looks like.  Only fresh readers of
            # the directory see the miss.
            self._record("torn")
            if isinstance(self.inner, DiskActivityCache):
                self.inner._totals[key] = totals
                torn = f"{self.inner._path(key)}.{os.getpid()}.chaos.tmp"
                try:
                    with open(torn, "w", encoding="utf-8") as handle:
                        handle.write('{"format": "repro.cache/1", "key"')
                except OSError:
                    pass
            else:
                self.inner.store(key, totals)
            return
        self.inner.store(key, totals)
        if kind == "corrupt":
            self._record("corrupt")
            if isinstance(self.inner, DiskActivityCache):
                try:
                    with open(self.inner._path(key), "w",
                              encoding="utf-8") as handle:
                        handle.write('{"format": "repro.cache/1", "corrupt')
                except OSError:
                    pass

    def __len__(self) -> int:
        return len(self.inner)

    def clear(self) -> None:
        self.inner.clear()
        super().clear()

    def health(self) -> Dict[str, object]:
        snapshot = (self.inner.health() if hasattr(self.inner, "health")
                    else {})
        snapshot = dict(snapshot)
        snapshot["injected_faults"] = dict(self.injected)
        snapshot["fault_plan"] = self.plan.label
        return snapshot


def crash_point(name: str) -> None:
    """Deterministic once-only process-kill point (chaos suite hook).

    A no-op unless ``REPRO_FAULT_POINTS`` holds a ``name@sentinel_path``
    entry for *name* (entries separated by ``;``).  The first
    process to pass an armed point atomically claims the sentinel file
    and dies with ``os._exit(CRASH_EXIT_CODE)`` — a later retry of the
    same work finds the sentinel and survives, which is exactly the
    "worker killed once mid-sweep" shape the shard driver must absorb.
    """
    spec = os.environ.get(CRASH_POINTS_ENV)
    if not spec:
        return
    for entry in spec.split(";"):
        point, sep, sentinel = entry.rpartition("@")
        if not sep or point != name:
            continue
        try:
            handle = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:
            continue  # already claimed — this point fired before
        os.write(handle, f"crash_point({name})\n".encode("utf-8"))
        os.close(handle)
        os._exit(CRASH_EXIT_CODE)


class FlakyProxy:
    """A TCP proxy injecting planned transport faults in front of a daemon.

    Relays JSON-lines exchanges (one request line in, one response line
    out) between clients and ``upstream``; each exchange consumes one
    plan index, shared across connections in arrival order:

    ``reset``
        the connection is closed before the request reaches the daemon
        (the client sees EOF — a clean idempotent-retry case);
    ``partial``
        only the first half of the response line is delivered, then the
        connection closes — the client must treat the torn line as a
        broken connection and resync, never parse it;
    ``stall``
        the response is withheld for ``stall_s`` seconds (longer than a
        sensible client timeout), then the connection closes.

    After any fault the connection dies; a retrying client reconnects
    and the next exchange draws the next plan index.
    """

    def __init__(self, upstream: Tuple[str, int], plan: FaultPlan,
                 host: str = "127.0.0.1", port: int = 0,
                 stall_s: float = 1.0) -> None:
        self.upstream = upstream
        self.plan = plan
        self.stall_s = stall_s
        self.exchanges = 0
        self.injected: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self._listener.settimeout(0.2)
        self._threads: list = []
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._listener.getsockname()[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()
        return self.address

    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for thread in self._threads:
            thread.join(timeout=5)

    # -- internals -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(target=self._serve, args=(client,),
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def _next_fault(self) -> Optional[str]:
        with self._lock:
            kind = self.plan.fault_at(self.exchanges)
            self.exchanges += 1
            if kind is not None:
                self.injected[kind] = self.injected.get(kind, 0) + 1
        return kind

    def _serve(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self.upstream, timeout=30)
        except OSError:
            client.close()
            return
        client_file = client.makefile("rwb")
        upstream_file = upstream.makefile("rwb")
        try:
            while not self._stop.is_set():
                request = client_file.readline()
                if not request:
                    return
                kind = self._next_fault()
                if kind == "reset":
                    return  # drop the connection before the daemon sees it
                upstream_file.write(request)
                upstream_file.flush()
                response = upstream_file.readline()
                if not response:
                    return
                if kind == "partial":
                    client_file.write(response[:max(1, len(response) // 2)])
                    client_file.flush()
                    return
                if kind == "stall":
                    time.sleep(self.stall_s)
                    return
                client_file.write(response)
                client_file.flush()
        except OSError:
            return
        finally:
            for closeable in (client_file, upstream_file, client, upstream):
                try:
                    closeable.close()
                except OSError:
                    pass

    def __enter__(self) -> "FlakyProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
