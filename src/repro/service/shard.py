"""Deterministic sharding of experiment grids.

A sweep's grid cells are independent given the cached activity totals,
so an :class:`~repro.sim.experiments.ExperimentSpec` splits exactly:
:func:`shard_spec` cuts the grid into N contiguous balanced slices (the
slot list, population and pricing ride along unchanged), each shard runs
through the ordinary :func:`~repro.sim.experiments.run_experiment` —
in-process, as an independent OS process, or on another machine sharing
a :class:`~repro.service.diskcache.DiskActivityCache` directory — and
:func:`merge_shards` concatenates the results back into one
:class:`~repro.sim.experiments.ExperimentResult` **bit-identical** to
the unsharded run: totals are exact integers and every cell is priced
only from its own grid point, so no float ever crosses a shard boundary.

Shard identity travels inside ``figure_params["shard"]`` (index, count,
parent name, grid offset, and the parent's figure identity), which makes
shards self-describing: they persist as ordinary ``repro.experiment/1``
artifacts, and :func:`merge_shards` can reassemble results loaded back
from JSON just as well as in-memory ones.

:func:`run_shards` is the local driver — shard, execute (optionally on a
process pool with a shared disk cache so static slots are encoded once
per *run*, not once per shard), merge.
"""

from __future__ import annotations

import platform
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.experiments import (
    ActivityCache,
    ActivityTotals,
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from ..workloads.population import DEFAULT_CHUNK_SIZE
from .diskcache import DiskActivityCache


def shard_spec(spec: ExperimentSpec, count: int) -> Tuple[ExperimentSpec, ...]:
    """Split *spec* into at most *count* runnable single-slice specs.

    The grid is cut into contiguous balanced slices in declaration
    order, so ``shard_spec(spec, 1)[0]`` differs from *spec* only by the
    shard tag and the number of shards never exceeds the number of grid
    points.  The split is deterministic: the same ``(spec, count)``
    always produces identical shards.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    cells = len(spec.grid)
    count = min(count, cells)
    shards: List[ExperimentSpec] = []
    for index in range(count):
        start = index * cells // count
        stop = (index + 1) * cells // count
        tag = {
            "index": index,
            "of": count,
            "offset": start,
            "parent": spec.name,
            "figure": spec.figure,
            "figure_params": dict(spec.figure_params),
        }
        shards.append(ExperimentSpec(
            name=f"{spec.name}#shard{index}/{count}",
            population=spec.population,
            slots=spec.slots,
            grid=spec.grid[start:stop],
            pricing=spec.pricing,
            figure=None,
            figure_params={"shard": tag},
        ))
    return tuple(shards)


def _shard_tag(result: ExperimentResult) -> Dict[str, object]:
    tag = result.spec.figure_params.get("shard")
    if not isinstance(tag, dict):
        raise ValueError(
            f"{result.spec.name!r} is not a shard result (no shard tag "
            "in figure_params)")
    return tag


def merge_shards(results: Sequence[ExperimentResult]) -> ExperimentResult:
    """Reassemble shard results into the unsharded result, bit-identically.

    Accepts the shards in any order (they are sorted by shard index) but
    requires a complete, consistent set: same parent, same shard count,
    same slots, same population digest, every index present exactly
    once.  Series are concatenated in grid order and totals unioned
    (conflicting totals under one cache key fail loudly — that would
    mean the shards did not run the same population).
    """
    if not results:
        raise ValueError("no shard results to merge")
    tagged = sorted(results, key=lambda result: _shard_tag(result)["index"])
    first_tag = _shard_tag(tagged[0])
    parent = first_tag["parent"]
    count = int(first_tag["of"])
    indexes = [int(_shard_tag(result)["index"]) for result in tagged]
    if indexes != list(range(count)):
        raise ValueError(
            f"incomplete shard set for {parent!r}: have indexes {indexes}, "
            f"expected 0..{count - 1}")

    reference = tagged[0].spec
    slot_names = [slot.name for slot in reference.slots]
    digest = reference.population.digest()
    for result in tagged:
        tag = _shard_tag(result)
        if tag["parent"] != parent or int(tag["of"]) != count:
            raise ValueError(
                f"shard {result.spec.name!r} belongs to "
                f"{tag['parent']!r}/{tag['of']}, not {parent!r}/{count}")
        if [slot.name for slot in result.spec.slots] != slot_names:
            raise ValueError(
                f"shard {result.spec.name!r} has different slots")
        if result.spec.population.digest() != digest:
            raise ValueError(
                f"shard {result.spec.name!r} ran population "
                f"{result.spec.population.digest()}, expected {digest}")

    grid = tuple(point for result in tagged for point in result.spec.grid)
    series: Dict[str, List[float]] = {
        name: [value for result in tagged for value in result.series[name]]
        for name in slot_names
    }
    totals: Dict[str, ActivityTotals] = {}
    for result in tagged:
        for key, value in result.totals.items():
            if key in totals and totals[key] != value:
                raise ValueError(
                    f"conflicting totals for cache key {key} across shards")
            totals[key] = value

    spec = ExperimentSpec(
        name=str(parent),
        population=reference.population,
        slots=reference.slots,
        grid=grid,
        pricing=reference.pricing,
        figure=first_tag.get("figure"),
        figure_params=dict(first_tag.get("figure_params", {})),
    )
    provenance: Dict[str, object] = {
        "merged_shards": count,
        "backend": tagged[0].provenance.get("backend"),
        "encodes": sum(int(result.provenance.get("encodes", 0))
                       for result in tagged),
        "cache_hits": sum(int(result.provenance.get("cache_hits", 0))
                          for result in tagged),
        "cache_misses": sum(int(result.provenance.get("cache_misses", 0))
                            for result in tagged),
        "grid_cells": len(grid),
        "population": digest,
        "population_bursts": len(reference.population),
        "elapsed_s": sum(float(result.provenance.get("elapsed_s", 0.0))
                         for result in tagged),
        "python": platform.python_version(),
        "created_unix": time.time(),
    }
    from .. import __version__

    provenance["repro_version"] = __version__
    return ExperimentResult(spec=spec, series=series, totals=totals,
                            provenance=provenance)


def _run_shard_task(shard: ExperimentSpec, backend: Optional[str],
                    cache_dir: Optional[str],
                    chunk_size: int) -> ExperimentResult:
    """Process-pool payload: run one shard against the shared disk cache."""
    cache = DiskActivityCache(cache_dir) if cache_dir else None
    return run_experiment(shard, backend=backend, cache=cache,
                          chunk_size=chunk_size)


def run_shards(spec: ExperimentSpec, count: int,
               backend: Optional[str] = None,
               cache: Optional[ActivityCache] = None,
               cache_dir: Optional[str] = None,
               processes: bool = False,
               chunk_size: int = DEFAULT_CHUNK_SIZE) -> ExperimentResult:
    """Shard *spec*, run every shard, merge — bit-identical to one run.

    ``processes=True`` executes each shard in its own OS process (the
    multi-machine shape, driven locally); pass ``cache_dir`` so the
    workers share one :class:`~repro.service.diskcache.DiskActivityCache`
    and static slots encode once per run instead of once per shard.
    In-process execution (the default) shares ``cache`` (or a fresh
    in-memory one) across shards directly.
    """
    shards = shard_spec(spec, count)
    if processes:
        if cache is not None:
            raise ValueError(
                "processes=True shares state through cache_dir, not a "
                "cache instance")
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            futures = [pool.submit(_run_shard_task, shard, backend,
                                   cache_dir, chunk_size)
                       for shard in shards]
            results = [future.result() for future in futures]
    else:
        if cache is None:
            cache = (DiskActivityCache(cache_dir) if cache_dir
                     else ActivityCache())
        results = [run_experiment(shard, backend=backend, cache=cache,
                                  chunk_size=chunk_size)
                   for shard in shards]
    return merge_shards(results)
