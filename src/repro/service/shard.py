"""Deterministic sharding of experiment grids.

A sweep's grid cells are independent given the cached activity totals,
so an :class:`~repro.sim.experiments.ExperimentSpec` splits exactly:
:func:`shard_spec` cuts the grid into N contiguous balanced slices (the
slot list, population and pricing ride along unchanged), each shard runs
through the ordinary :func:`~repro.sim.experiments.run_experiment` —
in-process, as an independent OS process, or on another machine sharing
a :class:`~repro.service.diskcache.DiskActivityCache` directory — and
:func:`merge_shards` concatenates the results back into one
:class:`~repro.sim.experiments.ExperimentResult` **bit-identical** to
the unsharded run: totals are exact integers and every cell is priced
only from its own grid point, so no float ever crosses a shard boundary.

Shard identity travels inside ``figure_params["shard"]`` (index, count,
parent name, grid offset, and the parent's figure identity), which makes
shards self-describing: they persist as ordinary ``repro.experiment/1``
artifacts, and :func:`merge_shards` can reassemble results loaded back
from JSON just as well as in-memory ones.

:func:`run_shards` is the local driver — shard, execute (optionally on a
process pool with a shared disk cache so static slots are encoded once
per *run*, not once per shard), merge.

Fault tolerance
---------------

A fleet-scale sweep meets killed workers and sick disks; the driver
absorbs both:

* **per-shard retry** — a shard whose execution fails with a transient
  error (a crashed pool worker surfacing as ``BrokenProcessPool``, an
  :class:`OSError` out of a chaos-injected cache) is resubmitted, on a
  fresh pool if the old one broke, under a
  :class:`~repro.service.retry.RetryPolicy`; exhausted retries raise a
  typed :class:`ShardExecutionError` naming the shard — never a silent
  partial merge;
* **checkpoint/resume** — with ``checkpoint_dir=`` every completed
  shard is atomically persisted as the ordinary self-describing
  ``repro.experiment/1`` artifact it already is; a re-run with the same
  directory validates each checkpoint against its shard (parent, index,
  grid, population digest) and skips the ones already done, so an
  interrupted 1000-cell sweep restarts where it died.  Resumed shards
  contribute zero ``encodes`` to the merged provenance (the *run*
  executed none for them) and are counted in ``resumed_shards``;
  :func:`merge_shards` merges mixed disk/fresh shard results
  bit-identically because artifact floats round-trip exactly.
"""

from __future__ import annotations

import json
import os
import platform
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.experiments import (
    ActivityCache,
    ActivityTotals,
    ExperimentResult,
    ExperimentSpec,
    load_artifact,
    result_to_json,
    run_experiment,
)
from ..workloads.population import DEFAULT_CHUNK_SIZE
from .diskcache import DiskActivityCache
from .faults import crash_point
from .retry import TRANSIENT_ERRORS, RetryExhaustedError, RetryPolicy

#: Shard execution additionally treats I/O errors (sick shared cache
#: disk) and broken process pools (killed workers) as transient.
SHARD_RETRYABLE = TRANSIENT_ERRORS + (OSError, BrokenProcessPool)

#: Default driver policy: three attempts per shard, 50 ms seeded backoff.
DEFAULT_SHARD_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.05,
                                  retryable=SHARD_RETRYABLE)


class ShardExecutionError(RuntimeError):
    """One shard kept failing; the last underlying error chains via cause."""

    def __init__(self, shard_name: str, attempts: int,
                 cause: BaseException) -> None:
        super().__init__(
            f"shard {shard_name!r} failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}")
        self.shard_name = shard_name
        self.attempts = attempts
        self.cause = cause


def shard_spec(spec: ExperimentSpec, count: int) -> Tuple[ExperimentSpec, ...]:
    """Split *spec* into at most *count* runnable single-slice specs.

    The grid is cut into contiguous balanced slices in declaration
    order, so ``shard_spec(spec, 1)[0]`` differs from *spec* only by the
    shard tag and the number of shards never exceeds the number of grid
    points.  The split is deterministic: the same ``(spec, count)``
    always produces identical shards.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    cells = len(spec.grid)
    count = min(count, cells)
    shards: List[ExperimentSpec] = []
    for index in range(count):
        start = index * cells // count
        stop = (index + 1) * cells // count
        tag = {
            "index": index,
            "of": count,
            "offset": start,
            "parent": spec.name,
            "figure": spec.figure,
            "figure_params": dict(spec.figure_params),
        }
        shards.append(ExperimentSpec(
            name=f"{spec.name}#shard{index}/{count}",
            population=spec.population,
            slots=spec.slots,
            grid=spec.grid[start:stop],
            pricing=spec.pricing,
            figure=None,
            figure_params={"shard": tag},
        ))
    return tuple(shards)


def _shard_tag(result: ExperimentResult) -> Dict[str, object]:
    tag = result.spec.figure_params.get("shard")
    if not isinstance(tag, dict):
        raise ValueError(
            f"{result.spec.name!r} is not a shard result (no shard tag "
            "in figure_params)")
    return tag


def merge_shards(results: Sequence[ExperimentResult]) -> ExperimentResult:
    """Reassemble shard results into the unsharded result, bit-identically.

    Accepts the shards in any order (they are sorted by shard index) but
    requires a complete, consistent set: same parent, same shard count,
    same slots, same population digest, every index present exactly
    once.  Series are concatenated in grid order and totals unioned
    (conflicting totals under one cache key fail loudly — that would
    mean the shards did not run the same population).
    """
    if not results:
        raise ValueError("no shard results to merge")
    tagged = sorted(results, key=lambda result: _shard_tag(result)["index"])
    first_tag = _shard_tag(tagged[0])
    parent = first_tag["parent"]
    count = int(first_tag["of"])
    indexes = [int(_shard_tag(result)["index"]) for result in tagged]
    if indexes != list(range(count)):
        raise ValueError(
            f"incomplete shard set for {parent!r}: have indexes {indexes}, "
            f"expected 0..{count - 1}")

    reference = tagged[0].spec
    slot_names = [slot.name for slot in reference.slots]
    digest = reference.population.digest()
    for result in tagged:
        tag = _shard_tag(result)
        if tag["parent"] != parent or int(tag["of"]) != count:
            raise ValueError(
                f"shard {result.spec.name!r} belongs to "
                f"{tag['parent']!r}/{tag['of']}, not {parent!r}/{count}")
        if [slot.name for slot in result.spec.slots] != slot_names:
            raise ValueError(
                f"shard {result.spec.name!r} has different slots")
        if result.spec.population.digest() != digest:
            raise ValueError(
                f"shard {result.spec.name!r} ran population "
                f"{result.spec.population.digest()}, expected {digest}")

    grid = tuple(point for result in tagged for point in result.spec.grid)
    series: Dict[str, List[float]] = {
        name: [value for result in tagged for value in result.series[name]]
        for name in slot_names
    }
    totals: Dict[str, ActivityTotals] = {}
    for result in tagged:
        for key, value in result.totals.items():
            if key in totals and totals[key] != value:
                raise ValueError(
                    f"conflicting totals for cache key {key} across shards")
            totals[key] = value

    spec = ExperimentSpec(
        name=str(parent),
        population=reference.population,
        slots=reference.slots,
        grid=grid,
        pricing=reference.pricing,
        figure=first_tag.get("figure"),
        figure_params=dict(first_tag.get("figure_params", {})),
    )
    provenance: Dict[str, object] = {
        "merged_shards": count,
        "resumed_shards": sum(
            1 for result in tagged
            if result.provenance.get("resumed_from_checkpoint")),
        "backend": tagged[0].provenance.get("backend"),
        "encodes": sum(int(result.provenance.get("encodes", 0))
                       for result in tagged),
        "cache_hits": sum(int(result.provenance.get("cache_hits", 0))
                          for result in tagged),
        "cache_misses": sum(int(result.provenance.get("cache_misses", 0))
                            for result in tagged),
        "grid_cells": len(grid),
        "population": digest,
        "population_bursts": len(reference.population),
        "elapsed_s": sum(float(result.provenance.get("elapsed_s", 0.0))
                         for result in tagged),
        "python": platform.python_version(),
        "created_unix": time.time(),
    }
    from .. import __version__

    provenance["repro_version"] = __version__
    return ExperimentResult(spec=spec, series=series, totals=totals,
                            provenance=provenance)


def _run_shard_task(shard: ExperimentSpec, backend: Optional[str],
                    cache_dir: Optional[str],
                    chunk_size: int) -> ExperimentResult:
    """Process-pool payload: run one shard against the shared disk cache."""
    tag = shard.figure_params.get("shard", {})
    crash_point(f"shard:{tag.get('index')}")  # chaos-suite kill hook
    cache = DiskActivityCache(cache_dir) if cache_dir else None
    return run_experiment(shard, backend=backend, cache=cache,
                          chunk_size=chunk_size)


# -- checkpointing -----------------------------------------------------------

def _checkpoint_path(checkpoint_dir: str, shard: ExperimentSpec) -> str:
    tag = shard.figure_params["shard"]
    return os.path.join(checkpoint_dir,
                        f"shard{int(tag['index']):04d}-of-{int(tag['of'])}"
                        ".json")


def _store_checkpoint(path: str, result: ExperimentResult) -> None:
    """Atomically persist one shard result as an ordinary artifact."""
    temp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(result_to_json(result), handle, indent=1)
            handle.write("\n")
        os.replace(temp, path)
    finally:
        try:
            if os.path.exists(temp):
                os.unlink(temp)
        except OSError:
            pass


def _load_checkpoint(path: str,
                     shard: ExperimentSpec) -> Optional[ExperimentResult]:
    """A validated prior result for *shard*, or ``None`` to re-run it.

    The checkpoint must be a readable shard artifact whose identity
    (parent, index/of/offset, grid slice, slot names, population digest)
    matches *shard* exactly; anything else — including a corrupt file,
    which is quarantined to ``*.bad`` — re-runs the shard, which is
    always safe.  The returned result's provenance is marked
    ``resumed_from_checkpoint`` with its encode counters zeroed: *this*
    run performed no encodes for it.
    """
    try:
        result = load_artifact(path)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError):
        try:
            os.replace(path, f"{path}.bad")
        except OSError:
            pass
        return None
    tag = result.spec.figure_params.get("shard")
    expected = shard.figure_params["shard"]
    if not isinstance(tag, dict):
        return None
    for field in ("index", "of", "offset", "parent"):
        if tag.get(field) != expected[field]:
            return None
    if result.spec.grid != shard.grid:
        return None
    if [slot.name for slot in result.spec.slots] != [slot.name
                                                     for slot in shard.slots]:
        return None
    if result.spec.population.digest() != shard.population.digest():
        return None
    provenance = dict(result.provenance)
    provenance.update(resumed_from_checkpoint=True, encodes=0,
                      cache_hits=0, cache_misses=0, elapsed_s=0.0)
    return ExperimentResult(spec=result.spec, series=result.series,
                            totals=result.totals, provenance=provenance)


def run_shards(spec: ExperimentSpec, count: int,
               backend: Optional[str] = None,
               cache: Optional[ActivityCache] = None,
               cache_dir: Optional[str] = None,
               processes: bool = False,
               chunk_size: int = DEFAULT_CHUNK_SIZE,
               retry: Optional[RetryPolicy] = None,
               checkpoint_dir: Optional[str] = None,
               max_workers: Optional[int] = None) -> ExperimentResult:
    """Shard *spec*, run every shard, merge — bit-identical to one run.

    ``processes=True`` executes each shard in its own OS process (the
    multi-machine shape, driven locally); pass ``cache_dir`` so the
    workers share one :class:`~repro.service.diskcache.DiskActivityCache`
    and static slots encode once per run instead of once per shard.
    ``max_workers`` bounds the pool (default: one worker per pending
    shard).  In-process execution (the default) shares ``cache`` (or a
    fresh in-memory one) across shards directly.

    ``retry`` (default :data:`DEFAULT_SHARD_RETRY`) resubmits shards
    whose execution failed transiently — killed pool workers, I/O
    errors — on a fresh pool; exhaustion raises a typed
    :class:`ShardExecutionError`.  ``checkpoint_dir`` persists each
    completed shard and resumes past completed ones on re-run (see the
    module docstring).
    """
    shards = shard_spec(spec, count)
    policy = retry if retry is not None else DEFAULT_SHARD_RETRY
    results: Dict[int, ExperimentResult] = {}

    if checkpoint_dir:
        os.makedirs(checkpoint_dir, exist_ok=True)
        for index, shard in enumerate(shards):
            loaded = _load_checkpoint(_checkpoint_path(checkpoint_dir, shard),
                                      shard)
            if loaded is not None:
                results[index] = loaded
    pending = [(index, shard) for index, shard in enumerate(shards)
               if index not in results]

    def complete(index: int, shard: ExperimentSpec,
                 result: ExperimentResult) -> None:
        results[index] = result
        if checkpoint_dir:
            try:
                _store_checkpoint(_checkpoint_path(checkpoint_dir, shard),
                                  result)
            except OSError:
                pass  # checkpointing degrades gracefully, like the cache

    if processes:
        if cache is not None:
            raise ValueError(
                "processes=True shares state through cache_dir, not a "
                "cache instance")
        attempts = {index: 0 for index, __ in pending}
        remaining = pending
        while remaining:
            workers = min(len(remaining), max_workers or len(remaining))
            retriable: List[Tuple[int, ExperimentSpec]] = []
            # A killed worker breaks the whole pool, so each wave gets a
            # fresh one; only the shards that actually failed re-run.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [(index, shard,
                            pool.submit(_run_shard_task, shard, backend,
                                        cache_dir, chunk_size))
                           for index, shard in remaining]
                for index, shard, future in futures:
                    try:
                        result = future.result()
                    except Exception as error:
                        attempts[index] += 1
                        if (not policy.is_retryable(error)
                                or attempts[index] >= policy.max_attempts):
                            raise ShardExecutionError(
                                shard.name, attempts[index], error
                            ) from error
                        retriable.append((index, shard))
                    else:
                        complete(index, shard, result)
            if retriable:
                time.sleep(policy.delay_for(
                    max(attempts[index] for index, __ in retriable)))
            remaining = retriable
    else:
        if cache is None:
            cache = (DiskActivityCache(cache_dir) if cache_dir
                     else ActivityCache())
        for index, shard in pending:
            try:
                result = policy.call(
                    lambda shard=shard: run_experiment(
                        shard, backend=backend, cache=cache,
                        chunk_size=chunk_size))
            except RetryExhaustedError as error:
                raise ShardExecutionError(shard.name, error.attempts,
                                          error.last_error) from error
            complete(index, shard, result)
    return merge_shards([results[index] for index in range(len(shards))])
