"""End-to-end smoke check for the experiment daemon.

``python -m repro.service.smoke`` exercises the whole service stack the
way CI does, with real processes:

1. start ``repro serve`` as a subprocess on an ephemeral port with a
   fresh (or given) cache directory;
2. issue the same ``sweep`` query twice — cold, then warm — and require
   the warm answer to hit the disk cache for every encode while staying
   canonically byte-identical to the cold one;
3. run the identical spec directly through
   :func:`repro.sim.experiments.run_experiment` in *this* process and
   require the daemon's artifact to be byte-identical
   (:func:`repro.analysis.artifacts.canonical_artifact_json`) to the
   direct result.

Exit code 0 on success, 1 on any mismatch — suitable as a CI gate.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import time
from typing import Optional, Sequence

from ..analysis.artifacts import canonical_artifact_json
from ..sim.experiments import result_to_json, run_experiment
from .client import ServiceClient
from .daemon import sweep_spec_from_params

#: The serve CLI prints this; the smoke driver (and scripts) parse it.
LISTENING_RE = re.compile(r"listening on (\S+):(\d+)")


def _start_daemon(cache_dir: str, timeout_s: float = 30.0):
    """Spawn ``repro serve`` and wait for its listening line."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=dict(os.environ, PYTHONUNBUFFERED="1"))
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = LISTENING_RE.search(line)
        if match:
            return process, match.group(1), int(match.group(2))
    process.kill()
    raise RuntimeError("daemon did not report a listening address in time")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.smoke",
        description="cold/warm/direct equivalence check of the daemon")
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--points", type=int, default=9)
    parser.add_argument("--seed", type=int, default=0x0DB1)
    parser.add_argument("--cache-dir", dest="cache_dir", default=None,
                        help="cache directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)

    params = {"figure": "alpha", "samples": args.samples,
              "points": args.points, "seed": args.seed}
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as scratch:
        cache_dir = args.cache_dir or os.path.join(scratch, "cache")
        process, host, port = _start_daemon(cache_dir)
        try:
            with ServiceClient(host, port) as client:
                client.ping()

                start = time.perf_counter()
                cold = client.sweep(**params)
                cold_s = time.perf_counter() - start

                start = time.perf_counter()
                warm = client.sweep(**params)
                warm_s = time.perf_counter() - start

                stats = client.stats()
        finally:
            process.terminate()
            process.wait(timeout=10)

        failures = []
        if cold["provenance"]["encodes"] == 0:
            failures.append("cold query executed no encodes — stale cache?")
        if warm["provenance"]["encodes"] != 0:
            failures.append(
                f"warm query re-encoded {warm['provenance']['encodes']} "
                "populations instead of hitting the disk cache")
        if canonical_artifact_json(cold) != canonical_artifact_json(warm):
            failures.append("warm response differs from cold response")

        direct = result_to_json(
            run_experiment(sweep_spec_from_params(params)))
        if canonical_artifact_json(cold) != canonical_artifact_json(direct):
            failures.append(
                "daemon response differs from direct run_experiment output")

        print(f"cold sweep: {cold_s:.3f}s "
              f"({cold['provenance']['encodes']} encodes) | "
              f"warm sweep: {warm_s:.3f}s "
              f"({warm['provenance']['encodes']} encodes) | "
              f"cache entries: {stats['cache_entries']}")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("service smoke OK: daemon output byte-identical to direct "
              "run; warm path served entirely from the disk cache")
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
