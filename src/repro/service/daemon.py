"""Long-running query daemon over the experiment engine.

One process loads (or creates) a :class:`~repro.service.diskcache.
DiskActivityCache` and answers queries from any number of clients, so
interactive sessions and CI pipelines stop re-paying Python startup and
cold encodes per invocation.  Transport is deliberately minimal — a
stdlib :class:`socketserver.ThreadingTCPServer` speaking **JSON lines**
(one request object per line, one response object per line, UTF-8) — so
``nc``/``socat`` work as clients and nothing new is installed.

Operations (the ``op`` field of a request):

``ping``
    liveness + version.
``stats``
    cache entry/hit/miss counters, per-op served counts, uptime.
``sweep``
    build a figure spec (``figure`` = ``alpha``/``rate``/``load`` with
    the CLI's parameters) and run it through the shared cache; the
    response's ``artifact`` member is exactly
    :func:`repro.sim.experiments.result_to_json` output — byte-identical
    (modulo run-volatile provenance) to a direct
    :func:`~repro.sim.experiments.run_experiment` + ``save_artifact``.
``replay``
    run a controller replay (synthetic ``bursts``/``seed`` payload or an
    explicit ``payload_hex``) and return the ``kind="replay"`` artifact.
``artifact``
    list the daemon's artifact directory, or fetch one stored artifact
    by name.
``health``
    degradation snapshot: the cache tier's :meth:`~repro.service.
    diskcache.DiskActivityCache.health` report (memory-only downgrade,
    write failures, quarantined entries), served counters, busy
    rejections, and the configured limits.

Every response carries ``ok``; failures carry ``error`` and never kill
the connection (bad JSON included), so a client can stream requests.
Responses that are safe to retry (the *busy* rejection below) also
carry ``retryable: true`` — the client's retry policy keys off it.

Serving limits: ``request_timeout`` bounds every socket read/write (a
stalled or half-dead client cannot pin a handler thread forever; the
compute itself is bounded by ``MAX_QUERY_SAMPLES``), and
``max_connections`` bounds concurrent connections — excess connections
get one ``busy`` line and are closed, rather than growing the thread
count without limit.  A client that disconnects mid-response costs the
daemon nothing but the dropped handler.
:func:`sweep_spec_from_params` and :func:`replay_spec_from_params` are
module-level so tests and the smoke driver build *identical* specs for
direct-versus-daemon comparisons.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
import time
from typing import Dict, Mapping, Optional, Tuple

from ..phy.power import GBPS, PICOFARAD
from ..sim.experiments import (
    ActivityCache,
    ExperimentSpec,
    ReplaySpec,
    alpha_experiment,
    interface_replay_experiment,
    load_experiment,
    rate_experiment,
    replay_result_to_json,
    result_to_json,
    run_experiment,
    run_replay,
)
from ..workloads.population import RandomPopulation
from .diskcache import DiskActivityCache

#: Figures the ``sweep`` op can build.
SWEEP_FIGURES = ("alpha", "rate", "load")

#: Hard cap on synthetic population / payload sizes a query may request
#: (a serving daemon should not be OOM-able by one client line).
MAX_QUERY_SAMPLES = 1_000_000


def _int_param(params: Mapping[str, object], name: str, default: int,
               minimum: int = 1, maximum: int = MAX_QUERY_SAMPLES) -> int:
    value = int(params.get(name, default))
    if not minimum <= value <= maximum:
        raise ValueError(f"{name} must be in [{minimum}, {maximum}], "
                         f"got {value}")
    return value


def sweep_spec_from_params(params: Mapping[str, object]) -> ExperimentSpec:
    """The figure spec a ``sweep`` request describes (CLI parameter names)."""
    figure = params.get("figure", "alpha")
    if figure not in SWEEP_FIGURES:
        raise ValueError(f"unknown figure {figure!r}; choose from "
                         f"{SWEEP_FIGURES}")
    samples = _int_param(params, "samples", 2000)
    seed = int(params.get("seed", 0x0DB1))
    population = RandomPopulation(count=samples, seed=seed)
    if figure == "alpha":
        return alpha_experiment(population,
                                points=_int_param(params, "points", 26,
                                                  minimum=2, maximum=10_000),
                                include_fixed=bool(
                                    params.get("include_fixed", True)))
    from ..phy.pod import pod12, pod135

    interface = {"pod135": pod135, "pod12": pod12}[
        str(params.get("interface", "pod135"))]()
    max_gbps = _int_param(params, "max_gbps", 20, maximum=1000)
    rates = [0.5 * GBPS * step for step in range(1, 2 * max_gbps + 1)]
    c_load_pf = float(params.get("c_load_pf", 3.0))
    if figure == "rate":
        return rate_experiment(population, interface=interface,
                               c_load_farads=c_load_pf * PICOFARAD,
                               data_rates_hz=rates)
    loads = [float(value) * PICOFARAD
             for value in params.get("loads_pf", (1.0, 2.0, 3.0, 4.0,
                                                  6.0, 8.0))]
    return load_experiment(population, interface=interface,
                           c_loads_farads=loads, data_rates_hz=rates)


def replay_spec_from_params(params: Mapping[str, object]) -> ReplaySpec:
    """The replay spec a ``replay`` request describes."""
    payload_hex = params.get("payload_hex")
    if payload_hex is not None:
        if len(payload_hex) > 2 * MAX_QUERY_SAMPLES:
            raise ValueError("payload_hex too large")
        payload = bytes.fromhex(str(payload_hex))
        if not payload:
            raise ValueError("payload_hex decodes to an empty payload")
    else:
        bursts = _int_param(params, "bursts", 2000)
        population = RandomPopulation(count=bursts,
                                      seed=int(params.get("seed", 0x0DB1)))
        payload = b"".join(bytes(burst.data) for burst in population)
    interfaces = tuple(str(name) for name in
                       params.get("interfaces", ("pod135",)))
    return interface_replay_experiment(
        payload,
        interfaces=interfaces,
        data_rate_hz=float(params.get("data_rate_gbps", 12.0)) * GBPS,
        c_load_farads=float(params.get("c_load_pf", 3.0)) * PICOFARAD,
        channels=_int_param(params, "channels", 2, maximum=1024),
        byte_lanes=_int_param(params, "lanes", 4, maximum=1024),
        window=_int_param(params, "window", 16, maximum=65536),
        line_bytes=_int_param(params, "line_bytes", 64, maximum=65536),
        name="service-replay")


class ExperimentService:
    """Transport-independent request handler (one per daemon).

    Holds the shared cache and artifact directory; :meth:`handle` maps
    one request dict to one response dict and never raises — errors
    become ``{"ok": false, "error": ...}`` responses.
    """

    def __init__(self, cache: Optional[ActivityCache] = None,
                 artifact_dir: Optional[str] = None,
                 backend: Optional[str] = None,
                 request_timeout: Optional[float] = None,
                 max_connections: Optional[int] = None) -> None:
        self.cache = cache if cache is not None else ActivityCache()
        self.artifact_dir = (os.path.abspath(artifact_dir)
                             if artifact_dir else None)
        self.backend = backend
        self.request_timeout = request_timeout
        self.max_connections = max_connections
        self.started = time.time()
        # Uptime is measured on the monotonic clock — a wall-clock step
        # (NTP, DST) must not warp it.
        self._started_monotonic = time.monotonic()
        self.served: Dict[str, int] = {}
        self.busy_rejections = 0
        self._lock = threading.Lock()

    def note_busy_rejection(self) -> None:
        with self._lock:
            self.busy_rejections += 1

    # -- ops -----------------------------------------------------------------

    def _op_ping(self, params: Mapping[str, object]) -> Dict[str, object]:
        del params
        from .. import __version__

        return {"ok": True, "pong": True, "version": __version__}

    def _op_stats(self, params: Mapping[str, object]) -> Dict[str, object]:
        del params
        cache_dir = (self.cache.directory
                     if isinstance(self.cache, DiskActivityCache) else None)
        with self._lock:
            served = dict(self.served)
        return {
            "ok": True,
            "stats": {
                "cache_entries": len(self.cache),
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
                "cache_dir": cache_dir,
                "artifact_dir": self.artifact_dir,
                "served": served,
                "uptime_s": time.monotonic() - self._started_monotonic,
            },
        }

    def _op_health(self, params: Mapping[str, object]) -> Dict[str, object]:
        del params
        cache_health = (self.cache.health()
                        if hasattr(self.cache, "health")
                        else {"tier": type(self.cache).__name__,
                              "degraded": False})
        with self._lock:
            served = dict(self.served)
            busy = self.busy_rejections
        return {
            "ok": True,
            "health": {
                "cache": cache_health,
                "served": served,
                "busy_rejections": busy,
                "request_timeout_s": self.request_timeout,
                "max_connections": self.max_connections,
                "uptime_s": time.monotonic() - self._started_monotonic,
            },
        }

    def _op_sweep(self, params: Mapping[str, object]) -> Dict[str, object]:
        spec = sweep_spec_from_params(params)
        result = run_experiment(spec, backend=self.backend, cache=self.cache)
        return {"ok": True, "artifact": result_to_json(result)}

    def _op_replay(self, params: Mapping[str, object]) -> Dict[str, object]:
        spec = replay_spec_from_params(params)
        result = run_replay(spec, backend=self.backend, cache=self.cache)
        return {"ok": True, "artifact": replay_result_to_json(result)}

    def _artifact_names(self):
        if self.artifact_dir is None or not os.path.isdir(self.artifact_dir):
            return []
        return sorted(name for name in os.listdir(self.artifact_dir)
                      if name.endswith(".json"))

    def _op_artifact(self, params: Mapping[str, object]) -> Dict[str, object]:
        if self.artifact_dir is None:
            return {"ok": False,
                    "error": "daemon started without --artifact-dir"}
        name = params.get("name")
        if name is None:
            return {"ok": True, "artifacts": self._artifact_names()}
        name = str(name)
        if name != os.path.basename(name) or name not in self._artifact_names():
            return {"ok": False,
                    "error": f"unknown artifact {name!r} (try op=artifact "
                             "with no name to list)"}
        with open(os.path.join(self.artifact_dir, name), "r",
                  encoding="utf-8") as handle:
            return {"ok": True, "name": name, "artifact": json.load(handle)}

    _OPS = {"ping": _op_ping, "stats": _op_stats, "sweep": _op_sweep,
            "replay": _op_replay, "artifact": _op_artifact,
            "health": _op_health}

    def handle(self, request: object) -> Dict[str, object]:
        if not isinstance(request, dict):
            return {"ok": False,
                    "error": "request must be a JSON object with an 'op'"}
        op = request.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            return {"ok": False,
                    "error": f"unknown op {op!r}; known: "
                             f"{sorted(self._OPS)}"}
        with self._lock:
            self.served[op] = self.served.get(op, 0) + 1
        try:
            return handler(self, request)
        except Exception as error:  # serve errors, don't die on them
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}


class _LineHandler(socketserver.StreamRequestHandler):
    """One JSON-lines connection; requests stream until the client closes.

    The per-connection socket deadline (``request_timeout``) bounds
    every read and write; a deadline hit or a client that vanishes
    mid-response simply ends this connection — never the daemon.
    """

    def setup(self) -> None:
        timeout = getattr(self.server, "request_timeout", None)
        if timeout is not None:
            self.timeout = timeout  # applied to the socket by super()
        super().setup()

    def _send(self, response: Dict[str, object]) -> bool:
        try:
            self.wfile.write(json.dumps(response,
                                        separators=(",", ":")).encode("utf-8"))
            self.wfile.write(b"\n")
            self.wfile.flush()
            return True
        except OSError:  # client gone / stalled past the deadline
            return False

    def handle(self) -> None:
        service: ExperimentService = self.server.service  # type: ignore
        slots = getattr(self.server, "connection_slots", None)
        if slots is not None and not slots.acquire(blocking=False):
            service.note_busy_rejection()
            self._send({"ok": False, "retryable": True,
                        "error": "busy: connection limit reached, "
                                 "retry later"})
            return
        try:
            while True:
                try:
                    raw = self.rfile.readline()
                except OSError:  # deadline exceeded or connection reset
                    return
                if not raw:
                    return
                line = raw.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, ValueError) as error:
                    response = {"ok": False,
                                "error": f"bad request line: {error}"}
                else:
                    response = service.handle(request)
                if not self._send(response):
                    return  # client disconnected mid-response
        finally:
            if slots is not None:
                slots.release()


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    #: Per-connection socket deadline in seconds (None = unbounded).
    request_timeout: Optional[float] = None
    #: Semaphore bounding concurrent connections (None = unbounded).
    connection_slots = None


class ExperimentDaemon:
    """Bind-and-serve wrapper around :class:`ExperimentService`.

    ``port=0`` binds an ephemeral port; read the actual one from
    :attr:`address` (the ``repro serve`` CLI prints it, so scripts can
    parse the listening line).  :meth:`serve_forever` blocks;
    tests/embedders run it on a thread and call :meth:`shutdown`.
    """

    #: Default bound on concurrent connections (0/None = unbounded).
    DEFAULT_MAX_CONNECTIONS = 64

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache_dir: Optional[str] = None,
                 artifact_dir: Optional[str] = None,
                 backend: Optional[str] = None,
                 request_timeout: Optional[float] = None,
                 max_connections: Optional[int] = DEFAULT_MAX_CONNECTIONS
                 ) -> None:
        cache = (DiskActivityCache(cache_dir) if cache_dir
                 else ActivityCache())
        max_connections = max_connections or None
        self.service = ExperimentService(cache=cache,
                                         artifact_dir=artifact_dir,
                                         backend=backend,
                                         request_timeout=request_timeout,
                                         max_connections=max_connections)
        self._server = _Server((host, port), _LineHandler)
        self._server.service = self.service  # type: ignore[attr-defined]
        self._server.request_timeout = request_timeout
        self._server.connection_slots = (
            threading.BoundedSemaphore(max_connections)
            if max_connections else None)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
