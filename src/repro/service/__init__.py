"""Experiment engine as a service.

The :mod:`repro.sim.experiments` engine already deduplicates encodes
through a content-addressed :class:`~repro.sim.experiments.ActivityCache`
— but that cache dies with the process, sweeps cannot span machines, and
every CLI invocation re-pays interpreter startup plus cold encodes.
This package scales the engine to serving-infrastructure shape in three
layers, each usable on its own:

* :mod:`repro.service.diskcache` — :class:`~repro.service.diskcache.
  DiskActivityCache`, an on-disk tier with the exact
  :class:`~repro.sim.experiments.ActivityCache` interface.  Entries are
  per-key JSON files named by the SHA-256 of the content-addressed cache
  key, written via atomic rename, so any number of concurrent writers
  (processes or machines sharing a filesystem) are safe without locks;
  the read path never blocks.  ``REPRO_CACHE_DIR`` / ``--cache-dir``
  select the directory and :func:`repro.sim.experiments.shared_cache`
  honours the variable, so warm runs skip every encode across processes.

* :mod:`repro.service.shard` — :func:`~repro.service.shard.shard_spec`
  splits an :class:`~repro.sim.experiments.ExperimentSpec` grid into N
  deterministic contiguous shards, each an ordinary runnable spec;
  :func:`~repro.service.shard.merge_shards` reassembles the shard
  results into one :class:`~repro.sim.experiments.ExperimentResult`
  **bit-identical** to the unsharded run (totals are exact integers and
  cell pricing is per-point, so the split is exact by construction).
  :func:`~repro.service.shard.run_shards` is the one-call local driver:
  shard, fan out to independent processes against a shared disk cache,
  merge.

* :mod:`repro.service.daemon` / :mod:`repro.service.client` — a
  long-running JSON-lines TCP server (stdlib :mod:`socketserver`, no new
  dependencies) that loads the disk cache once and answers ``sweep`` /
  ``replay`` / ``artifact`` / ``stats`` queries, started with ``repro
  serve``; the client is a thin blocking socket wrapper.  Artifact
  payloads in responses are exactly :func:`~repro.sim.experiments.
  result_to_json` output, so daemon answers are byte-identical (modulo
  run-volatile provenance) to direct engine runs.

Everything here is pure stdlib: the package imports, and the daemon
serves, without NumPy installed (the engine then runs its reference
backend).
"""

from .diskcache import DiskActivityCache, open_cache, resolve_cache_dir
from .shard import merge_shards, run_shards, shard_spec

__all__ = [
    "DiskActivityCache",
    "merge_shards",
    "open_cache",
    "resolve_cache_dir",
    "run_shards",
    "shard_spec",
]
