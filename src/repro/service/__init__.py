"""Experiment engine as a service.

The :mod:`repro.sim.experiments` engine already deduplicates encodes
through a content-addressed :class:`~repro.sim.experiments.ActivityCache`
— but that cache dies with the process, sweeps cannot span machines, and
every CLI invocation re-pays interpreter startup plus cold encodes.
This package scales the engine to serving-infrastructure shape in three
layers, each usable on its own:

* :mod:`repro.service.diskcache` — :class:`~repro.service.diskcache.
  DiskActivityCache`, an on-disk tier with the exact
  :class:`~repro.sim.experiments.ActivityCache` interface.  Entries are
  per-key JSON files named by the SHA-256 of the content-addressed cache
  key, written via atomic rename, so any number of concurrent writers
  (processes or machines sharing a filesystem) are safe without locks;
  the read path never blocks.  ``REPRO_CACHE_DIR`` / ``--cache-dir``
  select the directory and :func:`repro.sim.experiments.shared_cache`
  honours the variable, so warm runs skip every encode across processes.

* :mod:`repro.service.shard` — :func:`~repro.service.shard.shard_spec`
  splits an :class:`~repro.sim.experiments.ExperimentSpec` grid into N
  deterministic contiguous shards, each an ordinary runnable spec;
  :func:`~repro.service.shard.merge_shards` reassembles the shard
  results into one :class:`~repro.sim.experiments.ExperimentResult`
  **bit-identical** to the unsharded run (totals are exact integers and
  cell pricing is per-point, so the split is exact by construction).
  :func:`~repro.service.shard.run_shards` is the one-call local driver:
  shard, fan out to independent processes against a shared disk cache,
  merge.

* :mod:`repro.service.daemon` / :mod:`repro.service.client` — a
  long-running JSON-lines TCP server (stdlib :mod:`socketserver`, no new
  dependencies) that loads the disk cache once and answers ``sweep`` /
  ``replay`` / ``artifact`` / ``stats`` queries, started with ``repro
  serve``; the client is a thin blocking socket wrapper.  Artifact
  payloads in responses are exactly :func:`~repro.sim.experiments.
  result_to_json` output, so daemon answers are byte-identical (modulo
  run-volatile provenance) to direct engine runs.

Everything here is pure stdlib: the package imports, and the daemon
serves, without NumPy installed (the engine then runs its reference
backend).

Failure taxonomy
----------------

Every layer distinguishes *transient* faults (retry helps) from
*permanent* ones (retrying is wrong), and the whole stack promises one
invariant: under any fault the final artifact is either **bit-identical
to the fault-free run or a loud typed error** — never silent corruption.

* **Transient** — :data:`~repro.service.retry.TRANSIENT_ERRORS`
  (``ConnectionError``, ``TimeoutError``, ``EOFError``, and the
  :class:`~repro.service.retry.TransientServiceError` marker, which
  includes the daemon's *busy* answer
  :class:`~repro.service.client.ServiceBusyError`).  Shard execution
  adds ``OSError`` and ``BrokenProcessPool`` via
  :data:`~repro.service.shard.SHARD_RETRYABLE`.  All are retried under
  a deterministic seeded :class:`~repro.service.retry.RetryPolicy`.
* **Permanent** — :class:`~repro.service.client.ServiceError` (the
  daemon said no), validation ``ValueError``/``TypeError``; these
  propagate immediately.
* **Exhaustion** — retries that run out raise
  :class:`~repro.service.retry.RetryExhaustedError` (client/policy
  level) or :class:`~repro.service.shard.ShardExecutionError` (sweep
  driver, naming the shard), both chaining the last underlying cause.
* **Degradation** — :class:`~repro.service.diskcache.DiskActivityCache`
  never raises on a sick disk: write failures downgrade it to a
  memory-only tier and corrupt entries are quarantined to ``*.bad``,
  both counted in :meth:`~repro.service.diskcache.DiskActivityCache.
  health` and served by the daemon's ``health`` op.
* **Chaos** — :mod:`repro.service.faults` injects all of the above
  deterministically (:class:`~repro.service.faults.FaultPlan` →
  :class:`~repro.service.faults.FaultyCache`,
  :class:`~repro.service.faults.FlakyProxy`,
  :func:`~repro.service.faults.crash_point`) so the chaos test suite
  can prove the invariant byte-for-byte.
"""

from .diskcache import DiskActivityCache, open_cache, resolve_cache_dir
from .faults import FaultPlan, FaultyCache, FlakyProxy, crash_point
from .retry import (
    TRANSIENT_ERRORS,
    RetryExhaustedError,
    RetryPolicy,
    TransientServiceError,
)
from .shard import (
    SHARD_RETRYABLE,
    ShardExecutionError,
    merge_shards,
    run_shards,
    shard_spec,
)

__all__ = [
    "DiskActivityCache",
    "FaultPlan",
    "FaultyCache",
    "FlakyProxy",
    "RetryExhaustedError",
    "RetryPolicy",
    "SHARD_RETRYABLE",
    "ShardExecutionError",
    "TRANSIENT_ERRORS",
    "TransientServiceError",
    "crash_point",
    "merge_shards",
    "open_cache",
    "resolve_cache_dir",
    "run_shards",
    "shard_spec",
]
