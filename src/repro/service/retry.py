"""Shared retry policy for the service stack.

One :class:`RetryPolicy` value describes how any caller — the
:class:`~repro.service.client.ServiceClient`, the
:func:`~repro.service.shard.run_shards` driver, or user code — survives
transient failures: how many attempts, how the backoff grows, and which
errors count as *transient* in the first place.  Like everything else in
this repro, retries are deterministic: the jittered backoff schedule is
a pure function of ``(seed, attempt)``, so a chaos run that retries is
reproducible byte-for-byte.

Failure taxonomy
----------------

Retryable (transient — the operation may succeed if repeated):

* :class:`ConnectionError` — resets, refusals, broken pipes; the peer
  or the network dropped the connection.
* :class:`TimeoutError` (incl. ``socket.timeout``) — stalls past a
  deadline.
* :class:`EOFError` — a stream ended mid-message.
* :class:`TransientServiceError` — a marker base class for protocol-
  level "try again" answers (e.g. the daemon's *busy* response).

Everything else is non-retryable by default and propagates unchanged:
typed input errors (:class:`ValueError`), corrupt-data errors, and
plain bugs must stay loud.  Callers with a wider transient surface (the
shard driver treats :class:`OSError` and ``BrokenProcessPool`` as
transient) pass their own ``retryable`` tuple.

When the attempts run out the caller gets a typed
:class:`RetryExhaustedError` chaining the last underlying failure —
never a silent partial result.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


class TransientServiceError(RuntimeError):
    """Marker base: a protocol-level answer that means *retry later*."""


#: Default transient-error taxonomy (see module docstring).
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (
    ConnectionError, TimeoutError, EOFError, TransientServiceError)


class RetryExhaustedError(RuntimeError):
    """Every attempt failed with a transient error; the last one chains."""

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"gave up after {attempts} attempt(s); last error: "
            f"{type(last_error).__name__}: {last_error}")
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Attempts + deterministic exponential backoff + error taxonomy.

    ``delay_for(attempt)`` (attempt numbers start at 1) is a pure
    function: ``base_delay_s * multiplier**(attempt-1)`` capped at
    ``max_delay_s``, scaled by a jitter factor drawn from
    ``random.Random((seed, attempt))`` in ``[1-jitter, 1+jitter]`` — two
    policies with equal fields back off identically, which keeps chaos
    runs reproducible.  ``max_attempts=1`` disables retrying entirely.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable: Tuple[Type[BaseException], ...] = field(
        default=TRANSIENT_ERRORS)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def delay_for(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt numbers start at 1, got {attempt}")
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                    self.max_delay_s)
        if not delay or not self.jitter:
            return delay
        rng = random.Random(f"retry:{self.seed}:{attempt}")
        return delay * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def call(self, fn: Callable[[], T],
             sleep: Callable[[float], None] = time.sleep,
             before_retry: Optional[Callable[[int, BaseException],
                                             None]] = None) -> T:
        """Run ``fn`` under this policy.

        Non-retryable errors propagate unchanged on the spot; retryable
        ones are re-attempted after the scheduled backoff until
        ``max_attempts`` is spent, then wrapped in a typed
        :class:`RetryExhaustedError` (chained via ``from``).
        ``before_retry(attempt, error)`` observes each failure that will
        be retried; ``sleep`` is injectable so tests need not wait.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except Exception as error:
                if not self.is_retryable(error):
                    raise
                if attempt >= self.max_attempts:
                    raise RetryExhaustedError(attempt, error) from error
                if before_retry is not None:
                    before_retry(attempt, error)
                sleep(self.delay_for(attempt))
        raise AssertionError("unreachable")  # pragma: no cover
