"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro encode --bits 10001110 10000110 --scheme dbi-opt
    python -m repro schemes
    python -m repro pareto --bits 10001110 10000110 10010110
    python -m repro sweep-alpha --samples 2000 --points 26
    python -m repro sweep-rate --c-load-pf 3
    python -m repro sweep-load
    python -m repro table1

Every subcommand prints a markdown table or ASCII plot to stdout, so
results can be piped into reports directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis.ascii_plot import quick_plot
from .analysis.crossover import (
    elementwise_min,
    interpolated_crossing,
    peak_advantage,
)
from .core.burst import Burst
from .core.costs import CostModel
from .core.pareto import pareto_summary
from .core.schemes import available_schemes, get_scheme
from .phy.pod import pod12, pod135
from .phy.power import GBPS, PICOFARAD
from .sim.report import (
    format_alpha_sweep,
    format_data_rate_sweep,
    format_load_sweep,
    markdown_table,
)
from .sim.sweep import alpha_sweep, data_rate_sweep, load_sweep
from .workloads.random_data import random_bursts


def _burst_from_args(args: argparse.Namespace) -> Burst:
    if args.bits:
        return Burst.from_bit_strings(args.bits)
    if args.hex:
        return Burst(int(token, 16) for token in args.hex)
    from .core.burst import PAPER_FIG2_BURST
    return PAPER_FIG2_BURST


def _cmd_encode(args: argparse.Namespace) -> int:
    burst = _burst_from_args(args)
    model = CostModel(args.alpha, args.beta)
    names = [args.scheme] if args.scheme else available_schemes()
    rows: List[List[object]] = []
    for name in names:
        scheme = get_scheme(name)
        encoded = scheme.encode(burst)
        encoded.verify()
        transitions, zeros = encoded.activity()
        pattern = "".join("I" if flag else "." for flag in encoded.invert_flags)
        rows.append([name, zeros, transitions,
                     f"{encoded.cost(model):.1f}", pattern])
    print(f"burst: {' '.join(burst.bit_strings())}")
    print(markdown_table(
        ["scheme", "zeros", "transitions",
         f"cost (a={args.alpha:g}, b={args.beta:g})", "invert pattern"],
        rows))
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    del args
    for name in available_schemes():
        print(name)
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    burst = _burst_from_args(args)
    if len(burst) > 16:
        print("pareto enumeration supports at most 16 bytes", file=sys.stderr)
        return 2
    print(f"burst: {' '.join(burst.bit_strings())}")
    print(pareto_summary(burst))
    return 0


def _cmd_sweep_alpha(args: argparse.Namespace) -> int:
    population = random_bursts(count=args.samples, seed=args.seed)
    result = alpha_sweep(population, points=args.points, include_fixed=True)
    print(format_alpha_sweep(result, points=11))
    best = elementwise_min(result.series["dbi-dc"], result.series["dbi-ac"])
    crossover = interpolated_crossing(result.ac_costs, result.series["dbi-ac"],
                                      result.series["dbi-dc"])
    peak_x, peak_gain = peak_advantage(result.ac_costs,
                                       result.series["dbi-opt"], best)
    print(f"\nAC/DC crossover: alpha = {crossover:.3f}")
    print(f"OPT peak gain: {100 * peak_gain:.2f}% at alpha = {peak_x:.2f}")
    if args.plot:
        print(quick_plot(result.ac_costs,
                         {name: result.series[name]
                          for name in ("raw", "dbi-dc", "dbi-ac", "dbi-opt")},
                         title="energy per burst vs AC cost",
                         x_label="AC cost"))
    return 0


def _interface(name: str):
    return {"pod135": pod135, "pod12": pod12}[name]()


def _cmd_sweep_rate(args: argparse.Namespace) -> int:
    population = random_bursts(count=args.samples, seed=args.seed)
    rates = [0.5 * GBPS * step for step in range(1, 2 * args.max_gbps + 1)]
    result = data_rate_sweep(population, interface=_interface(args.interface),
                             c_load_farads=args.c_load_pf * PICOFARAD,
                             data_rates_hz=rates)
    print(format_data_rate_sweep(result, every=4))
    if args.plot:
        gbps = [rate / 1e9 for rate in rates]
        print(quick_plot(gbps,
                         {name: result.normalized[name]
                          for name in ("dbi-dc", "dbi-ac", "dbi-opt",
                                       "dbi-opt-fixed")},
                         title=f"normalised energy ({args.interface}, "
                               f"{args.c_load_pf:g} pF)",
                         x_label="data rate [Gbps]"))
    return 0


def _cmd_sweep_load(args: argparse.Namespace) -> int:
    population = random_bursts(count=args.samples, seed=args.seed)
    rates = [0.5 * GBPS * step for step in range(1, 2 * args.max_gbps + 1)]
    loads = [value * PICOFARAD for value in args.loads_pf]
    result = load_sweep(population, interface=_interface(args.interface),
                        c_loads_farads=loads, data_rates_hz=rates)
    print(format_load_sweep(result, every=4))
    for load in loads:
        rate, value = result.best_gain(load)
        print(f"{load * 1e12:.0f} pF: best saving {100 * (1 - value):.2f}% "
              f"at {rate / 1e9:.1f} Gbps")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    del args
    from .hw.synthesis import table_one_markdown
    print(table_one_markdown())
    return 0


def _add_burst_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bits", nargs="+", metavar="BITSTRING",
                        help="burst bytes as MSB-first bit strings")
    parser.add_argument("--hex", nargs="+", metavar="HEXBYTE",
                        help="burst bytes as hex values")


def _add_population_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, default=2000,
                        help="random bursts in the population")
    parser.add_argument("--seed", type=int, default=0x0DB1,
                        help="RNG seed")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal DC/AC data bus inversion coding (DATE 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    encode = sub.add_parser("encode", help="encode one burst with DBI schemes")
    _add_burst_arguments(encode)
    encode.add_argument("--scheme", choices=available_schemes(),
                        help="single scheme (default: all)")
    encode.add_argument("--alpha", type=float, default=1.0)
    encode.add_argument("--beta", type=float, default=1.0)
    encode.set_defaults(handler=_cmd_encode)

    schemes = sub.add_parser("schemes", help="list registered schemes")
    schemes.set_defaults(handler=_cmd_schemes)

    pareto = sub.add_parser("pareto", help="Pareto frontier of one burst")
    _add_burst_arguments(pareto)
    pareto.set_defaults(handler=_cmd_pareto)

    sweep_alpha = sub.add_parser("sweep-alpha",
                                 help="Fig. 3/4 alpha sweep")
    _add_population_arguments(sweep_alpha)
    sweep_alpha.add_argument("--points", type=int, default=26)
    sweep_alpha.add_argument("--plot", action="store_true")
    sweep_alpha.set_defaults(handler=_cmd_sweep_alpha)

    sweep_rate = sub.add_parser("sweep-rate", help="Fig. 7 data-rate sweep")
    _add_population_arguments(sweep_rate)
    sweep_rate.add_argument("--interface", choices=("pod135", "pod12"),
                            default="pod135")
    sweep_rate.add_argument("--c-load-pf", type=float, default=3.0)
    sweep_rate.add_argument("--max-gbps", type=int, default=20)
    sweep_rate.add_argument("--plot", action="store_true")
    sweep_rate.set_defaults(handler=_cmd_sweep_rate)

    sweep_load = sub.add_parser("sweep-load", help="Fig. 8 load sweep")
    _add_population_arguments(sweep_load)
    sweep_load.add_argument("--interface", choices=("pod135", "pod12"),
                            default="pod135")
    sweep_load.add_argument("--loads-pf", type=float, nargs="+",
                            default=[1.0, 2.0, 3.0, 4.0, 6.0, 8.0])
    sweep_load.add_argument("--max-gbps", type=int, default=20)
    sweep_load.set_defaults(handler=_cmd_sweep_load)

    table1 = sub.add_parser("table1", help="Table I synthesis estimates")
    table1.set_defaults(handler=_cmd_table1)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
