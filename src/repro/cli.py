"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro encode --bits 10001110 10000110 --scheme dbi-opt
    python -m repro schemes
    python -m repro pareto --bits 10001110 10000110 10010110
    python -m repro sweep-alpha --samples 2000 --points 26
    python -m repro sweep-rate --c-load-pf 3 --jobs 4 --out fig7.json
    python -m repro sweep-load --from-artifact fig8.json
    python -m repro table1
    python -m repro ctrl --trace gpu --interface pod135 lvstl11
    python -m repro ctrl --bursts 10000 --channels 4 --lanes 4
    python -m repro faults --rates 1e-3 1e-2 1e-1 --out faults.json
    python -m repro granularity --patterns --alpha 2 --beta 1
    python -m repro sso --samples 10000 --interfaces pod135 lvstl11
    python -m repro serve --port 7351 --cache-dir ~/.cache/repro

Every subcommand prints a markdown table or ASCII plot to stdout, so
results can be piped into reports directly.  The sweep subcommands run
through the experiment engine (:mod:`repro.sim.experiments`): they accept
``--backend`` (defaulting from ``REPRO_BACKEND``), ``--jobs N`` for
process-pool execution, ``--out`` to persist the run as a JSON artifact
and ``--from-artifact`` to re-render a saved artifact without
re-simulating.  Every engine subcommand (sweeps, ``ctrl``, ``faults``,
``granularity``, ``sso``) also accepts ``--cache-dir DIR`` — a persistent
on-disk activity cache (:mod:`repro.service.diskcache`) shared across
runs, processes and the ``repro serve`` daemon; ``REPRO_CACHE_DIR``
supplies the default.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .analysis.ascii_plot import quick_plot
from .analysis.crossover import (
    elementwise_min,
    interpolated_crossing,
    peak_advantage,
)
from .core.burst import Burst
from .core.costs import CostModel
from .core.pareto import pareto_summary
from .core.schemes import available_schemes, get_scheme
from .core.vectorized import BACKENDS
from .phy.interface import available_interfaces
from .phy.pod import pod12, pod135
from .phy.power import GBPS, PICOFARAD, PICOJOULE
from .extensions.granularity import VALID_GROUP_SIZES
from .extensions.reliability import DEFAULT_FAULT_RATES
from .service.diskcache import open_cache, resolve_cache_dir
from .sim.experiments import (
    ExperimentResult,
    ReplayPoint,
    ReplaySpec,
    alpha_experiment,
    fault_experiment,
    granularity_experiment,
    load_artifact,
    load_experiment,
    load_replay_artifact,
    rate_experiment,
    run_experiment,
    run_faults,
    run_granularity,
    run_replay,
    run_sso,
    save_artifact,
    save_replay_artifact,
    sso_experiment,
)
from .sim.report import (
    format_alpha_sweep,
    format_data_rate_sweep,
    format_load_sweep,
    format_provenance,
    markdown_table,
)
from .sim.sweep import to_alpha_result, to_load_result, to_rate_result
from .ctrl.adaptive import (
    DEFAULT_HALF_LIFE_BYTES,
    OperatingPoint,
    OperatingPointSchedule,
    TrackingConfig,
)
from .workloads.patterns import PATTERN_NAMES, pattern_population
from .workloads.population import RandomPopulation
from .workloads.source import DEFAULT_TRACE_CHUNK_BYTES, FileTraceSource


def _burst_from_args(args: argparse.Namespace) -> Burst:
    if args.bits:
        return Burst.from_bit_strings(args.bits)
    if args.hex:
        return Burst(int(token, 16) for token in args.hex)
    from .core.burst import PAPER_FIG2_BURST
    return PAPER_FIG2_BURST


def _cmd_encode(args: argparse.Namespace) -> int:
    burst = _burst_from_args(args)
    model = CostModel(args.alpha, args.beta)
    names = [args.scheme] if args.scheme else available_schemes()
    rows: List[List[object]] = []
    for name in names:
        scheme = get_scheme(name)
        encoded = scheme.encode_batch([burst], backend=args.backend)[0]
        encoded.verify()
        transitions, zeros = encoded.activity()
        pattern = "".join("I" if flag else "." for flag in encoded.invert_flags)
        rows.append([name, zeros, transitions,
                     f"{encoded.cost(model):.1f}", pattern])
    print(f"burst: {' '.join(burst.bit_strings())}")
    print(markdown_table(
        ["scheme", "zeros", "transitions",
         f"cost (a={args.alpha:g}, b={args.beta:g})", "invert pattern"],
        rows))
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    del args
    for name in available_schemes():
        print(name)
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    burst = _burst_from_args(args)
    if len(burst) > 16:
        print("pareto enumeration supports at most 16 bytes", file=sys.stderr)
        return 2
    print(f"burst: {' '.join(burst.bit_strings())}")
    print(pareto_summary(burst))
    return 0


def _population_from_args(args: argparse.Namespace) -> RandomPopulation:
    return RandomPopulation(count=args.samples, seed=args.seed)


#: Simulation flags that --from-artifact renders meaningless (flag name
#: -> its parser default, shared by every sweep subcommand).
_SIM_FLAG_DEFAULTS = {"samples": 2000, "seed": 0x0DB1, "jobs": 1,
                      "backend": None, "cache_dir": None, "shards": 1,
                      "retries": 3, "checkpoint_dir": None}


def _run_or_load(args: argparse.Namespace, build_spec, figure: str,
                 converter):
    """Execute the engine (or load an artifact) and convert to figure form.

    Returns ``(result, sweep)``, or ``None`` for a handled usage error
    (message already on stderr, caller exits 2).
    """
    if args.out:
        out_dir = os.path.dirname(os.path.abspath(args.out))
        if not os.path.isdir(out_dir):
            print(f"--out {args.out}: directory {out_dir} does not exist",
                  file=sys.stderr)
            return None
    if args.from_artifact:
        ignored = [f"--{name}" for name, default in _SIM_FLAG_DEFAULTS.items()
                   if getattr(args, name, default) != default]
        if ignored:
            print(f"warning: {' '.join(ignored)} ignored — rendering from "
                  f"{args.from_artifact}, not simulating", file=sys.stderr)
        try:
            result = load_artifact(args.from_artifact)
            if result.spec.figure != figure:
                print(f"{args.from_artifact}: artifact renders figure "
                      f"{result.spec.figure!r}, expected {figure!r}",
                      file=sys.stderr)
                return None
            sweep = converter(result)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"{args.from_artifact}: cannot load artifact ({error})",
                  file=sys.stderr)
            return None
    else:
        shards = getattr(args, "shards", 1)
        checkpoint_dir = getattr(args, "checkpoint_dir", None)
        if shards > 1 or checkpoint_dir:
            from .service.retry import RetryPolicy
            from .service.shard import SHARD_RETRYABLE, run_shards

            retry = RetryPolicy(max_attempts=getattr(args, "retries", 3),
                                retryable=SHARD_RETRYABLE)
            processes = args.jobs > 1
            result = run_shards(
                build_spec(), max(shards, 1), backend=args.backend,
                cache=None if processes else open_cache(args.cache_dir),
                cache_dir=(resolve_cache_dir(args.cache_dir)
                           if processes else None),
                processes=processes, retry=retry,
                checkpoint_dir=checkpoint_dir,
                max_workers=args.jobs if processes else None)
        else:
            result = run_experiment(build_spec(), backend=args.backend,
                                    jobs=args.jobs,
                                    cache=open_cache(args.cache_dir))
        sweep = converter(result)
    if args.out:
        try:
            save_artifact(result, args.out)
        except OSError as error:
            print(f"--out {args.out}: cannot write artifact ({error})",
                  file=sys.stderr)
            return None
    return result, sweep


def _print_provenance(args: argparse.Namespace,
                      result: ExperimentResult) -> None:
    if args.out or args.from_artifact:
        print()
        print(format_provenance(result))
        if args.out:
            print(f"# artifact written to {args.out}")


def _cmd_sweep_alpha(args: argparse.Namespace) -> int:
    outcome = _run_or_load(
        args,
        lambda: alpha_experiment(_population_from_args(args),
                                 points=args.points, include_fixed=True),
        figure="alpha", converter=to_alpha_result)
    if outcome is None:
        return 2
    result, sweep = outcome
    print(format_alpha_sweep(sweep, points=11))
    best = elementwise_min(sweep.series["dbi-dc"], sweep.series["dbi-ac"])
    crossover = interpolated_crossing(sweep.ac_costs, sweep.series["dbi-ac"],
                                      sweep.series["dbi-dc"])
    peak_x, peak_gain = peak_advantage(sweep.ac_costs,
                                       sweep.series["dbi-opt"], best)
    print(f"\nAC/DC crossover: alpha = {crossover:.3f}")
    print(f"OPT peak gain: {100 * peak_gain:.2f}% at alpha = {peak_x:.2f}")
    if args.plot:
        print(quick_plot(sweep.ac_costs,
                         {name: sweep.series[name]
                          for name in ("raw", "dbi-dc", "dbi-ac", "dbi-opt")},
                         title="energy per burst vs AC cost",
                         x_label="AC cost"))
    _print_provenance(args, result)
    return 0


def _interface(name: str):
    return {"pod135": pod135, "pod12": pod12}[name]()


def _cmd_sweep_rate(args: argparse.Namespace) -> int:
    rates = [0.5 * GBPS * step for step in range(1, 2 * args.max_gbps + 1)]
    outcome = _run_or_load(
        args,
        lambda: rate_experiment(_population_from_args(args),
                                interface=_interface(args.interface),
                                c_load_farads=args.c_load_pf * PICOFARAD,
                                data_rates_hz=rates),
        figure="rate", converter=to_rate_result)
    if outcome is None:
        return 2
    result, sweep = outcome
    print(format_data_rate_sweep(sweep, every=4))
    if args.plot:
        gbps = [rate / 1e9 for rate in sweep.data_rates_hz]
        print(quick_plot(gbps,
                         {name: sweep.normalized[name]
                          for name in ("dbi-dc", "dbi-ac", "dbi-opt",
                                       "dbi-opt-fixed")},
                         title=f"normalised energy ({args.interface}, "
                               f"{args.c_load_pf:g} pF)",
                         x_label="data rate [Gbps]"))
    _print_provenance(args, result)
    return 0


def _cmd_sweep_load(args: argparse.Namespace) -> int:
    rates = [0.5 * GBPS * step for step in range(1, 2 * args.max_gbps + 1)]
    loads = [value * PICOFARAD for value in args.loads_pf]
    outcome = _run_or_load(
        args,
        lambda: load_experiment(_population_from_args(args),
                                interface=_interface(args.interface),
                                c_loads_farads=loads,
                                data_rates_hz=rates),
        figure="load", converter=to_load_result)
    if outcome is None:
        return 2
    result, sweep = outcome
    print(format_load_sweep(sweep, every=4))
    for load in sweep.normalized:
        rate, value = sweep.best_gain(load)
        print(f"{load * 1e12:.0f} pF: best saving {100 * (1 - value):.2f}% "
              f"at {rate / 1e9:.1f} Gbps")
    _print_provenance(args, result)
    return 0


def _ctrl_trace(args: argparse.Namespace) -> Optional[dict]:
    """The replay trace as :class:`ReplaySpec` keyword arguments.

    Trace files stream through a chunked :class:`FileTraceSource`
    (``source=``, never a whole-file read); named traces and synthetic
    bursts stay inline payloads (``payload=``), which keeps ``--jobs``
    pool parallelism for them.  Returns ``None`` for a handled usage
    error (message on stderr).
    """
    path = args.trace_file or (args.trace if args.trace
                               and os.path.exists(args.trace) else None)
    if path is not None:
        try:
            return {"source": FileTraceSource(path,
                                              chunk_bytes=args.chunk_bytes,
                                              limit=args.bytes)}
        except (OSError, ValueError) as error:
            print(f"trace file {path}: {error}", file=sys.stderr)
            return None
    if args.trace:
        try:
            from .workloads.traces import trace_bytes
        except ImportError:
            print(f"--trace {args.trace}: named traces need NumPy (pass a "
                  "file path or use --bursts instead)", file=sys.stderr)
            return None
        try:
            return {"payload": trace_bytes(args.trace, args.bytes or 65536,
                                           seed=args.seed)}
        except KeyError as error:
            print(f"--trace: {error.args[0]}", file=sys.stderr)
            return None
    from .workloads.population import RandomPopulation

    population = RandomPopulation(count=args.bursts, seed=args.seed)
    return {"payload": b"".join(bytes(burst.data) for burst in population)}


def _parse_operating_points(specs: Sequence[str], c_load_pf: float,
                            option: str, with_starts: bool):
    """Parse ``IFACE@GBPS[:START]`` point specs for --schedule/--track.

    Returns ``(points, switch_at)`` or ``None`` after printing a usage
    error.  ``START`` markers are only meaningful (and, from the second
    point on, required) for schedules.
    """
    points: List[OperatingPoint] = []
    switch_at: List[int] = []
    for index, text in enumerate(specs):
        body, colon, start = text.partition(":")
        interface, at, gbps = body.partition("@")
        try:
            if not at:
                raise ValueError("expected IFACE@GBPS")
            if colon and not with_starts:
                raise ValueError("switch positions are for --schedule only")
            if with_starts and index > 0 and not colon:
                raise ValueError(
                    "every point after the first needs :START")
            if colon:
                if index == 0:
                    raise ValueError("the first point cannot have :START")
                switch_at.append(int(start))
            points.append(OperatingPoint(
                interface=interface, data_rate_hz=float(gbps) * GBPS,
                c_load_farads=c_load_pf * PICOFARAD))
        except (KeyError, ValueError) as error:
            print(f"{option} {text!r}: {error}", file=sys.stderr)
            return None
    return points, switch_at


def _cmd_ctrl(args: argparse.Namespace) -> int:
    if not _check_out(args.out):
        return 2
    if args.from_artifact:
        try:
            result = load_replay_artifact(args.from_artifact)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"{args.from_artifact}: cannot load artifact ({error})",
                  file=sys.stderr)
            return 2
        spec = result.spec
        payload_bytes = int(result.provenance.get("payload_bytes",
                                                  len(spec.payload)))
    else:
        trace = _ctrl_trace(args)
        if trace is None:
            return 2
        schedule = tracking = None
        if args.schedule:
            parsed = _parse_operating_points(
                args.schedule, args.c_load_pf, "--schedule", True)
            if parsed is None:
                return 2
            points, switch_at = parsed
            try:
                schedule = OperatingPointSchedule(
                    points=tuple(points), switch_at=tuple(switch_at),
                    unit=args.schedule_unit)
            except ValueError as error:
                print(f"--schedule: {error}", file=sys.stderr)
                return 2
        if args.track:
            parsed = _parse_operating_points(
                args.track, args.c_load_pf, "--track", False)
            if parsed is None:
                return 2
            try:
                tracking = TrackingConfig(
                    points=tuple(parsed[0]),
                    half_life_bytes=args.track_half_life)
            except ValueError as error:
                print(f"--track: {error}", file=sys.stderr)
                return 2
        interfaces = list(dict.fromkeys(args.interface))
        try:
            spec = ReplaySpec(
                name="cli-ctrl-replay",
                points=tuple(ReplayPoint(
                    interface=name,
                    data_rate_hz=args.data_rate_gbps * GBPS,
                    c_load_farads=args.c_load_pf * PICOFARAD)
                    for name in interfaces),
                channels=args.channels, byte_lanes=args.lanes,
                window=args.window, line_bytes=args.line_bytes,
                chunk_bytes=args.chunk_bytes, schedule=schedule,
                tracking=tracking, **trace)
        except ValueError as error:
            print(f"ctrl: {error}", file=sys.stderr)
            return 2
        result = run_replay(spec, backend=args.backend, jobs=args.jobs,
                            cache=open_cache(args.cache_dir))
        payload_bytes = spec.trace_bytes_total()
    totals_any = next(iter(result.totals.values()))
    streamed = (f" (streamed in {spec.effective_chunk_bytes()}-byte chunks)"
                if result.provenance.get("streamed") else "")
    print(f"payload: {payload_bytes} bytes -> {totals_any.transactions} "
          f"transactions of <= {spec.line_bytes} B over "
          f"{spec.channels} channel(s) x {spec.byte_lanes} lane(s), "
          f"window {spec.window}{streamed}")
    for point in spec.points:
        priced = result.series[point.label]
        totals = result.totals_for(point.label)
        rows: List[List[object]] = []
        for channel, ((zeros, transitions, beats), energy) in enumerate(
                zip(totals.channels, priced["per_channel_energy"])):
            rows.append([channel, beats, zeros, transitions,
                         f"{energy / PICOJOULE:.1f}",
                         f"{energy / beats / PICOJOULE:.3f}" if beats else "-"])
        rows.append(["total", totals.bytes_written, totals.zeros,
                     totals.transitions,
                     f"{priced['energy_joules'] / PICOJOULE:.1f}",
                     f"{priced['energy_per_byte'] / PICOJOULE:.3f}"])
        print(f"\n## {point.label}")
        print(markdown_table(
            ["channel", "bytes", "zeros", "transitions", "energy [pJ]",
             "pJ/byte"], rows))
    adaptive_label = spec.adaptive_label
    if adaptive_label is not None and adaptive_label in result.series:
        priced = result.series[adaptive_label]
        totals = result.totals_for(adaptive_label)
        rows = []
        for (label, zeros, transitions, beats), segment in zip(
                totals.segments, priced["per_segment_energy"]):
            energy = segment["energy_joules"]
            rows.append([label, beats, zeros, transitions,
                         f"{energy / PICOJOULE:.1f}",
                         f"{energy / beats / PICOJOULE:.3f}" if beats else "-"])
        rows.append(["total", totals.bytes_written, totals.zeros,
                     totals.transitions,
                     f"{priced['energy_joules'] / PICOJOULE:.1f}",
                     f"{priced['energy_per_byte'] / PICOJOULE:.3f}"])
        kind = "schedule" if spec.schedule is not None else "tracking"
        print(f"\n## {adaptive_label} ({kind}, per segment)")
        print(markdown_table(
            ["segment", "beats", "zeros", "transitions", "energy [pJ]",
             "pJ/byte"], rows))
    if args.out:
        try:
            save_replay_artifact(result, args.out)
        except OSError as error:
            print(f"--out {args.out}: cannot write artifact ({error})",
                  file=sys.stderr)
            return 2
        print(f"\n# artifact written to {args.out}")
    provenance = result.provenance
    print(f"\n# backend={provenance['backend']} "
          f"replays={provenance['replays']} "
          f"cache_hits={provenance['cache_hits']} "
          f"elapsed={provenance['elapsed_s']:.3f}s"
          + (f" | loaded from {provenance['loaded_from']}"
             if "loaded_from" in provenance else ""))
    return 0


def _check_out(path: Optional[str]) -> bool:
    """Validate an ``--out`` target directory before simulating."""
    if not path:
        return True
    out_dir = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(out_dir):
        print(f"--out {path}: directory {out_dir} does not exist",
              file=sys.stderr)
        return False
    return True


def _axis_population(args: argparse.Namespace):
    """Population source for the faults/granularity axes.

    ``--patterns`` selects the directed suite (all patterns when given
    without names), tiled so the population size approximates
    ``--samples``; otherwise ``--samples`` seeded random bursts.
    """
    if args.patterns is not None:
        names = list(args.patterns) or PATTERN_NAMES
        return pattern_population(names,
                                  repeats=max(1, args.samples // len(names)))
    return RandomPopulation(count=args.samples, seed=args.seed)


def _cmd_faults(args: argparse.Namespace) -> int:
    if not _check_out(args.out):
        return 2
    spec = fault_experiment(_axis_population(args),
                            schemes=list(dict.fromkeys(args.schemes)),
                            rates=tuple(args.rates), seed=args.fault_seed)
    result = run_faults(spec, backend=args.backend, word_impl=args.word_impl,
                        cache=open_cache(args.cache_dir))
    rows: List[List[object]] = []
    for slot_name, _scheme in spec.slots:
        for row in result.series[slot_name]:
            rows.append([slot_name, f"{row['rate']:g}",
                         row["injected_faults"], row["bit_errors"],
                         f"{row['bit_error_rate']:.3e}",
                         f"{row['beat_error_rate']:.3e}",
                         f"{row['amplification']:.3f}"])
    print(f"population: {len(spec.population)} bursts, "
          f"mask seed {spec.seed}")
    print(markdown_table(
        ["scheme", "fault rate", "injected", "bit errors", "BER",
         "beat ER", "amplification"], rows))
    if args.out:
        try:
            result.save(args.out)
        except OSError as error:
            print(f"--out {args.out}: cannot write artifact ({error})",
                  file=sys.stderr)
            return 2
        print(f"# artifact written to {args.out}")
    provenance = result.provenance
    print(f"\n# backend={provenance['backend']} "
          f"word_impl={provenance['word_impl']} "
          f"injections={provenance['injections']} "
          f"cache_hits={provenance['cache_hits']} "
          f"elapsed={provenance['elapsed_s']:.3f}s")
    return 0


def _cmd_granularity(args: argparse.Namespace) -> int:
    if not _check_out(args.out):
        return 2
    model = CostModel(args.alpha, args.beta)
    spec = granularity_experiment(_axis_population(args), model=model,
                                  group_sizes=tuple(args.group_sizes))
    result = run_granularity(spec, backend=args.backend,
                             cache=open_cache(args.cache_dir))
    rows = [[row["group_size"], f"{row['mean_zeros']:.3f}",
             f"{row['mean_transitions']:.3f}", f"{row['mean_cost']:.3f}",
             row["lines_per_byte_lane"]]
            for row in result.rows]
    print(f"population: {len(spec.population)} bursts")
    print(markdown_table(
        ["group size", "zeros/burst", "transitions/burst",
         f"cost (a={args.alpha:g}, b={args.beta:g})", "lines/byte lane"],
        rows))
    if args.out:
        try:
            result.save(args.out)
        except OSError as error:
            print(f"--out {args.out}: cannot write artifact ({error})",
                  file=sys.stderr)
            return 2
        print(f"# artifact written to {args.out}")
    provenance = result.provenance
    print(f"\n# backend={provenance['backend']} "
          f"encodes={provenance['encodes']} "
          f"cache_hits={provenance['cache_hits']} "
          f"elapsed={provenance['elapsed_s']:.3f}s")
    return 0


def _cmd_sso(args: argparse.Namespace) -> int:
    if not _check_out(args.out):
        return 2
    spec = sso_experiment(_axis_population(args),
                          schemes=list(dict.fromkeys(args.schemes)),
                          interfaces=list(dict.fromkeys(args.interfaces)),
                          chained=args.chained, threshold=args.threshold)
    result = run_sso(spec, backend=args.backend, word_impl=args.word_impl,
                     cache=open_cache(args.cache_dir))
    # Rank worst-first: highest peak switching, then highest mean.
    flat = [(slot_name, row)
            for slot_name, _scheme in spec.slots
            for row in result.series[slot_name]]
    flat.sort(key=lambda item: (-item[1]["max_switching"],
                                -item[1]["mean_switching"],
                                item[0], item[1]["interface"]))
    rows: List[List[object]] = [
        [slot_name, row["interface"], row["max_switching"],
         f"{row['mean_switching']:.3f}",
         f"{100.0 * row['exceed_fraction']:.2f}%",
         f"{1000.0 * row['peak_current_amps']:.2f}",
         f"{1000.0 * row['mean_current_amps']:.2f}"]
        for slot_name, row in flat]
    print(f"population: {len(spec.population)} bursts, "
          f"{'chained' if spec.chained else 'per-burst'} boundary")
    print(markdown_table(
        ["scheme", "interface", "max SSO", "mean SSO",
         f">{spec.threshold} lanes", "peak mA", "mean mA"], rows))
    if args.out:
        try:
            result.save(args.out)
        except OSError as error:
            print(f"--out {args.out}: cannot write artifact ({error})",
                  file=sys.stderr)
            return 2
        print(f"# artifact written to {args.out}")
    provenance = result.provenance
    print(f"\n# backend={provenance['backend']} "
          f"word_impl={provenance['word_impl']} "
          f"encodes={provenance['encodes']} "
          f"cache_hits={provenance['cache_hits']} "
          f"elapsed={provenance['elapsed_s']:.3f}s")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.daemon import ExperimentDaemon

    cache_dir = resolve_cache_dir(args.cache_dir)
    daemon = ExperimentDaemon(host=args.host, port=args.port,
                              cache_dir=cache_dir,
                              artifact_dir=args.artifact_dir,
                              backend=args.backend,
                              request_timeout=args.request_timeout,
                              max_connections=args.max_connections)
    host, port = daemon.address
    where = f"cache: {cache_dir}" if cache_dir else "in-memory cache"
    print(f"repro service listening on {host}:{port} ({where})", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        daemon.shutdown()
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .hw.synthesis import _design_specs, synthesize, table_one_markdown
    results = {
        name: synthesize(spec, activity_bursts=args.bursts,
                         backend=args.backend)
        for name, spec in _design_specs().items()
    }
    print(table_one_markdown(results))
    return 0


def _add_burst_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bits", nargs="+", metavar="BITSTRING",
                        help="burst bytes as MSB-first bit strings")
    parser.add_argument("--hex", nargs="+", metavar="HEXBYTE",
                        help="burst bytes as hex values")


def _add_population_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, default=2000,
                        help="random bursts in the population")
    parser.add_argument("--seed", type=int, default=0x0DB1,
                        help="RNG seed")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="execution backend (default: REPRO_BACKEND "
                             "or auto)")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return number


def _add_cache_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", dest="cache_dir", metavar="DIR",
                        default=None,
                        help="persistent on-disk activity cache shared "
                             "across runs and processes (default: "
                             "REPRO_CACHE_DIR, else in-memory)")


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    _add_backend_argument(parser)
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="worker processes for the encode grid "
                             "(default: 1, serial)")
    _add_cache_dir_argument(parser)
    parser.add_argument("--out", metavar="PATH",
                        help="persist the run as a JSON experiment artifact")
    parser.add_argument("--from-artifact", dest="from_artifact",
                        metavar="PATH",
                        help="re-render a saved artifact instead of "
                             "simulating")
    parser.add_argument("--shards", type=_positive_int, default=1,
                        metavar="N",
                        help="split the sweep into N shards via "
                             "run_shards (default: 1, unsharded; merged "
                             "output is bit-identical either way)")
    parser.add_argument("--retries", type=_positive_int, default=3,
                        metavar="N",
                        help="attempts per shard before a typed failure "
                             "(default: 3)")
    parser.add_argument("--checkpoint-dir", dest="checkpoint_dir",
                        metavar="DIR", default=None,
                        help="persist each completed shard here and "
                             "resume past completed ones on re-run "
                             "(implies sharded execution)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal DC/AC data bus inversion coding (DATE 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    encode = sub.add_parser("encode", help="encode one burst with DBI schemes")
    _add_burst_arguments(encode)
    encode.add_argument("--scheme", choices=available_schemes(),
                        help="single scheme (default: all)")
    encode.add_argument("--alpha", type=float, default=1.0)
    encode.add_argument("--beta", type=float, default=1.0)
    _add_backend_argument(encode)
    encode.set_defaults(handler=_cmd_encode)

    schemes = sub.add_parser("schemes", help="list registered schemes")
    schemes.set_defaults(handler=_cmd_schemes)

    pareto = sub.add_parser("pareto", help="Pareto frontier of one burst")
    _add_burst_arguments(pareto)
    pareto.set_defaults(handler=_cmd_pareto)

    sweep_alpha = sub.add_parser("sweep-alpha",
                                 help="Fig. 3/4 alpha sweep")
    _add_population_arguments(sweep_alpha)
    sweep_alpha.add_argument("--points", type=int, default=26)
    sweep_alpha.add_argument("--plot", action="store_true")
    _add_engine_arguments(sweep_alpha)
    sweep_alpha.set_defaults(handler=_cmd_sweep_alpha)

    sweep_rate = sub.add_parser("sweep-rate", help="Fig. 7 data-rate sweep")
    _add_population_arguments(sweep_rate)
    sweep_rate.add_argument("--interface", choices=("pod135", "pod12"),
                            default="pod135")
    sweep_rate.add_argument("--c-load-pf", type=float, default=3.0)
    sweep_rate.add_argument("--max-gbps", type=int, default=20)
    sweep_rate.add_argument("--plot", action="store_true")
    _add_engine_arguments(sweep_rate)
    sweep_rate.set_defaults(handler=_cmd_sweep_rate)

    sweep_load = sub.add_parser("sweep-load", help="Fig. 8 load sweep")
    _add_population_arguments(sweep_load)
    sweep_load.add_argument("--interface", choices=("pod135", "pod12"),
                            default="pod135")
    sweep_load.add_argument("--loads-pf", type=float, nargs="+",
                            default=[1.0, 2.0, 3.0, 4.0, 6.0, 8.0])
    sweep_load.add_argument("--max-gbps", type=int, default=20)
    _add_engine_arguments(sweep_load)
    sweep_load.set_defaults(handler=_cmd_sweep_load)

    ctrl = sub.add_parser(
        "ctrl", help="replay a trace through the write-path controller")
    source = ctrl.add_mutually_exclusive_group()
    source.add_argument("--trace", metavar="NAME|PATH",
                        help="named traffic class (text/float/image/pointer/"
                             "zero/gpu) or a binary file to replay")
    source.add_argument("--bursts", type=_positive_int, default=2000,
                        metavar="N",
                        help="synthetic input: N random 8-byte bursts "
                             "(default: 2000)")
    source.add_argument("--trace-file", dest="trace_file", metavar="PATH",
                        help="binary trace file, streamed chunk by chunk "
                             "in bounded memory (also applies to --trace "
                             "when it names an existing file)")
    ctrl.add_argument("--bytes", type=_positive_int, default=None,
                      metavar="N",
                      help="payload size for named traces (default: 65536); "
                           "for trace files, a cap on how much is streamed "
                           "(default: the whole file)")
    ctrl.add_argument("--chunk-bytes", dest="chunk_bytes",
                      type=_positive_int, default=DEFAULT_TRACE_CHUNK_BYTES,
                      metavar="N",
                      help="streaming chunk size for trace files and "
                           f"--track (default: {DEFAULT_TRACE_CHUNK_BYTES})")
    ctrl.add_argument("--seed", type=int, default=0x0DB1, help="RNG seed")
    ctrl.add_argument("--channels", type=_positive_int, default=2)
    ctrl.add_argument("--lanes", type=_positive_int, default=4,
                      help="byte lanes per channel (default: 4)")
    ctrl.add_argument("--window", type=_positive_int, default=16,
                      help="streaming-encoder lookahead in bytes "
                           "(default: 16)")
    ctrl.add_argument("--line-bytes", dest="line_bytes", type=_positive_int,
                      default=64, help="transaction granularity (default: 64)")
    ctrl.add_argument("--interface", nargs="+",
                      choices=available_interfaces(), default=["pod135"],
                      help="electrical standard(s) to price the replay at")
    ctrl.add_argument("--data-rate-gbps", dest="data_rate_gbps", type=float,
                      default=12.0, help="per-pin data rate (default: 12)")
    ctrl.add_argument("--c-load-pf", dest="c_load_pf", type=float,
                      default=3.0, help="lane load capacitance (default: 3)")
    adaptive = ctrl.add_mutually_exclusive_group()
    adaptive.add_argument("--schedule", nargs="+", metavar="IFACE@GBPS[:START]",
                          help="replay once under a DVFS point schedule: "
                               "first point at :0, every later point "
                               "switched in at its :START (see "
                               "--schedule-unit)")
    adaptive.add_argument("--track", nargs="+", metavar="IFACE@GBPS",
                          help="replay once with online alpha/beta tracking "
                               "choosing among these candidate points")
    ctrl.add_argument("--schedule-unit", dest="schedule_unit",
                      choices=["transactions", "address"],
                      default="transactions",
                      help="what :START indexes (default: transactions)")
    ctrl.add_argument("--track-half-life", dest="track_half_life",
                      type=float, default=DEFAULT_HALF_LIFE_BYTES,
                      metavar="BYTES",
                      help="EWMA half-life of the tracker in committed "
                           "lane bytes (default: "
                           f"{DEFAULT_HALF_LIFE_BYTES:g})")
    _add_backend_argument(ctrl)
    ctrl.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                      help="worker processes for distinct operating-point "
                           "replays (default: 1, serial)")
    _add_cache_dir_argument(ctrl)
    ctrl.add_argument("--out", metavar="PATH",
                      help="persist the replay as a JSON experiment artifact")
    ctrl.add_argument("--from-artifact", dest="from_artifact", metavar="PATH",
                      help="re-render a saved replay artifact instead of "
                           "simulating")
    ctrl.set_defaults(handler=_cmd_ctrl)

    faults = sub.add_parser(
        "faults", help="fault-injection coverage curves across schemes")
    _add_population_arguments(faults)
    faults.add_argument("--patterns", nargs="*", metavar="NAME",
                        choices=PATTERN_NAMES, default=None,
                        help="use the directed pattern suite (optionally a "
                             "subset) instead of random bursts")
    faults.add_argument("--schemes", nargs="+", metavar="SCHEME",
                        choices=available_schemes(),
                        default=["raw", "dbi-dc", "dbi-ac", "dbi-opt"],
                        help="schemes to inject into (default: the paper's "
                             "four)")
    faults.add_argument("--rates", type=float, nargs="+", metavar="P",
                        default=list(DEFAULT_FAULT_RATES),
                        help="per-lane-beat fault probabilities")
    faults.add_argument("--fault-seed", dest="fault_seed", type=int,
                        default=7, help="error-mask stream seed (default: 7)")
    faults.add_argument("--word-impl", dest="word_impl",
                        choices=("auto", "int", "uint64"), default="auto",
                        help="mask-parallel word representation (default: "
                             "auto — uint64 lanes with NumPy, big ints "
                             "without)")
    _add_backend_argument(faults)
    _add_cache_dir_argument(faults)
    faults.add_argument("--out", metavar="PATH",
                        help="persist the run as a JSON experiment artifact")
    faults.set_defaults(handler=_cmd_faults)

    granularity = sub.add_parser(
        "granularity", help="grouped-DBI granularity ablation")
    _add_population_arguments(granularity)
    granularity.add_argument("--patterns", nargs="*", metavar="NAME",
                             choices=PATTERN_NAMES, default=None,
                             help="use the directed pattern suite "
                                  "(optionally a subset) instead of random "
                                  "bursts")
    granularity.add_argument("--alpha", type=float, default=1.0,
                             help="transition cost (default: 1)")
    granularity.add_argument("--beta", type=float, default=1.0,
                             help="zero-beat cost (default: 1)")
    granularity.add_argument("--group-sizes", dest="group_sizes", type=int,
                             nargs="+", choices=VALID_GROUP_SIZES,
                             default=list(VALID_GROUP_SIZES),
                             help="data lanes per DBI line")
    _add_backend_argument(granularity)
    _add_cache_dir_argument(granularity)
    granularity.add_argument("--out", metavar="PATH",
                             help="persist the run as a JSON experiment "
                                  "artifact")
    granularity.set_defaults(handler=_cmd_granularity)

    sso = sub.add_parser(
        "sso", help="rank schemes × interfaces by simultaneous switching")
    _add_population_arguments(sso)
    sso.add_argument("--patterns", nargs="*", metavar="NAME",
                     choices=PATTERN_NAMES, default=None,
                     help="use the directed pattern suite (optionally a "
                          "subset) instead of random bursts")
    sso.add_argument("--schemes", nargs="+", metavar="SCHEME",
                     choices=available_schemes(),
                     default=["raw", "dbi-dc", "dbi-ac", "dbi-opt"],
                     help="schemes to rank (default: the paper's four)")
    sso.add_argument("--interfaces", nargs="+", metavar="NAME",
                     choices=available_interfaces(),
                     default=available_interfaces(),
                     help="interface presets to price the switching at "
                          "(default: all)")
    sso.add_argument("--chained", action="store_true",
                     help="thread bus state across bursts instead of the "
                          "per-burst idle-high boundary")
    sso.add_argument("--threshold", type=int, default=4, metavar="K",
                     help="report the fraction of beats with more than K "
                          "toggling lanes (default: 4)")
    sso.add_argument("--word-impl", dest="word_impl",
                     choices=("auto", "int", "uint64"), default="auto",
                     help="word-parallel tally representation (default: "
                          "auto — uint64 lanes with NumPy, big ints "
                          "without)")
    _add_backend_argument(sso)
    _add_cache_dir_argument(sso)
    sso.add_argument("--out", metavar="PATH",
                     help="persist the run as a JSON experiment artifact")
    sso.set_defaults(handler=_cmd_sso)

    serve = sub.add_parser(
        "serve", help="run the experiment query daemon (JSON lines over TCP)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7351,
                       help="TCP port; 0 binds an ephemeral port "
                            "(default: 7351)")
    _add_cache_dir_argument(serve)
    serve.add_argument("--artifact-dir", dest="artifact_dir", metavar="DIR",
                       default=None,
                       help="directory of artifacts the 'artifact' op may "
                            "serve")
    _add_backend_argument(serve)
    serve.add_argument("--request-timeout", dest="request_timeout",
                       type=float, default=None, metavar="SECONDS",
                       help="per-request socket deadline; idle or stalled "
                            "connections are dropped (default: none)")
    serve.add_argument("--max-connections", dest="max_connections",
                       type=int, default=64, metavar="N",
                       help="concurrent connection limit — excess clients "
                            "get a retryable busy answer; 0 = unlimited "
                            "(default: 64)")
    serve.set_defaults(handler=_cmd_serve)

    table1 = sub.add_parser("table1", help="Table I synthesis estimates")
    table1.add_argument("--bursts", type=_positive_int, default=None,
                        metavar="N",
                        help="random bursts for the activity simulation "
                             "(default: 100000 via the bit-parallel "
                             "engine)")
    _add_backend_argument(table1)
    table1.set_defaults(handler=_cmd_table1)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
