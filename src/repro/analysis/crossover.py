"""Crossover and operating-region analysis.

The paper reports several scalar landmarks extracted from its sweeps:

* DBI AC becomes cheaper than DBI DC at AC cost ≈ 0.56 (Fig. 3);
* DBI OPT's advantage peaks at that crossover (≈ 6.75 %);
* OPT (Fixed) beats the best conventional scheme for AC cost in
  [0.23, 0.79] (Fig. 4);
* DBI DC beats OPT (Fixed) below ≈ 3.8 Gbps, and OPT's physical gain peaks
  near 14 Gbps at 3 pF (Fig. 7).

This module extracts those landmarks from sweep results with simple and
well-tested numerics (linear interpolation between sweep points).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def interpolated_crossing(xs: Sequence[float], first: Sequence[float],
                          second: Sequence[float]) -> Optional[float]:
    """x where series *first* first drops below series *second*.

    Linear interpolation between the bracketing sweep points; ``None`` when
    *first* never goes below *second*.

    >>> interpolated_crossing([0, 1], [2, 0], [1, 1])
    0.5
    """
    if not (len(xs) == len(first) == len(second)):
        raise ValueError("series lengths differ")
    previous_delta = 0.0
    for index, (x, a, b) in enumerate(zip(xs, first, second)):
        delta = a - b
        if delta < 0:
            if index == 0:
                return x
            x0 = xs[index - 1]
            # previous_delta >= 0 > delta: the crossing lies between x0 and x.
            t = previous_delta / (previous_delta - delta)
            return x0 + t * (x - x0)
        previous_delta = delta
    return None


def advantage_region(xs: Sequence[float], candidate: Sequence[float],
                     reference: Sequence[float]) -> Optional[Tuple[float, float]]:
    """(start, end) of the contiguous region where candidate < reference.

    Returns the widest contiguous interval (in sweep-point resolution) —
    Fig. 4's [0.23, 0.79] claim is of this form.
    """
    if not (len(xs) == len(candidate) == len(reference)):
        raise ValueError("series lengths differ")
    regions: List[Tuple[float, float]] = []
    start: Optional[float] = None
    for x, a, b in zip(xs, candidate, reference):
        if a < b:
            if start is None:
                start = x
            end = x
        else:
            if start is not None:
                regions.append((start, end))
                start = None
    if start is not None:
        regions.append((start, end))
    if not regions:
        return None
    return max(regions, key=lambda region: region[1] - region[0])


def peak_advantage(xs: Sequence[float], candidate: Sequence[float],
                   reference: Sequence[float]) -> Tuple[float, float]:
    """(x, relative gain) where candidate's advantage over reference peaks.

    Gain is ``1 - candidate/reference``; positive means candidate cheaper.

    >>> peak_advantage([0, 1], [1.0, 0.5], [1.0, 1.0])
    (1, 0.5)
    """
    if not (len(xs) == len(candidate) == len(reference)):
        raise ValueError("series lengths differ")
    best_x = xs[0]
    best_gain = float("-inf")
    for x, a, b in zip(xs, candidate, reference):
        if b == 0:
            raise ZeroDivisionError("reference series touches zero")
        gain = 1.0 - a / b
        if gain > best_gain:
            best_gain = gain
            best_x = x
    return best_x, best_gain


def elementwise_min(*series: Sequence[float]) -> List[float]:
    """Point-wise minimum of several aligned series (the 'best of' curve)."""
    if not series:
        raise ValueError("no series given")
    length = len(series[0])
    for s in series:
        if len(s) != length:
            raise ValueError("series lengths differ")
    return [min(values) for values in zip(*series)]
