"""Terminal line plots.

The evaluation figures of the paper are line charts; with no plotting
dependency available offline, this module renders multi-series line plots
as fixed-width ASCII art so benchmarks and examples can show the *shape*
of each figure directly in the terminal / captured output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Glyphs assigned to series in insertion order.
SERIES_GLYPHS = "ox+*#@%&"


@dataclass
class AsciiPlot:
    """A multi-series scatter/line plot rendered with characters.

    >>> plot = AsciiPlot(width=20, height=5, title="demo")
    >>> plot.add_series("a", [0, 1, 2], [0.0, 1.0, 0.5])
    >>> text = plot.render()
    >>> "demo" in text
    True
    """

    width: int = 72
    height: int = 20
    title: str = ""
    x_label: str = ""
    y_label: str = ""
    series: Dict[str, Tuple[List[float], List[float]]] = field(default_factory=dict)

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Add one named series (xs and ys must align)."""
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        if len(self.series) >= len(SERIES_GLYPHS):
            raise ValueError(f"too many series (max {len(SERIES_GLYPHS)})")
        self.series[name] = (list(xs), list(ys))

    def _bounds(self) -> Tuple[float, float, float, float]:
        xs_all = [x for xs, _ in self.series.values() for x in xs]
        ys_all = [y for _, ys in self.series.values() for y in ys]
        x_min, x_max = min(xs_all), max(xs_all)
        y_min, y_max = min(ys_all), max(ys_all)
        if x_min == x_max:
            x_max = x_min + 1.0
        if y_min == y_max:
            y_max = y_min + 1.0
        return x_min, x_max, y_min, y_max

    def render(self) -> str:
        """Render the plot as a multi-line string."""
        if not self.series:
            raise ValueError("no series to plot")
        x_min, x_max, y_min, y_max = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        for glyph, (name, (xs, ys)) in zip(SERIES_GLYPHS, self.series.items()):
            for x, y in zip(xs, ys):
                col = round((x - x_min) / (x_max - x_min) * (self.width - 1))
                row = round((y - y_min) / (y_max - y_min) * (self.height - 1))
                grid[self.height - 1 - row][col] = glyph

        lines: List[str] = []
        if self.title:
            lines.append(self.title.center(self.width + 10))
        top_label = f"{y_max:10.3g} |"
        bottom_label = f"{y_min:10.3g} |"
        blank_label = " " * 10 + " |"
        for index, row_chars in enumerate(grid):
            if index == 0:
                prefix = top_label
            elif index == self.height - 1:
                prefix = bottom_label
            else:
                prefix = blank_label
            lines.append(prefix + "".join(row_chars))
        lines.append(" " * 11 + "+" + "-" * self.width)
        axis = f"{x_min:<12.3g}{self.x_label.center(max(0, self.width - 24))}{x_max:>12.3g}"
        lines.append(" " * 11 + axis)
        legend = "   ".join(f"{glyph}={name}"
                            for glyph, name in zip(SERIES_GLYPHS, self.series))
        lines.append(" " * 11 + legend)
        return "\n".join(lines)


def quick_plot(xs: Sequence[float], series: Dict[str, Sequence[float]],
               title: str = "", x_label: str = "",
               width: int = 72, height: int = 20) -> str:
    """One-call helper: same x-axis for every series.

    >>> text = quick_plot([0, 1], {"s": [1.0, 2.0]}, title="t")
    >>> "s" in text
    True
    """
    plot = AsciiPlot(width=width, height=height, title=title, x_label=x_label)
    for name, ys in series.items():
        plot.add_series(name, xs, ys)
    return plot.render()


def sparkline(values: Sequence[float], levels: str = " .:-=+*#%@") -> str:
    """Compress a series into a one-line character sparkline.

    >>> len(sparkline([1, 2, 3]))
    3
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if lo == hi:
        return levels[len(levels) // 2] * len(values)
    out = []
    for value in values:
        index = int((value - lo) / (hi - lo) * (len(levels) - 1))
        out.append(levels[index])
    return "".join(out)
