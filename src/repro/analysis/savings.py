"""Energy-savings accounting across schemes and operating points.

Turns raw sweep/evaluation outputs into the headline numbers of the paper
("up to 6 % interface-power reduction", "5–6 % at 3–8 pF") and into
per-workload savings tables for deployment studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.costs import CostModel
from ..sim.metrics import EvaluationResult


@dataclass(frozen=True)
class SavingsRecord:
    """Savings of one scheme versus a reference on one workload."""

    workload: str
    scheme: str
    reference: str
    scheme_cost: float
    reference_cost: float

    @property
    def saving_fraction(self) -> float:
        """Relative saving, positive when *scheme* is cheaper."""
        return 1.0 - self.scheme_cost / self.reference_cost

    @property
    def saving_percent(self) -> float:
        """Relative saving in percent."""
        return 100.0 * self.saving_fraction


def savings_vs_reference(result: EvaluationResult, model: CostModel,
                         reference: str,
                         schemes: Optional[Sequence[str]] = None) -> List[SavingsRecord]:
    """Savings of every scheme against a fixed *reference* scheme.

    >>> from repro.sim.runner import evaluate
    >>> from repro.core.burst import Burst
    >>> res = evaluate(["raw", "dbi-dc"], [Burst([0x00] * 8)])
    >>> recs = savings_vs_reference(res, CostModel.dc_only(), "raw")
    >>> recs[1].saving_percent > 80
    True
    """
    reference_cost = result[reference].mean_cost(model)
    if reference_cost <= 0:
        raise ValueError(f"reference {reference!r} has non-positive cost")
    names = list(schemes) if schemes is not None else result.schemes()
    return [
        SavingsRecord(
            workload=result.workload,
            scheme=name,
            reference=reference,
            scheme_cost=result[name].mean_cost(model),
            reference_cost=reference_cost,
        )
        for name in names
    ]


def savings_vs_best_conventional(result: EvaluationResult, model: CostModel,
                                 optimal: str = "dbi-opt",
                                 conventional: Sequence[str] = ("dbi-dc", "dbi-ac"),
                                 ) -> SavingsRecord:
    """The paper's headline metric: OPT versus the better of DC and AC."""
    best = min(conventional, key=lambda name: result[name].mean_cost(model))
    return SavingsRecord(
        workload=result.workload,
        scheme=optimal,
        reference=best,
        scheme_cost=result[optimal].mean_cost(model),
        reference_cost=result[best].mean_cost(model),
    )


def savings_matrix(results: Sequence[EvaluationResult], model: CostModel,
                   reference: str) -> Dict[str, Dict[str, float]]:
    """``{workload: {scheme: saving percent}}`` over several workloads."""
    matrix: Dict[str, Dict[str, float]] = {}
    for result in results:
        records = savings_vs_reference(result, model, reference)
        matrix[result.workload] = {
            record.scheme: record.saving_percent for record in records
        }
    return matrix
