"""Analysis utilities: crossovers, savings, artifact diffs, ASCII plots."""

from .artifacts import ArtifactDiff, compare_artifacts, summarize_artifact
from .ascii_plot import AsciiPlot, quick_plot, sparkline
from .crossover import (
    advantage_region,
    elementwise_min,
    interpolated_crossing,
    peak_advantage,
)
from .sso import (
    DBI_DC_IDLE_FIRST_BEAT_BOUND,
    DBI_DC_TOGGLE_BOUND,
    DEFAULT_LINE_IMPEDANCE_OHMS,
    SsoStatistics,
    sso_comparison,
    sso_of_scheme,
    sso_of_scheme_batch,
    sso_of_words,
    sso_of_words_batch,
)
from .statistics import (
    MeanEstimate,
    estimate_mean,
    per_burst_costs,
    samples_for_precision,
    scheme_cost_estimate,
)
from .savings import (
    SavingsRecord,
    savings_matrix,
    savings_vs_best_conventional,
    savings_vs_reference,
)

__all__ = [
    "ArtifactDiff",
    "AsciiPlot",
    "compare_artifacts",
    "summarize_artifact",
    "DBI_DC_IDLE_FIRST_BEAT_BOUND",
    "DBI_DC_TOGGLE_BOUND",
    "DEFAULT_LINE_IMPEDANCE_OHMS",
    "MeanEstimate",
    "SavingsRecord",
    "SsoStatistics",
    "advantage_region",
    "elementwise_min",
    "estimate_mean",
    "interpolated_crossing",
    "per_burst_costs",
    "peak_advantage",
    "quick_plot",
    "samples_for_precision",
    "savings_matrix",
    "scheme_cost_estimate",
    "savings_vs_best_conventional",
    "savings_vs_reference",
    "sparkline",
    "sso_comparison",
    "sso_of_scheme",
    "sso_of_scheme_batch",
    "sso_of_words",
    "sso_of_words_batch",
]
