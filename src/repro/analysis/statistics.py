"""Monte-Carlo statistics for the figure sweeps.

The paper reports averages over 10 000 random bursts without confidence
intervals.  This module adds them: per-scheme mean cost with a normal-
approximation CI, and a sample-size check that the reported effects
(e.g. the ~6.7 % OPT gain) are many standard errors wide at the paper's
sample count — i.e. that 10 000 bursts is comfortably enough.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.bitops import ALL_ONES_WORD
from ..core.burst import Burst
from ..core.costs import CostModel
from ..core.schemes import DbiScheme

try:  # scipy gives exact normal quantiles; fall back to the 95% constant.
    from scipy.stats import norm as _norm

    def _z_value(confidence: float) -> float:
        return float(_norm.ppf(0.5 + confidence / 2.0))
except ImportError:  # pragma: no cover - scipy is installed in CI
    def _z_value(confidence: float) -> float:
        if abs(confidence - 0.95) > 1e-9:
            raise ValueError("scipy required for confidence != 0.95")
        return 1.959963984540054


@dataclass(frozen=True)
class MeanEstimate:
    """Sample mean with a normal-approximation confidence interval."""

    mean: float
    std_error: float
    confidence: float
    n_samples: int

    @property
    def half_width(self) -> float:
        """Half the CI width."""
        return _z_value(self.confidence) * self.std_error

    @property
    def interval(self) -> Tuple[float, float]:
        """(low, high) confidence bounds."""
        return (self.mean - self.half_width, self.mean + self.half_width)

    def separated_from(self, other: "MeanEstimate") -> bool:
        """True iff the two confidence intervals do not overlap."""
        low_a, high_a = self.interval
        low_b, high_b = other.interval
        return high_a < low_b or high_b < low_a


def per_burst_costs(scheme: DbiScheme, bursts: Sequence[Burst],
                    model: CostModel) -> List[float]:
    """Cost of every burst individually (the Monte-Carlo sample)."""
    return [scheme.encode(burst, prev_word=ALL_ONES_WORD).cost(model)
            for burst in bursts]


def estimate_mean(samples: Sequence[float],
                  confidence: float = 0.95) -> MeanEstimate:
    """Mean and CI of a sample.

    >>> est = estimate_mean([1.0, 2.0, 3.0, 4.0])
    >>> round(est.mean, 2)
    2.5
    """
    n = len(samples)
    if n < 2:
        raise ValueError("need at least 2 samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = sum(samples) / n
    variance = sum((value - mean) ** 2 for value in samples) / (n - 1)
    return MeanEstimate(mean=mean, std_error=math.sqrt(variance / n),
                        confidence=confidence, n_samples=n)


def scheme_cost_estimate(scheme: DbiScheme, bursts: Sequence[Burst],
                         model: CostModel,
                         confidence: float = 0.95) -> MeanEstimate:
    """Mean cost per burst of *scheme* with a confidence interval."""
    return estimate_mean(per_burst_costs(scheme, bursts, model), confidence)


def samples_for_precision(samples: Sequence[float], target_half_width: float,
                          confidence: float = 0.95) -> int:
    """Sample count needed for a CI half-width of *target_half_width*.

    Uses the pilot sample's variance; answers "was the paper's 10 000
    enough?" quantitatively.
    """
    if target_half_width <= 0:
        raise ValueError("target_half_width must be positive")
    pilot = estimate_mean(samples, confidence)
    z = _z_value(confidence)
    std = pilot.std_error * math.sqrt(pilot.n_samples)
    return max(2, math.ceil((z * std / target_half_width) ** 2))
