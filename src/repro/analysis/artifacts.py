"""Comparison and summary helpers for persisted experiment artifacts.

The experiment engine (:mod:`repro.sim.experiments`) persists every run
as spec + results + provenance.  These helpers answer the two questions a
CI pipeline (or a reviewer) asks of such files:

* *are two runs equivalent?* — :func:`compare_artifacts` checks spec
  identity (population digest, grid, slots) and exact series/totals
  equality (optionally with a relative tolerance), which is how the CI
  leg proves ``--jobs 1`` and ``--jobs 4`` artifacts are bit-identical;
* *what is in this file?* — :func:`summarize_artifact` renders a short
  markdown digest of the spec and provenance.

The service layer adds a third question — *did the daemon answer exactly
what a direct run produces?* — which :func:`canonical_artifact_json`
settles: it serialises any artifact payload to a canonical byte string
with the run-volatile ``provenance`` member dropped, so two payloads are
equivalent iff their canonical strings are byte-identical.  This is how
the ``service-smoke`` CI job diffs daemon responses against direct
:func:`~repro.sim.experiments.run_experiment` output.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import List, Mapping, Union

from ..sim.experiments import ExperimentResult, load_artifact
from ..sim.report import markdown_table


def canonical_artifact_json(payload: Mapping[str, object]) -> str:
    """Canonical byte-comparable serialisation of an artifact payload.

    Drops the top-level ``provenance`` member (wall-clock timings,
    timestamps, host Python — everything that legitimately differs
    between two equivalent runs) and dumps the rest with sorted keys and
    fixed separators.  Spec, series, totals and point keys all remain,
    so equality really is result equality.
    """
    trimmed = {key: value for key, value in payload.items()
               if key != "provenance"}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))

ArtifactLike = Union[str, ExperimentResult]


def _as_result(artifact: ArtifactLike) -> ExperimentResult:
    if isinstance(artifact, ExperimentResult):
        return artifact
    return load_artifact(artifact)


@dataclass
class ArtifactDiff:
    """Outcome of :func:`compare_artifacts`."""

    #: True when no mismatch was found (with a tolerance, small series
    #: deviations may remain — see :attr:`max_abs_delta`).
    identical: bool
    #: Largest absolute series deviation across *all* points, including
    #: deviations a tolerance accepted (0.0 for bit-identical series).
    max_abs_delta: float = 0.0
    #: Human-readable mismatch descriptions, empty when identical.
    mismatches: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.identical:
            if self.max_abs_delta:
                return ("artifacts equivalent (max series delta "
                        f"{self.max_abs_delta:g} within tolerance)")
            return "artifacts identical"
        lines = [f"artifacts differ (max series delta {self.max_abs_delta:g}):"]
        lines.extend(f"  - {note}" for note in self.mismatches)
        return "\n".join(lines)


def compare_artifacts(first: ArtifactLike, second: ArtifactLike,
                      rel_tol: float = 0.0) -> ArtifactDiff:
    """Compare two runs/artifacts for equivalence.

    With the default ``rel_tol=0.0`` series values must match exactly
    (the engine's determinism guarantee); a positive tolerance allows
    cross-environment comparisons where populations match but float
    pipelines may not.
    """
    a = _as_result(first)
    b = _as_result(second)
    mismatches: List[str] = []
    max_delta = 0.0

    if a.spec.name != b.spec.name:
        mismatches.append(f"spec name: {a.spec.name!r} != {b.spec.name!r}")
    if a.spec.population.digest() != b.spec.population.digest():
        mismatches.append(
            f"population: {a.spec.population.digest()} != "
            f"{b.spec.population.digest()}")
    if a.spec.grid != b.spec.grid:
        mismatches.append(
            f"grid: {len(a.spec.grid)} vs {len(b.spec.grid)} points "
            "(or differing coefficients)")
    slot_names_a = [slot.name for slot in a.spec.slots]
    slot_names_b = [slot.name for slot in b.spec.slots]
    if slot_names_a != slot_names_b:
        mismatches.append(f"slots: {slot_names_a} != {slot_names_b}")

    for name in sorted(set(a.series) | set(b.series)):
        series_a = a.series.get(name)
        series_b = b.series.get(name)
        if series_a is None or series_b is None:
            mismatches.append(f"series {name!r} missing on one side")
            continue
        if len(series_a) != len(series_b):
            mismatches.append(
                f"series {name!r}: {len(series_a)} vs {len(series_b)} points")
            continue
        reported = False
        for index, (value_a, value_b) in enumerate(zip(series_a, series_b)):
            if value_a == value_b:
                continue
            delta = abs(value_a - value_b)
            max_delta = max(max_delta, delta)
            if not reported and not math.isclose(value_a, value_b,
                                                 rel_tol=rel_tol,
                                                 abs_tol=0.0):
                mismatches.append(
                    f"series {name!r}[{index}]: {value_a!r} != {value_b!r}")
                reported = True

    if a.totals != b.totals:
        shared = set(a.totals) & set(b.totals)
        if any(a.totals[key] != b.totals[key] for key in shared):
            mismatches.append("activity totals differ for shared cache keys")
        elif set(a.totals) != set(b.totals):
            mismatches.append("activity cache keys differ")

    return ArtifactDiff(identical=not mismatches, max_abs_delta=max_delta,
                        mismatches=mismatches)


def summarize_artifact(artifact: ArtifactLike) -> str:
    """Markdown digest of an artifact's spec and provenance."""
    result = _as_result(artifact)
    spec = result.spec
    provenance = result.provenance
    rows = [
        ["experiment", spec.name],
        ["figure", spec.figure or "-"],
        ["population", f"{spec.population.digest()} "
                       f"({len(spec.population)} bursts)"],
        ["grid points", len(spec.grid)],
        ["series", ", ".join(result.series)],
        ["backend", provenance.get("backend", "-")],
        ["jobs", provenance.get("jobs", "-")],
        ["encodes", provenance.get("encodes", "-")],
        ["repro version", provenance.get("repro_version", "-")],
    ]
    return markdown_table(["field", "value"], rows)
