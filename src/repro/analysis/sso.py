"""Simultaneous-switching-output (SSO) analysis.

Kim et al. (paper ref. [14]) show that DBI DC reduces SSO noise in
graphics memory systems: the fewer lanes toggle in the same beat, the
smaller the di/dt glitch on the power-delivery network.  This module
quantifies per-beat switching statistics for any scheme so the SSO side
benefit of each DBI policy can be compared alongside energy.

Backend selection
-----------------
Two interchangeable engines produce the statistics, selected with the
library-wide backend vocabulary (``backend="auto" | "reference" |
"vector"``, defaulting from ``REPRO_BACKEND`` /
:func:`repro.set_default_backend`):

* ``reference`` — :func:`sso_of_words` / :func:`sso_of_scheme`: one
  Python popcount and one histogram update per beat.  This is the
  executable specification.
* ``vector`` — :func:`sso_of_words_batch` / :func:`sso_of_scheme_batch`:
  the burst population is encoded through the scheme's
  :meth:`~repro.core.schemes.DbiScheme.batch_flags` kernel where
  available, the per-beat transition words are packed into bit planes
  (one machine word per wire, one bit per beat — the
  :mod:`repro.hw.bitsim` trick applied to the phy layer), the nine
  planes are summed with carry-save adders into per-beat switching
  counts, and the histogram falls out of ten popcounts.  Like the
  gate-level engine this works *without* NumPy — ``word_impl="int"``
  packs into arbitrary-width Python ints; ``word_impl="uint64"``
  (the ``auto`` choice whenever NumPy is importable) packs into
  ``uint64`` lane arrays.

``auto`` therefore always resolves to the batched engine here.  The two
engines are bit-identical — same histogram, same max, same total,
including the chained-state path — which the differential suite in
``tests/analysis/test_sso_batch.py`` enforces over hypothesis-generated
word streams and every registered scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..core.bitops import (
    ALL_ONES_WORD,
    WORD_MASK,
    WORD_WIDTH,
    check_word,
    popcount,
)
from ..core.burst import Burst
from ..core.schemes import DbiScheme
from ..core.vectorized import flags_to_words, try_vector_pack
from ..hw.bitsim import get_kernel, resolve_sim_backend

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-NumPy CI leg
    _np = None

#: Default line impedance for the peak-current proxy (single-ended 50 Ω).
DEFAULT_LINE_IMPEDANCE_OHMS = 50.0


@dataclass(frozen=True)
class SsoStatistics:
    """Per-beat switching statistics of one word stream."""

    beats: int
    max_switching: int
    total_switching: int
    #: histogram[k] = number of beats in which exactly k lanes toggled.
    histogram: Dict[int, int]

    @property
    def mean_switching(self) -> float:
        """Average lanes toggling per beat."""
        return self.total_switching / self.beats if self.beats else 0.0

    def exceed_fraction(self, threshold: int) -> float:
        """Fraction of beats with more than *threshold* toggling lanes."""
        if not self.beats:
            return 0.0
        over = sum(count for k, count in self.histogram.items()
                   if k > threshold)
        return over / self.beats

    # -- peak-current proxies ------------------------------------------------
    def peak_current_amps(self, interface,
                          line_impedance_ohms: float =
                          DEFAULT_LINE_IMPEDANCE_OHMS) -> float:
        """Worst-case simultaneous di/dt proxy in amperes.

        Every toggling lane slews one full signal swing into its line
        impedance, so the instantaneous supply-current step of the worst
        beat is ``max_switching · v_swing / Z_line`` — the figure of
        merit Kim et al. bound with DBI DC.
        """
        return self.max_switching * interface.v_swing / line_impedance_ohms

    def mean_current_amps(self, interface,
                          line_impedance_ohms: float =
                          DEFAULT_LINE_IMPEDANCE_OHMS) -> float:
        """Average per-beat switching current under the same proxy."""
        return self.mean_switching * interface.v_swing / line_impedance_ohms


_EMPTY = SsoStatistics(beats=0, max_switching=0, total_switching=0,
                       histogram={})


def sso_of_words(words: Sequence[int],
                 prev_word: int = ALL_ONES_WORD) -> SsoStatistics:
    """SSO statistics of a concrete wire-word sequence (reference path).

    >>> sso_of_words([0x000]).max_switching
    9
    """
    check_word(prev_word)
    histogram: Dict[int, int] = {}
    worst = 0
    total = 0
    last = prev_word
    for word in words:
        check_word(word)
        switching = popcount(last ^ word)
        histogram[switching] = histogram.get(switching, 0) + 1
        worst = max(worst, switching)
        total += switching
        last = word
    return SsoStatistics(beats=len(words), max_switching=worst,
                         total_switching=total, histogram=histogram)


def sso_of_scheme(scheme: DbiScheme, bursts: Sequence[Burst],
                  chained: bool = False) -> SsoStatistics:
    """SSO statistics of a scheme over a burst population (reference path)."""
    histogram: Dict[int, int] = {}
    worst = 0
    total = 0
    beats = 0
    state = ALL_ONES_WORD
    for burst in bursts:
        encoded = scheme.encode(burst, prev_word=state if chained
                                else ALL_ONES_WORD)
        stats = sso_of_words(encoded.words,
                             prev_word=state if chained else ALL_ONES_WORD)
        for k, count in stats.histogram.items():
            histogram[k] = histogram.get(k, 0) + count
        worst = max(worst, stats.max_switching)
        total += stats.total_switching
        beats += stats.beats
        if chained:
            state = encoded.last_word()
    return SsoStatistics(beats=beats, max_switching=worst,
                         total_switching=total, histogram=histogram)


# -- the word-parallel engine -------------------------------------------------

def _switching_statistics(kernel, trans_values, beats: int) -> SsoStatistics:
    """Tally per-beat switching counts from packed transition words.

    *trans_values* holds one 9-bit transition word (``prev ^ word``) per
    beat.  The nine bit planes are summed position-wise with carry-save
    adders into a 4-bit per-beat counter, and ``histogram[k]`` is the
    popcount of the plane where that counter equals *k* — exact integer
    arithmetic, bit-identical to the scalar walk.
    """
    planes = kernel.pack_bus(trans_values, WORD_WIDTH, beats)
    valid = kernel.valid_mask(beats)
    zero = kernel.zero_word(beats)
    s0 = s1 = s2 = s3 = zero
    for plane in planes:
        carry0 = s0 & plane
        s0 = s0 ^ plane
        carry1 = s1 & carry0
        s1 = s1 ^ carry0
        carry2 = s2 & carry1
        s2 = s2 ^ carry1
        s3 = s3 ^ carry2  # counts <= 9 < 16: no carry out of bit 3
    counter_bits = (s0, s1, s2, s3)
    histogram: Dict[int, int] = {}
    worst = 0
    total = 0
    for k in range(WORD_WIDTH + 1):
        indicator = valid
        for position, bit_plane in enumerate(counter_bits):
            if (k >> position) & 1:
                indicator = indicator & bit_plane
            else:
                indicator = indicator & (bit_plane ^ valid)
        count = kernel.popcount(indicator)
        if count:
            histogram[k] = count
            worst = k
            total += k * count
    return SsoStatistics(beats=beats, max_switching=worst,
                         total_switching=total, histogram=histogram)


def _check_matrix(matrix) -> None:
    """Range-validate an int64 word matrix (the array twin of check_word)."""
    if matrix.size and (matrix.min() < 0 or matrix.max() > WORD_MASK):
        raise ValueError(f"word out of range [0, {WORD_MASK}]")


def _transition_values_array(matrix, prev_words, chained: bool):
    """Flat per-beat transition words for a ``(batch, n)`` word matrix."""
    matrix = _np.asarray(matrix, dtype=_np.int64)
    _check_matrix(matrix)
    if chained:
        flat = matrix.ravel()
        shifted = _np.empty_like(flat)
        shifted[0] = int(prev_words)
        shifted[1:] = flat[:-1]
        return flat ^ shifted
    from ..core.vectorized import _as_prev_words

    prev = _as_prev_words(prev_words, matrix.shape[0])
    shifted = _np.empty_like(matrix)
    shifted[:, 0] = prev
    if matrix.shape[1] > 1:
        shifted[:, 1:] = matrix[:, :-1]
    return (matrix ^ shifted).ravel()


def _transition_values_list(rows, prev_words, chained: bool) -> List[int]:
    """Flat per-beat transition words for row sequences of Python ints."""
    trans: List[int] = []
    if chained:
        last = check_word(int(prev_words))
        for row in rows:
            for word in row:
                check_word(word)
                trans.append(last ^ word)
                last = word
        return trans
    if isinstance(prev_words, int):
        prevs: Sequence[int] = [check_word(prev_words)] * len(rows)
    else:
        prevs = [check_word(int(word)) for word in prev_words]
        if len(prevs) != len(rows):
            raise ValueError(f"{len(prevs)} boundary words for "
                             f"{len(rows)} word rows")
    for row, prev in zip(rows, prevs):
        last = prev
        for word in row:
            check_word(word)
            trans.append(last ^ word)
            last = word
    return trans


def sso_of_words_batch(rows,
                       prev_words: Union[int, Sequence[int]] = ALL_ONES_WORD,
                       chained: bool = False,
                       word_impl: str = "auto") -> SsoStatistics:
    """SSO statistics of many word rows, tallied word-parallel.

    *rows* is a sequence of wire-word sequences (or a packed ``(batch,
    n)`` integer array).  In independent mode every row is measured from
    its own boundary (*prev_words* broadcasts a scalar or supplies one
    word per row); with ``chained=True`` the rows are treated as one
    back-to-back stream starting from the scalar *prev_words* — exactly
    the two modes of :func:`sso_of_scheme`.  The aggregate is
    bit-identical to merging :func:`sso_of_words` over the rows.

    >>> sso_of_words_batch([[0x000], [0x1FF]]).histogram
    {0: 1, 9: 1}
    """
    if chained and not isinstance(prev_words, int):
        raise ValueError("chained mode takes a single scalar boundary word")
    kernel = get_kernel(word_impl)
    if _np is not None and isinstance(rows, _np.ndarray):
        if rows.ndim != 2:
            raise ValueError(f"packed word rows must be 2-D, "
                             f"got shape {rows.shape}")
        if isinstance(prev_words, int):
            check_word(prev_words)
        trans = _transition_values_array(rows, prev_words, chained)
        beats = int(trans.size)
        if kernel.name == "int":
            trans = trans.tolist()
    else:
        row_list = [list(row) for row in rows]
        trans = _transition_values_list(row_list, prev_words, chained)
        beats = len(trans)
    if not beats:
        return _EMPTY
    return _switching_statistics(kernel, trans, beats)


def sso_of_scheme_batch(scheme: DbiScheme, bursts: Sequence[Burst],
                        chained: bool = False,
                        backend: Optional[str] = None,
                        word_impl: str = "auto") -> SsoStatistics:
    """SSO statistics of a scheme over a population, batched.

    Bit-identical to :func:`sso_of_scheme` on every scheme in both
    transmission modes.  With the ``vector`` backend the wire words come
    from the scheme's batch kernel
    (:meth:`~repro.core.schemes.DbiScheme.batch_flags` +
    :func:`~repro.core.vectorized.flags_to_words`) whenever
    :func:`~repro.core.vectorized.try_vector_pack` allows it — chained
    transmission of a state-dependent scheme encodes per burst instead —
    and the tally always runs word-parallel.  ``backend`` follows
    :func:`repro.hw.bitsim.resolve_sim_backend`: ``auto`` resolves to
    the batched tally even without NumPy.
    """
    if resolve_sim_backend(backend) == "reference":
        return sso_of_scheme(scheme, bursts, chained=chained)
    burst_list = list(bursts)
    if not burst_list:
        return _EMPTY
    data = None
    if _np is not None:
        data = try_vector_pack(scheme, burst_list, backend="vector",
                               chained=chained)
    if data is not None:
        prev = _np.full(data.shape[0], ALL_ONES_WORD, dtype=_np.int64)
        flags = scheme.batch_flags(data, prev)
        rows = flags_to_words(data, flags)
    else:
        if chained:
            encoded = scheme.encode_stream(burst_list)
        else:
            encoded = [scheme.encode(burst) for burst in burst_list]
        rows = [list(result.words) for result in encoded]
    return sso_of_words_batch(rows, prev_words=ALL_ONES_WORD,
                              chained=chained, word_impl=word_impl)


def sso_comparison(schemes: Dict[str, DbiScheme],
                   bursts: Sequence[Burst],
                   chained: bool = False,
                   backend: Optional[str] = None,
                   word_impl: str = "auto") -> List[List[object]]:
    """Rows (scheme, max, mean, fraction of beats > half the lanes) for a
    markdown table, in either transmission mode (``chained=``)."""
    rows: List[List[object]] = []
    half = WORD_WIDTH // 2
    for name, scheme in schemes.items():
        stats = sso_of_scheme_batch(scheme, bursts, chained=chained,
                                    backend=backend, word_impl=word_impl)
        rows.append([
            name,
            stats.max_switching,
            f"{stats.mean_switching:.2f}",
            f"{100 * stats.exceed_fraction(half):.1f}%",
        ])
    return rows


#: Per-beat toggle bound of DBI DC *within* a burst: toggling lanes are the
#: symmetric difference of the two words' zero sets, and DBI DC caps each
#: word at 4 zeros, so at most 4 + 4 = 8 lanes can toggle (RAW can hit 9).
DBI_DC_TOGGLE_BOUND = 8

#: First-beat bound from the idle-high bus: every toggling lane is a zero of
#: the first word, and DBI DC caps those at 4 — plus the DBI lane itself.
DBI_DC_IDLE_FIRST_BEAT_BOUND = 5
