"""Simultaneous-switching-output (SSO) analysis.

Kim et al. (paper ref. [14]) show that DBI DC reduces SSO noise in
graphics memory systems: the fewer lanes toggle in the same beat, the
smaller the di/dt glitch on the power-delivery network.  This module
quantifies per-beat switching statistics for any scheme so the SSO side
benefit of each DBI policy can be compared alongside energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.bitops import ALL_ONES_WORD, WORD_WIDTH, check_word, popcount
from ..core.burst import Burst
from ..core.schemes import DbiScheme


@dataclass(frozen=True)
class SsoStatistics:
    """Per-beat switching statistics of one word stream."""

    beats: int
    max_switching: int
    total_switching: int
    #: histogram[k] = number of beats in which exactly k lanes toggled.
    histogram: Dict[int, int]

    @property
    def mean_switching(self) -> float:
        """Average lanes toggling per beat."""
        return self.total_switching / self.beats if self.beats else 0.0

    def exceed_fraction(self, threshold: int) -> float:
        """Fraction of beats with more than *threshold* toggling lanes."""
        if not self.beats:
            return 0.0
        over = sum(count for k, count in self.histogram.items()
                   if k > threshold)
        return over / self.beats


def sso_of_words(words: Sequence[int],
                 prev_word: int = ALL_ONES_WORD) -> SsoStatistics:
    """SSO statistics of a concrete wire-word sequence.

    >>> sso_of_words([0x000]).max_switching
    9
    """
    check_word(prev_word)
    histogram: Dict[int, int] = {}
    worst = 0
    total = 0
    last = prev_word
    for word in words:
        check_word(word)
        switching = popcount(last ^ word)
        histogram[switching] = histogram.get(switching, 0) + 1
        worst = max(worst, switching)
        total += switching
        last = word
    return SsoStatistics(beats=len(words), max_switching=worst,
                         total_switching=total, histogram=histogram)


def sso_of_scheme(scheme: DbiScheme, bursts: Sequence[Burst],
                  chained: bool = False) -> SsoStatistics:
    """SSO statistics of a scheme over a burst population."""
    histogram: Dict[int, int] = {}
    worst = 0
    total = 0
    beats = 0
    state = ALL_ONES_WORD
    for burst in bursts:
        encoded = scheme.encode(burst, prev_word=state if chained
                                else ALL_ONES_WORD)
        stats = sso_of_words(encoded.words,
                             prev_word=state if chained else ALL_ONES_WORD)
        for k, count in stats.histogram.items():
            histogram[k] = histogram.get(k, 0) + count
        worst = max(worst, stats.max_switching)
        total += stats.total_switching
        beats += stats.beats
        if chained:
            state = encoded.last_word()
    return SsoStatistics(beats=beats, max_switching=worst,
                         total_switching=total, histogram=histogram)


def sso_comparison(schemes: Dict[str, DbiScheme],
                   bursts: Sequence[Burst]) -> List[List[object]]:
    """Rows (scheme, max, mean, fraction of beats > half the lanes) for a
    markdown table."""
    rows: List[List[object]] = []
    half = WORD_WIDTH // 2
    for name, scheme in schemes.items():
        stats = sso_of_scheme(scheme, bursts)
        rows.append([
            name,
            stats.max_switching,
            f"{stats.mean_switching:.2f}",
            f"{100 * stats.exceed_fraction(half):.1f}%",
        ])
    return rows


#: Per-beat toggle bound of DBI DC *within* a burst: toggling lanes are the
#: symmetric difference of the two words' zero sets, and DBI DC caps each
#: word at 4 zeros, so at most 4 + 4 = 8 lanes can toggle (RAW can hit 9).
DBI_DC_TOGGLE_BOUND = 8

#: First-beat bound from the idle-high bus: every toggling lane is a zero of
#: the first word, and DBI DC caps those at 4 — plus the DBI lane itself.
DBI_DC_IDLE_FIRST_BEAT_BOUND = 5
