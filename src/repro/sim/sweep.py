"""Parameter sweeps reproducing the paper's figures.

* :func:`alpha_sweep` — Figs. 3/4: abstract cost per burst as the AC-cost
  fraction runs from 0 to 1 (alpha = ac, beta = 1 − ac) over a random
  burst population.
* :func:`data_rate_sweep` — Fig. 7: physical interface energy per burst
  versus per-pin data rate, normalised to RAW.
* :func:`load_sweep` — Fig. 8: OPT (Fixed) energy *including encoding
  energy* versus data rate for several load capacitances, normalised to
  the best conventional scheme.

Every sweep works on a precomputed **activity cache**: each scheme encodes
the population once per (scheme-relevant) operating point and only the
(zeros, transitions) totals are re-weighted across the sweep where the
encoding itself does not depend on the swept parameter.  RAW/DC/AC
encodings are parameter-independent; OPT re-encodes per point because its
decisions follow alpha/beta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import DbiAc, DbiDc, Raw
from ..core.burst import Burst
from ..core.costs import CostModel
from ..core.encoder import DbiOptimal
from ..core.schemes import DbiScheme
from ..core.vectorized import try_vector_pack
from ..phy.pod import PodInterface, pod135
from ..phy.power import GBPS, InterfaceEnergyModel, PICOFARAD


@dataclass(frozen=True)
class ActivityTotals:
    """Population-level (transitions, zeros) totals for one encoding run."""

    transitions: int
    zeros: int
    bursts: int

    @property
    def mean_transitions(self) -> float:
        return self.transitions / self.bursts

    @property
    def mean_zeros(self) -> float:
        return self.zeros / self.bursts

    def mean_cost(self, model: CostModel) -> float:
        """Mean abstract cost per burst."""
        return model.activity_cost(self.transitions, self.zeros) / self.bursts

    def mean_energy(self, energy_model: InterfaceEnergyModel) -> float:
        """Mean physical energy per burst in joules."""
        return energy_model.burst_energy(self.transitions, self.zeros) / self.bursts


def collect_activity(scheme: DbiScheme, bursts: Sequence[Burst],
                     backend: Optional[str] = None) -> ActivityTotals:
    """Encode the population once and tally totals.

    On the ``vector`` backend (default whenever NumPy is available),
    schemes with a batch kernel encode the whole population
    array-at-a-time — this is the hot path of every figure sweep.
    """
    data = try_vector_pack(scheme, bursts, backend)
    if data is not None:
        from ..core.vectorized import scheme_batch_activity

        __, transitions, zeros = scheme_batch_activity(scheme, data)
        return ActivityTotals(transitions=transitions, zeros=zeros,
                              bursts=len(bursts))
    transitions = 0
    zeros = 0
    for burst in bursts:
        encoded = scheme.encode(burst)
        n_transitions, n_zeros = encoded.activity()
        transitions += n_transitions
        zeros += n_zeros
    return ActivityTotals(transitions=transitions, zeros=zeros,
                          bursts=len(bursts))


@dataclass
class AlphaSweepResult:
    """Fig. 3/4 data: mean cost per burst per scheme per AC-cost point."""

    ac_costs: List[float]
    #: scheme name -> list of mean costs aligned with :attr:`ac_costs`.
    series: Dict[str, List[float]] = field(default_factory=dict)

    def advantage_over_conventional(self) -> List[float]:
        """Relative OPT gain vs best(DC, AC) at each point (the shaded area)."""
        gains = []
        for index in range(len(self.ac_costs)):
            conventional = min(self.series["dbi-dc"][index],
                               self.series["dbi-ac"][index])
            gains.append(1.0 - self.series["dbi-opt"][index] / conventional)
        return gains

    def crossover_ac_cost(self, first: str = "dbi-ac",
                          second: str = "dbi-dc") -> Optional[float]:
        """First sweep point where *first* becomes cheaper than *second*."""
        for ac_cost, a, b in zip(self.ac_costs, self.series[first],
                                 self.series[second]):
            if a < b:
                return ac_cost
        return None


def alpha_sweep(bursts: Sequence[Burst], points: int = 51,
                include_fixed: bool = False,
                extra_schemes: Optional[Dict[str, DbiScheme]] = None,
                backend: Optional[str] = None) -> AlphaSweepResult:
    """Reproduce Fig. 3 (and Fig. 4 with ``include_fixed=True``).

    RAW/DC/AC/OPT(Fixed) encode once (their decisions don't depend on the
    swept coefficients); OPT re-encodes at every point.
    """
    if points < 2:
        raise ValueError("points must be >= 2")
    ac_costs = [i / (points - 1) for i in range(points)]

    static_schemes: Dict[str, DbiScheme] = {
        "raw": Raw(),
        "dbi-dc": DbiDc(),
        "dbi-ac": DbiAc(),
    }
    if include_fixed:
        static_schemes["dbi-opt-fixed"] = DbiOptimal(CostModel.fixed())
    if extra_schemes:
        static_schemes.update(extra_schemes)
    static_activity = {name: collect_activity(scheme, bursts, backend=backend)
                       for name, scheme in static_schemes.items()}

    result = AlphaSweepResult(ac_costs=ac_costs)
    for name in static_schemes:
        result.series[name] = []
    result.series["dbi-opt"] = []

    for ac_cost in ac_costs:
        model = CostModel.from_ac_fraction(ac_cost)
        for name, activity in static_activity.items():
            result.series[name].append(activity.mean_cost(model))
        optimal = collect_activity(DbiOptimal(model), bursts, backend=backend)
        result.series["dbi-opt"].append(optimal.mean_cost(model))
    return result


@dataclass
class DataRateSweepResult:
    """Fig. 7 data: normalised energy per burst per scheme per data rate."""

    data_rates_hz: List[float]
    #: scheme name -> normalised-to-RAW energies aligned with data rates.
    normalized: Dict[str, List[float]] = field(default_factory=dict)
    #: scheme name -> absolute energies in joules.
    absolute: Dict[str, List[float]] = field(default_factory=dict)

    def best_gain(self, scheme: str) -> Tuple[float, float]:
        """(data rate, normalised energy) at *scheme*'s best point."""
        series = self.normalized[scheme]
        index = min(range(len(series)), key=series.__getitem__)
        return self.data_rates_hz[index], series[index]


def data_rate_sweep(bursts: Sequence[Burst],
                    interface: Optional[PodInterface] = None,
                    c_load_farads: float = 3 * PICOFARAD,
                    data_rates_hz: Optional[Sequence[float]] = None,
                    backend: Optional[str] = None) -> DataRateSweepResult:
    """Reproduce Fig. 7: interface energy vs data rate, normalised to RAW.

    OPT re-encodes at every rate with the physical (E_transition, E_zero)
    weights; OPT (Fixed) encodes once with alpha=beta=1 but its activity is
    priced with the physical model, exactly as hardware with hardwired
    coefficients would behave.
    """
    pod = interface if interface is not None else pod135()
    rates = list(data_rates_hz) if data_rates_hz is not None else [
        0.5 * GBPS * step for step in range(1, 41)]
    if not rates:
        raise ValueError("no data rates given")

    static_activity = {
        "raw": collect_activity(Raw(), bursts, backend=backend),
        "dbi-dc": collect_activity(DbiDc(), bursts, backend=backend),
        "dbi-ac": collect_activity(DbiAc(), bursts, backend=backend),
        "dbi-opt-fixed": collect_activity(DbiOptimal(CostModel.fixed()), bursts,
                                          backend=backend),
    }

    result = DataRateSweepResult(data_rates_hz=rates)
    names = list(static_activity) + ["dbi-opt"]
    for name in names:
        result.normalized[name] = []
        result.absolute[name] = []

    for rate in rates:
        energy_model = InterfaceEnergyModel(pod, rate, c_load_farads)
        raw_energy = static_activity["raw"].mean_energy(energy_model)
        for name, activity in static_activity.items():
            energy = activity.mean_energy(energy_model)
            result.absolute[name].append(energy)
            result.normalized[name].append(energy / raw_energy)
        optimal_activity = collect_activity(
            DbiOptimal(energy_model.cost_model()), bursts, backend=backend)
        energy = optimal_activity.mean_energy(energy_model)
        result.absolute["dbi-opt"].append(energy)
        result.normalized["dbi-opt"].append(energy / raw_energy)
    return result


@dataclass
class LoadSweepResult:
    """Fig. 8 data: OPT(Fixed)+encoder energy vs best conventional."""

    data_rates_hz: List[float]
    #: c_load (farads) -> normalised series aligned with data rates.
    normalized: Dict[float, List[float]] = field(default_factory=dict)

    def best_gain(self, c_load_farads: float) -> Tuple[float, float]:
        """(data rate, normalised energy) at the load's best point."""
        series = self.normalized[c_load_farads]
        index = min(range(len(series)), key=series.__getitem__)
        return self.data_rates_hz[index], series[index]


def load_sweep(bursts: Sequence[Burst],
               interface: Optional[PodInterface] = None,
               c_loads_farads: Sequence[float] = (1e-12, 2e-12, 3e-12,
                                                  4e-12, 6e-12, 8e-12),
               data_rates_hz: Optional[Sequence[float]] = None,
               encoder_energy_j: Optional[Dict[str, float]] = None,
               backend: Optional[str] = None) -> LoadSweepResult:
    """Reproduce Fig. 8: total (interface + encoder) energy per burst of
    OPT (Fixed), normalised to the better of DBI DC / DBI AC, across loads.

    ``encoder_energy_j`` maps scheme name -> encoding energy per burst in
    joules; when omitted, the gate-level synthesis estimates from
    :mod:`repro.hw.synthesis` are used.
    """
    pod = interface if interface is not None else pod135()
    rates = list(data_rates_hz) if data_rates_hz is not None else [
        0.5 * GBPS * step for step in range(1, 41)]
    if encoder_energy_j is None:
        from ..hw.synthesis import encoder_energy_per_burst
        encoder_energy_j = encoder_energy_per_burst()
    for required in ("dbi-dc", "dbi-ac", "dbi-opt-fixed"):
        if required not in encoder_energy_j:
            raise KeyError(f"encoder_energy_j missing entry for {required!r}")

    activity = {
        "dbi-dc": collect_activity(DbiDc(), bursts, backend=backend),
        "dbi-ac": collect_activity(DbiAc(), bursts, backend=backend),
        "dbi-opt-fixed": collect_activity(DbiOptimal(CostModel.fixed()), bursts,
                                          backend=backend),
    }

    result = LoadSweepResult(data_rates_hz=rates)
    for c_load in c_loads_farads:
        series: List[float] = []
        for rate in rates:
            energy_model = InterfaceEnergyModel(pod, rate, c_load)
            totals = {
                name: activity[name].mean_energy(energy_model)
                + encoder_energy_j[name]
                for name in activity
            }
            conventional = min(totals["dbi-dc"], totals["dbi-ac"])
            series.append(totals["dbi-opt-fixed"] / conventional)
        result.normalized[c_load] = series
    return result
