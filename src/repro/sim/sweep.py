"""Parameter sweeps reproducing the paper's figures.

* :func:`alpha_sweep` — Figs. 3/4: abstract cost per burst as the AC-cost
  fraction runs from 0 to 1 (alpha = ac, beta = 1 − ac) over a random
  burst population.
* :func:`data_rate_sweep` — Fig. 7: physical interface energy per burst
  versus per-pin data rate, normalised to RAW.
* :func:`load_sweep` — Fig. 8: OPT (Fixed) energy *including encoding
  energy* versus data rate for several load capacitances, normalised to
  the best conventional scheme.

All three are thin wrappers over the declarative experiment engine
(:mod:`repro.sim.experiments`): each builds an
:class:`~repro.sim.experiments.ExperimentSpec`, runs it through
:func:`~repro.sim.experiments.run_experiment` (content-addressed
activity cache, optional process-pool ``jobs``), and converts the
result back to the legacy dataclasses with bit-identical numbers.  The
``to_*_result`` converters also re-render persisted artifacts
(:func:`~repro.sim.experiments.load_artifact`) without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.burst import Burst
from ..core.schemes import DbiScheme
from ..core.vectorized import try_vector_pack
from ..phy.pod import PodInterface
from ..phy.power import PICOFARAD
from .experiments import (
    ActivityCache,
    ActivityTotals,
    ExperimentResult,
    alpha_experiment,
    load_experiment,
    rate_experiment,
    run_experiment,
)

__all__ = [
    "ActivityTotals",
    "AlphaSweepResult",
    "DataRateSweepResult",
    "LoadSweepResult",
    "alpha_sweep",
    "collect_activity",
    "data_rate_sweep",
    "load_sweep",
    "to_alpha_result",
    "to_figure_result",
    "to_load_result",
    "to_rate_result",
]


def collect_activity(scheme: DbiScheme, bursts: Sequence[Burst],
                     backend: Optional[str] = None) -> ActivityTotals:
    """Encode the population once and tally totals.

    On the ``vector`` backend (default whenever NumPy is available),
    schemes with a batch kernel encode the whole population
    array-at-a-time — this is the hot path of every figure sweep.
    """
    data = try_vector_pack(scheme, bursts, backend)
    if data is not None:
        from ..core.vectorized import scheme_batch_activity

        __, transitions, zeros = scheme_batch_activity(scheme, data)
        return ActivityTotals(transitions=transitions, zeros=zeros,
                              bursts=len(bursts))
    transitions = 0
    zeros = 0
    for burst in bursts:
        encoded = scheme.encode(burst)
        n_transitions, n_zeros = encoded.activity()
        transitions += n_transitions
        zeros += n_zeros
    return ActivityTotals(transitions=transitions, zeros=zeros,
                          bursts=len(bursts))


@dataclass
class AlphaSweepResult:
    """Fig. 3/4 data: mean cost per burst per scheme per AC-cost point."""

    ac_costs: List[float]
    #: scheme name -> list of mean costs aligned with :attr:`ac_costs`.
    series: Dict[str, List[float]] = field(default_factory=dict)

    def advantage_over_conventional(self) -> List[float]:
        """Relative OPT gain vs best(DC, AC) at each point (the shaded area)."""
        gains = []
        for index in range(len(self.ac_costs)):
            conventional = min(self.series["dbi-dc"][index],
                               self.series["dbi-ac"][index])
            gains.append(1.0 - self.series["dbi-opt"][index] / conventional)
        return gains

    def crossover_ac_cost(self, first: str = "dbi-ac",
                          second: str = "dbi-dc") -> Optional[float]:
        """First sweep point where *first* becomes cheaper than *second*."""
        for ac_cost, a, b in zip(self.ac_costs, self.series[first],
                                 self.series[second]):
            if a < b:
                return ac_cost
        return None


def alpha_sweep(bursts: Sequence[Burst], points: int = 51,
                include_fixed: bool = False,
                extra_schemes: Optional[Dict[str, DbiScheme]] = None,
                backend: Optional[str] = None, jobs: int = 1,
                cache: Optional[ActivityCache] = None) -> AlphaSweepResult:
    """Reproduce Fig. 3 (and Fig. 4 with ``include_fixed=True``).

    RAW/DC/AC/OPT(Fixed) encode once (their decisions don't depend on the
    swept coefficients); OPT re-encodes at every point with a distinct
    alpha/beta ratio.  Delegates to the experiment engine — ``jobs`` fans
    the encodes out to a process pool, ``cache`` shares activity totals
    across calls.
    """
    spec = alpha_experiment(bursts, points=points,
                            include_fixed=include_fixed,
                            extra_schemes=extra_schemes)
    result = run_experiment(spec, backend=backend, jobs=jobs, cache=cache)
    return to_alpha_result(result)


@dataclass
class DataRateSweepResult:
    """Fig. 7 data: normalised energy per burst per scheme per data rate."""

    data_rates_hz: List[float]
    #: scheme name -> normalised-to-RAW energies aligned with data rates.
    normalized: Dict[str, List[float]] = field(default_factory=dict)
    #: scheme name -> absolute energies in joules.
    absolute: Dict[str, List[float]] = field(default_factory=dict)

    def best_gain(self, scheme: str) -> Tuple[float, float]:
        """(data rate, normalised energy) at *scheme*'s best point."""
        series = self.normalized[scheme]
        index = min(range(len(series)), key=series.__getitem__)
        return self.data_rates_hz[index], series[index]


def data_rate_sweep(bursts: Sequence[Burst],
                    interface: Optional[PodInterface] = None,
                    c_load_farads: float = 3 * PICOFARAD,
                    data_rates_hz: Optional[Sequence[float]] = None,
                    backend: Optional[str] = None, jobs: int = 1,
                    cache: Optional[ActivityCache] = None
                    ) -> DataRateSweepResult:
    """Reproduce Fig. 7: interface energy vs data rate, normalised to RAW.

    OPT re-encodes at every rate with the physical (E_transition, E_zero)
    weights; OPT (Fixed) encodes once with alpha=beta=1 but its activity is
    priced with the physical model, exactly as hardware with hardwired
    coefficients would behave.
    """
    spec = rate_experiment(bursts, interface=interface,
                           c_load_farads=c_load_farads,
                           data_rates_hz=data_rates_hz)
    result = run_experiment(spec, backend=backend, jobs=jobs, cache=cache)
    return to_rate_result(result)


@dataclass
class LoadSweepResult:
    """Fig. 8 data: OPT(Fixed)+encoder energy vs best conventional."""

    data_rates_hz: List[float]
    #: c_load (farads) -> normalised series aligned with data rates.
    normalized: Dict[float, List[float]] = field(default_factory=dict)

    def best_gain(self, c_load_farads: float) -> Tuple[float, float]:
        """(data rate, normalised energy) at the load's best point."""
        series = self.normalized[c_load_farads]
        index = min(range(len(series)), key=series.__getitem__)
        return self.data_rates_hz[index], series[index]


def load_sweep(bursts: Sequence[Burst],
               interface: Optional[PodInterface] = None,
               c_loads_farads: Sequence[float] = (1e-12, 2e-12, 3e-12,
                                                  4e-12, 6e-12, 8e-12),
               data_rates_hz: Optional[Sequence[float]] = None,
               encoder_energy_j: Optional[Dict[str, float]] = None,
               backend: Optional[str] = None, jobs: int = 1,
               cache: Optional[ActivityCache] = None) -> LoadSweepResult:
    """Reproduce Fig. 8: total (interface + encoder) energy per burst of
    OPT (Fixed), normalised to the better of DBI DC / DBI AC, across loads.

    ``encoder_energy_j`` maps scheme name -> encoding energy per burst in
    joules; when omitted, the gate-level synthesis estimates from
    :mod:`repro.hw.synthesis` are used.  The engine hoists the per-cell
    interface-energy coefficients into the grid, so the three schemes'
    totals are priced without re-deriving the energy model per scheme.
    """
    spec = load_experiment(bursts, interface=interface,
                           c_loads_farads=c_loads_farads,
                           data_rates_hz=data_rates_hz,
                           encoder_energy_j=encoder_energy_j)
    result = run_experiment(spec, backend=backend, jobs=jobs, cache=cache)
    return to_load_result(result)


# -- engine-result converters ------------------------------------------------

def _require_figure(result: ExperimentResult, figure: str) -> None:
    if result.spec.figure != figure:
        raise ValueError(
            f"experiment {result.spec.name!r} renders figure "
            f"{result.spec.figure!r}, not {figure!r}")


def to_alpha_result(result: ExperimentResult) -> AlphaSweepResult:
    """Convert an engine result (or loaded artifact) to Fig. 3/4 form."""
    _require_figure(result, "alpha")
    ac_costs = list(result.spec.figure_params["ac_costs"])
    sweep = AlphaSweepResult(ac_costs=ac_costs)
    for name, values in result.series.items():
        sweep.series[name] = list(values)
    return sweep


def to_rate_result(result: ExperimentResult) -> DataRateSweepResult:
    """Convert an engine result (or loaded artifact) to Fig. 7 form."""
    _require_figure(result, "rate")
    rates = list(result.spec.figure_params["data_rates_hz"])
    sweep = DataRateSweepResult(data_rates_hz=rates)
    raw_series = result.series["raw"]
    for name, values in result.series.items():
        sweep.absolute[name] = list(values)
        sweep.normalized[name] = [energy / raw_energy
                                  for energy, raw_energy in zip(values,
                                                                raw_series)]
    return sweep


def to_load_result(result: ExperimentResult) -> LoadSweepResult:
    """Convert an engine result (or loaded artifact) to Fig. 8 form."""
    _require_figure(result, "load")
    params = result.spec.figure_params
    loads = list(params["c_loads_farads"])
    rates = list(params["data_rates_hz"])
    encoder_energy_j = params["encoder_energy_j"]
    sweep = LoadSweepResult(data_rates_hz=rates)
    for load_index, c_load in enumerate(loads):
        series: List[float] = []
        for rate_index in range(len(rates)):
            cell = load_index * len(rates) + rate_index
            totals = {
                name: result.series[name][cell] + encoder_energy_j[name]
                for name in ("dbi-dc", "dbi-ac", "dbi-opt-fixed")
            }
            conventional = min(totals["dbi-dc"], totals["dbi-ac"])
            series.append(totals["dbi-opt-fixed"] / conventional)
        sweep.normalized[c_load] = series
    return sweep


_CONVERTERS = {
    "alpha": to_alpha_result,
    "rate": to_rate_result,
    "load": to_load_result,
}


def to_figure_result(result: ExperimentResult):
    """Dispatch an engine result to its figure-specific legacy form."""
    converter = _CONVERTERS.get(result.spec.figure)
    if converter is None:
        raise ValueError(
            f"experiment {result.spec.name!r} has no figure renderer "
            f"(figure={result.spec.figure!r})")
    return converter(result)
