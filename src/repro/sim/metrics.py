"""Aggregated activity/energy metrics for scheme evaluations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.bitops import WORD_WIDTH
from ..core.costs import CostModel
from ..core.schemes import EncodedBurst

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from ..phy.power import InterfaceEnergyModel


@dataclass
class SchemeMetrics:
    """Running tallies for one scheme over a burst population.

    >>> metrics = SchemeMetrics(scheme="raw")
    >>> metrics.mean_cost(CostModel.fixed())
    0.0
    """

    scheme: str
    bursts: int = 0
    zeros: int = 0
    transitions: int = 0
    inverted_bytes: int = 0
    total_bytes: int = 0

    def record(self, encoded: EncodedBurst) -> None:
        """Fold one encoded burst into the tallies."""
        n_transitions, n_zeros = encoded.activity()
        self.bursts += 1
        self.zeros += n_zeros
        self.transitions += n_transitions
        self.inverted_bytes += sum(encoded.invert_flags)
        self.total_bytes += len(encoded)

    # -- means ---------------------------------------------------------------
    @property
    def mean_zeros(self) -> float:
        """Mean zeros per burst."""
        return self.zeros / self.bursts if self.bursts else 0.0

    @property
    def mean_transitions(self) -> float:
        """Mean transitions per burst."""
        return self.transitions / self.bursts if self.bursts else 0.0

    @property
    def invert_rate(self) -> float:
        """Fraction of bytes transmitted inverted."""
        return self.inverted_bytes / self.total_bytes if self.total_bytes else 0.0

    def mean_cost(self, model: CostModel) -> float:
        """Mean abstract cost per burst under *model*."""
        if not self.bursts:
            return 0.0
        return model.activity_cost(self.transitions, self.zeros) / self.bursts

    def mean_energy(self, energy_model: "InterfaceEnergyModel") -> float:
        """Mean physical energy per burst (joules) under an
        :class:`~repro.phy.power.InterfaceEnergyModel`.

        Contract: *energy_model* must expose
        ``burst_energy(n_transitions, n_zeros, lane_beats=...) -> float``
        pricing tallied activity — the energy surface an
        :class:`~repro.phy.power.InterfaceEnergyModel` derives from any
        :class:`~repro.phy.interface.Interface` standard.  Anything else
        is rejected up front rather than failing deep inside a sweep.
        The one-level DC term is included (``lane_beats`` from
        ``total_bytes``), so non-POD standards price exactly: on SSTL,
        for example, shifting the zeros/ones split moves nothing.

        >>> from repro.phy.power import GBPS, InterfaceEnergyModel, PICOFARAD
        >>> from repro.phy.pod import pod135
        >>> from repro.phy.sstl import sstl15
        >>> pod = InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)
        >>> metrics = SchemeMetrics(scheme="raw", bursts=2, zeros=10,
        ...                         transitions=4, total_bytes=16)
        >>> metrics.mean_energy(pod) == pod.burst_energy(4, 10) / 2
        True
        >>> sstl = InterfaceEnergyModel(sstl15(), 2 * GBPS, 3 * PICOFARAD)
        >>> fewer_zeros = SchemeMetrics(scheme="dc", bursts=2, zeros=2,
        ...                             transitions=4, total_bytes=16)
        >>> metrics.mean_energy(sstl) == fewer_zeros.mean_energy(sstl)
        True
        >>> metrics.mean_energy(object())
        Traceback (most recent call last):
            ...
        TypeError: energy_model must expose burst_energy(...); got object
        """
        if not callable(getattr(energy_model, "burst_energy", None)):
            raise TypeError("energy_model must expose burst_energy(...); "
                            f"got {type(energy_model).__name__}")
        if not self.bursts:
            return 0.0
        return energy_model.burst_energy(
            self.transitions, self.zeros,
            lane_beats=WORD_WIDTH * self.total_bytes) / self.bursts


@dataclass
class EvaluationResult:
    """Metrics of several schemes over the same workload."""

    workload: str
    metrics: Dict[str, SchemeMetrics] = field(default_factory=dict)

    def __getitem__(self, scheme: str) -> SchemeMetrics:
        return self.metrics[scheme]

    def schemes(self) -> List[str]:
        """Scheme names in insertion order."""
        return list(self.metrics)

    def relative_cost(self, scheme: str, reference: str,
                      model: CostModel) -> float:
        """Cost of *scheme* normalised to *reference* under *model*."""
        ref = self.metrics[reference].mean_cost(model)
        if ref == 0:
            raise ZeroDivisionError(f"reference scheme {reference!r} has zero cost")
        return self.metrics[scheme].mean_cost(model) / ref

    def best_scheme(self, model: CostModel,
                    candidates: Optional[List[str]] = None) -> str:
        """Name of the cheapest scheme under *model*."""
        names = candidates if candidates is not None else self.schemes()
        if not names:
            raise ValueError("no candidate schemes")
        return min(names, key=lambda name: self.metrics[name].mean_cost(model))
