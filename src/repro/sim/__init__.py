"""Simulation harness: runners, parameter sweeps and report formatting."""

from .metrics import EvaluationResult, SchemeMetrics
from .runner import evaluate, evaluate_named
from .report import (
    csv_table,
    format_alpha_sweep,
    format_data_rate_sweep,
    format_evaluation,
    format_load_sweep,
    markdown_table,
    savings_summary,
)
from .sweep import (
    ActivityTotals,
    AlphaSweepResult,
    DataRateSweepResult,
    LoadSweepResult,
    alpha_sweep,
    collect_activity,
    data_rate_sweep,
    load_sweep,
)

__all__ = [
    "ActivityTotals",
    "AlphaSweepResult",
    "DataRateSweepResult",
    "EvaluationResult",
    "LoadSweepResult",
    "SchemeMetrics",
    "alpha_sweep",
    "collect_activity",
    "csv_table",
    "data_rate_sweep",
    "evaluate",
    "evaluate_named",
    "format_alpha_sweep",
    "format_data_rate_sweep",
    "format_evaluation",
    "format_load_sweep",
    "load_sweep",
    "markdown_table",
    "savings_summary",
]
