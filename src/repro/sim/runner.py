"""Scheme × workload evaluation runner.

Evaluates a set of DBI schemes over a common burst population and collects
:class:`~repro.sim.metrics.SchemeMetrics`.  Two transmission modes:

* **independent** (default, the paper's setting): every burst starts from
  the idle-high bus (``prev_word = 0x1FF``);
* **chained**: bus state threads from each burst into the next, modelling
  back-to-back write bursts.

Two execution backends (see :mod:`repro.core.vectorized`):

* ``reference`` — the pure-Python per-burst path (the executable spec);
* ``vector`` — whole populations encoded array-at-a-time through each
  scheme's NumPy kernel, with identical results.

``backend="auto"`` (the default) selects ``vector`` whenever NumPy is
available and the scheme/mode combination is vectorizable: equal-length
bursts, a scheme with a batch kernel, and — in chained mode — flag
decisions that do not depend on the incoming bus state (RAW, DBI DC).
Everything else silently uses the reference path, so results never depend
on the backend choice.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..core.bitops import ALL_ONES_WORD
from ..core.burst import Burst
from ..core.schemes import DbiScheme, get_scheme
from ..core.vectorized import try_vector_pack
from .metrics import EvaluationResult, SchemeMetrics

SchemeSpec = Union[str, DbiScheme]


def _resolve(spec: SchemeSpec) -> DbiScheme:
    if isinstance(spec, DbiScheme):
        return spec
    return get_scheme(spec)


def _tally_reference(scheme: DbiScheme, name: str, bursts: List[Burst],
                     chained: bool) -> SchemeMetrics:
    metrics = SchemeMetrics(scheme=name)
    state = ALL_ONES_WORD
    for burst in bursts:
        encoded = scheme.encode(burst, prev_word=state)
        metrics.record(encoded)
        if chained:
            state = encoded.last_word()
    return metrics


def _tally_vector(scheme: DbiScheme, name: str, data,
                  chained: bool) -> SchemeMetrics:
    from ..core.vectorized import scheme_batch_activity

    batch, n = data.shape
    flags, transitions, zeros = scheme_batch_activity(
        scheme, data, prev_word=ALL_ONES_WORD, chained=chained)
    return SchemeMetrics(scheme=name, bursts=batch, zeros=zeros,
                         transitions=transitions,
                         inverted_bytes=int(flags.sum()),
                         total_bytes=batch * n)


def run_scheme(scheme: DbiScheme, name: str, bursts: List[Burst],
               chained: bool = False,
               backend: Optional[str] = None) -> SchemeMetrics:
    """Tally one scheme over a population on the selected backend."""
    data = try_vector_pack(scheme, bursts, backend, chained=chained)
    if data is not None:
        return _tally_vector(scheme, name, data, chained)
    return _tally_reference(scheme, name, bursts, chained)


def evaluate(schemes: Sequence[SchemeSpec], bursts: Iterable[Burst],
             workload: str = "adhoc", chained: bool = False,
             backend: Optional[str] = None) -> EvaluationResult:
    """Run every scheme over every burst and tally activity.

    Scheme specs may be registry names or instantiated schemes; instances
    are useful for parameterised encoders (``DbiOptimal(model)``).
    ``backend`` selects the execution path (``"auto"``/``"reference"``/
    ``"vector"``) without affecting results.

    >>> from repro.core.burst import Burst
    >>> result = evaluate(["raw", "dbi-dc"], [Burst([0x00])])
    >>> result["dbi-dc"].zeros
    1
    """
    burst_list = list(bursts)
    if not burst_list:
        raise ValueError("burst population is empty")
    resolved: Dict[str, DbiScheme] = {}
    for spec in schemes:
        scheme = _resolve(spec)
        if scheme.name in resolved:
            raise ValueError(f"duplicate scheme name {scheme.name!r}")
        resolved[scheme.name] = scheme

    result = EvaluationResult(workload=workload)
    for name, scheme in resolved.items():
        result.metrics[name] = run_scheme(scheme, name, burst_list,
                                          chained=chained, backend=backend)
    return result


def evaluate_named(schemes: Mapping[str, SchemeSpec], bursts: Iterable[Burst],
                   workload: str = "adhoc", chained: bool = False,
                   backend: Optional[str] = None) -> EvaluationResult:
    """Like :func:`evaluate` but with caller-chosen display names.

    Needed when the same scheme class appears twice with different
    parameters (e.g. ``OPT`` at several operating points).
    """
    burst_list = list(bursts)
    if not burst_list:
        raise ValueError("burst population is empty")
    result = EvaluationResult(workload=workload)
    for name, spec in schemes.items():
        scheme = _resolve(spec)
        result.metrics[name] = run_scheme(scheme, name, burst_list,
                                          chained=chained, backend=backend)
    return result
