"""Scheme × workload evaluation runner.

Evaluates a set of DBI schemes over a common burst population and collects
:class:`~repro.sim.metrics.SchemeMetrics`.  Two transmission modes:

* **independent** (default, the paper's setting): every burst starts from
  the idle-high bus (``prev_word = 0x1FF``);
* **chained**: bus state threads from each burst into the next, modelling
  back-to-back write bursts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Union

from ..core.bitops import ALL_ONES_WORD
from ..core.burst import Burst
from ..core.schemes import DbiScheme, get_scheme
from .metrics import EvaluationResult, SchemeMetrics

SchemeSpec = Union[str, DbiScheme]


def _resolve(spec: SchemeSpec) -> DbiScheme:
    if isinstance(spec, DbiScheme):
        return spec
    return get_scheme(spec)


def evaluate(schemes: Sequence[SchemeSpec], bursts: Iterable[Burst],
             workload: str = "adhoc", chained: bool = False) -> EvaluationResult:
    """Run every scheme over every burst and tally activity.

    Scheme specs may be registry names or instantiated schemes; instances
    are useful for parameterised encoders (``DbiOptimal(model)``).

    >>> from repro.core.burst import Burst
    >>> result = evaluate(["raw", "dbi-dc"], [Burst([0x00])])
    >>> result["dbi-dc"].zeros
    1
    """
    burst_list = list(bursts)
    if not burst_list:
        raise ValueError("burst population is empty")
    resolved: Dict[str, DbiScheme] = {}
    for spec in schemes:
        scheme = _resolve(spec)
        if scheme.name in resolved:
            raise ValueError(f"duplicate scheme name {scheme.name!r}")
        resolved[scheme.name] = scheme

    result = EvaluationResult(workload=workload)
    for name, scheme in resolved.items():
        metrics = SchemeMetrics(scheme=name)
        state = ALL_ONES_WORD
        for burst in burst_list:
            encoded = scheme.encode(burst, prev_word=state)
            metrics.record(encoded)
            if chained:
                state = encoded.last_word()
        result.metrics[name] = metrics
    return result


def evaluate_named(schemes: Mapping[str, SchemeSpec], bursts: Iterable[Burst],
                   workload: str = "adhoc", chained: bool = False) -> EvaluationResult:
    """Like :func:`evaluate` but with caller-chosen display names.

    Needed when the same scheme class appears twice with different
    parameters (e.g. ``OPT`` at several operating points).
    """
    burst_list = list(bursts)
    if not burst_list:
        raise ValueError("burst population is empty")
    result = EvaluationResult(workload=workload)
    for name, spec in schemes.items():
        scheme = _resolve(spec)
        metrics = SchemeMetrics(scheme=name)
        state = ALL_ONES_WORD
        for burst in burst_list:
            encoded = scheme.encode(burst, prev_word=state)
            metrics.record(encoded)
            if chained:
                state = encoded.last_word()
        result.metrics[name] = metrics
    return result
