"""Declarative experiment engine behind every figure sweep.

The paper's figures are all the same computation — encode a burst
population under each scheme, then price the (transitions, zeros) totals
under a grid of operating points.  This module makes that shape explicit:

* :class:`ExperimentSpec` — schemes × operating-point grid × population
  source, declared up front (the declarative parameter-sweep style);
* :class:`ActivityCache` — content-addressed totals store keyed by
  *scheme fingerprint + population digest*, so RAW/DC/AC/OPT (Fixed)
  encode exactly once per experiment and OPT re-encodes only when the
  alpha/beta *ratio* actually changes across grid points;
* :func:`run_experiment` — the executor: plans the unique encode tasks,
  runs them serially or on a process pool (``jobs``), merges in
  deterministic declaration order, and prices every grid cell from the
  cached totals (the per-cell :class:`~repro.phy.power.InterfaceEnergyModel`
  coefficients are hoisted into the grid at spec-build time);
* :func:`save_artifact` / :func:`load_artifact` — JSON persistence of
  spec + results + provenance, so figures re-render without simulating.

Three spec builders (:func:`alpha_experiment`, :func:`rate_experiment`,
:func:`load_experiment`) reproduce Figs. 3/4, 7 and 8; the legacy
functions in :mod:`repro.sim.sweep` are thin wrappers over them with
bit-identical results.

Since PR 5 the engine has a second experiment axis, **controller
replay**: :class:`ReplaySpec` drives a byte payload (a
:mod:`repro.workloads.traces` class, a memory dump, ...) through the
multi-channel write path of :class:`repro.ctrl.controller.MemoryController`
at a grid of electrical operating points
(:class:`ReplayPoint` — interface preset × data rate × load), with the
same ``backend=`` / ``jobs=`` / ``cache=`` machinery:
:func:`run_replay` deduplicates replays by the controller's *cost-model
ratio* (operating points whose differential alpha/beta ratio coincides —
e.g. SSTL and LVSTL, both transition-only — replay once) and prices
per-channel energy from the cached integer tallies.

PR 6 adds two more axes with the same cache discipline and the same
``repro.experiment/1`` artifact format (discriminated by a ``kind``
field):

* **reliability** — :class:`FaultSpec` / :func:`run_faults` injects the
  mask-parallel fault engine of :mod:`repro.extensions.reliability`
  across a scheme × fault-rate grid, one cached coverage row per
  (scheme fingerprint, rate, seed, population digest);
* **granularity** — :class:`GranularitySpec` / :func:`run_granularity`
  runs the grouped-DBI ablation of :mod:`repro.extensions.granularity`
  over a grid of group sizes, sharing encode entries with figure sweeps
  through the grouped scheme's ratio-keyed fingerprint.

PR 8 adds **simultaneous switching** as a fifth axis: :class:`SsoSpec` /
:func:`run_sso` tallies per-beat switching histograms with the
word-parallel engine of :mod:`repro.analysis.sso`
(:func:`~repro.analysis.sso.sso_of_scheme_batch`), one cached
:class:`~repro.analysis.sso.SsoStatistics` per (scheme fingerprint,
chained flag, population digest), then prices peak/mean supply-current
proxies for every electrical interface preset — interfaces enter only at
pricing, so one encode serves the whole interface column, mirroring the
fault axis.

Pricing is the linear form shared by the abstract cost model and the
physical energy model: ``alpha`` per transition, ``beta`` per zero.  Two
term orders exist only to preserve IEEE-754 bit-identity with the legacy
code paths (``cost`` mirrors :meth:`~repro.core.costs.CostModel.activity_cost`,
``energy`` mirrors :meth:`~repro.phy.power.InterfaceEnergyModel.burst_energy`).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..baselines import DbiAc, DbiDc, Raw
from ..core.bitops import WORD_WIDTH
from ..core.costs import CostModel
from ..core.encoder import DbiOptimal
from ..core.schemes import DbiScheme, get_scheme
from ..core.vectorized import resolve_backend
from ..ctrl.adaptive import (
    OperatingPoint,
    OperatingPointSchedule,
    TrackingConfig,
)
from ..ctrl.controller import (
    CACHE_LINE_BYTES,
    MemoryController,
    transactions_from_bytes,
)
from ..extensions.granularity import GroupedDbiOptimal, VALID_GROUP_SIZES
from ..extensions.reliability import (
    DEFAULT_FAULT_RATES,
    FaultCoverageRow,
    fault_coverage_curve,
)
from ..phy.interface import get_interface
from ..phy.pod import PodInterface, pod135
from ..phy.power import GBPS, InterfaceEnergyModel, PICOFARAD
from ..workloads.population import (
    DEFAULT_CHUNK_SIZE,
    BurstPopulation,
    OpaquePopulation,
    RandomPopulation,
    as_population,
)
from ..workloads.source import (
    DEFAULT_TRACE_CHUNK_BYTES,
    BytesTraceSource,
    source_from_json,
)

#: Identifier written into every persisted artifact.
ARTIFACT_FORMAT = "repro.experiment/1"

#: Recognised pricing term orders (see module docstring).
PRICINGS = ("cost", "energy")


# -- activity totals ---------------------------------------------------------

@dataclass(frozen=True)
class ActivityTotals:
    """Population-level (transitions, zeros) totals for one encoding run."""

    transitions: int
    zeros: int
    bursts: int

    @property
    def mean_transitions(self) -> float:
        return self.transitions / self.bursts

    @property
    def mean_zeros(self) -> float:
        return self.zeros / self.bursts

    def mean_cost(self, model) -> float:
        """Mean abstract cost per burst."""
        return model.activity_cost(self.transitions, self.zeros) / self.bursts

    def mean_energy(self, energy_model) -> float:
        """Mean physical energy per burst in joules.

        Differential (zeros + transitions) pricing only: the totals carry
        no beat count, so the level-independent ``E_one`` floor of
        SSTL/LVSTL standards is not included — exact for POD, constant
        offset elsewhere (use the controller replay axis for full
        non-POD accounting).
        """
        return energy_model.burst_energy(self.transitions, self.zeros) / self.bursts


def population_activity(scheme: DbiScheme, population,
                        backend: Optional[str] = None,
                        chunk_size: int = DEFAULT_CHUNK_SIZE) -> ActivityTotals:
    """Encode a whole population once and tally (transitions, zeros).

    The chunked twin of :func:`repro.sim.sweep.collect_activity`: the
    population streams through in fixed-size chunks, so arbitrarily large
    sources fit in memory.  On the ``vector`` backend, packable sources
    feed ``(chunk, n)`` arrays straight into the scheme's batch kernel
    without materialising :class:`~repro.core.burst.Burst` objects.
    Totals are integer sums, so chunking never changes the result.
    """
    population = as_population(population)
    use_vector = (resolve_backend(backend) == "vector"
                  and scheme.supports_batch()
                  and population.burst_length is not None)
    transitions = 0
    zeros = 0
    if use_vector:
        from ..core.vectorized import scheme_batch_activity

        for data in population.iter_packed(chunk_size):
            __, chunk_transitions, chunk_zeros = scheme_batch_activity(
                scheme, data)
            transitions += chunk_transitions
            zeros += chunk_zeros
    else:
        for chunk in population.iter_chunks(chunk_size):
            for burst in chunk:
                encoded = scheme.encode(burst)
                n_transitions, n_zeros = encoded.activity()
                transitions += n_transitions
                zeros += n_zeros
    return ActivityTotals(transitions=transitions, zeros=zeros,
                          bursts=len(population))


# -- the activity cache ------------------------------------------------------

class ActivityCache:
    """Content-addressed store of activity-totals records.

    Two families of entries share the store, distinguishable by key
    shape; both key halves identify *content*, not object identity, so
    any two requests that provably produce the same totals collapse to
    one entry:

    * encode entries — ``scheme.fingerprint() + "@" +
      population.digest()`` mapping to :class:`ActivityTotals` (e.g. OPT
      (Fixed) and the tracking OPT slot at AC fraction 0.5 share one);
    * controller-replay entries — :meth:`ReplaySpec.replay_key` strings
      mapping to :class:`ReplayTotals` (operating points with one
      differential cost ratio share one).

    ``hits`` and ``misses`` count unique key lookups per
    :func:`run_experiment` / :func:`run_replay` plan; ``misses`` equals
    the number of encodes/replays actually executed.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, "CachedTotals"] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(scheme: DbiScheme, population: BurstPopulation) -> str:
        return f"{scheme.fingerprint()}@{population.digest()}"

    def __len__(self) -> int:
        return len(self._totals)

    def __contains__(self, key: str) -> bool:
        return key in self._totals

    def get(self, key: str) -> "CachedTotals":
        return self._totals[key]

    def store(self, key: str, totals: "CachedTotals") -> None:
        self._totals[key] = totals

    def clear(self) -> None:
        self._totals.clear()
        self.hits = 0
        self.misses = 0

    def health(self) -> Dict[str, object]:
        """Degradation/health snapshot; a plain memory tier never degrades.

        The disk tier (:class:`repro.service.diskcache.DiskActivityCache`)
        overrides this with write-failure / quarantine counters; the
        service daemon's ``health`` op serves whatever the active cache
        reports.
        """
        return {
            "tier": "memory",
            "degraded": False,
            "memory_entries": len(self._totals),
            "hits": self.hits,
            "misses": self.misses,
        }


_SHARED_CACHE: Optional[ActivityCache] = None


def shared_cache() -> ActivityCache:
    """The process-wide cache for sessions running several experiments.

    :func:`run_experiment` deliberately defaults to a *fresh* cache per
    run (so the legacy sweep wrappers stay pure and backend-equivalence
    tests cannot be satisfied by stale entries); pass this explicitly to
    share encodes across experiments.

    When ``REPRO_CACHE_DIR`` is set, the shared cache is a
    :class:`repro.service.diskcache.DiskActivityCache` rooted there
    instead of a plain in-memory store, so encodes persist across
    *processes*: a warm CLI run (or a daemon restart) skips every encode
    a previous run already paid for.
    """
    global _SHARED_CACHE
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        from ..service.diskcache import DiskActivityCache

        wanted = os.path.abspath(cache_dir)
        if (not isinstance(_SHARED_CACHE, DiskActivityCache)
                or _SHARED_CACHE.directory != wanted):
            _SHARED_CACHE = DiskActivityCache(wanted)
        return _SHARED_CACHE
    if _SHARED_CACHE is None or type(_SHARED_CACHE) is not ActivityCache:
        _SHARED_CACHE = ActivityCache()
    return _SHARED_CACHE


# -- the spec ----------------------------------------------------------------

@dataclass(frozen=True)
class GridPoint:
    """One operating point: pricing coefficients plus labelling axes.

    ``alpha`` prices a lane transition, ``beta`` a zero-beat — abstract
    weights for Figs. 3/4, per-event joules for Figs. 7/8 (computed once
    here at spec-build time instead of per scheme per cell).
    """

    alpha: float
    beta: float
    #: Ordered (axis name, value) labels, e.g. ``(("ac_cost", 0.3),)`` or
    #: ``(("c_load_farads", 3e-12), ("data_rate_hz", 2e9))``.
    axes: Tuple[Tuple[str, float], ...] = ()

    def axis(self, name: str) -> float:
        for axis_name, value in self.axes:
            if axis_name == name:
                return value
        raise KeyError(f"grid point has no axis {name!r}")

    def cost_model(self) -> CostModel:
        return CostModel(self.alpha, self.beta)


@dataclass(frozen=True)
class SchemeSlot:
    """One output series of an experiment.

    Either *static* (a fixed scheme instance, encoded once per
    experiment) or *tracking* (``tracks_point=True``: a
    :class:`~repro.core.encoder.DbiOptimal` built from each grid point's
    coefficients — the paper's OPT following the operating point).
    """

    name: str
    scheme: Optional[DbiScheme] = None
    tracks_point: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("slot name must be non-empty")
        if self.tracks_point and self.scheme is not None:
            raise ValueError(
                f"slot {self.name!r}: tracking slots build their scheme "
                "from the grid point; do not pass an instance")

    def resolve(self, point: GridPoint) -> DbiScheme:
        """The scheme to run for *point* (static slots ignore the point)."""
        if self.tracks_point:
            return DbiOptimal(CostModel(point.alpha, point.beta))
        if self.scheme is None:
            raise RuntimeError(
                f"slot {self.name!r} is render-only (loaded from an "
                "artifact without a registry-reconstructible scheme)")
        return self.scheme


@dataclass(frozen=True)
class ExperimentSpec:
    """A full experiment: population × scheme slots × operating grid."""

    name: str
    population: BurstPopulation
    slots: Tuple[SchemeSlot, ...]
    grid: Tuple[GridPoint, ...]
    #: Pricing term order — ``cost`` mirrors ``CostModel.activity_cost``,
    #: ``energy`` mirrors ``InterfaceEnergyModel.burst_energy``.
    pricing: str = "cost"
    #: Figure family for re-rendering (``alpha``/``rate``/``load``), or
    #: ``None`` for free-form experiments.
    figure: Optional[str] = None
    #: JSON-serialisable parameters the figure renderer needs
    #: (axis lists, encoder energies, ...).
    figure_params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("spec needs at least one scheme slot")
        if not self.grid:
            raise ValueError("spec needs at least one grid point")
        if self.pricing not in PRICINGS:
            raise ValueError(
                f"unknown pricing {self.pricing!r}; choose from {PRICINGS}")
        names = [slot.name for slot in self.slots]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate slot names in {names}")


# -- the executor ------------------------------------------------------------

@dataclass
class ExperimentResult:
    """Everything :func:`run_experiment` produced for one spec.

    ``series`` maps slot name → priced mean value per grid point (in grid
    order); ``totals`` keeps the exact integer activity tallies under
    their cache keys; ``provenance`` records how the run was executed.
    """

    spec: ExperimentSpec
    series: Dict[str, List[float]]
    totals: Dict[str, ActivityTotals]
    provenance: Dict[str, object]

    def save(self, path) -> None:
        save_artifact(self, path)


def _price_cell(totals: ActivityTotals, point: GridPoint,
                pricing: str) -> float:
    if pricing == "cost":
        return (point.alpha * totals.transitions
                + point.beta * totals.zeros) / totals.bursts
    return (totals.zeros * point.beta
            + totals.transitions * point.alpha) / totals.bursts


#: Worker-process state: the population is shipped once per worker via
#: the pool initializer instead of once per task, so explicit in-memory
#: populations don't pay a per-task pickling cost.
_WORKER_POPULATION: Optional[BurstPopulation] = None


def _pool_initializer(population: BurstPopulation) -> None:
    global _WORKER_POPULATION
    _WORKER_POPULATION = population


def _encode_task(scheme: DbiScheme, backend: Optional[str],
                 chunk_size: int) -> Tuple[int, int, int]:
    """Process-pool payload: one population encode, returned as ints."""
    totals = population_activity(scheme, _WORKER_POPULATION, backend=backend,
                                 chunk_size=chunk_size)
    return totals.transitions, totals.zeros, totals.bursts


def run_experiment(spec: ExperimentSpec, backend: Optional[str] = None,
                   jobs: int = 1, cache: Optional[ActivityCache] = None,
                   chunk_size: int = DEFAULT_CHUNK_SIZE) -> ExperimentResult:
    """Execute a spec: plan unique encodes, run them, price the grid.

    ``jobs > 1`` fans the missing encode tasks out to a process pool;
    results are merged back in deterministic declaration order, and the
    totals are exact integers, so the output is bit-identical to a
    serial run.  ``cache`` defaults to a fresh per-run
    :class:`ActivityCache`; pass :func:`shared_cache` (or your own) to
    reuse encodes across experiments.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    resolved = resolve_backend(backend)
    if cache is None:
        cache = ActivityCache()
    start = time.perf_counter()

    # Plan: one cache key per (slot, relevant point), deduplicated in
    # declaration order.  Static slots contribute a single key; tracking
    # slots contribute one key per *distinct ratio fingerprint*.
    cell_keys: Dict[Tuple[str, int], str] = {}
    needed: Dict[str, DbiScheme] = {}
    for slot in spec.slots:
        for index, point in enumerate(spec.grid):
            if not slot.tracks_point and index > 0:
                cell_keys[(slot.name, index)] = cell_keys[(slot.name, 0)]
                continue
            scheme = slot.resolve(point)
            key = cache.key_for(scheme, spec.population)
            cell_keys[(slot.name, index)] = key
            if key not in needed:
                needed[key] = scheme

    todo: List[Tuple[str, DbiScheme]] = []
    for key, scheme in needed.items():
        if key in cache:
            cache.hits += 1
        else:
            cache.misses += 1
            todo.append((key, scheme))

    if todo:
        if jobs == 1 or len(todo) == 1:
            for key, scheme in todo:
                cache.store(key, population_activity(
                    scheme, spec.population, backend=resolved,
                    chunk_size=chunk_size))
        else:
            # jobs is an explicit request — honour it (capped by the
            # task count); over-subscribing cores costs little here.
            workers = min(jobs, len(todo))
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_pool_initializer,
                                     initargs=(spec.population,)) as pool:
                futures = [pool.submit(_encode_task, scheme, resolved,
                                       chunk_size)
                           for __, scheme in todo]
                # Merge in submission (declaration) order, not completion
                # order, so the cache fill is deterministic.
                for (key, __), future in zip(todo, futures):
                    transitions, zeros, bursts = future.result()
                    cache.store(key, ActivityTotals(
                        transitions=transitions, zeros=zeros, bursts=bursts))

    series: Dict[str, List[float]] = {}
    for slot in spec.slots:
        series[slot.name] = [
            _price_cell(cache.get(cell_keys[(slot.name, index)]), point,
                        spec.pricing)
            for index, point in enumerate(spec.grid)
        ]

    provenance = {
        "backend": resolved,
        "jobs": jobs,
        "encodes": len(todo),
        "cache_hits": len(needed) - len(todo),
        "cache_misses": len(todo),
        "grid_cells": len(spec.grid),
        "population": spec.population.digest(),
        "population_bursts": len(spec.population),
        "elapsed_s": time.perf_counter() - start,
        "python": platform.python_version(),
        "created_unix": time.time(),
    }
    from .. import __version__

    provenance["repro_version"] = __version__
    totals = {key: cache.get(key) for key in needed}
    return ExperimentResult(spec=spec, series=series, totals=totals,
                            provenance=provenance)


# -- figure spec builders ----------------------------------------------------

def _static_slots(include_raw: bool = True) -> List[SchemeSlot]:
    slots = []
    if include_raw:
        slots.append(SchemeSlot("raw", Raw()))
    slots.append(SchemeSlot("dbi-dc", DbiDc()))
    slots.append(SchemeSlot("dbi-ac", DbiAc()))
    return slots


def alpha_experiment(population, points: int = 51,
                     include_fixed: bool = False,
                     extra_schemes: Optional[Dict[str, DbiScheme]] = None,
                     name: str = "fig3-alpha-sweep") -> ExperimentSpec:
    """Figs. 3/4 as a spec: abstract cost across the AC-fraction grid."""
    if points < 2:
        raise ValueError("points must be >= 2")
    ac_costs = [i / (points - 1) for i in range(points)]
    slots = _static_slots()
    if include_fixed:
        slots.append(SchemeSlot("dbi-opt-fixed", DbiOptimal(CostModel.fixed())))
    if extra_schemes:
        slots.extend(SchemeSlot(slot_name, scheme)
                     for slot_name, scheme in extra_schemes.items())
    slots.append(SchemeSlot("dbi-opt", tracks_point=True))
    grid = tuple(GridPoint(alpha=ac_cost, beta=1.0 - ac_cost,
                           axes=(("ac_cost", ac_cost),))
                 for ac_cost in ac_costs)
    return ExperimentSpec(name=name, population=as_population(population),
                          slots=tuple(slots), grid=grid, pricing="cost",
                          figure="alpha",
                          figure_params={"ac_costs": ac_costs})


def _default_rates(data_rates_hz) -> List[float]:
    if data_rates_hz is not None:
        return list(data_rates_hz)
    return [0.5 * GBPS * step for step in range(1, 41)]


def rate_experiment(population, interface: Optional[PodInterface] = None,
                    c_load_farads: float = 3 * PICOFARAD,
                    data_rates_hz=None,
                    name: str = "fig7-rate-sweep") -> ExperimentSpec:
    """Fig. 7 as a spec: interface energy across the data-rate grid."""
    pod = interface if interface is not None else pod135()
    rates = _default_rates(data_rates_hz)
    if not rates:
        raise ValueError("no data rates given")
    slots = _static_slots()
    slots.append(SchemeSlot("dbi-opt-fixed", DbiOptimal(CostModel.fixed())))
    slots.append(SchemeSlot("dbi-opt", tracks_point=True))
    grid = []
    for rate in rates:
        energy_model = InterfaceEnergyModel(pod, rate, c_load_farads)
        grid.append(GridPoint(alpha=energy_model.energy_per_transition,
                              beta=energy_model.energy_per_zero,
                              axes=(("data_rate_hz", rate),)))
    return ExperimentSpec(name=name, population=as_population(population),
                          slots=tuple(slots), grid=tuple(grid),
                          pricing="energy", figure="rate",
                          figure_params={"data_rates_hz": rates,
                                         "c_load_farads": c_load_farads})


def load_experiment(population, interface: Optional[PodInterface] = None,
                    c_loads_farads=(1e-12, 2e-12, 3e-12, 4e-12, 6e-12, 8e-12),
                    data_rates_hz=None,
                    encoder_energy_j: Optional[Dict[str, float]] = None,
                    name: str = "fig8-load-sweep") -> ExperimentSpec:
    """Fig. 8 as a spec: (load × rate) grid, encoder energy in the params.

    The per-cell (E_transition, E_zero) coefficients are evaluated once
    here, so pricing the three schemes never re-derives the interface
    energy model — the totals come from the cache, the coefficients from
    the grid.
    """
    pod = interface if interface is not None else pod135()
    rates = _default_rates(data_rates_hz)
    if not rates:
        raise ValueError("no data rates given")
    loads = list(c_loads_farads)
    if not loads:
        raise ValueError("no load capacitances given")
    if encoder_energy_j is None:
        from ..hw.synthesis import encoder_energy_per_burst
        encoder_energy_j = encoder_energy_per_burst()
    for required in ("dbi-dc", "dbi-ac", "dbi-opt-fixed"):
        if required not in encoder_energy_j:
            raise KeyError(f"encoder_energy_j missing entry for {required!r}")
    slots = _static_slots(include_raw=False)
    slots.append(SchemeSlot("dbi-opt-fixed", DbiOptimal(CostModel.fixed())))
    grid = []
    for c_load in loads:
        for rate in rates:
            energy_model = InterfaceEnergyModel(pod, rate, c_load)
            grid.append(GridPoint(
                alpha=energy_model.energy_per_transition,
                beta=energy_model.energy_per_zero,
                axes=(("c_load_farads", c_load), ("data_rate_hz", rate))))
    return ExperimentSpec(name=name, population=as_population(population),
                          slots=tuple(slots), grid=tuple(grid),
                          pricing="energy", figure="load",
                          figure_params={
                              "c_loads_farads": loads,
                              "data_rates_hz": rates,
                              "encoder_energy_j": dict(encoder_energy_j)})


# -- the controller-replay axis ----------------------------------------------

@dataclass(frozen=True)
class ReplayPoint:
    """One electrical operating point of a controller replay.

    ``interface`` names a preset from
    :data:`repro.phy.interface.INTERFACES`; the per-event energies follow
    from (interface, data rate, load) exactly as in the figure sweeps.
    """

    interface: str
    data_rate_hz: float
    c_load_farads: float
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(
                self, "label",
                f"{self.interface}@{self.data_rate_hz / GBPS:g}Gbps"
                f"/{self.c_load_farads / PICOFARAD:g}pF")

    def energy_model(self) -> InterfaceEnergyModel:
        return InterfaceEnergyModel(get_interface(self.interface),
                                    self.data_rate_hz, self.c_load_farads)


@dataclass(frozen=True)
class ReplaySpec:
    """A trace-driven controller replay: trace × link geometry × points.

    The trace is either an inline ``payload`` (the original axis) or a
    streaming ``source`` (any :class:`repro.workloads.source.TraceSource`
    — file, synthetic, registry trace) consumed ``chunk_bytes`` at a
    time in bounded memory; exactly one of the two must be set.  Because
    a source's digest is format-identical to the inline payload digest
    of the same bytes, migrating a spec from ``payload=`` to ``source=``
    keeps every cached replay warm.

    Two optional adaptive axes ride on top of the fixed ``points`` grid
    (and may replace it entirely):

    * ``schedule`` — an :class:`~repro.ctrl.adaptive.OperatingPointSchedule`
      replayed once with planned DVFS switching; chunking-independent,
      so its cache key binds only the schedule descriptor.
    * ``tracking`` — a :class:`~repro.ctrl.adaptive.TrackingConfig`
      replayed once with online alpha/beta tracking; the tracker observes
      per submitted chunk, so its cache key additionally binds
      ``chunk_bytes``.

    The two are mutually exclusive per spec (run two specs to compare).
    """

    name: str
    payload: bytes = b""
    points: Tuple[ReplayPoint, ...] = ()
    channels: int = 2
    byte_lanes: int = 4
    window: int = 16
    line_bytes: int = CACHE_LINE_BYTES
    source: Optional[object] = None
    chunk_bytes: int = DEFAULT_TRACE_CHUNK_BYTES
    schedule: Optional[OperatingPointSchedule] = None
    tracking: Optional[TrackingConfig] = None

    def __post_init__(self) -> None:
        if bool(self.payload) == (self.source is not None):
            raise ValueError(
                "replay spec needs exactly one of payload / source")
        if self.schedule is not None and self.tracking is not None:
            raise ValueError(
                "schedule and tracking are mutually exclusive; "
                "run two specs to compare them")
        if not self.points and self.adaptive_label is None:
            raise ValueError("replay spec needs at least one operating point")
        if min(self.channels, self.byte_lanes, self.window,
               self.line_bytes) < 1:
            raise ValueError("channels/byte_lanes/window/line_bytes must be >= 1")
        if self.chunk_bytes < 1:
            raise ValueError(
                f"chunk_bytes must be >= 1, got {self.chunk_bytes}")
        labels = [point.label for point in self.points]
        if self.adaptive_label is not None:
            labels.append(self.adaptive_label)
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate point labels in {labels}")

    @property
    def adaptive_label(self) -> Optional[str]:
        """Series label of the adaptive axis (``None`` without one)."""
        if self.schedule is not None:
            return self.schedule.label
        if self.tracking is not None:
            return self.tracking.label
        return None

    def payload_digest(self) -> str:
        """Content identifier of the trace (the trace half of cache keys).

        Hashed once per spec and memoised — callers key every operating
        point with it.  Source-backed specs delegate to the source's
        incremental digest, which reproduces the inline format exactly.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            if self.source is not None:
                cached = self.source.digest()
            else:
                cached = (f"sha256:"
                          f"{hashlib.sha256(self.payload).hexdigest()[:32]}")
            object.__setattr__(self, "_digest", cached)
        return cached

    def replay_key(self, model: CostModel) -> str:
        """Cache key of one fixed-point replay: link geometry +
        cost-model *ratio* @ trace digest.

        Like :meth:`repro.core.encoder.DbiOptimal.fingerprint`, only the
        alpha/beta ratio is keyed — uniform scaling never changes the
        trellis — so operating points with coinciding differential
        ratios collapse to one replay.  Chunked and inline replays of
        the same bytes share keys (chunk seams never change decisions).
        """
        return (f"ctrl[ch={self.channels},l={self.byte_lanes},"
                f"w={self.window},line={self.line_bytes},"
                f"r={model.ac_fraction.hex()}]@{self.payload_digest()}")

    def adaptive_key(self) -> str:
        """Cache key of the adaptive replay (requires one adaptive axis).

        A scheduled replay splits batches at exact transaction/address
        boundaries, so its result is chunking-independent and the key
        binds only the schedule descriptor; a tracked replay observes
        committed activity per submitted chunk, so the key additionally
        binds ``chunk_bytes``.
        """
        if self.schedule is not None:
            axis = f"sched={self.schedule.describe()}"
        elif self.tracking is not None:
            axis = (f"track={self.tracking.describe()},"
                    f"chunk={self.effective_chunk_bytes()}")
        else:
            raise ValueError(
                f"spec {self.name!r} has no schedule/tracking axis")
        return (f"ctrl[ch={self.channels},l={self.byte_lanes},"
                f"w={self.window},line={self.line_bytes},"
                f"{axis}]@{self.payload_digest()}")

    def trace_source(self):
        """The spec's trace as a :class:`TraceSource` (payload wrapped)."""
        if self.source is not None:
            return self.source
        return BytesTraceSource(self.payload, chunk_bytes=self.chunk_bytes)

    def effective_chunk_bytes(self) -> int:
        """The chunk size replays actually stream at.

        A source streams at its own chunk size; ``chunk_bytes`` applies
        to wrapped inline payloads (and to duck-typed sources that do
        not expose theirs).
        """
        if self.source is not None:
            return int(getattr(self.source, "chunk_bytes",
                               self.chunk_bytes))
        return self.chunk_bytes

    def trace_bytes_total(self) -> int:
        """Total trace size in bytes, without materialising a source."""
        return (self.source.size() if self.source is not None
                else len(self.payload))


@dataclass(frozen=True)
class ReplayTotals:
    """Integer activity of one controller replay, exact per channel."""

    transactions: int
    bytes_written: int
    beats: int
    #: Per-channel (zeros, transitions, beats) triples, channel order.
    channels: Tuple[Tuple[int, int, int], ...]
    #: Adaptive runs only: per-dwell-interval
    #: ``(point label, zeros, transitions, beats)`` rows in switch order;
    #: the rows sum exactly to the channel totals.  Empty for fixed-point
    #: replays.
    segments: Tuple[Tuple[str, int, int, int], ...] = ()

    @property
    def zeros(self) -> int:
        return sum(channel[0] for channel in self.channels)

    @property
    def transitions(self) -> int:
        return sum(channel[1] for channel in self.channels)


#: What an :class:`ActivityCache` stores (see its docstring).
CachedTotals = Union[ActivityTotals, ReplayTotals, FaultCoverageRow]


@dataclass
class ReplayResult:
    """Everything :func:`run_replay` produced for one spec.

    ``series`` maps point label → priced energies; ``totals`` keeps the
    exact integer tallies under their cache keys, with ``point_keys``
    mapping point label → cache key (use :meth:`totals_for` rather than
    reconstructing keys).
    """

    spec: ReplaySpec
    series: Dict[str, Dict[str, object]]
    totals: Dict[str, ReplayTotals]
    provenance: Dict[str, object]
    point_keys: Dict[str, str] = field(default_factory=dict)

    def totals_for(self, label: str) -> ReplayTotals:
        """The integer tallies behind one operating point's series."""
        return self.totals[self.point_keys[label]]


def _totals_of(controller: MemoryController,
               stats) -> ReplayTotals:
    per_channel = tuple(
        (merged.zeros, merged.transitions, merged.beats)
        for merged in (controller.channel_statistics(channel)
                       for channel in range(controller.channels)))
    segments = tuple(
        (segment.label, segment.zeros, segment.transitions, segment.beats)
        for segment in controller.segments())
    return ReplayTotals(transactions=stats.transactions,
                        bytes_written=stats.bytes_written,
                        beats=stats.beats, channels=per_channel,
                        segments=segments)


def _execute_replay(payload: bytes, model: CostModel, channels: int,
                    byte_lanes: int, window: int, line_bytes: int,
                    backend: str) -> ReplayTotals:
    """One full one-shot pass of a payload through the write path."""
    controller = MemoryController(channels=channels, byte_lanes=byte_lanes,
                                  model=model, window=window,
                                  line_bytes=line_bytes, backend=backend)
    controller.submit(transactions_from_bytes(payload, line_bytes))
    return _totals_of(controller, controller.flush())


def _execute_replay_stream(source, model: CostModel, channels: int,
                           byte_lanes: int, window: int, line_bytes: int,
                           backend: str) -> ReplayTotals:
    """One full streaming pass of a trace source through the write path.

    Bit-identical to :func:`_execute_replay` on the same bytes — the
    lane encoders' pending state depends only on cumulative pushed
    bytes, never on how submissions were chunked (the chunk-seam
    invariant ``tests/ctrl/test_chunk_seams.py`` enforces).
    """
    controller = MemoryController(channels=channels, byte_lanes=byte_lanes,
                                  model=model, window=window,
                                  line_bytes=line_bytes, backend=backend)
    controller.submit_source(source)
    return _totals_of(controller, controller.flush())


def _execute_adaptive_replay(spec: "ReplaySpec",
                             backend: str) -> ReplayTotals:
    """One streaming pass under the spec's schedule or tracking axis."""
    adaptive = ({"schedule": spec.schedule}
                if spec.schedule is not None
                else {"tracker": spec.tracking.build()})
    controller = MemoryController(channels=spec.channels,
                                  byte_lanes=spec.byte_lanes,
                                  window=spec.window,
                                  line_bytes=spec.line_bytes,
                                  backend=backend, **adaptive)
    controller.submit_source(spec.trace_source())
    return _totals_of(controller, controller.flush())


#: Worker-process state, mirroring the population initializer: the
#: payload ships once per worker, tasks carry only scalars.
_WORKER_PAYLOAD: Optional[bytes] = None


def _replay_pool_initializer(payload: bytes) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _replay_task(alpha: float, beta: float, channels: int, byte_lanes: int,
                 window: int, line_bytes: int, backend: str) -> ReplayTotals:
    return _execute_replay(_WORKER_PAYLOAD, CostModel(alpha, beta), channels,
                           byte_lanes, window, line_bytes, backend)


def _price_replay(totals: ReplayTotals,
                  energy_model: InterfaceEnergyModel) -> Dict[str, object]:
    per_channel_energy = [
        energy_model.burst_energy(transitions, zeros,
                                  lane_beats=WORD_WIDTH * beats)
        for zeros, transitions, beats in totals.channels
    ]
    energy = energy_model.burst_energy(
        totals.transitions, totals.zeros,
        lane_beats=WORD_WIDTH * totals.beats)
    return {
        "energy_joules": energy,
        "energy_per_byte": (energy / totals.bytes_written
                            if totals.bytes_written else 0.0),
        "per_channel_energy": per_channel_energy,
    }


def _price_adaptive(totals: ReplayTotals,
                    points_by_label: Mapping[str, OperatingPoint]
                    ) -> Dict[str, object]:
    """Price an adaptive replay: each segment at its own operating point."""
    energy = 0.0
    per_segment = []
    for label, zeros, transitions, beats in totals.segments:
        segment_energy = points_by_label[label].energy_model().burst_energy(
            transitions, zeros, lane_beats=WORD_WIDTH * beats)
        per_segment.append({"label": label, "beats": beats,
                            "energy_joules": segment_energy})
        energy += segment_energy
    return {
        "energy_joules": energy,
        "energy_per_byte": (energy / totals.bytes_written
                            if totals.bytes_written else 0.0),
        "per_segment_energy": per_segment,
    }


def run_replay(spec: ReplaySpec, backend: Optional[str] = None,
               jobs: int = 1, cache: Optional[ActivityCache] = None) -> ReplayResult:
    """Execute a replay spec: plan unique replays, run them, price points.

    The shape mirrors :func:`run_experiment`: points are deduplicated by
    :meth:`ReplaySpec.replay_key`, missing replays run serially or on a
    process pool (``jobs``; merged in declaration order, so results are
    bit-identical to a serial run), and every operating point is priced
    from the cached integer totals.

    Source-backed specs stream every replay through
    :meth:`~repro.ctrl.controller.MemoryController.submit_source` in
    bounded memory and always run serially (the trace never ships to
    worker processes); the totals — and therefore the cache entries and
    priced energies — are bit-identical to an inline replay of the same
    bytes.  A spec's ``schedule``/``tracking`` axis adds one more series
    under :attr:`ReplaySpec.adaptive_label`, priced per segment at that
    segment's own operating point.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    resolved = resolve_backend(backend)
    if cache is None:
        cache = ActivityCache()
    start = time.perf_counter()

    point_keys: Dict[str, str] = {}
    needed: Dict[str, CostModel] = {}
    for point in spec.points:
        model = point.energy_model().cost_model()
        key = spec.replay_key(model)
        point_keys[point.label] = key
        if key not in needed:
            needed[key] = model
    adaptive_key: Optional[str] = None
    if spec.adaptive_label is not None:
        adaptive_key = spec.adaptive_key()
        point_keys[spec.adaptive_label] = adaptive_key

    todo: List[Tuple[str, CostModel]] = []
    for key, model in needed.items():
        if key in cache:
            cache.hits += 1
        else:
            cache.misses += 1
            todo.append((key, model))
    adaptive_todo = False
    if adaptive_key is not None:
        if adaptive_key in cache:
            cache.hits += 1
        else:
            cache.misses += 1
            adaptive_todo = True

    if (todo or adaptive_todo) and getattr(spec, "_render_only", False):
        missing = [key for key, __ in todo]
        if adaptive_todo:
            missing.append(adaptive_key)
        raise RuntimeError(
            f"replay spec {spec.name!r} was loaded from an artifact "
            "without its trace and cannot re-execute; pass a cache "
            "holding its totals, or re-run with the original trace "
            f"(missing: {missing})")

    if todo:
        if spec.source is not None:
            for key, model in todo:
                cache.store(key, _execute_replay_stream(
                    spec.source, model, spec.channels, spec.byte_lanes,
                    spec.window, spec.line_bytes, resolved))
        elif jobs == 1 or len(todo) == 1:
            for key, model in todo:
                cache.store(key, _execute_replay(
                    spec.payload, model, spec.channels, spec.byte_lanes,
                    spec.window, spec.line_bytes, resolved))
        else:
            workers = min(jobs, len(todo))
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_replay_pool_initializer,
                                     initargs=(spec.payload,)) as pool:
                futures = [pool.submit(_replay_task, model.alpha, model.beta,
                                       spec.channels, spec.byte_lanes,
                                       spec.window, spec.line_bytes, resolved)
                           for __, model in todo]
                for (key, __), future in zip(todo, futures):
                    cache.store(key, future.result())
    if adaptive_todo:
        cache.store(adaptive_key, _execute_adaptive_replay(spec, resolved))

    series = {
        point.label: _price_replay(cache.get(point_keys[point.label]),
                                   point.energy_model())
        for point in spec.points
    }
    if spec.adaptive_label is not None:
        axis = spec.schedule if spec.schedule is not None else spec.tracking
        series[spec.adaptive_label] = _price_adaptive(
            cache.get(adaptive_key), axis.points_by_label())
    replays = len(todo) + (1 if adaptive_todo else 0)
    planned = len(needed) + (1 if adaptive_key is not None else 0)
    provenance = {
        "backend": resolved,
        "jobs": jobs,
        "replays": replays,
        "cache_hits": planned - replays,
        "cache_misses": replays,
        "points": len(spec.points),
        "payload": spec.payload_digest(),
        "payload_bytes": spec.trace_bytes_total(),
        "elapsed_s": time.perf_counter() - start,
        "python": platform.python_version(),
        "created_unix": time.time(),
    }
    if spec.source is not None:
        provenance["streamed"] = True
        provenance["chunk_bytes"] = spec.effective_chunk_bytes()
        provenance["source"] = spec.source.describe()
    from .. import __version__

    provenance["repro_version"] = __version__
    totals = {key: cache.get(key) for key in point_keys.values()}
    return ReplayResult(spec=spec, series=series, totals=totals,
                        provenance=provenance, point_keys=point_keys)


def interface_replay_experiment(payload: bytes,
                                interfaces: Sequence[str] = (
                                    "pod135", "pod12", "sstl15", "lvstl11"),
                                data_rate_hz: float = 3.2 * GBPS,
                                c_load_farads: float = 3 * PICOFARAD,
                                channels: int = 2, byte_lanes: int = 4,
                                window: int = 16,
                                line_bytes: int = CACHE_LINE_BYTES,
                                name: str = "ctrl-interface-replay") -> ReplaySpec:
    """The standard replay axis: one payload across electrical standards.

    Transition-only points (SSTL, LVSTL — identical differential ratio)
    automatically share a single replay through the cache.
    """
    points = tuple(ReplayPoint(interface=interface_name,
                               data_rate_hz=data_rate_hz,
                               c_load_farads=c_load_farads)
                   for interface_name in interfaces)
    return ReplaySpec(name=name, payload=bytes(payload), points=points,
                      channels=channels, byte_lanes=byte_lanes,
                      window=window, line_bytes=line_bytes)


# -- the reliability axis ----------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """A fault-coverage experiment: schemes × fault-rate grid × population.

    One row per (scheme slot, rate): the population is encoded once per
    distinct scheme fingerprint, every lane-beat of the encoded words
    flips independently with the row's rate
    (:func:`repro.extensions.reliability.fault_coverage_curve`), and the
    decoded-error tallies are cached like replays — the cache key binds
    the rate, the mask seed, the scheme fingerprint and the population
    digest.  Rates draw per-``(seed, rate)`` independent mask streams, so
    a row never depends on which other rates the spec contains.

    Rows are independent of the electrical interface: fault statistics
    count decoded *bits*, which only the scheme's wire words determine —
    one spec therefore serves every interface operating point.
    """

    name: str
    population: BurstPopulation
    #: Ordered ``(slot name, scheme)`` pairs, one output series each.
    slots: Tuple[Tuple[str, DbiScheme], ...]
    rates: Tuple[float, ...] = DEFAULT_FAULT_RATES
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("fault spec needs at least one scheme slot")
        if not self.rates:
            raise ValueError("fault spec needs at least one fault rate")
        names = [slot_name for slot_name, __ in self.slots]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate slot names in {names}")

    def coverage_key(self, scheme: DbiScheme, rate: float) -> str:
        """Cache key of one (scheme, rate) coverage row."""
        return (f"fault[p={float(rate).hex()},s={self.seed}]"
                f"{scheme.fingerprint()}@{self.population.digest()}")


def _coverage_row_json(row: FaultCoverageRow) -> Dict[str, object]:
    return {
        "rate": row.rate,
        "injected_faults": row.injected_faults,
        "total_beats": row.total_beats,
        "bit_errors": row.bit_errors,
        "corrupted_beats": row.corrupted_beats,
        "dbi_lane_faults": row.dbi_lane_faults,
        "bit_error_rate": row.bit_error_rate,
        "beat_error_rate": row.beat_error_rate,
        "amplification": row.amplification,
    }


@dataclass
class FaultResult:
    """Everything :func:`run_faults` produced for one spec.

    ``series`` maps slot name → coverage rows (dicts, rate order, the
    integer tallies plus the derived rates); ``totals`` keeps the exact
    :class:`~repro.extensions.reliability.FaultCoverageRow` records under
    their cache keys.
    """

    spec: FaultSpec
    series: Dict[str, List[Dict[str, object]]]
    totals: Dict[str, FaultCoverageRow]
    provenance: Dict[str, object]

    def save(self, path) -> None:
        save_fault_artifact(self, path)


def run_faults(spec: FaultSpec, backend: Optional[str] = None,
               cache: Optional[ActivityCache] = None,
               word_impl: str = "auto") -> FaultResult:
    """Execute a fault spec: plan unique coverage rows, inject, tally.

    Mirrors :func:`run_replay`'s cache discipline: rows are deduplicated
    by :meth:`FaultSpec.coverage_key` (two slots with equal fingerprints
    share every row), only the missing rates of a slot are injected, and
    the result is bit-identical across backends and word implementations
    (there is no ``jobs``: the vector engine is already mask-parallel).
    ``backend`` follows :func:`repro.hw.bitsim.resolve_sim_backend` —
    ``auto`` resolves to the mask-parallel engine even without NumPy.
    """
    from ..hw.bitsim import resolve_sim_backend

    resolved = resolve_sim_backend(backend)
    if cache is None:
        cache = ActivityCache()
    start = time.perf_counter()
    bursts = spec.population.bursts()
    executed = 0
    hits = 0
    series: Dict[str, List[Dict[str, object]]] = {}
    keys_seen: Dict[str, None] = {}
    for slot_name, scheme in spec.slots:
        keys = {rate: spec.coverage_key(scheme, rate) for rate in spec.rates}
        missing: List[float] = []
        for rate in spec.rates:
            keys_seen.setdefault(keys[rate])
            if keys[rate] in cache:
                cache.hits += 1
                hits += 1
            else:
                cache.misses += 1
                missing.append(rate)
        if missing:
            rows = fault_coverage_curve(scheme, bursts, rates=missing,
                                        seed=spec.seed, backend=resolved,
                                        word_impl=word_impl)
            for rate, row in zip(missing, rows):
                cache.store(keys[rate], row)
            executed += len(missing)
        series[slot_name] = [_coverage_row_json(cache.get(keys[rate]))
                             for rate in spec.rates]

    provenance = {
        "backend": resolved,
        "word_impl": word_impl,
        "injections": executed,
        "cache_hits": hits,
        "cache_misses": executed,
        "rates": len(spec.rates),
        "seed": spec.seed,
        "population": spec.population.digest(),
        "population_bursts": len(spec.population),
        "elapsed_s": time.perf_counter() - start,
        "python": platform.python_version(),
        "created_unix": time.time(),
    }
    from .. import __version__

    provenance["repro_version"] = __version__
    totals = {key: cache.get(key) for key in keys_seen}
    return FaultResult(spec=spec, series=series, totals=totals,
                       provenance=provenance)


def fault_experiment(population,
                     schemes: Sequence[str] = ("raw", "dbi-dc", "dbi-ac",
                                               "dbi-opt"),
                     rates: Sequence[float] = DEFAULT_FAULT_RATES,
                     seed: int = 7,
                     name: str = "fault-coverage") -> FaultSpec:
    """The standard reliability axis: registry schemes × rate grid."""
    slots = tuple((scheme_name, get_scheme(scheme_name))
                  for scheme_name in schemes)
    return FaultSpec(name=name, population=as_population(population),
                     slots=slots, rates=tuple(float(rate) for rate in rates),
                     seed=seed)


# -- the granularity axis ----------------------------------------------------

@dataclass(frozen=True)
class GranularitySpec:
    """A DBI-granularity ablation: group sizes × population × cost model.

    One row per group size, each an independent
    :class:`~repro.extensions.granularity.GroupedDbiOptimal` encode of
    the population, cached under the scheme's ratio-keyed fingerprint +
    population digest — exactly the encode-entry discipline of
    :func:`run_experiment`, so granularity rows share the cache with
    figure sweeps.
    """

    name: str
    population: BurstPopulation
    model: CostModel
    group_sizes: Tuple[int, ...] = VALID_GROUP_SIZES

    def __post_init__(self) -> None:
        if not self.group_sizes:
            raise ValueError("granularity spec needs at least one group size")
        for group_size in self.group_sizes:
            if group_size not in VALID_GROUP_SIZES:
                raise ValueError(
                    f"group_size must be one of {VALID_GROUP_SIZES}, "
                    f"got {group_size}")

    def scheme_for(self, group_size: int) -> GroupedDbiOptimal:
        return GroupedDbiOptimal(self.model, group_size=group_size)


@dataclass
class GranularityResult:
    """Everything :func:`run_granularity` produced for one spec.

    ``rows`` matches :func:`repro.extensions.granularity
    .granularity_table` exactly (as dicts, group-size order); ``totals``
    keeps the exact integer tallies under their cache keys.
    """

    spec: GranularitySpec
    rows: List[Dict[str, object]]
    totals: Dict[str, ActivityTotals]
    provenance: Dict[str, object]

    def save(self, path) -> None:
        save_granularity_artifact(self, path)


def run_granularity(spec: GranularitySpec, backend: Optional[str] = None,
                    cache: Optional[ActivityCache] = None
                    ) -> GranularityResult:
    """Execute a granularity spec: one cached encode per group size.

    Totals are exact integers and identical across backends
    (:meth:`GroupedDbiOptimal.activity_totals` guarantees bit-identity),
    and the produced rows equal
    :func:`repro.extensions.granularity.granularity_table` on the same
    population.
    """
    resolved = resolve_backend(backend)
    if cache is None:
        cache = ActivityCache()
    start = time.perf_counter()
    bursts = spec.population.bursts()
    count = len(spec.population)
    executed = 0
    rows: List[Dict[str, object]] = []
    keys_seen: Dict[str, None] = {}
    for group_size in spec.group_sizes:
        scheme = spec.scheme_for(group_size)
        key = ActivityCache.key_for(scheme, spec.population)
        keys_seen.setdefault(key)
        if key in cache:
            cache.hits += 1
        else:
            cache.misses += 1
            zeros, transitions = scheme.activity_totals(bursts,
                                                        backend=resolved)
            cache.store(key, ActivityTotals(transitions=transitions,
                                            zeros=zeros, bursts=count))
            executed += 1
        totals = cache.get(key)
        rows.append({
            "group_size": group_size,
            "mean_zeros": totals.mean_zeros,
            "mean_transitions": totals.mean_transitions,
            "mean_cost": spec.model.activity_cost(
                totals.transitions, totals.zeros) / count,
            "lines_per_byte_lane": 8 + 8 // group_size,
        })

    provenance = {
        "backend": resolved,
        "encodes": executed,
        "cache_hits": len(spec.group_sizes) - executed,
        "cache_misses": executed,
        "group_sizes": list(spec.group_sizes),
        "population": spec.population.digest(),
        "population_bursts": count,
        "elapsed_s": time.perf_counter() - start,
        "python": platform.python_version(),
        "created_unix": time.time(),
    }
    from .. import __version__

    provenance["repro_version"] = __version__
    totals_map = {key: cache.get(key) for key in keys_seen}
    return GranularityResult(spec=spec, rows=rows, totals=totals_map,
                             provenance=provenance)


def granularity_experiment(population, model: Optional[CostModel] = None,
                           group_sizes: Sequence[int] = VALID_GROUP_SIZES,
                           name: str = "granularity-ablation"
                           ) -> GranularitySpec:
    """The standard granularity axis (fixed-coefficient model default)."""
    return GranularitySpec(
        name=name, population=as_population(population),
        model=model if model is not None else CostModel.fixed(),
        group_sizes=tuple(group_sizes))


# -- the simultaneous-switching axis -----------------------------------------

@dataclass(frozen=True)
class SsoSpec:
    """A simultaneous-switching sweep: schemes × interface presets.

    One cached :class:`~repro.analysis.sso.SsoStatistics` per scheme slot
    (the cache key binds the chained flag, the scheme fingerprint and the
    population digest), then one priced row per (slot, interface): the
    integer switching tallies are interface-independent, so the whole
    interface column reuses a single encode — the same
    dedup-by-fingerprint discipline as :class:`FaultSpec`.

    ``chained`` selects the boundary condition of
    :func:`~repro.analysis.sso.sso_of_words`: ``False`` resets every
    burst to the idle-high bus (the paper's convention), ``True``
    threads the last word of each burst into the next.
    """

    name: str
    population: BurstPopulation
    #: Ordered ``(slot name, scheme)`` pairs, one output series each.
    slots: Tuple[Tuple[str, DbiScheme], ...]
    #: Interface preset names (:func:`repro.phy.interface.get_interface`).
    interfaces: Tuple[str, ...] = ("pod135",)
    chained: bool = False
    #: ``exceed_fraction`` reports beats with more than this many toggles.
    threshold: int = WORD_WIDTH // 2
    line_impedance_ohms: float = 50.0

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("sso spec needs at least one scheme slot")
        if not self.interfaces:
            raise ValueError("sso spec needs at least one interface")
        names = [slot_name for slot_name, __ in self.slots]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate slot names in {names}")
        if not 0 <= self.threshold <= WORD_WIDTH:
            raise ValueError(
                f"threshold must be in [0, {WORD_WIDTH}], got {self.threshold}")
        if self.line_impedance_ohms <= 0:
            raise ValueError("line_impedance_ohms must be positive, got "
                             f"{self.line_impedance_ohms}")
        for interface_name in self.interfaces:
            get_interface(interface_name)  # raises KeyError with known names

    def sso_key(self, scheme: DbiScheme) -> str:
        """Cache key of one slot's switching statistics."""
        return (f"sso[chained={int(self.chained)}]"
                f"{scheme.fingerprint()}@{self.population.digest()}")


@dataclass
class SsoResult:
    """Everything :func:`run_sso` produced for one spec.

    ``series`` maps slot name → one priced row per interface (declaration
    order); ``totals`` keeps the exact
    :class:`~repro.analysis.sso.SsoStatistics` records under their cache
    keys, histogram included.
    """

    spec: SsoSpec
    series: Dict[str, List[Dict[str, object]]]
    totals: Dict[str, "SsoStatistics"]
    provenance: Dict[str, object]

    def save(self, path) -> None:
        save_sso_artifact(self, path)


def run_sso(spec: SsoSpec, backend: Optional[str] = None,
            cache: Optional[ActivityCache] = None,
            word_impl: str = "auto") -> SsoResult:
    """Execute an SSO spec: encode + tally once per slot, price per interface.

    Statistics come from :func:`~repro.analysis.sso.sso_of_scheme_batch`,
    so they are bit-identical across backends and word implementations
    (enforced by ``tests/analysis/test_sso_batch.py``); ``backend``
    follows :func:`repro.hw.bitsim.resolve_sim_backend`.
    """
    from ..analysis.sso import sso_of_scheme_batch
    from ..hw.bitsim import resolve_sim_backend

    resolved = resolve_sim_backend(backend)
    if cache is None:
        cache = ActivityCache()
    start = time.perf_counter()
    bursts = spec.population.bursts()
    executed = 0
    hits = 0
    series: Dict[str, List[Dict[str, object]]] = {}
    keys_seen: Dict[str, None] = {}
    presets = [(name, get_interface(name)) for name in spec.interfaces]
    for slot_name, scheme in spec.slots:
        key = spec.sso_key(scheme)
        keys_seen.setdefault(key)
        if key in cache:
            cache.hits += 1
            hits += 1
        else:
            cache.misses += 1
            cache.store(key, sso_of_scheme_batch(
                scheme, bursts, chained=spec.chained, backend=resolved,
                word_impl=word_impl))
            executed += 1
        stats = cache.get(key)
        series[slot_name] = [{
            "interface": interface_name,
            "beats": stats.beats,
            "max_switching": stats.max_switching,
            "mean_switching": stats.mean_switching,
            "total_switching": stats.total_switching,
            "exceed_fraction": stats.exceed_fraction(spec.threshold),
            "peak_current_amps": stats.peak_current_amps(
                interface, spec.line_impedance_ohms),
            "mean_current_amps": stats.mean_current_amps(
                interface, spec.line_impedance_ohms),
        } for interface_name, interface in presets]

    provenance = {
        "backend": resolved,
        "word_impl": word_impl,
        "chained": spec.chained,
        "threshold": spec.threshold,
        "line_impedance_ohms": spec.line_impedance_ohms,
        "encodes": executed,
        "cache_hits": hits,
        "cache_misses": executed,
        "interfaces": len(spec.interfaces),
        "population": spec.population.digest(),
        "population_bursts": len(spec.population),
        "elapsed_s": time.perf_counter() - start,
        "python": platform.python_version(),
        "created_unix": time.time(),
    }
    from .. import __version__

    provenance["repro_version"] = __version__
    totals = {key: cache.get(key) for key in keys_seen}
    return SsoResult(spec=spec, series=series, totals=totals,
                     provenance=provenance)


def sso_experiment(population,
                   schemes: Sequence[str] = ("raw", "dbi-dc", "dbi-ac",
                                             "dbi-opt"),
                   interfaces: Optional[Sequence[str]] = None,
                   chained: bool = False,
                   threshold: int = WORD_WIDTH // 2,
                   line_impedance_ohms: float = 50.0,
                   name: str = "sso-ranking") -> SsoSpec:
    """The standard SSO axis: registry schemes × every interface preset."""
    from ..phy.interface import available_interfaces

    slots = tuple((scheme_name, get_scheme(scheme_name))
                  for scheme_name in schemes)
    if interfaces is None:
        interfaces = available_interfaces()
    return SsoSpec(name=name, population=as_population(population),
                   slots=slots, interfaces=tuple(interfaces),
                   chained=chained, threshold=threshold,
                   line_impedance_ohms=line_impedance_ohms)


# -- artifact persistence ----------------------------------------------------

def _population_to_json(population: BurstPopulation) -> Dict[str, object]:
    record: Dict[str, object] = {
        "digest": population.digest(),
        "count": len(population),
        "burst_length": population.burst_length,
    }
    if isinstance(population, RandomPopulation):
        record["kind"] = "random"
        record["seed"] = population.seed
    else:
        record["kind"] = "explicit"
    return record


def _population_from_json(record: Mapping[str, object]) -> BurstPopulation:
    digest = record["digest"]
    count = int(record["count"])
    burst_length = record.get("burst_length")
    if record.get("kind") == "random":
        population = RandomPopulation(count=count,
                                      burst_length=int(burst_length),
                                      seed=int(record["seed"]))
        if population.digest() == digest:
            return population
        # Generated by the other generator family — re-render only.
    return OpaquePopulation(digest=str(digest), count=count,
                            burst_length=burst_length)


def _slot_to_json(slot: SchemeSlot) -> Dict[str, object]:
    record: Dict[str, object] = {"name": slot.name,
                                 "tracks_point": slot.tracks_point}
    if slot.scheme is not None:
        record["scheme"] = slot.scheme.name
        record["fingerprint"] = slot.scheme.fingerprint()
    return record


def _slot_from_json(record: Mapping[str, object]) -> SchemeSlot:
    if record.get("tracks_point"):
        return SchemeSlot(str(record["name"]), tracks_point=True)
    scheme: Optional[DbiScheme] = None
    scheme_name = record.get("scheme")
    if scheme_name is not None:
        try:
            candidate = get_scheme(str(scheme_name))
        except KeyError:
            candidate = None
        if (candidate is not None
                and candidate.fingerprint() == record.get("fingerprint")):
            scheme = candidate
    return SchemeSlot(str(record["name"]), scheme=scheme)


def result_to_json(result: ExperimentResult) -> Dict[str, object]:
    """The artifact as a JSON-serialisable dict (see :func:`save_artifact`)."""
    spec = result.spec
    return {
        "format": ARTIFACT_FORMAT,
        "spec": {
            "name": spec.name,
            "population": _population_to_json(spec.population),
            "slots": [_slot_to_json(slot) for slot in spec.slots],
            "grid": [{"alpha": point.alpha, "beta": point.beta,
                      "axes": dict(point.axes)} for point in spec.grid],
            "pricing": spec.pricing,
            "figure": spec.figure,
            "figure_params": dict(spec.figure_params),
        },
        "series": {name: list(values)
                   for name, values in result.series.items()},
        "totals": {key: {"transitions": totals.transitions,
                         "zeros": totals.zeros,
                         "bursts": totals.bursts}
                   for key, totals in result.totals.items()},
        "provenance": dict(result.provenance),
    }


def save_artifact(result: ExperimentResult, path) -> None:
    """Persist spec + results + provenance as JSON.

    Floats round-trip exactly (shortest-repr serialisation), so a loaded
    artifact re-renders bit-identical tables.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_json(result), handle, indent=1)
        handle.write("\n")


def load_artifact(path) -> ExperimentResult:
    """Load a persisted experiment.

    Declarative populations (and registry schemes) are rebuilt, so the
    experiment can be *re-run*; explicit populations come back as
    render-only placeholders.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(
            f"{path}: artifact must be a JSON object, got "
            f"{type(payload).__name__}")
    if payload.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a {ARTIFACT_FORMAT} artifact "
            f"(format={payload.get('format')!r})")
    kind = payload.get("kind", "experiment")
    if kind != "experiment":
        raise ValueError(
            f"{path}: artifact kind {kind!r} is not a figure experiment; "
            f"use load_replay_artifact / load_fault_artifact / "
            f"load_granularity_artifact / load_sso_artifact")
    spec_record = payload["spec"]
    grid = tuple(
        GridPoint(alpha=point["alpha"], beta=point["beta"],
                  axes=tuple(point.get("axes", {}).items()))
        for point in spec_record["grid"])
    spec = ExperimentSpec(
        name=spec_record["name"],
        population=_population_from_json(spec_record["population"]),
        slots=tuple(_slot_from_json(slot) for slot in spec_record["slots"]),
        grid=grid,
        pricing=spec_record.get("pricing", "cost"),
        figure=spec_record.get("figure"),
        figure_params=spec_record.get("figure_params", {}),
    )
    totals = {key: ActivityTotals(transitions=record["transitions"],
                                  zeros=record["zeros"],
                                  bursts=record["bursts"])
              for key, record in payload.get("totals", {}).items()}
    provenance = dict(payload.get("provenance", {}))
    provenance["loaded_from"] = str(path)
    return ExperimentResult(spec=spec, series=payload["series"],
                            totals=totals, provenance=provenance)


def _load_kind(path, kind: str) -> Dict[str, object]:
    """Read + validate one kind-discriminated ``repro.experiment/1`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(
            f"{path}: artifact must be a JSON object, got "
            f"{type(payload).__name__}")
    if payload.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a {ARTIFACT_FORMAT} artifact "
            f"(format={payload.get('format')!r})")
    found = payload.get("kind", "experiment")
    if found != kind:
        raise ValueError(
            f"{path}: artifact kind {found!r}, expected {kind!r}")
    return payload


def _fault_slot_from_json(record: Mapping[str, object]
                          ) -> Tuple[str, Optional[DbiScheme]]:
    scheme: Optional[DbiScheme] = None
    scheme_name = record.get("scheme")
    if scheme_name is not None:
        try:
            candidate = get_scheme(str(scheme_name))
        except KeyError:
            candidate = None
        if (candidate is not None
                and candidate.fingerprint() == record.get("fingerprint")):
            scheme = candidate
    return str(record["name"]), scheme


#: Replay payloads up to this size are inlined into the artifact (hex),
#: keeping the artifact re-runnable; larger payloads persist digest-only
#: and load as render-only specs.
REPLAY_PAYLOAD_INLINE_LIMIT = 65536


def _replay_totals_json(totals: ReplayTotals) -> Dict[str, object]:
    record: Dict[str, object] = {
        "transactions": totals.transactions,
        "bytes_written": totals.bytes_written,
        "beats": totals.beats,
        "channels": [list(channel) for channel in totals.channels]}
    if totals.segments:
        record["segments"] = [list(segment) for segment in totals.segments]
    return record


def _point_to_json(point) -> Dict[str, object]:
    """ReplayPoint and OperatingPoint share this record shape."""
    return {"interface": point.interface,
            "data_rate_hz": point.data_rate_hz,
            "c_load_farads": point.c_load_farads,
            "label": point.label}


def replay_result_to_json(result: ReplayResult) -> Dict[str, object]:
    """A replay run as a JSON-serialisable ``kind="replay"`` artifact."""
    spec = result.spec
    payload_record: Dict[str, object] = {
        "digest": spec.payload_digest(),
        "bytes": spec.trace_bytes_total(),
    }
    if getattr(spec, "_render_only", False):
        payload_record["bytes"] = int(
            result.provenance.get("payload_bytes", 0))
    elif spec.source is not None:
        # Large traces persist digest + descriptor, never the bytes; the
        # loader rebuilds the source when the descriptor resolves in its
        # environment and falls back to render-only when it doesn't.
        payload_record["source"] = spec.source.describe()
    elif len(spec.payload) <= REPLAY_PAYLOAD_INLINE_LIMIT:
        payload_record["hex"] = spec.payload.hex()
    spec_record: Dict[str, object] = {
        "name": spec.name,
        "payload": payload_record,
        "points": [_point_to_json(point) for point in spec.points],
        "channels": spec.channels,
        "byte_lanes": spec.byte_lanes,
        "window": spec.window,
        "line_bytes": spec.line_bytes,
        "chunk_bytes": spec.chunk_bytes,
    }
    if spec.schedule is not None:
        spec_record["schedule"] = {
            "points": [_point_to_json(point)
                       for point in spec.schedule.points],
            "switch_at": list(spec.schedule.switch_at),
            "unit": spec.schedule.unit,
            "label": spec.schedule.label,
        }
    if spec.tracking is not None:
        spec_record["tracking"] = {
            "points": [_point_to_json(point)
                       for point in spec.tracking.points],
            "half_life_bytes": spec.tracking.half_life_bytes,
            "min_dwell_bytes": spec.tracking.min_dwell_bytes,
            "label": spec.tracking.label,
        }
    return {
        "format": ARTIFACT_FORMAT,
        "kind": "replay",
        "spec": spec_record,
        "series": {label: dict(values)
                   for label, values in result.series.items()},
        "totals": {key: _replay_totals_json(totals)
                   for key, totals in result.totals.items()},
        "point_keys": dict(result.point_keys),
        "provenance": dict(result.provenance),
    }


def save_replay_artifact(result: ReplayResult, path) -> None:
    """Persist a controller-replay result (``kind="replay"``)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(replay_result_to_json(result), handle, indent=1)
        handle.write("\n")


def load_replay_artifact(path) -> ReplayResult:
    """Load a persisted controller replay.

    Artifacts with an inlined payload come back fully re-runnable;
    digest-only artifacts come back *render-only* — their series and
    totals re-render exactly, but :func:`run_replay` refuses to
    re-execute them unless every replay key is already cached.
    """
    payload_json = _load_kind(path, "replay")
    spec_record = payload_json["spec"]
    payload_record = spec_record["payload"]
    points = tuple(ReplayPoint(interface=str(point["interface"]),
                               data_rate_hz=float(point["data_rate_hz"]),
                               c_load_farads=float(point["c_load_farads"]),
                               label=str(point["label"]))
                   for point in spec_record["points"])

    def operating_points(records) -> Tuple[OperatingPoint, ...]:
        return tuple(OperatingPoint(
            interface=str(point["interface"]),
            data_rate_hz=float(point["data_rate_hz"]),
            c_load_farads=float(point["c_load_farads"]),
            label=str(point["label"])) for point in records)

    schedule = None
    schedule_record = spec_record.get("schedule")
    if schedule_record is not None:
        schedule = OperatingPointSchedule(
            points=operating_points(schedule_record["points"]),
            switch_at=tuple(int(value)
                            for value in schedule_record["switch_at"]),
            unit=str(schedule_record["unit"]),
            label=str(schedule_record["label"]))
    tracking = None
    tracking_record = spec_record.get("tracking")
    if tracking_record is not None:
        tracking = TrackingConfig(
            points=operating_points(tracking_record["points"]),
            half_life_bytes=float(tracking_record["half_life_bytes"]),
            min_dwell_bytes=int(tracking_record["min_dwell_bytes"]),
            label=str(tracking_record["label"]))

    payload_hex = payload_record.get("hex")
    source_record = payload_record.get("source")
    source = (source_from_json(source_record)
              if source_record is not None else None)
    render_only = payload_hex is None and source is None
    payload = b""
    if payload_hex is not None:
        payload = bytes.fromhex(payload_hex)
    elif source is None:
        payload = b"\x00"
    spec = ReplaySpec(
        name=str(spec_record["name"]),
        payload=payload,
        points=points,
        channels=int(spec_record["channels"]),
        byte_lanes=int(spec_record["byte_lanes"]),
        window=int(spec_record["window"]),
        line_bytes=int(spec_record["line_bytes"]),
        source=source,
        chunk_bytes=int(spec_record.get("chunk_bytes",
                                        DEFAULT_TRACE_CHUNK_BYTES)),
        schedule=schedule,
        tracking=tracking,
    )
    if render_only:
        # Pin the persisted digest so replay keys (and therefore
        # totals_for / cache lookups) still resolve.
        object.__setattr__(spec, "_digest", str(payload_record["digest"]))
        object.__setattr__(spec, "_render_only", True)
    elif source is not None:
        # A rebuilt source would re-derive the digest by streaming the
        # whole trace; pin the persisted one instead (they are equal by
        # construction, and loads stay O(1)).
        object.__setattr__(spec, "_digest", str(payload_record["digest"]))
    totals = {key: ReplayTotals(
                  transactions=int(record["transactions"]),
                  bytes_written=int(record["bytes_written"]),
                  beats=int(record["beats"]),
                  channels=tuple(tuple(int(value) for value in channel)
                                 for channel in record["channels"]),
                  segments=tuple(
                      (str(label), int(zeros), int(transitions), int(beats))
                      for label, zeros, transitions, beats
                      in record.get("segments", ())))
              for key, record in payload_json.get("totals", {}).items()}
    provenance = dict(payload_json.get("provenance", {}))
    provenance["loaded_from"] = str(path)
    return ReplayResult(spec=spec, series=payload_json["series"],
                        totals=totals, provenance=provenance,
                        point_keys=dict(payload_json.get("point_keys", {})))


def save_fault_artifact(result: FaultResult, path) -> None:
    """Persist a fault-coverage result (``kind="faults"``)."""
    spec = result.spec
    payload = {
        "format": ARTIFACT_FORMAT,
        "kind": "faults",
        "spec": {
            "name": spec.name,
            "population": _population_to_json(spec.population),
            "slots": [{"name": slot_name, "scheme": scheme.name,
                       "fingerprint": scheme.fingerprint()}
                      for slot_name, scheme in spec.slots],
            "rates": list(spec.rates),
            "seed": spec.seed,
        },
        "series": {name: list(rows) for name, rows in result.series.items()},
        "totals": {key: _coverage_row_json(row)
                   for key, row in result.totals.items()},
        "provenance": dict(result.provenance),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def load_fault_artifact(path) -> FaultResult:
    """Load a persisted fault-coverage experiment.

    Registry schemes whose fingerprints still match are rebuilt (so the
    spec can be re-run); unknown slots come back scheme-less and are
    render-only.
    """
    payload = _load_kind(path, "faults")
    spec_record = payload["spec"]
    slots = tuple(_fault_slot_from_json(record)
                  for record in spec_record["slots"])
    runnable = tuple((slot_name, scheme) for slot_name, scheme in slots
                     if scheme is not None)
    spec = FaultSpec(
        name=spec_record["name"],
        population=_population_from_json(spec_record["population"]),
        slots=runnable if runnable else tuple(slots),
        rates=tuple(spec_record["rates"]),
        seed=int(spec_record.get("seed", 7)),
    )
    totals = {key: FaultCoverageRow(
                  rate=record["rate"],
                  injected_faults=record["injected_faults"],
                  total_beats=record["total_beats"],
                  bit_errors=record["bit_errors"],
                  corrupted_beats=record["corrupted_beats"],
                  dbi_lane_faults=record["dbi_lane_faults"])
              for key, record in payload.get("totals", {}).items()}
    provenance = dict(payload.get("provenance", {}))
    provenance["loaded_from"] = str(path)
    return FaultResult(spec=spec, series=payload["series"],
                       totals=totals, provenance=provenance)


def save_granularity_artifact(result: GranularityResult, path) -> None:
    """Persist a granularity result (``kind="granularity"``)."""
    spec = result.spec
    payload = {
        "format": ARTIFACT_FORMAT,
        "kind": "granularity",
        "spec": {
            "name": spec.name,
            "population": _population_to_json(spec.population),
            "model": {"alpha": spec.model.alpha, "beta": spec.model.beta},
            "group_sizes": list(spec.group_sizes),
        },
        "rows": list(result.rows),
        "totals": {key: {"transitions": totals.transitions,
                         "zeros": totals.zeros,
                         "bursts": totals.bursts}
                   for key, totals in result.totals.items()},
        "provenance": dict(result.provenance),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def load_granularity_artifact(path) -> GranularityResult:
    """Load a persisted granularity ablation (re-runnable spec)."""
    payload = _load_kind(path, "granularity")
    spec_record = payload["spec"]
    model_record = spec_record["model"]
    spec = GranularitySpec(
        name=spec_record["name"],
        population=_population_from_json(spec_record["population"]),
        model=CostModel(alpha=model_record["alpha"],
                        beta=model_record["beta"]),
        group_sizes=tuple(spec_record["group_sizes"]),
    )
    totals = {key: ActivityTotals(transitions=record["transitions"],
                                  zeros=record["zeros"],
                                  bursts=record["bursts"])
              for key, record in payload.get("totals", {}).items()}
    provenance = dict(payload.get("provenance", {}))
    provenance["loaded_from"] = str(path)
    return GranularityResult(spec=spec, rows=payload["rows"],
                             totals=totals, provenance=provenance)


def _sso_stats_json(stats: "SsoStatistics") -> Dict[str, object]:
    return {"beats": stats.beats,
            "max_switching": stats.max_switching,
            "total_switching": stats.total_switching,
            "histogram": {str(k): count
                          for k, count in sorted(stats.histogram.items())}}


def _sso_stats_from_json(record: Mapping[str, object]) -> "SsoStatistics":
    from ..analysis.sso import SsoStatistics

    return SsoStatistics(
        beats=int(record["beats"]),
        max_switching=int(record["max_switching"]),
        total_switching=int(record["total_switching"]),
        histogram={int(k): int(count)
                   for k, count in record.get("histogram", {}).items()})


def save_sso_artifact(result: SsoResult, path) -> None:
    """Persist a simultaneous-switching result (``kind="sso"``)."""
    spec = result.spec
    payload = {
        "format": ARTIFACT_FORMAT,
        "kind": "sso",
        "spec": {
            "name": spec.name,
            "population": _population_to_json(spec.population),
            "slots": [{"name": slot_name, "scheme": scheme.name,
                       "fingerprint": scheme.fingerprint()}
                      for slot_name, scheme in spec.slots],
            "interfaces": list(spec.interfaces),
            "chained": spec.chained,
            "threshold": spec.threshold,
            "line_impedance_ohms": spec.line_impedance_ohms,
        },
        "series": {name: list(rows) for name, rows in result.series.items()},
        "totals": {key: _sso_stats_json(stats)
                   for key, stats in result.totals.items()},
        "provenance": dict(result.provenance),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def load_sso_artifact(path) -> SsoResult:
    """Load a persisted simultaneous-switching sweep.

    Registry schemes whose fingerprints still match are rebuilt (so the
    spec can be re-run); unknown slots come back scheme-less and are
    render-only.
    """
    payload = _load_kind(path, "sso")
    spec_record = payload["spec"]
    slots = tuple(_fault_slot_from_json(record)
                  for record in spec_record["slots"])
    runnable = tuple((slot_name, scheme) for slot_name, scheme in slots
                     if scheme is not None)
    spec = SsoSpec(
        name=spec_record["name"],
        population=_population_from_json(spec_record["population"]),
        slots=runnable if runnable else tuple(slots),
        interfaces=tuple(spec_record["interfaces"]),
        chained=bool(spec_record.get("chained", False)),
        threshold=int(spec_record.get("threshold", WORD_WIDTH // 2)),
        line_impedance_ohms=float(
            spec_record.get("line_impedance_ohms", 50.0)),
    )
    totals = {key: _sso_stats_from_json(record)
              for key, record in payload.get("totals", {}).items()}
    provenance = dict(payload.get("provenance", {}))
    provenance["loaded_from"] = str(path)
    return SsoResult(spec=spec, series=payload["series"],
                     totals=totals, provenance=provenance)
