"""Tabular reporting for sweeps and evaluations.

All benchmarks print their figure/table data through these helpers so the
regenerated numbers appear in a uniform, diff-friendly format (markdown
tables and CSV).
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence

from ..core.costs import CostModel
from .metrics import EvaluationResult
from .sweep import AlphaSweepResult, DataRateSweepResult, LoadSweepResult


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table.

    >>> print(markdown_table(["a", "b"], [[1, 2]]))
    | a | b |
    |---|---|
    | 1 | 2 |
    """
    out = [f"| {' | '.join(str(h) for h in headers)} |",
           f"|{'|'.join('---' for _ in headers)}|"]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        out.append(f"| {' | '.join(str(cell) for cell in row)} |")
    return "\n".join(out)


def csv_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting — numeric payloads only)."""
    buffer = io.StringIO()
    buffer.write(",".join(str(h) for h in headers) + "\n")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        buffer.write(",".join(str(cell) for cell in row) + "\n")
    return buffer.getvalue()


def format_alpha_sweep(result: AlphaSweepResult, points: int = 11) -> str:
    """Markdown summary of a Fig. 3/4 sweep at *points* subsampled rows."""
    schemes = list(result.series)
    step = max(1, (len(result.ac_costs) - 1) // (points - 1))
    rows: List[List[object]] = []
    for index in range(0, len(result.ac_costs), step):
        row: List[object] = [f"{result.ac_costs[index]:.2f}"]
        row.extend(f"{result.series[name][index]:.2f}" for name in schemes)
        rows.append(row)
    return markdown_table(["ac cost"] + schemes, rows)


def format_data_rate_sweep(result: DataRateSweepResult,
                           every: int = 4) -> str:
    """Markdown summary of a Fig. 7 sweep (normalised energies)."""
    schemes = list(result.normalized)
    rows: List[List[object]] = []
    for index in range(0, len(result.data_rates_hz), every):
        rate_gbps = result.data_rates_hz[index] / 1e9
        row: List[object] = [f"{rate_gbps:.1f}"]
        row.extend(f"{result.normalized[name][index]:.4f}" for name in schemes)
        rows.append(row)
    return markdown_table(["Gbps"] + schemes, rows)


def format_load_sweep(result: LoadSweepResult, every: int = 4) -> str:
    """Markdown summary of a Fig. 8 sweep (normalised energies per load)."""
    loads = sorted(result.normalized)
    headers = ["Gbps"] + [f"{load * 1e12:.0f} pF" for load in loads]
    rows: List[List[object]] = []
    for index in range(0, len(result.data_rates_hz), every):
        rate_gbps = result.data_rates_hz[index] / 1e9
        row: List[object] = [f"{rate_gbps:.1f}"]
        row.extend(f"{result.normalized[load][index]:.4f}" for load in loads)
        rows.append(row)
    return markdown_table(headers, rows)


def format_provenance(result) -> str:
    """One-line provenance summary of an experiment run or artifact.

    Accepts an :class:`~repro.sim.experiments.ExperimentResult` (fresh or
    loaded); printed by the CLI whenever artifacts are written or read so
    every persisted figure names its population, backend and cache use.
    """
    provenance = result.provenance
    spec = result.spec
    origin = provenance.get("loaded_from")
    parts = [
        f"experiment {spec.name}",
        f"population {spec.population.digest()} "
        f"({len(spec.population)} bursts)",
        f"backend={provenance.get('backend')} jobs={provenance.get('jobs')}",
        f"encodes={provenance.get('encodes')} "
        f"(cache {provenance.get('cache_hits')} hits)",
    ]
    if origin:
        parts.append(f"loaded from {origin}")
    return "# " + " | ".join(parts)


def format_evaluation(result: EvaluationResult,
                      model: Optional[CostModel] = None) -> str:
    """Markdown summary of an :func:`repro.sim.runner.evaluate` run."""
    cost_model = model if model is not None else CostModel.fixed()
    headers = ["scheme", "mean zeros", "mean transitions", "mean cost",
               "invert rate"]
    rows: List[List[object]] = []
    for name in result.schemes():
        metrics = result[name]
        rows.append([
            name,
            f"{metrics.mean_zeros:.2f}",
            f"{metrics.mean_transitions:.2f}",
            f"{metrics.mean_cost(cost_model):.2f}",
            f"{metrics.invert_rate:.3f}",
        ])
    return markdown_table(headers, rows)


def savings_summary(result: EvaluationResult, model: CostModel,
                    optimal: str = "dbi-opt",
                    conventional: Sequence[str] = ("dbi-dc", "dbi-ac")) -> Dict[str, float]:
    """Percent savings of *optimal* vs the best conventional scheme."""
    best_name = result.best_scheme(model, list(conventional))
    best_cost = result[best_name].mean_cost(model)
    optimal_cost = result[optimal].mean_cost(model)
    return {
        "best_conventional": best_cost,
        "optimal": optimal_cost,
        "saving_percent": 100.0 * (1.0 - optimal_cost / best_cost),
    }
