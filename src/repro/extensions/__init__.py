"""Extensions beyond the paper: design-space explorations enabled by the
library (DBI granularity, reliability under wire faults)."""

from .granularity import (
    GroupedDbiOptimal,
    GroupedEncoding,
    VALID_GROUP_SIZES,
    granularity_table,
    split_groups,
)
from .reliability import (
    FaultStatistics,
    decode_with_faults,
    error_amplification,
    fault_sweep,
    wrong_decision_is_harmless,
)

__all__ = [
    "FaultStatistics",
    "GroupedDbiOptimal",
    "GroupedEncoding",
    "VALID_GROUP_SIZES",
    "decode_with_faults",
    "error_amplification",
    "fault_sweep",
    "granularity_table",
    "split_groups",
    "wrong_decision_is_harmless",
]
