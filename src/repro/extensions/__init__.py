"""Extensions beyond the paper: design-space explorations enabled by the
library (DBI granularity, reliability under wire faults).

Backends
--------
Both extension engines follow the library-wide backend vocabulary
(``backend="auto" | "reference" | "vector"``, defaulting from
``REPRO_BACKEND`` / :func:`repro.set_default_backend`), each with a
scalar executable specification and a batched production engine that the
differential suites in ``tests/extensions/`` pin bit-identical:

* **granularity** (:mod:`repro.extensions.granularity`) — the scalar
  reference solves one two-state trellis per group lane per burst; the
  vector backend stripes the ``8 // g`` group lanes of a packed
  population along the batch axis and solves them in one group-width
  batch Viterbi call.  Requires NumPy (``auto`` falls back to the
  reference without it), like the encoding layer's vector kernels.
* **reliability** (:mod:`repro.extensions.reliability`) — the scalar
  reference re-decodes one corrupted burst per injected fault; the
  mask-parallel engine XORs packed error-mask planes into the
  :mod:`repro.hw.bitsim` word representation and tallies decoded bit
  errors with popcounts.  Like the gate-level layer — and unlike the
  encoding layer — the batched engine works *without* NumPy (packing
  into arbitrary-width Python ints; ``word_impl`` selects the word
  representation), so ``auto`` always resolves to it.

This module, like every ``repro`` package, imports without NumPy
installed; NumPy is consulted lazily inside the vector fast paths only.
"""

from .granularity import (
    GroupedDbiOptimal,
    GroupedEncoding,
    VALID_GROUP_SIZES,
    granularity_table,
    split_groups,
)
from .reliability import (
    DEFAULT_FAULT_RATES,
    FaultCoverageRow,
    FaultStatistics,
    decode_with_faults,
    draw_fault_masks,
    draw_fault_positions,
    error_amplification,
    fault_coverage_curve,
    fault_sweep,
    fault_sweep_batch,
    wrong_decision_is_harmless,
)

__all__ = [
    "DEFAULT_FAULT_RATES",
    "FaultCoverageRow",
    "FaultStatistics",
    "GroupedDbiOptimal",
    "GroupedEncoding",
    "VALID_GROUP_SIZES",
    "decode_with_faults",
    "draw_fault_masks",
    "draw_fault_positions",
    "error_amplification",
    "fault_coverage_curve",
    "fault_sweep",
    "fault_sweep_batch",
    "granularity_table",
    "split_groups",
    "wrong_decision_is_harmless",
]
