"""Reliability of DBI links under wire faults and encoder errors.

Two very different failure modes matter for DBI, and the paper's remark
about analog encoder implementations ("rare inaccurate encoding decisions
are unlikely to cause application errors") rests on the distinction:

* A **wrong encoding decision** (the encoder picks a suboptimal invert
  flag) is *harmless for correctness*: the DBI bit transmitted alongside
  the data always describes what was done, so the receiver still decodes
  the exact payload — only energy is wasted.
  :func:`wrong_decision_is_harmless` demonstrates this exhaustively.

* A **wire fault** (a lane sampled wrongly) corrupts data, and DBI
  *amplifies* faults on the DBI lane: flipping it complements the entire
  byte (8 wrong bits), whereas a data-lane fault stays a single-bit error.
  :func:`error_amplification` and :func:`fault_sweep` quantify this —
  the hidden reliability cost of any inversion code.

Backend selection
-----------------
The Monte Carlo sweeps come in two forms.  :func:`fault_sweep` is the
per-burst reference: one Python decode per injected fault.
:func:`fault_sweep_batch` and :func:`fault_coverage_curve` are the
mask-parallel engines: every fault of the whole population is packed
into the :mod:`repro.hw.bitsim` word representation (one word per wire
lane, one *bit* per fault vector — arbitrary-precision Python ints or
NumPy ``uint64`` lane arrays, selected by ``word_impl`` exactly like
:class:`~repro.hw.bitsim.CompiledNetlist`), fault masks are XOR-ed into
the encoded word planes, the DBI decode runs plane-wise, and bit-error
tallies come from popcounts of the decoded-difference planes.  Entry
points accept ``backend="auto" | "reference" | "vector"``; like the
gate-level layer (:func:`repro.hw.bitsim.resolve_sim_backend`), ``auto``
resolves to the mask-parallel engine even without NumPy, because the
pure-int packing is itself a large win.  Both backends share one
pure-Python ``random.Random`` draw path, so statistics are bit-identical
across backends, word implementations and the CI NumPy matrix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.bitops import (
    ALL_ONES_WORD,
    BYTE_WIDTH,
    WORD_WIDTH,
    decode_word,
    popcount,
)
from ..core.burst import Burst
from ..core.schemes import DbiScheme, EncodedBurst
from ..core.vectorized import flags_to_words, try_vector_pack
from ..hw.bitsim import get_kernel, resolve_sim_backend


def decode_with_faults(words: Sequence[int],
                       fault_masks: Sequence[int]) -> Burst:
    """Decode wire words after XOR-ing each with its fault mask.

    ``fault_masks[i]`` has a 1 in every lane sampled wrongly during beat
    *i* (bit 8 = the DBI lane).

    >>> from repro.core.bitops import make_word
    >>> decode_with_faults([make_word(0x0F, False)], [0x100]).data
    (240,)
    """
    if len(words) != len(fault_masks):
        raise ValueError(f"{len(fault_masks)} masks for {len(words)} words")
    corrupted = []
    for word, mask in zip(words, fault_masks):
        if not 0 <= mask < (1 << WORD_WIDTH):
            raise ValueError(f"fault mask out of range: {mask}")
        corrupted.append(word ^ mask)
    return Burst(decode_word(word) for word in corrupted)


def error_amplification(encoded: EncodedBurst, beat: int,
                        lane: int) -> int:
    """Decoded bit errors caused by one single-lane fault.

    *lane* 0-7 are data lanes, lane 8 is the DBI lane.

    >>> from repro.baselines import Raw
    >>> from repro.core.burst import Burst
    >>> enc = Raw().encode(Burst([0x55]))
    >>> error_amplification(enc, beat=0, lane=8)
    8
    """
    if not 0 <= lane < WORD_WIDTH:
        raise ValueError(f"lane must be in [0, {WORD_WIDTH}), got {lane}")
    if not 0 <= beat < len(encoded):
        raise IndexError(f"beat {beat} out of range")
    masks = [0] * len(encoded)
    masks[beat] = 1 << lane
    decoded = decode_with_faults(encoded.words, masks)
    return sum(popcount(a ^ b) for a, b in zip(decoded, encoded.burst))


def wrong_decision_is_harmless(burst: Burst, scheme: DbiScheme) -> bool:
    """True iff flipping any single *encoding decision* still round-trips.

    This is the property behind the paper's analog-implementation remark:
    a mis-decided invert flag changes what is on the wire *and* the DBI
    bit together, so the receiver always recovers the payload.
    """
    baseline = scheme.encode(burst)
    for index in range(len(burst)):
        flags = list(baseline.invert_flags)
        flags[index] = not flags[index]
        perturbed = EncodedBurst(burst=burst, invert_flags=tuple(flags),
                                 prev_word=baseline.prev_word)
        if perturbed.decode().data != burst.data:
            return False
    return True


@dataclass(frozen=True)
class FaultStatistics:
    """Aggregate decoded-error statistics from a random-fault sweep."""

    injected_faults: int
    total_bit_errors: int
    dbi_lane_faults: int
    dbi_lane_bit_errors: int

    @property
    def mean_amplification(self) -> float:
        """Decoded bit errors per injected single-lane fault."""
        return (self.total_bit_errors / self.injected_faults
                if self.injected_faults else 0.0)

    @property
    def dbi_amplification(self) -> float:
        """Decoded bit errors per DBI-lane fault (always the byte width)."""
        return (self.dbi_lane_bit_errors / self.dbi_lane_faults
                if self.dbi_lane_faults else 0.0)


def draw_fault_positions(lengths: Sequence[int], faults_per_burst: int,
                         seed: int) -> List[List[Tuple[int, int]]]:
    """Per-burst uniform ``(beat, lane)`` fault draws, burst-major order.

    The single RNG draw path shared by :func:`fault_sweep` and
    :func:`fault_sweep_batch`: a pure-Python ``random.Random(seed)``
    stream (no NumPy), consuming two uniform variates per fault —
    ``int(random() * length)`` for the beat, then ``int(random() * 9)``
    for the lane — for each fault of each burst in population order.
    Sharing the draws is what makes the two sweeps bit-identical on the
    same seed.  (The multiply draw is exact for these tiny ranges and
    several times faster than ``randrange``, which matters because the
    draw is the mask-parallel sweep's largest remaining serial cost.)
    """
    if faults_per_burst < 1:
        raise ValueError("faults_per_burst must be >= 1")
    uniform = random.Random(seed).random
    return [
        [(int(uniform() * length), int(uniform() * WORD_WIDTH))
         for _ in range(faults_per_burst)]
        for length in lengths
    ]


def fault_sweep(scheme: DbiScheme, bursts: Sequence[Burst],
                faults_per_burst: int = 1, seed: int = 7) -> FaultStatistics:
    """Inject uniform single-lane faults and tally decoded bit errors.

    Each fault picks a uniform (beat, lane) in the encoded burst.  A
    data-lane fault contributes exactly 1 wrong decoded bit and a
    DBI-lane fault complements the whole byte (8 wrong bits), so with 8
    data lanes and 1 DBI lane the expected amplification per fault is
    ``(8·1 + 1·8) / 9 = 16/9 ≈ 1.78`` — versus exactly 1.0 for a bus
    without DBI.  A small exhaustive sweep confirms the expectation:

    >>> from repro.baselines import Raw
    >>> from repro.core.burst import Burst
    >>> encoded = Raw().encode(Burst([0xA5]))
    >>> total = sum(error_amplification(encoded, beat=0, lane=lane)
    ...             for lane in range(WORD_WIDTH))
    >>> total, total / WORD_WIDTH == 16 / 9
    (16, True)

    This is the per-burst reference implementation (one Python decode
    per fault); :func:`fault_sweep_batch` computes identical statistics
    mask-parallel.
    """
    positions = draw_fault_positions([len(burst) for burst in bursts],
                                     faults_per_burst, seed)
    injected = 0
    total_errors = 0
    dbi_faults = 0
    dbi_errors = 0
    for burst, faults in zip(bursts, positions):
        encoded = scheme.encode(burst)
        for beat, lane in faults:
            errors = error_amplification(encoded, beat, lane)
            injected += 1
            total_errors += errors
            if lane == BYTE_WIDTH:
                dbi_faults += 1
                dbi_errors += errors
    return FaultStatistics(injected_faults=injected,
                           total_bit_errors=total_errors,
                           dbi_lane_faults=dbi_faults,
                           dbi_lane_bit_errors=dbi_errors)


# -- the mask-parallel fault engine -----------------------------------------

def _batch_wire_words(scheme: DbiScheme, burst_list: Sequence[Burst]):
    """``(batch, n)`` int64 wire words via the vector encode kernel.

    Returns ``None`` whenever :func:`~repro.core.vectorized.try_vector_pack`
    declines (no NumPy, ragged population, scheme without a batch
    kernel), in which case callers materialise words through
    :meth:`~repro.core.schemes.DbiScheme.encode_batch` instead.  Skipping
    the per-burst :class:`~repro.core.schemes.EncodedBurst` objects is
    worth ~2x on the fault engines' encode stage; bit-identity holds
    because :func:`~repro.core.vectorized.flags_to_words` applies the
    same DBI word construction as :func:`~repro.core.bitops.make_word`.
    """
    data = try_vector_pack(scheme, burst_list)
    if data is None:
        return None
    import numpy as np

    prev = np.full(data.shape[0], ALL_ONES_WORD, dtype=np.int64)
    return flags_to_words(data, scheme.batch_flags(data, prev))


def _tally_masked_faults(values: Sequence[int], masks: Sequence[int],
                         word_impl: str = "auto") -> FaultStatistics:
    """Decode-and-tally for one fault per vector, mask-parallel.

    ``values[f]`` is the clean 9-bit wire word fault *f* lands on,
    ``masks[f]`` its (single-lane) fault mask.  Both are packed into
    bit-plane words — one word per wire lane, bit *f* of lane *l*'s word
    is bit *l* of vector *f* — so the XOR injection, the plane-wise DBI
    decode and the error popcounts each touch all faults at once.
    """
    kernel = get_kernel(word_impl)
    n = len(values)
    planes = kernel.pack_bus(values, WORD_WIDTH, n)
    mask_planes = kernel.pack_bus(masks, WORD_WIDTH, n)
    valid = kernel.valid_mask(n)
    # Plane-wise DBI decode: a DBI bit of 0 means "transmitted inverted",
    # so the invert-back flip plane is the complement of the DBI plane.
    flip_clean = planes[BYTE_WIDTH] ^ valid
    flip_faulty = (planes[BYTE_WIDTH] ^ mask_planes[BYTE_WIDTH]) ^ valid
    dbi_fault_plane = mask_planes[BYTE_WIDTH]
    total_errors = 0
    dbi_errors = 0
    for lane in range(BYTE_WIDTH):
        decoded_clean = planes[lane] ^ flip_clean
        decoded_faulty = (planes[lane] ^ mask_planes[lane]) ^ flip_faulty
        diff = decoded_clean ^ decoded_faulty
        total_errors += kernel.popcount(diff)
        dbi_errors += kernel.popcount(diff & dbi_fault_plane)
    return FaultStatistics(injected_faults=n,
                           total_bit_errors=total_errors,
                           dbi_lane_faults=kernel.popcount(dbi_fault_plane),
                           dbi_lane_bit_errors=dbi_errors)


def fault_sweep_batch(scheme: DbiScheme, bursts: Sequence[Burst],
                      faults_per_burst: int = 1, seed: int = 7,
                      backend: Optional[str] = None,
                      word_impl: str = "auto") -> FaultStatistics:
    """Mask-parallel :func:`fault_sweep`: identical statistics, batched.

    Draws the same ``(beat, lane)`` faults as :func:`fault_sweep` (the
    shared :func:`draw_fault_positions` stream), then injects *all* of
    them in one pass: one bit per fault in the packed word planes, XOR
    for the injection, popcounts for the tallies.  The result is
    bit-identical to :func:`fault_sweep` on the same seed, at
    millions of faults per second instead of thousands.

    ``backend`` follows :func:`repro.hw.bitsim.resolve_sim_backend`
    (``auto`` picks the mask-parallel engine even without NumPy;
    ``reference`` delegates to the per-burst sweep).  ``word_impl``
    selects the packed word representation exactly as for
    :class:`~repro.hw.bitsim.CompiledNetlist`.
    """
    if faults_per_burst < 1:
        raise ValueError("faults_per_burst must be >= 1")
    burst_list = list(bursts)
    if resolve_sim_backend(backend) == "reference":
        return fault_sweep(scheme, burst_list, faults_per_burst, seed)
    positions = draw_fault_positions([len(burst) for burst in burst_list],
                                     faults_per_burst, seed)
    masks = [1 << lane for faults in positions for _beat, lane in faults]
    word_matrix = _batch_wire_words(scheme, burst_list)
    if word_matrix is not None:
        import numpy as np

        rows = np.repeat(np.arange(len(burst_list)), faults_per_burst)
        beats = np.fromiter(
            (beat for faults in positions for beat, _lane in faults),
            dtype=np.intp, count=len(masks))
        values = word_matrix[rows, beats].tolist()
    else:
        encoded = scheme.encode_batch(burst_list)
        burst_words = [enc.words for enc in encoded]
        values = [words[beat] for words, faults in zip(burst_words, positions)
                  for beat, _lane in faults]
    return _tally_masked_faults(values, masks, word_impl)


def draw_fault_masks(n_words: int, rate: float, seed: int) -> List[int]:
    """Multi-lane fault masks: each of the 9 lanes of each of ``n_words``
    wire words flips independently with probability *rate*.

    The stream is seeded per ``(seed, rate)`` through a string key (str
    seeds hash deterministically in ``random.Random``, unaffected by
    ``PYTHONHASHSEED``), so a rate's masks do not depend on which other
    rates a sweep includes — the property that makes coverage rows
    individually cacheable by the experiment engine.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must be in [0, 1], got {rate}")
    rng = random.Random(f"{seed}:{float(rate).hex()}")
    masks: List[int] = []
    for _ in range(n_words):
        mask = 0
        for lane in range(WORD_WIDTH):
            if rng.random() < rate:
                mask |= 1 << lane
        masks.append(mask)
    return masks


@dataclass(frozen=True)
class FaultCoverageRow:
    """One fault-rate point of a coverage curve.

    ``injected_faults`` counts lane-beat flips actually injected,
    ``bit_errors`` the wrong decoded data bits they caused,
    ``corrupted_beats`` the beats decoding to a wrong byte.
    """

    rate: float
    injected_faults: int
    total_beats: int
    bit_errors: int
    corrupted_beats: int
    dbi_lane_faults: int

    @property
    def bit_error_rate(self) -> float:
        """Wrong decoded data bits per transmitted data bit."""
        total_bits = BYTE_WIDTH * self.total_beats
        return self.bit_errors / total_bits if total_bits else 0.0

    @property
    def beat_error_rate(self) -> float:
        """Fraction of beats whose decoded byte is wrong."""
        return (self.corrupted_beats / self.total_beats
                if self.total_beats else 0.0)

    @property
    def amplification(self) -> float:
        """Decoded bit errors per injected lane fault."""
        return (self.bit_errors / self.injected_faults
                if self.injected_faults else 0.0)


#: Default per-lane-beat fault rates for coverage curves (log-spaced).
DEFAULT_FAULT_RATES = (1e-3, 3e-3, 1e-2, 3e-2, 1e-1)


def fault_coverage_curve(scheme: DbiScheme, bursts: Sequence[Burst],
                         rates: Sequence[float] = DEFAULT_FAULT_RATES,
                         seed: int = 7, backend: Optional[str] = None,
                         word_impl: str = "auto") -> List[FaultCoverageRow]:
    """Decoded-error statistics versus raw fault rate, one row per rate.

    Every lane-beat of the encoded population flips independently with
    probability ``rate`` (so beats can take multi-lane faults, unlike
    the single-lane sweeps).  The population is encoded once; per rate,
    fresh masks from :func:`draw_fault_masks` are injected and tallied —
    mask-parallel under the ``vector`` backend, per-word under
    ``reference`` — with bit-identical rows either way.
    """
    burst_list = list(bursts)
    word_matrix = _batch_wire_words(scheme, burst_list)
    if word_matrix is not None:
        # Row-major ravel == burst-major, beat-minor: the reference order.
        values = word_matrix.ravel().tolist()
    else:
        encoded = scheme.encode_batch(burst_list)
        values = [word for enc in encoded for word in enc.words]
    total = len(values)
    rows: List[FaultCoverageRow] = []
    if resolve_sim_backend(backend) == "vector":
        kernel = get_kernel(word_impl)
        planes = kernel.pack_bus(values, WORD_WIDTH, total)
        valid = kernel.valid_mask(total)
        flip_clean = planes[BYTE_WIDTH] ^ valid
        for rate in rates:
            masks = draw_fault_masks(total, rate, seed)
            mask_planes = kernel.pack_bus(masks, WORD_WIDTH, total)
            flip_faulty = (planes[BYTE_WIDTH]
                           ^ mask_planes[BYTE_WIDTH]) ^ valid
            bit_errors = 0
            union = None
            for lane in range(BYTE_WIDTH):
                diff = ((planes[lane] ^ flip_clean)
                        ^ ((planes[lane] ^ mask_planes[lane]) ^ flip_faulty))
                bit_errors += kernel.popcount(diff)
                union = diff if union is None else union | diff
            rows.append(FaultCoverageRow(
                rate=float(rate),
                injected_faults=sum(kernel.popcount(plane)
                                    for plane in mask_planes),
                total_beats=total,
                bit_errors=bit_errors,
                corrupted_beats=kernel.popcount(union),
                dbi_lane_faults=kernel.popcount(mask_planes[BYTE_WIDTH])))
    else:
        for rate in rates:
            masks = draw_fault_masks(total, rate, seed)
            injected = 0
            bit_errors = 0
            corrupted = 0
            dbi_faults = 0
            for word, mask in zip(values, masks):
                injected += popcount(mask)
                dbi_faults += (mask >> BYTE_WIDTH) & 1
                diff = decode_word(word ^ mask) ^ decode_word(word)
                errors = popcount(diff)
                bit_errors += errors
                corrupted += 1 if errors else 0
            rows.append(FaultCoverageRow(
                rate=float(rate), injected_faults=injected,
                total_beats=total, bit_errors=bit_errors,
                corrupted_beats=corrupted, dbi_lane_faults=dbi_faults))
    return rows
