"""Reliability of DBI links under wire faults and encoder errors.

Two very different failure modes matter for DBI, and the paper's remark
about analog encoder implementations ("rare inaccurate encoding decisions
are unlikely to cause application errors") rests on the distinction:

* A **wrong encoding decision** (the encoder picks a suboptimal invert
  flag) is *harmless for correctness*: the DBI bit transmitted alongside
  the data always describes what was done, so the receiver still decodes
  the exact payload — only energy is wasted.
  :func:`wrong_decision_is_harmless` demonstrates this exhaustively.

* A **wire fault** (a lane sampled wrongly) corrupts data, and DBI
  *amplifies* faults on the DBI lane: flipping it complements the entire
  byte (8 wrong bits), whereas a data-lane fault stays a single-bit error.
  :func:`error_amplification` and :func:`fault_sweep` quantify this —
  the hidden reliability cost of any inversion code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.bitops import BYTE_WIDTH, WORD_WIDTH, decode_word, popcount
from ..core.burst import Burst
from ..core.schemes import DbiScheme, EncodedBurst


def decode_with_faults(words: Sequence[int],
                       fault_masks: Sequence[int]) -> Burst:
    """Decode wire words after XOR-ing each with its fault mask.

    ``fault_masks[i]`` has a 1 in every lane sampled wrongly during beat
    *i* (bit 8 = the DBI lane).

    >>> from repro.core.bitops import make_word
    >>> decode_with_faults([make_word(0x0F, False)], [0x100]).data
    (240,)
    """
    if len(words) != len(fault_masks):
        raise ValueError(f"{len(fault_masks)} masks for {len(words)} words")
    corrupted = []
    for word, mask in zip(words, fault_masks):
        if not 0 <= mask < (1 << WORD_WIDTH):
            raise ValueError(f"fault mask out of range: {mask}")
        corrupted.append(word ^ mask)
    return Burst(decode_word(word) for word in corrupted)


def error_amplification(encoded: EncodedBurst, beat: int,
                        lane: int) -> int:
    """Decoded bit errors caused by one single-lane fault.

    *lane* 0-7 are data lanes, lane 8 is the DBI lane.

    >>> from repro.baselines import Raw
    >>> from repro.core.burst import Burst
    >>> enc = Raw().encode(Burst([0x55]))
    >>> error_amplification(enc, beat=0, lane=8)
    8
    """
    if not 0 <= lane < WORD_WIDTH:
        raise ValueError(f"lane must be in [0, {WORD_WIDTH}), got {lane}")
    if not 0 <= beat < len(encoded):
        raise IndexError(f"beat {beat} out of range")
    masks = [0] * len(encoded)
    masks[beat] = 1 << lane
    decoded = decode_with_faults(encoded.words, masks)
    return sum(popcount(a ^ b) for a, b in zip(decoded, encoded.burst))


def wrong_decision_is_harmless(burst: Burst, scheme: DbiScheme) -> bool:
    """True iff flipping any single *encoding decision* still round-trips.

    This is the property behind the paper's analog-implementation remark:
    a mis-decided invert flag changes what is on the wire *and* the DBI
    bit together, so the receiver always recovers the payload.
    """
    baseline = scheme.encode(burst)
    for index in range(len(burst)):
        flags = list(baseline.invert_flags)
        flags[index] = not flags[index]
        perturbed = EncodedBurst(burst=burst, invert_flags=tuple(flags),
                                 prev_word=baseline.prev_word)
        if perturbed.decode().data != burst.data:
            return False
    return True


@dataclass(frozen=True)
class FaultStatistics:
    """Aggregate decoded-error statistics from a random-fault sweep."""

    injected_faults: int
    total_bit_errors: int
    dbi_lane_faults: int
    dbi_lane_bit_errors: int

    @property
    def mean_amplification(self) -> float:
        """Decoded bit errors per injected single-lane fault."""
        return (self.total_bit_errors / self.injected_faults
                if self.injected_faults else 0.0)

    @property
    def dbi_amplification(self) -> float:
        """Decoded bit errors per DBI-lane fault (always the byte width)."""
        return (self.dbi_lane_bit_errors / self.dbi_lane_faults
                if self.dbi_lane_faults else 0.0)


def fault_sweep(scheme: DbiScheme, bursts: Sequence[Burst],
                faults_per_burst: int = 1, seed: int = 7) -> FaultStatistics:
    """Inject uniform single-lane faults and tally decoded bit errors.

    Each fault picks a uniform (beat, lane) in the encoded burst; the
    expected amplification of a fault is therefore
    ``(8·P[data lane] + 8·P[DBI lane]) / 9``... precisely: data-lane
    faults contribute 1 wrong bit, DBI-lane faults 8, giving an expected
    ``(8·1 + 1·8) / 9 ≈ 1.78`` versus exactly 1.0 for a DBI-less bus.
    """
    if faults_per_burst < 1:
        raise ValueError("faults_per_burst must be >= 1")
    rng = np.random.default_rng(seed)
    injected = 0
    total_errors = 0
    dbi_faults = 0
    dbi_errors = 0
    for burst in bursts:
        encoded = scheme.encode(burst)
        for _ in range(faults_per_burst):
            beat = int(rng.integers(0, len(encoded)))
            lane = int(rng.integers(0, WORD_WIDTH))
            errors = error_amplification(encoded, beat, lane)
            injected += 1
            total_errors += errors
            if lane == BYTE_WIDTH:
                dbi_faults += 1
                dbi_errors += errors
    return FaultStatistics(injected_faults=injected,
                           total_bit_errors=total_errors,
                           dbi_lane_faults=dbi_faults,
                           dbi_lane_bit_errors=dbi_errors)
