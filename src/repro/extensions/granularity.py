"""DBI granularity extension: one invert flag per *g*-bit group.

JEDEC DBI uses one DBI line per 8 DQ lines.  A natural design question —
and a classic trade in the bus-coding literature (cf. Stan/Burleson's
partitioned bus-invert) — is the granularity: finer groups (e.g. one DBI
line per nibble) track the data more closely and save more zeros and
transitions, but every extra line costs pins, and the extra lines
themselves carry zeros and transitions.

This module generalises the paper's optimal encoder to arbitrary group
sizes.  Groups are electrically independent (each group has its own DBI
line and its own trellis), so the optimum factorises: solve one two-state
trellis per group.  With ``group_size=8`` this reduces exactly to the
paper's encoder, which the tests assert.

Activity accounting matches the paper's convention, per group: a group
word is ``group_size + 1`` lanes (data + its DBI line), zeros and
transitions are counted over all of them.

Backend selection follows the library-wide vocabulary
(``"auto" | "reference" | "vector"``, see :mod:`repro.core.vectorized`):
the vector path stripes the ``8 // g`` group lanes of every burst along
the batch axis — an 8-byte burst at ``group_size=4`` becomes two
independent 5-lane trellis columns — and solves them in a single
:func:`repro.core.vectorized._viterbi_planes` call with
``width = group_size + 1``.  Invert flags, zeros and transitions are
bit-identical to the scalar :meth:`GroupedDbiOptimal._solve_group`
reference (same IEEE-754 operations in the same order; the differential
suite in ``tests/extensions/test_granularity.py`` enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.bitops import popcount
from ..core.burst import Burst
from ..core.costs import CostModel
from ..core.vectorized import resolve_backend, try_pack_bursts

#: Group sizes that tile a byte lane evenly.
VALID_GROUP_SIZES = (1, 2, 4, 8)


def split_groups(byte: int, group_size: int) -> List[int]:
    """Split a byte into ``8 // group_size`` groups, LSB group first.

    >>> split_groups(0xF0, 4)
    [0, 15]
    """
    if group_size not in VALID_GROUP_SIZES:
        raise ValueError(f"group_size must be one of {VALID_GROUP_SIZES}")
    mask = (1 << group_size) - 1
    return [(byte >> shift) & mask
            for shift in range(0, 8, group_size)]


@dataclass(frozen=True)
class GroupedEncoding:
    """Result of grouped-DBI encoding one burst.

    ``invert_flags[i][k]`` is the invert decision of group *k* of byte *i*.
    """

    burst: Burst
    group_size: int
    invert_flags: Tuple[Tuple[bool, ...], ...]
    zeros: int
    transitions: int

    @property
    def groups_per_byte(self) -> int:
        return 8 // self.group_size

    @property
    def extra_lines(self) -> int:
        """DBI lines added per byte lane (the pin cost of the granularity)."""
        return self.groups_per_byte

    def cost(self, model: CostModel) -> float:
        """Total activity cost under *model*."""
        return model.activity_cost(self.transitions, self.zeros)


class GroupedDbiOptimal:
    """Optimal DBI with one invert flag per *group_size* data lanes.

    >>> scheme = GroupedDbiOptimal(CostModel.fixed(), group_size=4)
    >>> encoding = scheme.encode(Burst([0x0F, 0x0F]))
    >>> encoding.groups_per_byte
    2
    """

    def __init__(self, model: CostModel, group_size: int = 8):
        if group_size not in VALID_GROUP_SIZES:
            raise ValueError(f"group_size must be one of {VALID_GROUP_SIZES}")
        if not isinstance(model, CostModel):
            raise TypeError(f"model must be a CostModel, got {type(model).__name__}")
        self.model = model
        self.group_size = group_size

    def fingerprint(self) -> str:
        """Stable content key (cf. :meth:`repro.core.schemes.DbiScheme.fingerprint`).

        Ratio-keyed like :meth:`repro.core.encoder.DbiOptimal.fingerprint`:
        two instances with the same group size and the same
        transition/zero cost ratio make identical invert decisions, so
        the experiment engine may share their cached activity totals.
        """
        return (f"dbi-grouped[g={self.group_size},"
                f"r={self.model.ac_fraction.hex()}]")

    def encode(self, burst: Burst) -> GroupedEncoding:
        """Encode *burst*; each group lane starts from idle-high."""
        g = self.group_size
        groups_per_byte = 8 // g
        per_group_flags: List[List[bool]] = []
        total_zeros = 0
        total_transitions = 0
        for lane in range(groups_per_byte):
            stream = [split_groups(byte, g)[lane] for byte in burst]
            flags, zeros, transitions = self._solve_group(stream)
            per_group_flags.append(flags)
            total_zeros += zeros
            total_transitions += transitions
        invert_flags = tuple(
            tuple(per_group_flags[lane][index]
                  for lane in range(groups_per_byte))
            for index in range(len(burst)))
        return GroupedEncoding(burst=burst, group_size=g,
                               invert_flags=invert_flags,
                               zeros=total_zeros,
                               transitions=total_transitions)

    # -- batch API -------------------------------------------------------
    def encode_batch(self, bursts: Iterable[Burst],
                     backend: Optional[str] = None) -> List[GroupedEncoding]:
        """Encode a whole burst population (idle-high boundaries).

        With the ``vector`` backend (the default whenever NumPy is
        available) equal-length populations are solved array-at-a-time:
        the ``8 // g`` group lanes of every burst are striped along the
        batch axis and run through one group-width batch Viterbi call.
        Ragged populations and the ``reference`` backend fall back to
        per-burst :meth:`encode`.  Results are bit-identical either way.
        """
        burst_list = [burst if isinstance(burst, Burst) else Burst(burst)
                      for burst in bursts]
        if burst_list and resolve_backend(backend) == "vector":
            packed = try_pack_bursts(burst_list)
            if packed is not None:
                flags, zeros, transitions = self._batch_solve(packed)
                k = self.groups_per_byte
                return [
                    GroupedEncoding(
                        burst=burst, group_size=self.group_size,
                        invert_flags=tuple(
                            tuple(bool(flags[lane, row, beat])
                                  for lane in range(k))
                            for beat in range(packed.shape[1])),
                        zeros=int(zeros[row]),
                        transitions=int(transitions[row]))
                    for row, burst in enumerate(burst_list)
                ]
        return [self.encode(burst) for burst in burst_list]

    def activity_totals(self, bursts: Iterable[Burst],
                        backend: Optional[str] = None) -> Tuple[int, int]:
        """Population ``(total_zeros, total_transitions)`` totals.

        The aggregate fast path behind :func:`granularity_table` and the
        granularity experiment axis: the vector backend tallies the
        striped word planes without materialising per-burst
        :class:`GroupedEncoding` objects.  Totals are exact integers and
        identical across backends.
        """
        burst_list = list(bursts)
        if burst_list and resolve_backend(backend) == "vector":
            packed = try_pack_bursts(burst_list)
            if packed is not None:
                _flags, zeros, transitions = self._batch_solve(packed)
                return int(zeros.sum()), int(transitions.sum())
        total_zeros = 0
        total_transitions = 0
        for burst in burst_list:
            encoding = self.encode(burst)
            total_zeros += encoding.zeros
            total_transitions += encoding.transitions
        return total_zeros, total_transitions

    @property
    def groups_per_byte(self) -> int:
        return 8 // self.group_size

    def _batch_solve(self, packed):
        """Group-striped batch Viterbi over a packed ``(batch, n)`` array.

        Returns ``(flags, zeros, transitions)`` where ``flags`` is a
        ``(groups_per_byte, batch, n)`` bool array (lane *k* of burst
        *b*, beat *i*) and ``zeros``/``transitions`` are per-burst
        ``(batch,)`` int64 tallies summed over the burst's group lanes.
        """
        import numpy as np

        from ..core.vectorized import _viterbi_planes, batch_activity

        g = self.group_size
        k = self.groups_per_byte
        batch, n = packed.shape
        mask = (1 << g) - 1
        dbi_bit = 1 << g
        idle = (1 << (g + 1)) - 1
        wide = packed.astype(np.int64)
        # Stripe group lanes along the batch axis: row ``lane * batch + b``
        # carries group lane ``lane`` of burst ``b`` — every row is an
        # independent (g+1)-lane trellis with an idle-high boundary.
        values = np.concatenate(
            [(wide >> (lane * g)) & mask for lane in range(k)], axis=0)
        words_raw = values | dbi_bit
        words_inv = values ^ mask
        prev = np.full(k * batch, idle, dtype=np.int64)
        flags, _costs = _viterbi_planes(words_raw, words_inv,
                                        self.model.alpha, self.model.beta,
                                        prev, width=g + 1)
        words = np.where(flags, words_inv, words_raw)
        transitions, zeros = batch_activity(words, idle, width=g + 1)
        return (flags.reshape(k, batch, n),
                zeros.reshape(k, batch).sum(axis=0),
                transitions.reshape(k, batch).sum(axis=0))

    # -- internals -------------------------------------------------------
    def _group_word(self, value: int, inverted: bool) -> int:
        """Wire word of one group: data lanes plus its DBI lane on top."""
        g = self.group_size
        mask = (1 << g) - 1
        if inverted:
            return value ^ mask  # DBI bit 0
        return value | (1 << g)  # DBI bit 1

    def _word_cost(self, prev_word: int, word: int) -> float:
        lanes = self.group_size + 1
        zeros = lanes - popcount(word)
        transitions = popcount(prev_word ^ word)
        return (self.model.alpha * transitions + self.model.beta * zeros)

    def _solve_group(self, stream: Sequence[int]) -> Tuple[List[bool], int, int]:
        """Two-state Viterbi over one group lane (idle-high boundary)."""
        idle = (1 << (self.group_size + 1)) - 1
        words_raw = [self._group_word(value, False) for value in stream]
        words_inv = [self._group_word(value, True) for value in stream]

        cost_raw = self._word_cost(idle, words_raw[0])
        cost_inv = self._word_cost(idle, words_inv[0])
        choices_raw: List[bool] = [False]
        choices_inv: List[bool] = [False]
        for i in range(1, len(stream)):
            rr = cost_raw + self._word_cost(words_raw[i - 1], words_raw[i])
            ir = cost_inv + self._word_cost(words_inv[i - 1], words_raw[i])
            ri = cost_raw + self._word_cost(words_raw[i - 1], words_inv[i])
            ii = cost_inv + self._word_cost(words_inv[i - 1], words_inv[i])
            cost_raw, from_inv_raw = (ir, True) if ir < rr else (rr, False)
            cost_inv, from_inv_inv = (ii, True) if ii < ri else (ri, False)
            choices_raw.append(from_inv_raw)
            choices_inv.append(from_inv_inv)

        flags = [False] * len(stream)
        inverted = cost_inv < cost_raw
        for i in range(len(stream) - 1, -1, -1):
            flags[i] = inverted
            inverted = choices_inv[i] if inverted else choices_raw[i]

        zeros = 0
        transitions = 0
        last = idle
        for value, flag in zip(stream, flags):
            word = self._group_word(value, flag)
            zeros += (self.group_size + 1) - popcount(word)
            transitions += popcount(last ^ word)
            last = word
        return flags, zeros, transitions


def granularity_table(bursts: Sequence[Burst], model: CostModel,
                      group_sizes: Sequence[int] = VALID_GROUP_SIZES,
                      backend: Optional[str] = None,
                      ) -> List[Tuple[int, float, float, float, int]]:
    """Rows ``(group_size, mean zeros, mean transitions, mean cost,
    total lines per byte lane)`` for the granularity ablation.

    ``backend`` follows the library vocabulary; totals (and therefore
    rows) are identical between the reference and vector paths.
    """
    rows: List[Tuple[int, float, float, float, int]] = []
    n = len(bursts)
    if n == 0:
        raise ValueError("burst population is empty")
    for g in group_sizes:
        scheme = GroupedDbiOptimal(model, group_size=g)
        zeros, transitions = scheme.activity_totals(bursts, backend=backend)
        mean_cost = model.activity_cost(transitions, zeros) / n
        rows.append((g, zeros / n, transitions / n, mean_cost, 8 + 8 // g))
    return rows
