"""repro — Optimal DC/AC Data Bus Inversion Coding.

A complete, self-contained reproduction of

    J. Lucas, S. Lal, B. Juurlink,
    "Optimal DC/AC Data Bus Inversion Coding", DATE 2018.

The package provides:

* :mod:`repro.core` — the optimal trellis/shortest-path DBI encoder
  (the paper's contribution) and the shared burst/cost substrate,
* :mod:`repro.baselines` — RAW, DBI DC, DBI AC, DBI ACDC, greedy-weighted
  and classic bus-invert baselines,
* :mod:`repro.phy` — POD-interface electrical and CACTI-IO-derived energy
  models plus a stateful multi-lane bus simulator,
* :mod:`repro.hw` — a gate-level model of the paper's encoder hardware with
  a synthesis-style area/power/timing estimator (Table I),
* :mod:`repro.workloads` — random, patterned and trace-like workload
  generators plus the chunked, content-addressed burst population
  protocol (:mod:`repro.workloads.population`),
* :mod:`repro.sim` / :mod:`repro.analysis` — the declarative experiment
  engine (:mod:`repro.sim.experiments`: specs, shared activity cache,
  process-pool execution, persisted JSON artifacts), the figure sweeps
  built on it, and the reporting used by the benchmarks that regenerate
  every figure and table.

Quickstart::

    from repro import Burst, CostModel, DbiOptimal, get_scheme

    burst = Burst([0x8E, 0x86, 0x96, 0xE9, 0x7D, 0xB7, 0x57, 0xC4])
    encoded = DbiOptimal(CostModel.fixed()).encode(burst)
    print(encoded.invert_flags, encoded.activity())

Backends
--------
Two interchangeable execution backends produce bit-identical results:

* ``reference`` — the pure-Python per-burst path above (the executable
  specification; always available).
* ``vector`` — a NumPy batch backend (:mod:`repro.core.vectorized`) that
  encodes whole ``(batch, n)`` populations array-at-a-time; this is what
  makes million-burst sweeps practical.

Batch entry points (``DbiScheme.encode_batch``, ``sim.runner.evaluate``,
``sim.sweep.collect_activity`` and the figure sweeps) accept
``backend="auto" | "reference" | "vector"``; ``auto`` (default) uses
``vector`` whenever NumPy is importable.  The process-wide default can be
set with :func:`repro.set_default_backend` or the ``REPRO_BACKEND``
environment variable.  NumPy is optional — the ``backend="auto"`` entry
points transparently fall back to the reference path without it (only
the raw array API :func:`repro.solve_batch` requires NumPy outright)::

    from repro import Burst, CostModel, DbiOptimal, solve_batch

    scheme = DbiOptimal(CostModel.fixed())
    encoded = scheme.encode_batch([Burst([0x00] * 8)] * 1000)     # any env
    flags, costs = solve_batch([[0x00] * 8] * 1000, scheme.model)  # NumPy only
"""

from . import baselines as _baselines  # noqa: F401 - populates the registry
from .core import (
    ALL_ONES_WORD,
    Burst,
    CostModel,
    DEFAULT_BURST_LENGTH,
    DbiOptimal,
    DbiOptimalFixed,
    DbiOptimalQuantized,
    DbiScheme,
    EncodedBurst,
    HAVE_NUMPY,
    PAPER_FIG2_BURST,
    QuantizedCostModel,
    available_backends,
    available_schemes,
    brute_force,
    chunk_bytes,
    get_default_backend,
    get_scheme,
    register_scheme,
    resolve_backend,
    set_default_backend,
    solve,
    solve_batch,
    solve_stream_batch,
)
from .baselines import BusInvert, DbiAc, DbiAcDc, DbiDc, DbiGreedyWeighted, Raw

__version__ = "1.0.0"

__all__ = [
    "ALL_ONES_WORD",
    "Burst",
    "BusInvert",
    "CostModel",
    "DEFAULT_BURST_LENGTH",
    "DbiAc",
    "DbiAcDc",
    "DbiDc",
    "DbiGreedyWeighted",
    "DbiOptimal",
    "DbiOptimalFixed",
    "DbiOptimalQuantized",
    "DbiScheme",
    "EncodedBurst",
    "HAVE_NUMPY",
    "PAPER_FIG2_BURST",
    "QuantizedCostModel",
    "Raw",
    "available_backends",
    "available_schemes",
    "brute_force",
    "chunk_bytes",
    "get_default_backend",
    "get_scheme",
    "register_scheme",
    "resolve_backend",
    "set_default_backend",
    "solve",
    "solve_batch",
    "solve_stream_batch",
    "__version__",
]
