"""DBI AC: minimise the number of lane transitions (paper §I).

Each byte is compared against the previously *transmitted* word: it is sent
inverted whenever inversion strictly reduces the number of toggling lanes,
counted over all nine lanes including the DBI lane itself.  The decision is
greedy per byte — optimal for the current beat but blind to its effect on
later beats, which is precisely the gap DBI OPT closes.
"""

from __future__ import annotations

from ..core.bitops import ALL_ONES_WORD, make_word, transitions
from ..core.burst import Burst
from ..core.schemes import DbiScheme, EncodedBurst, register_scheme


def should_invert_ac(byte: int, prev_word: int) -> bool:
    """The DBI AC decision: invert iff it strictly reduces toggles.

    Ties keep the non-inverted representation (hardware comparators switch
    only on strict improvement, and this matches DBI DC's idle behaviour).

    >>> from repro.core.bitops import ALL_ONES_WORD
    >>> should_invert_ac(0x00, ALL_ONES_WORD)
    True
    >>> should_invert_ac(0xFF, ALL_ONES_WORD)
    False
    """
    raw_cost = transitions(prev_word, make_word(byte, False))
    inv_cost = transitions(prev_word, make_word(byte, True))
    return inv_cost < raw_cost


class DbiAc(DbiScheme):
    """Transition-minimising DBI (greedy, stateful across the burst)."""

    name = "dbi-ac"

    def encode(self, burst: Burst, prev_word: int = ALL_ONES_WORD) -> EncodedBurst:
        flags = []
        last = prev_word
        for byte in burst:
            inverted = should_invert_ac(byte, last)
            flags.append(inverted)
            last = make_word(byte, inverted)
        return EncodedBurst(burst=burst, invert_flags=tuple(flags),
                            prev_word=prev_word)

    def batch_flags(self, data, prev_words):
        from ..core.vectorized import ac_flags

        return ac_flags(data, prev_words)


register_scheme("dbi-ac", DbiAc)
