"""Classic bus-invert coding of Stan and Burleson (paper §II, ref. [12]).

The original 1995 bus-invert code predates POD signalling: it inverts a
word whenever more than half of the bus lines would toggle, minimising
transitions only, with the invert indicator on a dedicated line.  Unlike
DBI AC it compares the *data* lanes only (the indicator line's own toggle
is not part of the classic decision rule), and it never considers zeros.

Included as a historical baseline: on a POD link it behaves like a
slightly worse DBI AC because it ignores the DBI-lane toggle.
"""

from __future__ import annotations

from ..core.bitops import ALL_ONES_WORD, BYTE_MASK, BYTE_WIDTH, make_word, popcount
from ..core.burst import Burst
from ..core.schemes import DbiScheme, EncodedBurst, register_scheme


def should_invert_businvert(byte: int, prev_word: int) -> bool:
    """Stan–Burleson rule: invert iff > half of the data lanes would toggle.

    >>> should_invert_businvert(0x00, 0x1FF)
    True
    >>> should_invert_businvert(0xF0, 0x1FF)
    False
    """
    prev_byte = prev_word & BYTE_MASK
    toggles = popcount((prev_byte ^ byte) & BYTE_MASK)
    return toggles > BYTE_WIDTH // 2


class BusInvert(DbiScheme):
    """Transition-only bus-invert, data lanes only (Stan–Burleson 1995)."""

    name = "bus-invert"

    def encode(self, burst: Burst, prev_word: int = ALL_ONES_WORD) -> EncodedBurst:
        flags = []
        last = prev_word
        for byte in burst:
            inverted = should_invert_businvert(byte, last)
            flags.append(inverted)
            last = make_word(byte, inverted)
        return EncodedBurst(burst=burst, invert_flags=tuple(flags),
                            prev_word=prev_word)

    def batch_flags(self, data, prev_words):
        from ..core.vectorized import businvert_flags

        return businvert_flags(data, prev_words)


register_scheme("bus-invert", BusInvert)
