"""DBI ACDC: Hollis's mode-switching combination (paper §II, ref. [8]).

Hollis proposed encoding the *first* byte of a group with DBI DC (so the
group starts from a zero-lean word) and the remaining bytes with DBI AC.
The paper notes that under its boundary condition — all lanes idle high
before the burst — DBI AC's first-byte decision coincides with DBI DC's,
so DBI ACDC and DBI AC produce identical encodings; the test-suite asserts
this equivalence.  The scheme is still implemented separately because the
equivalence breaks for other boundary states (e.g. back-to-back bursts),
where ACDC's explicit DC first byte genuinely differs.
"""

from __future__ import annotations

from ..core.bitops import ALL_ONES_WORD, make_word
from ..core.burst import Burst
from ..core.schemes import DbiScheme, EncodedBurst, register_scheme
from .dbi_ac import should_invert_ac
from .dbi_dc import should_invert_dc


class DbiAcDc(DbiScheme):
    """First byte DBI DC, remaining bytes DBI AC (Hollis 2009)."""

    name = "dbi-acdc"
    # The first byte's DC rule looks only at the byte and the AC chain
    # threads from the scheme's own transmitted words, so the flags never
    # read the incoming bus state — chained mode stays vectorizable.
    stateful_flags = False

    def encode(self, burst: Burst, prev_word: int = ALL_ONES_WORD) -> EncodedBurst:
        flags = []
        first_inverted = should_invert_dc(burst[0])
        flags.append(first_inverted)
        last = make_word(burst[0], first_inverted)
        for byte in burst.data[1:]:
            inverted = should_invert_ac(byte, last)
            flags.append(inverted)
            last = make_word(byte, inverted)
        return EncodedBurst(burst=burst, invert_flags=tuple(flags),
                            prev_word=prev_word)

    def batch_flags(self, data, prev_words):
        from ..core.vectorized import acdc_flags

        return acdc_flags(data, prev_words)


register_scheme("dbi-acdc", DbiAcDc)
