"""DBI DC: minimise the number of transmitted zeros (paper §I).

The JEDEC-standard scheme for POD interfaces (GDDR4/5/5X, DDR4 writes):
count the zeros in each byte; transmit non-inverted when there are 4 or
fewer, inverted when there are 5 or more.  After encoding, no 9-bit word
ever carries more than 4 zeros (a byte with 5 zeros is sent as 3 data zeros
plus the zero on the DBI lane).

The decision is purely per-byte — no inter-byte state — which is what makes
DBI DC so cheap in hardware (one POPCNT and one comparator per byte, see
Table I) but also what leaves the transition count uncontrolled.
"""

from __future__ import annotations

from ..core.bitops import ALL_ONES_WORD, BYTE_WIDTH, zeros_in_byte
from ..core.burst import Burst
from ..core.schemes import DbiScheme, EncodedBurst, register_scheme

#: Invert when a byte contains strictly more than this many zeros.
DC_THRESHOLD = BYTE_WIDTH // 2


def should_invert_dc(byte: int) -> bool:
    """The DBI DC decision for one byte: invert iff it has ≥ 5 zeros.

    >>> should_invert_dc(0b00000111)
    True
    >>> should_invert_dc(0b00001111)
    False
    """
    return zeros_in_byte(byte) > DC_THRESHOLD


class DbiDc(DbiScheme):
    """Zero-minimising DBI (the GDDR5/DDR4 standard write encoding)."""

    name = "dbi-dc"
    stateful_flags = False

    def encode(self, burst: Burst, prev_word: int = ALL_ONES_WORD) -> EncodedBurst:
        flags = tuple(should_invert_dc(byte) for byte in burst)
        return EncodedBurst(burst=burst, invert_flags=flags, prev_word=prev_word)

    def batch_flags(self, data, prev_words):
        from ..core.vectorized import dc_flags

        return dc_flags(data, prev_words)


register_scheme("dbi-dc", DbiDc)
