"""Chang-style greedy weighted heuristic (paper §II, ref. [9]).

Chang, Kim and Cho (DAC 2000) proposed bus encodings that weigh *both*
zeros and transitions but decide each byte greedily instead of searching
the whole burst.  This module implements that family as
:class:`DbiGreedyWeighted`: for each byte, compute the weighted cost
``alpha * transitions + beta * zeros`` of the raw and the inverted word
against the previously transmitted word and keep the cheaper one.

The greedy decision uses exactly the same edge weights as the optimal
trellis search, so any quality gap measured against
:class:`~repro.core.encoder.DbiOptimal` isolates the benefit of global
(shortest-path) optimisation — one of the paper's implicit claims and the
subject of an ablation bench.
"""

from __future__ import annotations

from ..core.bitops import ALL_ONES_WORD, make_word
from ..core.burst import Burst
from ..core.costs import CostModel
from ..core.schemes import DbiScheme, EncodedBurst, register_scheme


class DbiGreedyWeighted(DbiScheme):
    """Per-byte greedy minimisation of ``alpha·transitions + beta·zeros``.

    >>> scheme = DbiGreedyWeighted(CostModel.fixed())
    >>> scheme.encode(Burst([0x00])).invert_flags
    (True,)
    """

    name = "dbi-greedy"

    def __init__(self, model: CostModel):
        if not isinstance(model, CostModel):
            raise TypeError(f"model must be a CostModel, got {type(model).__name__}")
        self.model = model

    def encode(self, burst: Burst, prev_word: int = ALL_ONES_WORD) -> EncodedBurst:
        flags = []
        last = prev_word
        for byte in burst:
            raw_word = make_word(byte, False)
            inv_word = make_word(byte, True)
            raw_cost = self.model.word_cost(last, raw_word)
            inv_cost = self.model.word_cost(last, inv_word)
            inverted = inv_cost < raw_cost
            flags.append(inverted)
            last = inv_word if inverted else raw_word
        return EncodedBurst(burst=burst, invert_flags=tuple(flags),
                            prev_word=prev_word)

    def batch_flags(self, data, prev_words):
        from ..core.vectorized import greedy_flags

        return greedy_flags(data, self.model, prev_words)

    def fingerprint(self) -> str:
        """Greedy decisions, like the trellis, depend only on the ratio."""
        return f"dbi-greedy[r={self.model.ac_fraction.hex()}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DbiGreedyWeighted(alpha={self.model.alpha}, beta={self.model.beta})"


register_scheme("dbi-greedy", lambda: DbiGreedyWeighted(CostModel.fixed()))
