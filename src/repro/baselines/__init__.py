"""Baseline DBI encoding schemes the paper compares against.

* :class:`Raw` — no encoding (normalisation reference).
* :class:`DbiDc` — zero-minimising JEDEC scheme.
* :class:`DbiAc` — greedy transition-minimising scheme.
* :class:`DbiAcDc` — Hollis's mode-switching combination.
* :class:`DbiGreedyWeighted` — Chang-style per-byte weighted heuristic.
* :class:`BusInvert` — classic Stan–Burleson bus-invert.
"""

from .businvert import BusInvert, should_invert_businvert
from .chang import DbiGreedyWeighted
from .dbi_ac import DbiAc, should_invert_ac
from .dbi_acdc import DbiAcDc
from .dbi_dc import DC_THRESHOLD, DbiDc, should_invert_dc
from .raw import Raw

__all__ = [
    "BusInvert",
    "DC_THRESHOLD",
    "DbiAc",
    "DbiAcDc",
    "DbiDc",
    "DbiGreedyWeighted",
    "Raw",
    "should_invert_ac",
    "should_invert_businvert",
    "should_invert_dc",
]
