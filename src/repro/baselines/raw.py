"""Unencoded (RAW) transmission baseline.

Every byte is sent non-inverted with the DBI lane held high; this is the
normalisation reference of the paper's Figs. 3 and 7.  Keeping the DBI lane
at one means RAW pays no DBI-lane zeros or toggles, exactly like a bus that
has the DBI feature disabled.
"""

from __future__ import annotations

from ..core.bitops import ALL_ONES_WORD
from ..core.burst import Burst
from ..core.schemes import DbiScheme, EncodedBurst, register_scheme


class Raw(DbiScheme):
    """Pass-through scheme: never invert.

    >>> Raw().encode(Burst([0xA5, 0x5A])).invert_flags
    (False, False)
    """

    name = "raw"
    stateful_flags = False

    def encode(self, burst: Burst, prev_word: int = ALL_ONES_WORD) -> EncodedBurst:
        return EncodedBurst(burst=burst,
                            invert_flags=(False,) * len(burst),
                            prev_word=prev_word)

    def batch_flags(self, data, prev_words):
        from ..core.vectorized import raw_flags

        return raw_flags(data, prev_words)


register_scheme("raw", Raw)
