"""Core DBI machinery: bursts, cost models, trellis search, optimal encoders.

This subpackage implements the paper's primary contribution — optimal
DC/AC data bus inversion as a shortest-path problem — plus the shared
substrate (bit conventions, burst container, scheme interface) every other
subpackage builds on.
"""

from .bitops import (
    ALL_ONES_WORD,
    BYTE_MASK,
    BYTE_WIDTH,
    DBI_BIT,
    WORD_MASK,
    WORD_WIDTH,
    decode_word,
    format_bits,
    make_word,
    parse_bits,
    popcount,
    transitions,
    zeros_in_byte,
    zeros_in_word,
)
from .burst import DEFAULT_BURST_LENGTH, PAPER_FIG2_BURST, Burst, chunk_bytes
from .costs import CostModel, QuantizedCostModel
from .decoder import decode_words, verify_round_trip, verify_stream
from .encoder import DbiOptimal, DbiOptimalFixed, DbiOptimalQuantized
from .pareto import (
    EncodingPoint,
    convex_hull_lower,
    enumerate_encodings,
    pareto_front,
    supported_points,
)
from .streaming import (
    BatchStreamingEncoder,
    StreamingOptimalEncoder,
    solve_stream,
    stream_cost,
    windowed_stream_cost,
)
from .schemes import (
    DbiScheme,
    EncodedBurst,
    available_schemes,
    get_scheme,
    register_scheme,
)
from .trellis import TrellisGraph, TrellisSolution, brute_force, solve
from .vectorized import (
    HAVE_NUMPY,
    available_backends,
    get_default_backend,
    pack_bursts,
    resolve_backend,
    set_default_backend,
    solve_batch,
    solve_stream_batch,
)

__all__ = [
    "ALL_ONES_WORD",
    "BYTE_MASK",
    "BYTE_WIDTH",
    "Burst",
    "CostModel",
    "HAVE_NUMPY",
    "available_backends",
    "get_default_backend",
    "pack_bursts",
    "resolve_backend",
    "set_default_backend",
    "solve_batch",
    "solve_stream_batch",
    "DBI_BIT",
    "DEFAULT_BURST_LENGTH",
    "DbiOptimal",
    "DbiOptimalFixed",
    "DbiOptimalQuantized",
    "DbiScheme",
    "EncodedBurst",
    "EncodingPoint",
    "PAPER_FIG2_BURST",
    "QuantizedCostModel",
    "StreamingOptimalEncoder",
    "TrellisGraph",
    "TrellisSolution",
    "WORD_MASK",
    "WORD_WIDTH",
    "available_schemes",
    "brute_force",
    "chunk_bytes",
    "convex_hull_lower",
    "decode_word",
    "decode_words",
    "enumerate_encodings",
    "format_bits",
    "get_scheme",
    "make_word",
    "pareto_front",
    "parse_bits",
    "popcount",
    "register_scheme",
    "solve",
    "solve_stream",
    "stream_cost",
    "supported_points",
    "windowed_stream_cost",
    "transitions",
    "verify_round_trip",
    "verify_stream",
    "zeros_in_byte",
    "zeros_in_word",
]
