"""Vectorized (NumPy) batch backend for DBI encoding.

The reference implementation (:mod:`repro.core.trellis` and the scheme
classes) solves one burst at a time in pure Python — ideal as an
executable specification, but every figure sweep pays per-burst Python
overhead.  This module provides the batched hot path: bursts are packed
into a ``(batch, n)`` ``uint8`` array, all 9-bit wire words and popcounts
come from precomputed tables, and the two-state Viterbi recursion of the
paper's Fig. 5 runs across the whole batch at once — the only Python loop
is over the ``n`` byte positions of a burst (8 for JEDEC bursts).

Bit-identity with the reference is a hard guarantee, not an
approximation: the recursion performs the same IEEE-754 double operations
in the same order as :func:`repro.core.trellis.solve`, so invert flags
*and* path costs match the reference exactly (the differential suite in
``tests/core/test_vectorized_parity.py`` enforces this).

Backend selection
-----------------
Batch entry points (:meth:`repro.core.schemes.DbiScheme.encode_batch`,
:func:`repro.sim.sweep.collect_activity`, :func:`repro.sim.runner.evaluate`)
accept ``backend="reference" | "vector" | "auto"``.  ``auto`` (the
default) picks ``vector`` whenever NumPy is importable and falls back to
the pure-Python reference otherwise.  The process-wide default can be
overridden with :func:`set_default_backend` or the ``REPRO_BACKEND``
environment variable.  NumPy is an optional dependency: importing this
module never fails, only *using* a vector kernel without NumPy raises.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple, Union

from .bitops import (
    ALL_ONES_WORD,
    BYTE_MASK,
    DBI_BIT,
    WORD_MASK,
    WORD_WIDTH,
    hamming_weight_table,
)

try:  # pragma: no cover - trivially true/false per environment
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when NumPy is importable and the vector backend is usable.
HAVE_NUMPY = _np is not None

#: Recognised backend names.
BACKENDS = ("auto", "reference", "vector")

def _backend_from_env() -> str:
    """Initial process default, validated at import so a typo'd
    ``REPRO_BACKEND`` fails fast instead of erroring deep inside the
    first batch call."""
    value = os.environ.get("REPRO_BACKEND", "auto")
    if value not in BACKENDS:
        import warnings

        warnings.warn(
            f"ignoring invalid REPRO_BACKEND={value!r}; choose from "
            f"{BACKENDS} (falling back to 'auto')",
            RuntimeWarning, stacklevel=2)
        return "auto"
    if value == "vector" and not HAVE_NUMPY:
        import warnings

        warnings.warn(
            "REPRO_BACKEND=vector requires NumPy, which is not installed; "
            "falling back to 'auto' (reference path)",
            RuntimeWarning, stacklevel=2)
        return "auto"
    return value


_default_backend = _backend_from_env()


def _require_numpy():
    if _np is None:
        raise RuntimeError(
            "the 'vector' backend requires NumPy; install it or select "
            "backend='reference'"
        )
    return _np


# -- backend selection -------------------------------------------------------

def available_backends() -> List[str]:
    """Concrete backends usable in this environment."""
    return ["reference", "vector"] if HAVE_NUMPY else ["reference"]


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (``auto``/``reference``/``vector``)."""
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    if name == "vector":
        _require_numpy()
    global _default_backend
    _default_backend = name


def get_default_backend() -> str:
    """The current process-wide default backend name (may be ``auto``)."""
    return _default_backend


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend spec to a concrete ``reference`` or ``vector``.

    ``None`` defers to the process default (set via
    :func:`set_default_backend` or ``REPRO_BACKEND``); ``auto`` resolves to
    ``vector`` when NumPy is present, else ``reference``.

    >>> resolve_backend("reference")
    'reference'
    """
    if backend is None:
        backend = _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend == "auto":
        return "vector" if HAVE_NUMPY else "reference"
    if backend == "vector":
        _require_numpy()
    return backend


# -- packing ----------------------------------------------------------------

#: 9-bit popcount table, built lazily (index by any value in [0, 511]).
_POPCOUNT9 = None


def popcount_table():
    """The shared ``(512,)`` int64 popcount table for 9-bit words."""
    global _POPCOUNT9
    np = _require_numpy()
    if _POPCOUNT9 is None:
        _POPCOUNT9 = np.asarray(hamming_weight_table(WORD_WIDTH), dtype=np.int64)
    return _POPCOUNT9


def pack_bursts(bursts: Sequence):
    """Pack equal-length bursts into a ``(batch, n)`` ``uint8`` array.

    Accepts :class:`~repro.core.burst.Burst` objects, byte sequences or an
    already-packed 2-D array.  Raises ``ValueError`` when the batch is
    empty or the lengths are ragged (callers that can encounter ragged
    batches should use :func:`try_pack_bursts`).
    """
    np = _require_numpy()
    if isinstance(bursts, np.ndarray):
        if bursts.ndim != 2:
            raise ValueError(f"packed bursts must be 2-D, got shape {bursts.shape}")
        if bursts.dtype != np.uint8:
            if not np.issubdtype(bursts.dtype, np.integer):
                raise TypeError(
                    f"packed bursts must have an integer dtype, got {bursts.dtype}")
            if bursts.size and (bursts.min() < 0 or bursts.max() > BYTE_MASK):
                raise ValueError(f"byte values out of range [0, {BYTE_MASK}]")
        return np.ascontiguousarray(bursts, dtype=np.uint8)
    rows = [getattr(burst, "data", burst) for burst in bursts]
    if not rows:
        raise ValueError("burst population is empty")
    length = len(rows[0])
    if any(len(row) != length for row in rows):
        raise ValueError("bursts have ragged lengths; pack per length group")
    # Re-enter through the ndarray branch so dtype/range validation is
    # applied uniformly regardless of the input form.
    return pack_bursts(np.asarray(rows))


def try_pack_bursts(bursts: Sequence):
    """Like :func:`pack_bursts` but returns ``None`` on ragged batches."""
    try:
        return pack_bursts(bursts)
    except ValueError:
        return None


def try_vector_pack(scheme, bursts, backend: Optional[str] = None,
                    chained: bool = False):
    """The single gate for every vector fast path in the library.

    Returns the packed ``(batch, n)`` array when *scheme* can be run
    vectorized over *bursts* under the resolved *backend* — i.e. the
    backend is ``vector``, the scheme has a batch kernel, the mode is
    vectorizable (chained transmission needs state-free flag decisions),
    and the population packs rectangularly.  Returns ``None`` otherwise,
    meaning: use the reference per-burst path.
    """
    if resolve_backend(backend) != "vector" or not scheme.supports_batch():
        return None
    if chained and scheme.stateful_flags:
        return None
    return try_pack_bursts(bursts)


def _as_prev_words(prev_words: Union[int, Sequence[int]], batch: int):
    """Broadcast/validate boundary words to an ``(batch,)`` int64 array."""
    np = _require_numpy()
    arr = np.asarray(prev_words, dtype=np.int64)
    if arr.ndim == 0:
        arr = np.full(batch, int(arr), dtype=np.int64)
    if arr.shape != (batch,):
        raise ValueError(f"prev_words shape {arr.shape} does not match batch {batch}")
    if arr.size and (arr.min() < 0 or arr.max() > WORD_MASK):
        raise ValueError(f"prev_words out of range [0, {WORD_MASK}]")
    return arr


def _word_planes(data) -> Tuple:
    """Per-polarity wire words for a packed batch: ``(raw, inv)`` int64."""
    np = _require_numpy()
    wide = data.astype(np.int64)
    return wide | DBI_BIT, wide ^ BYTE_MASK


# -- the batched two-state Viterbi recursion ---------------------------------

def solve_batch(data, model, prev_words: Union[int, Sequence[int]] = ALL_ONES_WORD):
    """Batched optimal DBI encoding (the paper's trellis, array-at-a-time).

    Parameters
    ----------
    data:
        ``(batch, n)`` ``uint8`` array (or anything :func:`pack_bursts`
        accepts) — one burst per row.
    model:
        A :class:`~repro.core.costs.CostModel`; only ``alpha``/``beta``
        are read.
    prev_words:
        Boundary bus word, either a scalar shared by every row or one
        word per row (``(batch,)``) — this is what makes the function
        usable for chained/streaming boundaries.

    Returns
    -------
    ``(flags, costs)`` where ``flags`` is ``(batch, n)`` bool (True =
    transmit inverted) and ``costs`` is ``(batch,)`` float64, both
    bit-identical to running :func:`repro.core.trellis.solve` row by row.
    """
    data = pack_bursts(data)
    prev = _as_prev_words(prev_words, data.shape[0])
    words_raw, words_inv = _word_planes(data)
    return _viterbi_planes(words_raw, words_inv, model.alpha, model.beta,
                           prev)


def _viterbi_planes(words_raw, words_inv, alpha: float, beta: float, prev,
                    width: int = WORD_WIDTH):
    """The two-state Viterbi recursion over prepared word planes.

    The compute core of :func:`solve_batch`, split out so windowed
    callers (:class:`repro.core.streaming.BatchStreamingEncoder`) can
    slice precomputed ``(batch, n)`` raw/inverted wire-word planes round
    by round without re-packing.  Performs the same IEEE-754 double
    operations in the same order as :func:`repro.core.trellis.solve`;
    all guarantees of :func:`solve_batch` flow from this function.

    ``width`` is the lane count of one word (the zeros term counts
    ``width - popcount``): 9 for the paper's byte+DBI words, ``g + 1``
    for the grouped-DBI trellises of
    :class:`repro.extensions.granularity.GroupedDbiOptimal`.  Words must
    stay below 2**9 so the shared popcount table applies.
    """
    np = _require_numpy()
    if not 0 < width <= WORD_WIDTH:
        raise ValueError(f"width must be in [1, {WORD_WIDTH}], got {width}")
    batch, n = words_raw.shape
    pop = popcount_table()

    def edge(prev_w, word):
        # Same IEEE ops, same order, as CostModel.word_cost.
        return alpha * pop[prev_w ^ word] + beta * (width - pop[word])

    cost_raw = edge(prev, words_raw[:, 0])
    cost_inv = edge(prev, words_inv[:, 0])
    choice_raw = np.zeros((batch, n), dtype=bool)
    choice_inv = np.zeros((batch, n), dtype=bool)

    for i in range(1, n):
        wr_prev, wi_prev = words_raw[:, i - 1], words_inv[:, i - 1]
        wr, wi = words_raw[:, i], words_inv[:, i]

        via_raw = cost_raw + edge(wr_prev, wr)
        via_inv = cost_inv + edge(wi_prev, wr)
        from_inv_raw = via_inv < via_raw
        next_raw = np.where(from_inv_raw, via_inv, via_raw)

        via_raw = cost_raw + edge(wr_prev, wi)
        via_inv = cost_inv + edge(wi_prev, wi)
        from_inv_inv = via_inv < via_raw
        next_inv = np.where(from_inv_inv, via_inv, via_raw)

        cost_raw, cost_inv = next_raw, next_inv
        choice_raw[:, i] = from_inv_raw
        choice_inv[:, i] = from_inv_inv

    flags = np.zeros((batch, n), dtype=bool)
    current = cost_inv < cost_raw
    totals = np.where(current, cost_inv, cost_raw)
    for i in range(n - 1, -1, -1):
        flags[:, i] = current
        current = np.where(current, choice_inv[:, i], choice_raw[:, i])
    return flags, totals


def solve_stream_batch(data, model,
                       prev_words: Union[int, Sequence[int]] = ALL_ONES_WORD):
    """Batched :func:`repro.core.streaming.solve_stream`.

    Each row of ``data`` is an independent byte *stream* solved jointly
    optimally from its own boundary word — the batched counterpart of the
    streaming/chained mode.  The trellis of a stream is identical to the
    trellis of one long burst, so this shares :func:`solve_batch`; the
    separate name documents the intent and keeps per-row ``prev_words``
    front and centre.
    """
    return solve_batch(data, model, prev_words=prev_words)


# -- baseline scheme kernels -------------------------------------------------

def raw_flags(data, prev_words=ALL_ONES_WORD):
    """RAW never inverts: an all-False ``(batch, n)`` flag array."""
    np = _require_numpy()
    data = pack_bursts(data)
    return np.zeros(data.shape, dtype=bool)


def dc_flags(data, prev_words=ALL_ONES_WORD):
    """DBI DC decisions for a batch: invert iff a byte has ≥ 5 zeros."""
    np = _require_numpy()
    data = pack_bursts(data)
    pop = popcount_table()
    # zeros_in_byte(b) > 4  <=>  popcount(b) < 4
    return pop[data.astype(np.int64)] < 4


def ac_flags(data, prev_words: Union[int, Sequence[int]] = ALL_ONES_WORD):
    """DBI AC decisions: greedy toggle minimisation, batch-parallel.

    Sequential over the ≤ n byte positions (the decision feeds the next
    beat's boundary), vectorized over the batch axis.
    """
    np = _require_numpy()
    data = pack_bursts(data)
    batch, n = data.shape
    pop = popcount_table()
    last = _as_prev_words(prev_words, batch)
    words_raw, words_inv = _word_planes(data)
    flags = np.zeros((batch, n), dtype=bool)
    for i in range(n):
        wr, wi = words_raw[:, i], words_inv[:, i]
        inverted = pop[last ^ wi] < pop[last ^ wr]
        flags[:, i] = inverted
        last = np.where(inverted, wi, wr)
    return flags


def acdc_flags(data, prev_words: Union[int, Sequence[int]] = ALL_ONES_WORD):
    """DBI ACDC decisions: first byte by the DC rule, rest by the AC rule."""
    np = _require_numpy()
    data = pack_bursts(data)
    batch, n = data.shape
    pop = popcount_table()
    words_raw, words_inv = _word_planes(data)
    flags = np.zeros((batch, n), dtype=bool)
    first_inverted = pop[data[:, 0].astype(np.int64)] < 4
    flags[:, 0] = first_inverted
    if n > 1:
        last = np.where(first_inverted, words_inv[:, 0], words_raw[:, 0])
        flags[:, 1:] = ac_flags(data[:, 1:], last)
    return flags


def businvert_flags(data, prev_words: Union[int, Sequence[int]] = ALL_ONES_WORD):
    """Stan–Burleson bus-invert: invert iff > 4 data lanes would toggle."""
    np = _require_numpy()
    data = pack_bursts(data)
    batch, n = data.shape
    pop = popcount_table()
    last = _as_prev_words(prev_words, batch)
    words_raw, words_inv = _word_planes(data)
    flags = np.zeros((batch, n), dtype=bool)
    for i in range(n):
        byte = data[:, i].astype(np.int64)
        inverted = pop[(last & BYTE_MASK) ^ byte] > 4
        flags[:, i] = inverted
        last = np.where(inverted, words_inv[:, i], words_raw[:, i])
    return flags


def greedy_flags(data, model,
                 prev_words: Union[int, Sequence[int]] = ALL_ONES_WORD):
    """Chang-style greedy weighted decisions (per-byte cheapest word)."""
    np = _require_numpy()
    data = pack_bursts(data)
    batch, n = data.shape
    pop = popcount_table()
    alpha, beta = model.alpha, model.beta
    last = _as_prev_words(prev_words, batch)
    words_raw, words_inv = _word_planes(data)
    flags = np.zeros((batch, n), dtype=bool)
    for i in range(n):
        wr, wi = words_raw[:, i], words_inv[:, i]
        raw_cost = alpha * pop[last ^ wr] + beta * (WORD_WIDTH - pop[wr])
        inv_cost = alpha * pop[last ^ wi] + beta * (WORD_WIDTH - pop[wi])
        inverted = inv_cost < raw_cost
        flags[:, i] = inverted
        last = np.where(inverted, wi, wr)
    return flags


# -- activity tallies --------------------------------------------------------

def flags_to_words(data, flags):
    """Wire words ``(batch, n)`` int64 for packed bytes and invert flags."""
    np = _require_numpy()
    data = pack_bursts(data)
    words_raw, words_inv = _word_planes(data)
    return np.where(np.asarray(flags, dtype=bool), words_inv, words_raw)


def batch_activity(words, prev_words: Union[int, Sequence[int]] = ALL_ONES_WORD,
                   width: int = WORD_WIDTH):
    """Per-burst ``(transitions, zeros)`` tallies for a batch of word rows.

    Each row is measured from its own boundary word (independent mode).
    ``width`` is the lane count per word (zeros = ``width - popcount``);
    the default is the paper's 9-lane byte+DBI word, grouped-DBI callers
    pass ``group_size + 1``.  Returns two ``(batch,)`` int64 arrays.
    """
    np = _require_numpy()
    words = np.asarray(words, dtype=np.int64)
    batch, n = words.shape
    pop = popcount_table()
    prev = _as_prev_words(prev_words, batch)
    zeros = (width - pop[words]).sum(axis=1)
    transitions = pop[prev ^ words[:, 0]]
    if n > 1:
        transitions = transitions + pop[words[:, :-1] ^ words[:, 1:]].sum(axis=1)
    return transitions, zeros


def scheme_batch_activity(scheme, data, prev_word: int = ALL_ONES_WORD,
                          chained: bool = False):
    """Flags plus population activity totals for one scheme, one call.

    The shared tally pipeline behind the sim layer's vector fast paths
    (:func:`repro.sim.runner.run_scheme`,
    :func:`repro.sim.sweep.collect_activity`): compute the scheme's batch
    flags, materialise the wire words, and tally either per-burst
    (independent boundaries) or threaded (chained) activity.

    Returns ``(flags, total_transitions, total_zeros)`` with the totals
    as Python ints.
    """
    np = _require_numpy()
    if chained and getattr(scheme, "stateful_flags", True):
        # Flags are computed with every row starting from prev_word, so
        # threading boundaries afterwards is only sound when the flags
        # never read the incoming state (see try_vector_pack).
        raise ValueError(
            f"scheme {getattr(scheme, 'name', scheme)!r} has state-dependent "
            "flag decisions; chained mode requires the reference path")
    data = pack_bursts(data)
    prev = np.full(data.shape[0], int(prev_word), dtype=np.int64)
    flags = scheme.batch_flags(data, prev)
    words = flags_to_words(data, flags)
    if chained:
        transitions, zeros = chain_activity(words, prev_word)
    else:
        per_transitions, per_zeros = batch_activity(words, prev_word)
        transitions, zeros = int(per_transitions.sum()), int(per_zeros.sum())
    return flags, transitions, zeros


def chain_activity(words, prev_word: int = ALL_ONES_WORD) -> Tuple[int, int]:
    """Population totals when burst rows are transmitted back-to-back.

    Row-major order: the last word of row *k* is the electrical boundary
    of row *k+1* — the vectorized twin of the runner's chained mode.
    Returns ``(total_transitions, total_zeros)`` as Python ints.
    """
    np = _require_numpy()
    words = np.asarray(words, dtype=np.int64)
    pop = popcount_table()
    flat = words.ravel()
    zeros = int((WORD_WIDTH - pop[flat]).sum())
    transitions = int(pop[int(prev_word) ^ flat[0]])
    transitions += int(pop[flat[:-1] ^ flat[1:]].sum())
    return transitions, zeros
